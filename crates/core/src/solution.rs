//! The solution translation method **T_S** (paper §4.1.3).
//!
//! Reads the goal predicate's tuples out of the evaluated database,
//! projects out the tuple ID and the graph component, converts Datalog
//! constants back to RDF terms (`null` ⇒ unbound), and applies any
//! solution modifiers the translator did not compile into `@post`
//! directives (complex `ORDER BY` arguments).
//!
//! On top of the solution sequence this module realises the two
//! graph-producing query forms: `CONSTRUCT` instantiates its triple
//! templates once per solution (minting fresh blank nodes per solution,
//! SPARQL 1.1 §16.2.1), and `DESCRIBE` computes the concise bounded
//! description of each named/bound resource directly over the `triple/4`
//! relation. Both return [`QueryResults::Graph`].

use std::collections::HashSet;

use sparqlog_datalog::{collect_output, order_cmp, Const, Database};
use sparqlog_rdf::{Graph, Term, Triple};
use sparqlog_sparql::{DescribeTarget, Query, QueryForm, TermPattern, TriplePattern, Var};

use crate::data_translation::{const_to_term, default_graph_const, preds, term_to_const};
use crate::expr_translation::sexpr_to_dexpr;
use crate::query_translation::TranslatedQuery;

/// A sequence of solution mappings: the variable header plus one row per
/// solution (bag semantics — duplicates appear as repeated rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolutionSeq {
    /// Projected variable names (without `?`).
    pub vars: Vec<String>,
    /// Rows aligned with `vars`; `None` = unbound.
    pub rows: Vec<Vec<Option<Term>>>,
}

/// One solution mapping of a [`SolutionSeq`], addressable by variable
/// name — so callers stop counting columns:
///
/// ```
/// use sparqlog::SparqLog;
///
/// let mut engine = SparqLog::new();
/// engine
///     .load_turtle("@prefix ex: <http://ex.org/> . ex:a ex:p ex:b .")
///     .unwrap();
/// let result = engine
///     .execute("PREFIX ex: <http://ex.org/> SELECT ?o WHERE { ex:a ex:p ?o }")
///     .unwrap();
/// let solutions = result.solutions().unwrap();
/// let first = solutions.solution(0).unwrap();
/// assert_eq!(first.get("o").unwrap().to_string(), "<http://ex.org/b>");
/// assert!(first.get("?o").is_some(), "sigil accepted");
/// assert!(first.get("nope").is_none());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Solution<'a> {
    vars: &'a [String],
    row: &'a [Option<Term>],
}

impl<'a> Solution<'a> {
    /// The binding of variable `name` (with or without the `?` sigil):
    /// `None` when the variable is not projected or unbound in this
    /// solution.
    pub fn get(&self, name: &str) -> Option<&'a Term> {
        let name = name.strip_prefix('?').unwrap_or(name);
        let i = self.vars.iter().position(|v| v == name)?;
        self.row[i].as_ref()
    }

    /// The projected variable names, in column order.
    pub fn vars(&self) -> &'a [String] {
        self.vars
    }

    /// The bindings in column order (`None` = unbound).
    pub fn values(&self) -> &'a [Option<Term>] {
        self.row
    }

    /// Iterates over `(variable, binding)` pairs in column order.
    pub fn iter(&self) -> impl Iterator<Item = (&'a str, Option<&'a Term>)> + 'a {
        self.vars
            .iter()
            .zip(self.row)
            .map(|(v, t)| (v.as_str(), t.as_ref()))
    }
}

impl SolutionSeq {
    /// Number of solutions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no solutions.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The `i`-th solution as a by-name view.
    pub fn solution(&self, i: usize) -> Option<Solution<'_>> {
        self.rows.get(i).map(|row| Solution {
            vars: &self.vars,
            row,
        })
    }

    /// Iterates over the solutions as by-name views.
    pub fn iter(&self) -> impl Iterator<Item = Solution<'_>> + '_ {
        self.rows.iter().map(|row| Solution {
            vars: &self.vars,
            row,
        })
    }

    /// Canonical multiset view: each row rendered to strings and the rows
    /// sorted. Blank-node labels are erased when `ignore_bnodes` is set —
    /// the paper's compliance harness does the same (Appendix D.2.2)
    /// because engines assign system-specific labels.
    pub fn canonical(&self, ignore_bnodes: bool) -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|cell| match cell {
                        None => "UNBOUND".to_string(),
                        Some(t) if t.is_bnode() && ignore_bnodes => "_:".to_string(),
                        Some(t) => t.to_string(),
                    })
                    .collect()
            })
            .collect();
        rows.sort();
        rows
    }

    /// Multiset equality against another sequence (row order ignored,
    /// duplicates significant, blank-node labels ignored).
    pub fn multiset_eq(&self, other: &SolutionSeq) -> bool {
        self.canonical(true) == other.canonical(true)
    }

    /// True if every row of `self` also occurs in `other` with at least
    /// the same multiplicity (the *correctness* direction of BeSEPPI).
    pub fn multiset_subset_of(&self, other: &SolutionSeq) -> bool {
        let mut rest = other.canonical(true);
        for row in self.canonical(true) {
            match rest.iter().position(|r| *r == row) {
                Some(i) => {
                    rest.swap_remove(i);
                }
                None => return false,
            }
        }
        true
    }
}

impl std::fmt::Display for SolutionSeq {
    /// Renders the sequence as a tab-separated table: a `?var` header
    /// line followed by one line per solution (`UNBOUND` for unbound
    /// cells). This is what examples and CLIs print instead of
    /// hand-formatting rows.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, var) in self.vars.iter().enumerate() {
            if i > 0 {
                f.write_str("\t")?;
            }
            write!(f, "?{var}")?;
        }
        for row in &self.rows {
            f.write_str("\n")?;
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    f.write_str("\t")?;
                }
                match cell {
                    Some(t) => write!(f, "{t}")?,
                    None => f.write_str("UNBOUND")?,
                }
            }
        }
        Ok(())
    }
}

/// The result of executing a query, typed by query form: `SELECT`
/// produces [`QueryResults::Solutions`], `ASK` a
/// [`QueryResults::Boolean`], and `CONSTRUCT`/`DESCRIBE` a
/// [`QueryResults::Graph`].
///
/// Wire-format serialization lives in [`crate::results_io`]: solutions
/// and booleans serialize to the W3C SPARQL 1.1 Query Results JSON, CSV
/// and TSV formats ([`QueryResults::to_json`] & co.), graphs to
/// N-Triples and Turtle ([`QueryResults::to_ntriples`],
/// [`QueryResults::to_turtle`]).
#[derive(Debug, Clone)]
pub enum QueryResults {
    /// SELECT: a sequence of solution mappings.
    Solutions(SolutionSeq),
    /// ASK: a boolean.
    Boolean(bool),
    /// CONSTRUCT / DESCRIBE: an RDF graph (boxed — a [`Graph`] carries
    /// its indexes inline, and results move through batch slots).
    Graph(Box<Graph>),
}

/// Deprecated alias of [`QueryResults`] — the pre-PR 5 name, from before
/// CONSTRUCT/DESCRIBE added the `Graph` variant. Existing two-armed
/// `match`es keep compiling through the alias (modulo the new variant);
/// migrate by renaming.
#[deprecated(note = "renamed to `QueryResults`; CONSTRUCT/DESCRIBE added a `Graph` variant")]
pub type QueryResult = QueryResults;

impl QueryResults {
    /// The solutions, if this is a SELECT result.
    pub fn solutions(&self) -> Option<&SolutionSeq> {
        match self {
            QueryResults::Solutions(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is an ASK result.
    pub fn boolean(&self) -> Option<bool> {
        match self {
            QueryResults::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// The graph, if this is a CONSTRUCT/DESCRIBE result.
    pub fn graph(&self) -> Option<&Graph> {
        match self {
            QueryResults::Graph(g) => Some(g),
            _ => None,
        }
    }

    /// Number of solutions (0/1 for ASK false/true, triple count for
    /// graphs).
    pub fn len(&self) -> usize {
        match self {
            QueryResults::Solutions(s) => s.len(),
            QueryResults::Boolean(b) => usize::from(*b),
            QueryResults::Graph(g) => g.len(),
        }
    }

    /// True when there are no solutions / ASK is false / the graph is
    /// empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Solutions and booleans compare structurally; graphs compare as triple
/// *sets* (insertion order ignored, blank-node labels significant — use
/// [`canonical_triples`] for label-insensitive cross-engine comparison).
impl PartialEq for QueryResults {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (QueryResults::Solutions(a), QueryResults::Solutions(b)) => a == b,
            (QueryResults::Boolean(a), QueryResults::Boolean(b)) => a == b,
            (QueryResults::Graph(a), QueryResults::Graph(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .all(|(s, p, o)| b.contains(&Triple::new(s.clone(), p.clone(), o.clone())))
            }
            _ => false,
        }
    }
}

impl std::fmt::Display for QueryResults {
    /// `true`/`false` for ASK results, the [`SolutionSeq`] table for
    /// SELECT results, N-Triples lines for graphs.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryResults::Solutions(s) => s.fmt(f),
            QueryResults::Boolean(b) => write!(f, "{b}"),
            QueryResults::Graph(g) => {
                for (i, (s, p, o)) in g.iter().enumerate() {
                    if i > 0 {
                        f.write_str("\n")?;
                    }
                    write!(f, "{s} {p} {o} .")?;
                }
                Ok(())
            }
        }
    }
}

/// Extracts the query result from an evaluated database, dispatching on
/// the query form (T_S for the solution sequence; template
/// instantiation / concise-bounded-description on top for the
/// graph-producing forms).
pub fn extract_results(tq: &TranslatedQuery, query: &Query, db: &Database) -> QueryResults {
    let symbols = db.symbols();
    let tuples = collect_output(&tq.program, db, tq.root_pred);

    if tq.is_ask {
        let yes = tuples.iter().any(|t| t.first() == Some(&Const::Bool(true)));
        return QueryResults::Boolean(yes);
    }

    // Layout: [Id, columns..., D] — strip Id and D.
    let ncols = tq.columns.len();
    let mut rows: Vec<Vec<Const>> = tuples
        .into_iter()
        .map(|t| t[1..1 + ncols].to_vec())
        .collect();

    if !tq.modifiers_in_post {
        // Complex ORDER BY: evaluate each condition over the row.
        if !query.order_by.is_empty() {
            let compiled: Vec<(sparqlog_datalog::Expr, bool)> = query
                .order_by
                .iter()
                .filter_map(|c| {
                    let e = sexpr_to_dexpr(&c.expr, symbols, &mut |name| {
                        tq.columns
                            .iter()
                            .position(|v| v.name() == name)
                            .map(|i| i as u32)
                    })
                    .ok()?;
                    Some((e, c.descending))
                })
                .collect();
            rows.sort_by(|a, b| {
                let env_a: Vec<Option<Const>> = a.iter().map(|c| Some(c.clone())).collect();
                let env_b: Vec<Option<Const>> = b.iter().map(|c| Some(c.clone())).collect();
                for (expr, desc) in &compiled {
                    let va = expr.eval(&env_a, symbols).unwrap_or(Const::Null);
                    let vb = expr.eval(&env_b, symbols).unwrap_or(Const::Null);
                    let ord = order_cmp(&va, &vb, symbols);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        if let Some(off) = query.offset {
            rows = rows.split_off(off.min(rows.len()));
        }
        if let Some(lim) = query.limit {
            rows.truncate(lim);
        }
    }

    let out_rows: Vec<Vec<Option<Term>>> = rows
        .into_iter()
        .map(|row| row.iter().map(|c| const_to_term(c, symbols)).collect())
        .collect();

    let seq = SolutionSeq {
        vars: tq.columns.iter().map(|v| v.name().to_string()).collect(),
        rows: out_rows,
    };

    match &query.form {
        QueryForm::Construct { template } => {
            QueryResults::Graph(Box::new(construct_graph(template, &seq)))
        }
        QueryForm::Describe { targets } => {
            // `Query::projection` is the describe-variable list (target
            // variables, or every in-scope variable for `DESCRIBE *`) —
            // pass it explicitly: `seq` may carry extra hidden columns
            // for ORDER BY keys, which must not be described.
            QueryResults::Graph(Box::new(describe_graph(
                targets,
                &query.projection(),
                &seq,
                db,
            )))
        }
        _ => QueryResults::Solutions(seq),
    }
}

/// A graph as a sorted list of triple strings with blank-node labels
/// erased — the graph analogue of [`SolutionSeq::canonical`], for
/// comparing CONSTRUCT/DESCRIBE output across engines that mint their
/// own fresh labels (the compliance harness and the differential suite
/// both compare through this).
pub fn canonical_triples(g: &Graph) -> Vec<[String; 3]> {
    let render = |t: &Term| {
        if t.is_bnode() {
            "_:".to_string()
        } else {
            t.to_string()
        }
    };
    let mut rows: Vec<[String; 3]> = g
        .iter()
        .map(|(s, p, o)| [render(s), render(p), render(o)])
        .collect();
    rows.sort();
    rows
}

/// Instantiates a `CONSTRUCT` template over a solution sequence
/// (SPARQL 1.1 §16.2): each solution stamps out one copy of every triple
/// template. Template blank nodes are freshened per solution — the same
/// label within one solution denotes one node, across solutions distinct
/// ones; `'!'` cannot occur in a parsed blank-node label, so minted
/// labels never collide with dataset ones. Instantiations with an
/// unbound variable, a literal subject or a non-IRI predicate are
/// dropped, and the result is a graph, so duplicates collapse.
pub fn construct_graph(template: &[TriplePattern], solutions: &SolutionSeq) -> Graph {
    let mut g = Graph::new();
    for (row, sol) in solutions.iter().enumerate() {
        for t in template {
            let resolve = |tp: &TermPattern| -> Option<Term> {
                match tp {
                    TermPattern::Term(Term::BlankNode(label)) => {
                        Some(Term::bnode(format!("{label}!c{row}")))
                    }
                    TermPattern::Term(term) => Some(term.clone()),
                    TermPattern::Var(v) => sol.get(v.name()).cloned(),
                }
            };
            let (Some(s), Some(p), Some(o)) = (
                resolve(&t.subject),
                resolve(&t.predicate),
                resolve(&t.object),
            ) else {
                continue;
            };
            if s.is_literal() || !p.is_iri() {
                continue;
            }
            g.insert(Triple::new(s, p, o));
        }
    }
    g
}

/// The concise bounded description backing `DESCRIBE`: for every
/// resource (explicit IRI targets plus the non-literal bindings of the
/// target variables across the solutions), all default-graph triples
/// with that resource as subject, closed transitively over blank-node
/// objects.
fn describe_graph(
    targets: &[DescribeTarget],
    describe_vars: &[Var],
    solutions: &SolutionSeq,
    db: &Database,
) -> Graph {
    let symbols = db.symbols();
    let mut queue: Vec<Term> = Vec::new();
    let mut seen: HashSet<Term> = HashSet::new();
    for t in targets {
        if let DescribeTarget::Iri(iri) = t {
            let term = Term::iri(iri.clone());
            if seen.insert(term.clone()) {
                queue.push(term);
            }
        }
    }
    // Only the describe variables' bindings are resources to describe —
    // the sequence may carry further (hidden ORDER BY) columns.
    for sol in solutions.iter() {
        for var in describe_vars {
            if let Some(v) = sol.get(var.name()) {
                if !v.is_literal() && seen.insert(v.clone()) {
                    queue.push(v.clone());
                }
            }
        }
    }

    let mut g = Graph::new();
    let Some(triple_p) = symbols.get(preds::TRIPLE) else {
        return g;
    };
    let Some(rel) = db.relation(triple_p) else {
        return g;
    };
    let dict = db.dict();
    let default_g = dict.encode(&default_graph_const(symbols));
    while let Some(r) = queue.pop() {
        let sid = dict.encode(&term_to_const(&r, symbols));
        let matches = rel.lookup(0b0001, &[sid]);
        for &idx in matches.iter() {
            let row = rel.row(idx);
            if row[3] != default_g {
                continue;
            }
            let (Some(p), Some(o)) = (
                const_to_term(&dict.decode(row[1]), symbols),
                const_to_term(&dict.decode(row[2]), symbols),
            ) else {
                continue;
            };
            if o.is_bnode() && seen.insert(o.clone()) {
                queue.push(o.clone());
            }
            g.insert(Triple::new(r.clone(), p, o));
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(rows: Vec<Vec<Option<Term>>>) -> SolutionSeq {
        SolutionSeq {
            vars: vec!["x".into()],
            rows,
        }
    }

    #[test]
    fn multiset_equality_ignores_order() {
        let a = seq(vec![vec![Some(Term::iri("a"))], vec![Some(Term::iri("b"))]]);
        let b = seq(vec![vec![Some(Term::iri("b"))], vec![Some(Term::iri("a"))]]);
        assert!(a.multiset_eq(&b));
    }

    #[test]
    fn multiset_equality_counts_duplicates() {
        let a = seq(vec![vec![Some(Term::iri("a"))], vec![Some(Term::iri("a"))]]);
        let b = seq(vec![vec![Some(Term::iri("a"))]]);
        assert!(!a.multiset_eq(&b));
        assert!(b.multiset_subset_of(&a));
        assert!(!a.multiset_subset_of(&b));
    }

    #[test]
    fn bnode_labels_are_ignored() {
        let a = seq(vec![vec![Some(Term::bnode("x1"))]]);
        let b = seq(vec![vec![Some(Term::bnode("y9"))]]);
        assert!(a.multiset_eq(&b));
    }

    #[test]
    fn solution_views_access_by_name() {
        let s = SolutionSeq {
            vars: vec!["x".into(), "y".into()],
            rows: vec![
                vec![Some(Term::iri("a")), None],
                vec![Some(Term::iri("b")), Some(Term::integer(2))],
            ],
        };
        let first = s.solution(0).unwrap();
        assert_eq!(first.get("x"), Some(&Term::iri("a")));
        assert_eq!(first.get("?x"), Some(&Term::iri("a")));
        assert_eq!(first.get("y"), None, "unbound");
        assert_eq!(first.get("z"), None, "not projected");
        assert_eq!(first.vars(), &["x".to_string(), "y".to_string()]);
        let names: Vec<&str> = first.iter().map(|(v, _)| v).collect();
        assert_eq!(names, ["x", "y"]);
        assert_eq!(s.iter().count(), 2);
        assert!(s.solution(5).is_none());
    }

    #[test]
    fn display_renders_table_and_booleans() {
        let s = SolutionSeq {
            vars: vec!["x".into(), "y".into()],
            rows: vec![vec![Some(Term::iri("a")), None]],
        };
        assert_eq!(s.to_string(), "?x\t?y\n<a>\tUNBOUND");
        assert_eq!(
            QueryResults::Solutions(s).to_string(),
            "?x\t?y\n<a>\tUNBOUND"
        );
        assert_eq!(QueryResults::Boolean(true).to_string(), "true");
    }

    #[test]
    fn unbound_cells_compare() {
        let a = seq(vec![vec![None]]);
        let b = seq(vec![vec![Some(Term::iri("a"))]]);
        assert!(!a.multiset_eq(&b));
        assert!(a.multiset_eq(&a.clone()));
    }
}
