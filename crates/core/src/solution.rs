//! The solution translation method **T_S** (paper §4.1.3).
//!
//! Reads the goal predicate's tuples out of the evaluated database,
//! projects out the tuple ID and the graph component, converts Datalog
//! constants back to RDF terms (`null` ⇒ unbound), and applies any
//! solution modifiers the translator did not compile into `@post`
//! directives (complex `ORDER BY` arguments).

use sparqlog_datalog::{collect_output, order_cmp, Const, Database};
use sparqlog_rdf::Term;
use sparqlog_sparql::Query;

use crate::data_translation::const_to_term;
use crate::expr_translation::sexpr_to_dexpr;
use crate::query_translation::TranslatedQuery;

/// A sequence of solution mappings: the variable header plus one row per
/// solution (bag semantics — duplicates appear as repeated rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolutionSeq {
    /// Projected variable names (without `?`).
    pub vars: Vec<String>,
    /// Rows aligned with `vars`; `None` = unbound.
    pub rows: Vec<Vec<Option<Term>>>,
}

/// One solution mapping of a [`SolutionSeq`], addressable by variable
/// name — so callers stop counting columns:
///
/// ```
/// use sparqlog::SparqLog;
///
/// let mut engine = SparqLog::new();
/// engine
///     .load_turtle("@prefix ex: <http://ex.org/> . ex:a ex:p ex:b .")
///     .unwrap();
/// let result = engine
///     .execute("PREFIX ex: <http://ex.org/> SELECT ?o WHERE { ex:a ex:p ?o }")
///     .unwrap();
/// let solutions = result.solutions().unwrap();
/// let first = solutions.solution(0).unwrap();
/// assert_eq!(first.get("o").unwrap().to_string(), "<http://ex.org/b>");
/// assert!(first.get("?o").is_some(), "sigil accepted");
/// assert!(first.get("nope").is_none());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Solution<'a> {
    vars: &'a [String],
    row: &'a [Option<Term>],
}

impl<'a> Solution<'a> {
    /// The binding of variable `name` (with or without the `?` sigil):
    /// `None` when the variable is not projected or unbound in this
    /// solution.
    pub fn get(&self, name: &str) -> Option<&'a Term> {
        let name = name.strip_prefix('?').unwrap_or(name);
        let i = self.vars.iter().position(|v| v == name)?;
        self.row[i].as_ref()
    }

    /// The projected variable names, in column order.
    pub fn vars(&self) -> &'a [String] {
        self.vars
    }

    /// The bindings in column order (`None` = unbound).
    pub fn values(&self) -> &'a [Option<Term>] {
        self.row
    }

    /// Iterates over `(variable, binding)` pairs in column order.
    pub fn iter(&self) -> impl Iterator<Item = (&'a str, Option<&'a Term>)> + 'a {
        self.vars
            .iter()
            .zip(self.row)
            .map(|(v, t)| (v.as_str(), t.as_ref()))
    }
}

impl SolutionSeq {
    /// Number of solutions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no solutions.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The `i`-th solution as a by-name view.
    pub fn solution(&self, i: usize) -> Option<Solution<'_>> {
        self.rows.get(i).map(|row| Solution {
            vars: &self.vars,
            row,
        })
    }

    /// Iterates over the solutions as by-name views.
    pub fn iter(&self) -> impl Iterator<Item = Solution<'_>> + '_ {
        self.rows.iter().map(|row| Solution {
            vars: &self.vars,
            row,
        })
    }

    /// Canonical multiset view: each row rendered to strings and the rows
    /// sorted. Blank-node labels are erased when `ignore_bnodes` is set —
    /// the paper's compliance harness does the same (Appendix D.2.2)
    /// because engines assign system-specific labels.
    pub fn canonical(&self, ignore_bnodes: bool) -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|cell| match cell {
                        None => "UNBOUND".to_string(),
                        Some(t) if t.is_bnode() && ignore_bnodes => "_:".to_string(),
                        Some(t) => t.to_string(),
                    })
                    .collect()
            })
            .collect();
        rows.sort();
        rows
    }

    /// Multiset equality against another sequence (row order ignored,
    /// duplicates significant, blank-node labels ignored).
    pub fn multiset_eq(&self, other: &SolutionSeq) -> bool {
        self.canonical(true) == other.canonical(true)
    }

    /// True if every row of `self` also occurs in `other` with at least
    /// the same multiplicity (the *correctness* direction of BeSEPPI).
    pub fn multiset_subset_of(&self, other: &SolutionSeq) -> bool {
        let mut rest = other.canonical(true);
        for row in self.canonical(true) {
            match rest.iter().position(|r| *r == row) {
                Some(i) => {
                    rest.swap_remove(i);
                }
                None => return false,
            }
        }
        true
    }
}

impl std::fmt::Display for SolutionSeq {
    /// Renders the sequence as a tab-separated table: a `?var` header
    /// line followed by one line per solution (`UNBOUND` for unbound
    /// cells). This is what examples and CLIs print instead of
    /// hand-formatting rows.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, var) in self.vars.iter().enumerate() {
            if i > 0 {
                f.write_str("\t")?;
            }
            write!(f, "?{var}")?;
        }
        for row in &self.rows {
            f.write_str("\n")?;
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    f.write_str("\t")?;
                }
                match cell {
                    Some(t) => write!(f, "{t}")?,
                    None => f.write_str("UNBOUND")?,
                }
            }
        }
        Ok(())
    }
}

/// The result of executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResult {
    /// SELECT: a sequence of solution mappings.
    Solutions(SolutionSeq),
    /// ASK: a boolean.
    Boolean(bool),
}

impl QueryResult {
    /// The solutions, if this is a SELECT result.
    pub fn solutions(&self) -> Option<&SolutionSeq> {
        match self {
            QueryResult::Solutions(s) => Some(s),
            QueryResult::Boolean(_) => None,
        }
    }

    /// Number of solutions (0/1 for ASK false/true).
    pub fn len(&self) -> usize {
        match self {
            QueryResult::Solutions(s) => s.len(),
            QueryResult::Boolean(b) => usize::from(*b),
        }
    }

    /// True when there are no solutions / ASK is false.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Display for QueryResult {
    /// `true`/`false` for ASK results, the [`SolutionSeq`] table for
    /// SELECT results.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryResult::Solutions(s) => s.fmt(f),
            QueryResult::Boolean(b) => write!(f, "{b}"),
        }
    }
}

/// Extracts the query result from an evaluated database.
pub fn extract_result(tq: &TranslatedQuery, query: &Query, db: &Database) -> QueryResult {
    let symbols = db.symbols();
    let tuples = collect_output(&tq.program, db, tq.root_pred);

    if tq.is_ask {
        let yes = tuples.iter().any(|t| t.first() == Some(&Const::Bool(true)));
        return QueryResult::Boolean(yes);
    }

    // Layout: [Id, columns..., D] — strip Id and D.
    let ncols = tq.columns.len();
    let mut rows: Vec<Vec<Const>> = tuples
        .into_iter()
        .map(|t| t[1..1 + ncols].to_vec())
        .collect();

    if !tq.modifiers_in_post {
        // Complex ORDER BY: evaluate each condition over the row.
        if !query.order_by.is_empty() {
            let compiled: Vec<(sparqlog_datalog::Expr, bool)> = query
                .order_by
                .iter()
                .filter_map(|c| {
                    let e = sexpr_to_dexpr(&c.expr, symbols, &mut |name| {
                        tq.columns
                            .iter()
                            .position(|v| v.name() == name)
                            .map(|i| i as u32)
                    })
                    .ok()?;
                    Some((e, c.descending))
                })
                .collect();
            rows.sort_by(|a, b| {
                let env_a: Vec<Option<Const>> = a.iter().map(|c| Some(c.clone())).collect();
                let env_b: Vec<Option<Const>> = b.iter().map(|c| Some(c.clone())).collect();
                for (expr, desc) in &compiled {
                    let va = expr.eval(&env_a, symbols).unwrap_or(Const::Null);
                    let vb = expr.eval(&env_b, symbols).unwrap_or(Const::Null);
                    let ord = order_cmp(&va, &vb, symbols);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        if let Some(off) = query.offset {
            rows = rows.split_off(off.min(rows.len()));
        }
        if let Some(lim) = query.limit {
            rows.truncate(lim);
        }
    }

    let out_rows: Vec<Vec<Option<Term>>> = rows
        .into_iter()
        .map(|row| row.iter().map(|c| const_to_term(c, symbols)).collect())
        .collect();

    QueryResult::Solutions(SolutionSeq {
        vars: tq.columns.iter().map(|v| v.name().to_string()).collect(),
        rows: out_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(rows: Vec<Vec<Option<Term>>>) -> SolutionSeq {
        SolutionSeq {
            vars: vec!["x".into()],
            rows,
        }
    }

    #[test]
    fn multiset_equality_ignores_order() {
        let a = seq(vec![vec![Some(Term::iri("a"))], vec![Some(Term::iri("b"))]]);
        let b = seq(vec![vec![Some(Term::iri("b"))], vec![Some(Term::iri("a"))]]);
        assert!(a.multiset_eq(&b));
    }

    #[test]
    fn multiset_equality_counts_duplicates() {
        let a = seq(vec![vec![Some(Term::iri("a"))], vec![Some(Term::iri("a"))]]);
        let b = seq(vec![vec![Some(Term::iri("a"))]]);
        assert!(!a.multiset_eq(&b));
        assert!(b.multiset_subset_of(&a));
        assert!(!a.multiset_subset_of(&b));
    }

    #[test]
    fn bnode_labels_are_ignored() {
        let a = seq(vec![vec![Some(Term::bnode("x1"))]]);
        let b = seq(vec![vec![Some(Term::bnode("y9"))]]);
        assert!(a.multiset_eq(&b));
    }

    #[test]
    fn solution_views_access_by_name() {
        let s = SolutionSeq {
            vars: vec!["x".into(), "y".into()],
            rows: vec![
                vec![Some(Term::iri("a")), None],
                vec![Some(Term::iri("b")), Some(Term::integer(2))],
            ],
        };
        let first = s.solution(0).unwrap();
        assert_eq!(first.get("x"), Some(&Term::iri("a")));
        assert_eq!(first.get("?x"), Some(&Term::iri("a")));
        assert_eq!(first.get("y"), None, "unbound");
        assert_eq!(first.get("z"), None, "not projected");
        assert_eq!(first.vars(), &["x".to_string(), "y".to_string()]);
        let names: Vec<&str> = first.iter().map(|(v, _)| v).collect();
        assert_eq!(names, ["x", "y"]);
        assert_eq!(s.iter().count(), 2);
        assert!(s.solution(5).is_none());
    }

    #[test]
    fn display_renders_table_and_booleans() {
        let s = SolutionSeq {
            vars: vec!["x".into(), "y".into()],
            rows: vec![vec![Some(Term::iri("a")), None]],
        };
        assert_eq!(s.to_string(), "?x\t?y\n<a>\tUNBOUND");
        assert_eq!(
            QueryResult::Solutions(s).to_string(),
            "?x\t?y\n<a>\tUNBOUND"
        );
        assert_eq!(QueryResult::Boolean(true).to_string(), "true");
    }

    #[test]
    fn unbound_cells_compare() {
        let a = seq(vec![vec![None]]);
        let b = seq(vec![vec![Some(Term::iri("a"))]]);
        assert!(!a.multiset_eq(&b));
        assert!(a.multiset_eq(&a.clone()));
    }
}
