//! W3C wire-format serialization of [`QueryResults`].
//!
//! Three standard formats cover the solution-producing query forms
//! (`SELECT`, `ASK`):
//!
//! * **SPARQL 1.1 Query Results JSON** ([`to_json`]) — the
//!   `application/sparql-results+json` format:
//!   `{"head":{"vars":[...]},"results":{"bindings":[...]}}` for
//!   solutions, `{"head":{},"boolean":...}` for ASK;
//! * **SPARQL 1.1 Query Results CSV** ([`to_csv`]) — plain values
//!   (IRIs bare, literals as their lexical form), RFC 4180 quoting,
//!   CRLF line endings;
//! * **SPARQL 1.1 Query Results TSV** ([`to_tsv`]) — terms in SPARQL
//!   concrete syntax (`<iri>`, `"lit"@en`, `_:b`), tab-separated.
//!
//! The graph-producing forms (`CONSTRUCT`, `DESCRIBE`) serialize through
//! the `sparqlog-rdf` writers instead: [`graph_to_ntriples`] and
//! [`graph_to_turtle`]. Asking a solution format for a graph result (or
//! vice versa) is a [`SerializeError`], not a silent coercion.
//!
//! All serializers are hand-rolled (the workspace builds offline with
//! zero external dependencies) and covered by golden-fixture tests in
//! `crates/core/tests/results_io.rs`.

use sparqlog_rdf::{Graph, LiteralKind, Term};

use crate::solution::{QueryResults, SolutionSeq};

/// The requested wire format cannot represent this result form (e.g.
/// Results-JSON for a CONSTRUCT graph).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializeError {
    /// The requested format ("Results-JSON", "CSV", ...).
    pub format: &'static str,
    /// The result form actually held ("graph", "solutions", "boolean").
    pub form: &'static str,
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cannot represent a {} result; use a matching serializer",
            self.format, self.form
        )
    }
}

impl std::error::Error for SerializeError {}

fn form_name(r: &QueryResults) -> &'static str {
    match r {
        QueryResults::Solutions(_) => "solutions",
        QueryResults::Boolean(_) => "boolean",
        QueryResults::Graph(_) => "graph",
    }
}

// --------------------------------------------------------------- JSON

/// Serializes a SELECT/ASK result in the SPARQL 1.1 Query Results JSON
/// format (`application/sparql-results+json`).
pub fn to_json(results: &QueryResults) -> Result<String, SerializeError> {
    match results {
        QueryResults::Boolean(b) => Ok(format!("{{\"head\":{{}},\"boolean\":{b}}}")),
        QueryResults::Solutions(s) => Ok(solutions_to_json(s)),
        QueryResults::Graph(_) => Err(SerializeError {
            format: "Results-JSON",
            form: form_name(results),
        }),
    }
}

fn solutions_to_json(s: &SolutionSeq) -> String {
    let mut out = String::from("{\"head\":{\"vars\":[");
    for (i, v) in s.vars.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_string(v, &mut out);
    }
    out.push_str("]},\"results\":{\"bindings\":[");
    for (i, sol) in s.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        let mut first = true;
        // Unbound variables are simply absent from the binding object.
        for (var, term) in sol.iter() {
            let Some(term) = term else { continue };
            if !first {
                out.push(',');
            }
            first = false;
            json_string(var, &mut out);
            out.push(':');
            json_term(term, &mut out);
        }
        out.push('}');
    }
    out.push_str("]}}");
    out
}

fn json_term(t: &Term, out: &mut String) {
    match t {
        Term::Iri(iri) => {
            out.push_str("{\"type\":\"uri\",\"value\":");
            json_string(iri, out);
            out.push('}');
        }
        Term::BlankNode(label) => {
            out.push_str("{\"type\":\"bnode\",\"value\":");
            json_string(label, out);
            out.push('}');
        }
        Term::Literal(l) => {
            out.push_str("{\"type\":\"literal\",\"value\":");
            json_string(l.lexical(), out);
            match l.kind() {
                LiteralKind::Plain => {}
                LiteralKind::Lang(tag) => {
                    out.push_str(",\"xml:lang\":");
                    json_string(tag, out);
                }
                LiteralKind::Typed(dt) => {
                    out.push_str(",\"datatype\":");
                    json_string(dt, out);
                }
            }
            out.push('}');
        }
    }
}

/// Appends `s` as a JSON string literal (quotes, backslashes and control
/// characters escaped).
fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- CSV

/// Serializes a SELECT/ASK result in the SPARQL 1.1 Query Results CSV
/// format (`text/csv`): plain values, RFC 4180 quoting, CRLF line
/// endings. (The W3C format only defines SELECT output; ASK results are
/// rendered as a single `true`/`false` line, matching common practice.)
pub fn to_csv(results: &QueryResults) -> Result<String, SerializeError> {
    match results {
        QueryResults::Boolean(b) => Ok(format!("{b}\r\n")),
        QueryResults::Solutions(s) => {
            let mut out = String::new();
            out.push_str(&s.vars.join(","));
            out.push_str("\r\n");
            for sol in s.iter() {
                for (i, (_, term)) in sol.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    match term {
                        // Blank nodes keep their `_:label` form (W3C
                        // CSV results §3); IRIs and literals are bare.
                        // The prefix goes through the quoting with the
                        // label, so a label needing quotes yields one
                        // well-formed field.
                        Some(Term::BlankNode(label)) => {
                            csv_field(&format!("_:{label}"), &mut out);
                        }
                        Some(t) => csv_field(t.str_value(), &mut out),
                        // Unbound ⇒ empty field.
                        None => {}
                    }
                }
                out.push_str("\r\n");
            }
            Ok(out)
        }
        QueryResults::Graph(_) => Err(SerializeError {
            format: "CSV",
            form: form_name(results),
        }),
    }
}

/// Appends a CSV field, quoting per RFC 4180 only when needed.
fn csv_field(value: &str, out: &mut String) {
    if value.contains(['"', ',', '\n', '\r']) {
        out.push('"');
        for c in value.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(value);
    }
}

// ---------------------------------------------------------------- TSV

/// Serializes a SELECT/ASK result in the SPARQL 1.1 Query Results TSV
/// format (`text/tab-separated-values`): a `?var` header and terms in
/// SPARQL concrete syntax, with tabs/newlines inside literals escaped.
/// (ASK results render as a single `true`/`false` line; see [`to_csv`].)
pub fn to_tsv(results: &QueryResults) -> Result<String, SerializeError> {
    match results {
        QueryResults::Boolean(b) => Ok(format!("{b}\n")),
        QueryResults::Solutions(s) => {
            let mut out = String::new();
            for (i, v) in s.vars.iter().enumerate() {
                if i > 0 {
                    out.push('\t');
                }
                out.push('?');
                out.push_str(v);
            }
            out.push('\n');
            for sol in s.iter() {
                for (i, (_, term)) in sol.iter().enumerate() {
                    if i > 0 {
                        out.push('\t');
                    }
                    if let Some(t) = term {
                        // `Term`'s Display is N-Triples syntax — valid
                        // TSV terms, with \t and \n escaped in literals.
                        out.push_str(&t.to_string());
                    }
                }
                out.push('\n');
            }
            Ok(out)
        }
        QueryResults::Graph(_) => Err(SerializeError {
            format: "TSV",
            form: form_name(results),
        }),
    }
}

// -------------------------------------------------------------- graphs

/// Serializes a CONSTRUCT/DESCRIBE result graph as N-Triples.
pub fn graph_to_ntriples(g: &Graph) -> String {
    sparqlog_rdf::ntriples::serialize(g)
}

/// Serializes a CONSTRUCT/DESCRIBE result graph as Turtle (triples
/// grouped by subject, `rdf:type` compacted to `a`).
pub fn graph_to_turtle(g: &Graph) -> String {
    sparqlog_rdf::turtle::serialize(g)
}

impl QueryResults {
    /// [`to_json`] as a method.
    pub fn to_json(&self) -> Result<String, SerializeError> {
        to_json(self)
    }

    /// [`to_csv`] as a method.
    pub fn to_csv(&self) -> Result<String, SerializeError> {
        to_csv(self)
    }

    /// [`to_tsv`] as a method.
    pub fn to_tsv(&self) -> Result<String, SerializeError> {
        to_tsv(self)
    }

    /// The result graph as N-Triples, for CONSTRUCT/DESCRIBE results.
    pub fn to_ntriples(&self) -> Result<String, SerializeError> {
        match self {
            QueryResults::Graph(g) => Ok(graph_to_ntriples(g)),
            other => Err(SerializeError {
                format: "N-Triples",
                form: form_name(other),
            }),
        }
    }

    /// The result graph as Turtle, for CONSTRUCT/DESCRIBE results.
    pub fn to_turtle(&self) -> Result<String, SerializeError> {
        match self {
            QueryResults::Graph(g) => Ok(graph_to_turtle(g)),
            other => Err(SerializeError {
                format: "Turtle",
                form: form_name(other),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq() -> QueryResults {
        QueryResults::Solutions(SolutionSeq {
            vars: vec!["x".into(), "y".into()],
            rows: vec![
                vec![Some(Term::iri("http://e/a")), None],
                vec![
                    Some(Term::bnode("b1")),
                    Some(Term::lang_literal("chat", "fr")),
                ],
            ],
        })
    }

    #[test]
    fn json_shapes() {
        assert_eq!(
            to_json(&QueryResults::Boolean(true)).unwrap(),
            r#"{"head":{},"boolean":true}"#
        );
        let json = seq().to_json().unwrap();
        assert!(json.starts_with(r#"{"head":{"vars":["x","y"]},"results":{"bindings":["#));
        assert!(json.contains(r#""x":{"type":"uri","value":"http://e/a"}"#));
        assert!(json.contains(r#""y":{"type":"literal","value":"chat","xml:lang":"fr"}"#));
    }

    #[test]
    fn json_escapes_control_characters() {
        let mut out = String::new();
        json_string("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn csv_quoting() {
        let mut out = String::new();
        csv_field("plain", &mut out);
        out.push(';');
        csv_field("a,b \"quoted\"\nc", &mut out);
        assert_eq!(out, "plain;\"a,b \"\"quoted\"\"\nc\"");
    }

    #[test]
    fn csv_quotes_whole_bnode_field() {
        // A label needing quotes must produce ONE well-formed RFC 4180
        // field — the `_:` prefix belongs inside the quoted region.
        let r = QueryResults::Solutions(SolutionSeq {
            vars: vec!["x".into()],
            rows: vec![vec![Some(Term::bnode("a,b"))]],
        });
        assert_eq!(r.to_csv().unwrap(), "x\r\n\"_:a,b\"\r\n");
    }

    #[test]
    fn graph_formats_reject_solution_results() {
        assert!(seq().to_ntriples().is_err());
        assert!(seq().to_turtle().is_err());
        let g = QueryResults::Graph(Box::new(Graph::new()));
        assert!(g.to_json().is_err());
        assert!(g.to_csv().is_err());
        assert!(g.to_tsv().is_err());
        let err = g.to_json().unwrap_err();
        assert_eq!(err.form, "graph");
        assert!(err.to_string().contains("Results-JSON"));
    }

    #[test]
    fn literal_escape_reuse() {
        // TSV terms reuse the N-Triples literal escaping.
        assert_eq!(sparqlog_rdf::term::escape_literal("a\tb"), "a\\tb");
    }
}
