//! W3C wire-format serialization of [`QueryResults`].
//!
//! Three standard formats cover the solution-producing query forms
//! (`SELECT`, `ASK`):
//!
//! * **SPARQL 1.1 Query Results JSON** ([`write_json`] / [`to_json`]) —
//!   the `application/sparql-results+json` format:
//!   `{"head":{"vars":[...]},"results":{"bindings":[...]}}` for
//!   solutions, `{"head":{},"boolean":...}` for ASK;
//! * **SPARQL 1.1 Query Results CSV** ([`write_csv`] / [`to_csv`]) —
//!   plain values (IRIs bare, literals as their lexical form), RFC 4180
//!   quoting, CRLF line endings;
//! * **SPARQL 1.1 Query Results TSV** ([`write_tsv`] / [`to_tsv`]) —
//!   terms in SPARQL concrete syntax (`<iri>`, `"lit"@en`, `_:b`),
//!   tab-separated.
//!
//! The graph-producing forms (`CONSTRUCT`, `DESCRIBE`) serialize through
//! the `sparqlog-rdf` writers instead: [`write_ntriples`] /
//! [`graph_to_ntriples`] and [`write_turtle`] / [`graph_to_turtle`].
//! Asking a solution format for a graph result (or vice versa) is a
//! [`SerializeError`], not a silent coercion.
//!
//! Since PR 8 the **incremental [`std::io::Write`] paths are primary**:
//! every `write_*` function streams straight into its sink — one row /
//! one triple at a time, no intermediate document string — so a huge
//! CONSTRUCT serialized through an HTTP chunked-transfer writer never
//! materializes in RAM. The `to_*` String functions are thin wrappers
//! that stream into a `Vec<u8>`. Differential tests in
//! `crates/core/tests/results_io.rs` pin both paths byte-identical,
//! including through a pathological 1-byte-per-call writer.
//!
//! All serializers are hand-rolled (the workspace builds offline with
//! zero external dependencies) and covered by golden-fixture tests in
//! `crates/core/tests/results_io.rs`.

use std::io::{self, Write};

use sparqlog_rdf::{Graph, LiteralKind, Term};

use crate::solution::{QueryResults, SolutionSeq};

/// The requested wire format cannot represent this result form (e.g.
/// Results-JSON for a CONSTRUCT graph).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializeError {
    /// The requested format ("Results-JSON", "CSV", ...).
    pub format: &'static str,
    /// The result form actually held ("graph", "solutions", "boolean").
    pub form: &'static str,
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cannot represent a {} result; use a matching serializer",
            self.format, self.form
        )
    }
}

impl std::error::Error for SerializeError {}

/// Failure of a streaming `write_*` serializer: either the format cannot
/// represent the result form at all, or the underlying sink failed
/// mid-stream (e.g. an HTTP client hung up).
#[derive(Debug)]
pub enum WriteError {
    /// Format/form mismatch — nothing was written.
    Serialize(SerializeError),
    /// The sink returned an I/O error; the output is truncated.
    Io(io::Error),
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteError::Serialize(e) => e.fmt(f),
            WriteError::Io(e) => write!(f, "I/O error while streaming results: {e}"),
        }
    }
}

impl std::error::Error for WriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WriteError::Serialize(e) => Some(e),
            WriteError::Io(e) => Some(e),
        }
    }
}

impl From<SerializeError> for WriteError {
    fn from(e: SerializeError) -> Self {
        WriteError::Serialize(e)
    }
}

impl From<io::Error> for WriteError {
    fn from(e: io::Error) -> Self {
        WriteError::Io(e)
    }
}

fn form_name(r: &QueryResults) -> &'static str {
    match r {
        QueryResults::Solutions(_) => "solutions",
        QueryResults::Boolean(_) => "boolean",
        QueryResults::Graph(_) => "graph",
    }
}

/// Streams into a `Vec<u8>` (which cannot fail) and recovers the String;
/// only a [`SerializeError`] can surface.
fn collect_string(
    f: impl FnOnce(&mut dyn Write) -> Result<(), WriteError>,
) -> Result<String, SerializeError> {
    let mut out = Vec::new();
    match f(&mut out) {
        Ok(()) => Ok(String::from_utf8(out).expect("serializer output is UTF-8")),
        Err(WriteError::Serialize(e)) => Err(e),
        Err(WriteError::Io(e)) => unreachable!("writing to a Vec<u8> cannot fail: {e}"),
    }
}

// --------------------------------------------------------------- JSON

/// Streams a SELECT/ASK result in the SPARQL 1.1 Query Results JSON
/// format (`application/sparql-results+json`) into `out`, one binding
/// object at a time.
pub fn write_json(results: &QueryResults, out: &mut dyn Write) -> Result<(), WriteError> {
    match results {
        QueryResults::Boolean(b) => {
            write!(out, "{{\"head\":{{}},\"boolean\":{b}}}")?;
            Ok(())
        }
        QueryResults::Solutions(s) => write_solutions_json(s, out),
        QueryResults::Graph(_) => Err(SerializeError {
            format: "Results-JSON",
            form: form_name(results),
        }
        .into()),
    }
}

/// Serializes a SELECT/ASK result in the SPARQL 1.1 Query Results JSON
/// format. Thin wrapper over [`write_json`].
pub fn to_json(results: &QueryResults) -> Result<String, SerializeError> {
    collect_string(|out| write_json(results, out))
}

fn write_solutions_json(s: &SolutionSeq, out: &mut dyn Write) -> Result<(), WriteError> {
    out.write_all(b"{\"head\":{\"vars\":[")?;
    for (i, v) in s.vars.iter().enumerate() {
        if i > 0 {
            out.write_all(b",")?;
        }
        json_string(v, out)?;
    }
    out.write_all(b"]},\"results\":{\"bindings\":[")?;
    for (i, sol) in s.iter().enumerate() {
        if i > 0 {
            out.write_all(b",")?;
        }
        out.write_all(b"{")?;
        let mut first = true;
        // Unbound variables are simply absent from the binding object.
        for (var, term) in sol.iter() {
            let Some(term) = term else { continue };
            if !first {
                out.write_all(b",")?;
            }
            first = false;
            json_string(var, out)?;
            out.write_all(b":")?;
            json_term(term, out)?;
        }
        out.write_all(b"}")?;
    }
    out.write_all(b"]}}")?;
    Ok(())
}

fn json_term(t: &Term, out: &mut dyn Write) -> io::Result<()> {
    match t {
        Term::Iri(iri) => {
            out.write_all(b"{\"type\":\"uri\",\"value\":")?;
            json_string(iri, out)?;
            out.write_all(b"}")
        }
        Term::BlankNode(label) => {
            out.write_all(b"{\"type\":\"bnode\",\"value\":")?;
            json_string(label, out)?;
            out.write_all(b"}")
        }
        Term::Literal(l) => {
            out.write_all(b"{\"type\":\"literal\",\"value\":")?;
            json_string(l.lexical(), out)?;
            match l.kind() {
                LiteralKind::Plain => {}
                LiteralKind::Lang(tag) => {
                    out.write_all(b",\"xml:lang\":")?;
                    json_string(tag, out)?;
                }
                LiteralKind::Typed(dt) => {
                    out.write_all(b",\"datatype\":")?;
                    json_string(dt, out)?;
                }
            }
            out.write_all(b"}")
        }
    }
}

/// Writes `s` as a JSON string literal (quotes, backslashes and control
/// characters escaped). Runs of ordinary characters are written as one
/// slice, not char-at-a-time.
fn json_string(s: &str, out: &mut dyn Write) -> io::Result<()> {
    out.write_all(b"\"")?;
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let esc: Option<&[u8]> = match b {
            b'"' => Some(b"\\\""),
            b'\\' => Some(b"\\\\"),
            b'\n' => Some(b"\\n"),
            b'\r' => Some(b"\\r"),
            b'\t' => Some(b"\\t"),
            b if b < 0x20 => None, // \uXXXX, handled below
            _ => continue,
        };
        out.write_all(&bytes[start..i])?;
        match esc {
            Some(e) => out.write_all(e)?,
            None => write!(out, "\\u{:04x}", b)?,
        }
        start = i + 1;
    }
    out.write_all(&bytes[start..])?;
    out.write_all(b"\"")
}

// ---------------------------------------------------------------- CSV

/// Streams a SELECT/ASK result in the SPARQL 1.1 Query Results CSV
/// format (`text/csv`) into `out`: plain values, RFC 4180 quoting, CRLF
/// line endings, one row at a time. (The W3C format only defines SELECT
/// output; ASK results are rendered as a single `true`/`false` line,
/// matching common practice.)
pub fn write_csv(results: &QueryResults, out: &mut dyn Write) -> Result<(), WriteError> {
    match results {
        QueryResults::Boolean(b) => {
            write!(out, "{b}\r\n")?;
            Ok(())
        }
        QueryResults::Solutions(s) => {
            for (i, v) in s.vars.iter().enumerate() {
                if i > 0 {
                    out.write_all(b",")?;
                }
                out.write_all(v.as_bytes())?;
            }
            out.write_all(b"\r\n")?;
            for sol in s.iter() {
                for (i, (_, term)) in sol.iter().enumerate() {
                    if i > 0 {
                        out.write_all(b",")?;
                    }
                    match term {
                        // Blank nodes keep their `_:label` form (W3C
                        // CSV results §3); IRIs and literals are bare.
                        // The prefix goes through the quoting with the
                        // label, so a label needing quotes yields one
                        // well-formed field.
                        Some(Term::BlankNode(label)) => {
                            csv_field(&format!("_:{label}"), out)?;
                        }
                        Some(t) => csv_field(t.str_value(), out)?,
                        // Unbound ⇒ empty field.
                        None => {}
                    }
                }
                out.write_all(b"\r\n")?;
            }
            Ok(())
        }
        QueryResults::Graph(_) => Err(SerializeError {
            format: "CSV",
            form: form_name(results),
        }
        .into()),
    }
}

/// Serializes a SELECT/ASK result in the SPARQL 1.1 Query Results CSV
/// format. Thin wrapper over [`write_csv`].
pub fn to_csv(results: &QueryResults) -> Result<String, SerializeError> {
    collect_string(|out| write_csv(results, out))
}

/// Writes a CSV field, quoting per RFC 4180 only when needed.
fn csv_field(value: &str, out: &mut dyn Write) -> io::Result<()> {
    if value.contains(['"', ',', '\n', '\r']) {
        out.write_all(b"\"")?;
        let bytes = value.as_bytes();
        let mut start = 0;
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'"' {
                out.write_all(&bytes[start..=i])?;
                out.write_all(b"\"")?;
                start = i + 1;
            }
        }
        out.write_all(&bytes[start..])?;
        out.write_all(b"\"")
    } else {
        out.write_all(value.as_bytes())
    }
}

// ---------------------------------------------------------------- TSV

/// Streams a SELECT/ASK result in the SPARQL 1.1 Query Results TSV
/// format (`text/tab-separated-values`) into `out`: a `?var` header and
/// terms in SPARQL concrete syntax, with tabs/newlines inside literals
/// escaped, one row at a time. (ASK results render as a single
/// `true`/`false` line; see [`write_csv`].)
pub fn write_tsv(results: &QueryResults, out: &mut dyn Write) -> Result<(), WriteError> {
    match results {
        QueryResults::Boolean(b) => {
            writeln!(out, "{b}")?;
            Ok(())
        }
        QueryResults::Solutions(s) => {
            for (i, v) in s.vars.iter().enumerate() {
                if i > 0 {
                    out.write_all(b"\t")?;
                }
                out.write_all(b"?")?;
                out.write_all(v.as_bytes())?;
            }
            out.write_all(b"\n")?;
            for sol in s.iter() {
                for (i, (_, term)) in sol.iter().enumerate() {
                    if i > 0 {
                        out.write_all(b"\t")?;
                    }
                    if let Some(t) = term {
                        // `Term`'s Display is N-Triples syntax — valid
                        // TSV terms, with \t and \n escaped in literals.
                        write!(out, "{t}")?;
                    }
                }
                out.write_all(b"\n")?;
            }
            Ok(())
        }
        QueryResults::Graph(_) => Err(SerializeError {
            format: "TSV",
            form: form_name(results),
        }
        .into()),
    }
}

/// Serializes a SELECT/ASK result in the SPARQL 1.1 Query Results TSV
/// format. Thin wrapper over [`write_tsv`].
pub fn to_tsv(results: &QueryResults) -> Result<String, SerializeError> {
    collect_string(|out| write_tsv(results, out))
}

// -------------------------------------------------------------- graphs

/// Streams a CONSTRUCT/DESCRIBE result graph as N-Triples into `out`,
/// one triple per write.
pub fn write_ntriples(results: &QueryResults, out: &mut dyn Write) -> Result<(), WriteError> {
    match results {
        QueryResults::Graph(g) => {
            sparqlog_rdf::ntriples::write(g, out)?;
            Ok(())
        }
        other => Err(SerializeError {
            format: "N-Triples",
            form: form_name(other),
        }
        .into()),
    }
}

/// Streams a CONSTRUCT/DESCRIBE result graph as Turtle into `out`
/// (triples grouped by subject, `rdf:type` compacted to `a`).
pub fn write_turtle(results: &QueryResults, out: &mut dyn Write) -> Result<(), WriteError> {
    match results {
        QueryResults::Graph(g) => {
            sparqlog_rdf::turtle::write(g, out)?;
            Ok(())
        }
        other => Err(SerializeError {
            format: "Turtle",
            form: form_name(other),
        }
        .into()),
    }
}

/// Serializes a CONSTRUCT/DESCRIBE result graph as N-Triples.
pub fn graph_to_ntriples(g: &Graph) -> String {
    sparqlog_rdf::ntriples::serialize(g)
}

/// Serializes a CONSTRUCT/DESCRIBE result graph as Turtle (triples
/// grouped by subject, `rdf:type` compacted to `a`).
pub fn graph_to_turtle(g: &Graph) -> String {
    sparqlog_rdf::turtle::serialize(g)
}

impl QueryResults {
    /// [`to_json`] as a method.
    pub fn to_json(&self) -> Result<String, SerializeError> {
        to_json(self)
    }

    /// [`to_csv`] as a method.
    pub fn to_csv(&self) -> Result<String, SerializeError> {
        to_csv(self)
    }

    /// [`to_tsv`] as a method.
    pub fn to_tsv(&self) -> Result<String, SerializeError> {
        to_tsv(self)
    }

    /// The result graph as N-Triples, for CONSTRUCT/DESCRIBE results.
    pub fn to_ntriples(&self) -> Result<String, SerializeError> {
        match self {
            QueryResults::Graph(g) => Ok(graph_to_ntriples(g)),
            other => Err(SerializeError {
                format: "N-Triples",
                form: form_name(other),
            }),
        }
    }

    /// The result graph as Turtle, for CONSTRUCT/DESCRIBE results.
    pub fn to_turtle(&self) -> Result<String, SerializeError> {
        match self {
            QueryResults::Graph(g) => Ok(graph_to_turtle(g)),
            other => Err(SerializeError {
                format: "Turtle",
                form: form_name(other),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq() -> QueryResults {
        QueryResults::Solutions(SolutionSeq {
            vars: vec!["x".into(), "y".into()],
            rows: vec![
                vec![Some(Term::iri("http://e/a")), None],
                vec![
                    Some(Term::bnode("b1")),
                    Some(Term::lang_literal("chat", "fr")),
                ],
            ],
        })
    }

    #[test]
    fn json_shapes() {
        assert_eq!(
            to_json(&QueryResults::Boolean(true)).unwrap(),
            r#"{"head":{},"boolean":true}"#
        );
        let json = seq().to_json().unwrap();
        assert!(json.starts_with(r#"{"head":{"vars":["x","y"]},"results":{"bindings":["#));
        assert!(json.contains(r#""x":{"type":"uri","value":"http://e/a"}"#));
        assert!(json.contains(r#""y":{"type":"literal","value":"chat","xml:lang":"fr"}"#));
    }

    #[test]
    fn json_escapes_control_characters() {
        let mut out = Vec::new();
        json_string("a\"b\\c\nd\u{1}", &mut out).unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn csv_quoting() {
        let mut out = Vec::new();
        csv_field("plain", &mut out).unwrap();
        out.push(b';');
        csv_field("a,b \"quoted\"\nc", &mut out).unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "plain;\"a,b \"\"quoted\"\"\nc\""
        );
    }

    #[test]
    fn csv_quotes_whole_bnode_field() {
        // A label needing quotes must produce ONE well-formed RFC 4180
        // field — the `_:` prefix belongs inside the quoted region.
        let r = QueryResults::Solutions(SolutionSeq {
            vars: vec!["x".into()],
            rows: vec![vec![Some(Term::bnode("a,b"))]],
        });
        assert_eq!(r.to_csv().unwrap(), "x\r\n\"_:a,b\"\r\n");
    }

    #[test]
    fn graph_formats_reject_solution_results() {
        assert!(seq().to_ntriples().is_err());
        assert!(seq().to_turtle().is_err());
        let g = QueryResults::Graph(Box::new(Graph::new()));
        assert!(g.to_json().is_err());
        assert!(g.to_csv().is_err());
        assert!(g.to_tsv().is_err());
        let err = g.to_json().unwrap_err();
        assert_eq!(err.form, "graph");
        assert!(err.to_string().contains("Results-JSON"));
    }

    #[test]
    fn write_error_form_mismatch_and_io() {
        let e = write_json(
            &QueryResults::Graph(Box::new(Graph::new())),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(matches!(e, WriteError::Serialize(_)));
        assert!(e.to_string().contains("Results-JSON"));

        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let e = write_json(&QueryResults::Boolean(true), &mut Broken).unwrap_err();
        assert!(matches!(e, WriteError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn literal_escape_reuse() {
        // TSV terms reuse the N-Triples literal escaping.
        assert_eq!(sparqlog_rdf::term::escape_literal("a\tb"), "a\\tb");
    }
}
