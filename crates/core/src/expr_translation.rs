//! Shared SPARQL-expression → Datalog-expression translation.
//!
//! Used by the query translator (filter conditions copied into rule
//! bodies, §5.1) and by the solution translation (complex `ORDER BY`
//! arguments evaluated over result rows).

use sparqlog_datalog::{
    ArithOp as DArith, CmpOp as DCmp, Const, Expr as DExpr, SymbolTable, VarId,
};
use sparqlog_sparql::expr::{ArithOp as SArith, CmpOp as SCmp};
use sparqlog_sparql::Expr as SExpr;

use crate::data_translation::term_to_const;
use crate::query_translation::TranslationError;

/// Translates a SPARQL expression. `resolve` maps a variable name to a
/// Datalog [`VarId`]; `None` means the variable is out of scope, in which
/// case it is replaced by the `null` constant (so comparisons error out
/// and `BOUND` evaluates to false, per SPARQL's unbound semantics).
pub fn sexpr_to_dexpr(
    e: &SExpr,
    symbols: &SymbolTable,
    resolve: &mut dyn FnMut(&str) -> Option<VarId>,
) -> Result<DExpr, TranslationError> {
    macro_rules! t {
        ($e:expr) => {
            Box::new(sexpr_to_dexpr($e, symbols, resolve)?)
        };
    }
    Ok(match e {
        SExpr::Var(v) => match resolve(v.name()) {
            Some(id) => DExpr::Var(id),
            None => DExpr::Const(Const::Null),
        },
        SExpr::Const(term) => DExpr::Const(term_to_const(term, symbols)),
        SExpr::Or(a, b) => DExpr::Or(t!(a), t!(b)),
        SExpr::And(a, b) => DExpr::And(t!(a), t!(b)),
        SExpr::Not(a) => DExpr::Not(t!(a)),
        SExpr::Compare(op, a, b) => {
            let op = match op {
                SCmp::Eq => DCmp::Eq,
                SCmp::Neq => DCmp::Neq,
                SCmp::Lt => DCmp::Lt,
                SCmp::Le => DCmp::Le,
                SCmp::Gt => DCmp::Gt,
                SCmp::Ge => DCmp::Ge,
            };
            DExpr::Cmp(op, t!(a), t!(b))
        }
        SExpr::Arith(op, a, b) => {
            let op = match op {
                SArith::Add => DArith::Add,
                SArith::Sub => DArith::Sub,
                SArith::Mul => DArith::Mul,
                SArith::Div => DArith::Div,
            };
            DExpr::Arith(op, t!(a), t!(b))
        }
        SExpr::Neg(a) => DExpr::Arith(DArith::Sub, Box::new(DExpr::Const(Const::Int(0))), t!(a)),
        SExpr::Bound(v) => match resolve(v.name()) {
            Some(id) => DExpr::Cmp(
                DCmp::Neq,
                Box::new(DExpr::Var(id)),
                Box::new(DExpr::Const(Const::Null)),
            ),
            None => DExpr::Const(Const::Bool(false)),
        },
        SExpr::IsIri(a) => DExpr::IsIri(t!(a)),
        SExpr::IsBlank(a) => DExpr::IsBlank(t!(a)),
        SExpr::IsLiteral(a) => DExpr::IsLiteral(t!(a)),
        SExpr::IsNumeric(a) => DExpr::IsNumeric(t!(a)),
        SExpr::Str(a) => DExpr::Str(t!(a)),
        SExpr::Lang(a) => DExpr::Lang(t!(a)),
        SExpr::Datatype(a) => DExpr::Datatype(t!(a)),
        SExpr::Ucase(a) => DExpr::Ucase(t!(a)),
        SExpr::Lcase(a) => DExpr::Lcase(t!(a)),
        SExpr::Strlen(a) => DExpr::Strlen(t!(a)),
        SExpr::Contains(a, b) => DExpr::Contains(t!(a), t!(b)),
        SExpr::StrStarts(a, b) => DExpr::StrStarts(t!(a), t!(b)),
        SExpr::StrEnds(a, b) => DExpr::StrEnds(t!(a), t!(b)),
        SExpr::SameTerm(a, b) => DExpr::SameTerm(t!(a), t!(b)),
        SExpr::LangMatches(a, b) => DExpr::LangMatches(t!(a), t!(b)),
        SExpr::Regex(text, pat, flags) => {
            let f = match flags {
                None => None,
                Some(fe) => Some(t!(fe)),
            };
            DExpr::Regex(t!(text), t!(pat), f)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_sparql::Var;

    #[test]
    fn out_of_scope_vars_become_null() {
        let symbols = SymbolTable::new();
        let e = SExpr::Compare(
            SCmp::Gt,
            Box::new(SExpr::Var(Var::new("x"))),
            Box::new(SExpr::Const(sparqlog_rdf::Term::integer(3))),
        );
        let d = sexpr_to_dexpr(&e, &symbols, &mut |_| None).unwrap();
        assert!(matches!(
            d,
            DExpr::Cmp(DCmp::Gt, a, _) if matches!(*a, DExpr::Const(Const::Null))
        ));
    }

    #[test]
    fn bound_of_out_of_scope_is_false() {
        let symbols = SymbolTable::new();
        let e = SExpr::Bound(Var::new("x"));
        let d = sexpr_to_dexpr(&e, &symbols, &mut |_| None).unwrap();
        assert_eq!(d, DExpr::Const(Const::Bool(false)));
    }

    #[test]
    fn bound_in_scope_is_null_check() {
        let symbols = SymbolTable::new();
        let e = SExpr::Bound(Var::new("x"));
        let d = sexpr_to_dexpr(&e, &symbols, &mut |_| Some(7)).unwrap();
        assert!(matches!(d, DExpr::Cmp(DCmp::Neq, _, _)));
    }
}
