//! The unified [`Store`] API: one durable handle serving cheap read
//! snapshots and explicit write sessions, with SPARQL 1.1 Update on top.
//!
//! This subsumes the `SparqLog` / `FrozenDatabase` split of the earlier
//! PRs (both remain as thin compatibility wrappers). The lifecycle it
//! models is the one real query logs exhibit — read-mostly traffic with
//! occasional writes:
//!
//! * [`Store::snapshot`] hands out a [`Snapshot`]: an `Arc`-shared,
//!   index-complete read view. Snapshots are cheap (one atomic
//!   refcount), immutable, `Send + Sync`, and keep serving their
//!   version of the data even while later commits land — readers are
//!   never blocked and never see partial writes.
//! * [`Store::writer`] opens a [`Writer`]: a session that stages
//!   triple-level additions and removals (and `CLEAR`s) and applies
//!   them atomically on [`Writer::commit`]. The commit *thaws* the
//!   current frozen snapshot back into a mutable database
//!   ([`sparqlog_datalog::FrozenDb::thaw`]), applies the delta, brings
//!   the T_D auxiliary predicates up to date, and re-freezes —
//!   **incrementally**: per-mask hash indexes of untouched predicates
//!   are carried through thaw and maintained in place, so a small delta
//!   never pays the `2^arity - 1` index rebuild of a from-scratch
//!   freeze.
//! * [`Store::update`] executes SPARQL 1.1 Update requests
//!   (`INSERT DATA`, `DELETE DATA`, `DELETE/INSERT ... WHERE`,
//!   `CLEAR`) end-to-end: `WHERE` clauses run through the ordinary
//!   query pipeline against the current snapshot, and the resulting
//!   bindings instantiate the delete/insert templates into a write
//!   session.
//!
//! ```
//! use sparqlog::Store;
//!
//! let store = Store::new();
//! store
//!     .update(
//!         r#"PREFIX ex: <http://ex.org/>
//!            INSERT DATA { ex:spain ex:borders ex:france .
//!                          ex:france ex:borders ex:belgium }"#,
//!     )
//!     .unwrap();
//! let q = "PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ex:spain ex:borders+ ?b }";
//! assert_eq!(store.execute(q).unwrap().len(), 2);
//!
//! // Snapshots are stable read views: this one will not see the delete.
//! let before = store.snapshot();
//! store
//!     .update(
//!         "PREFIX ex: <http://ex.org/> DELETE DATA { ex:france ex:borders ex:belgium }",
//!     )
//!     .unwrap();
//! assert_eq!(before.execute(q).unwrap().len(), 2);
//! assert_eq!(store.execute(q).unwrap().len(), 1);
//! ```
//!
//! # Consistency model
//!
//! Commits serialise on an internal commit lock; each produces a new
//! immutable snapshot installed atomically, so queries observe either
//! the pre- or the post-commit state, never a mixture ("repeatable
//! read" for any query or batch pinned to one snapshot). A SPARQL
//! Update *request* holds the commit lock end to end — concurrent
//! read-modify-write requests cannot interleave between a `WHERE`
//! evaluation and its commit — though a request is not atomic under
//! failure: operations commit one by one, and an error leaves the
//! earlier operations applied.
//!
//! Readers holding a [`Snapshot`] are never blocked by a commit. A
//! commit that finds live snapshots works on a copy while the store
//! keeps serving the pre-commit version (new [`Store::snapshot`] /
//! [`Store::execute`] calls proceed immediately); with no snapshot
//! alive it takes the zero-copy path instead — relations are moved, and
//! readers arriving mid-commit wait for it. Failure (e.g. an evaluation
//! timeout) is graceful on the copy path — the pre-commit snapshot
//! stays installed — but poisons the store on the zero-copy path
//! (subsequent access panics rather than serving half-updated derived
//! predicates).
//!
//! # Ontologies and deletion
//!
//! Ontology axioms ([`Store::add_ontology`]) are materialised at commit
//! time like the engine always did; additions re-derive incrementally
//! (materialisation is monotone). Deletions run through the DRed-style
//! maintainer ([`sparqlog_datalog::retract`]): the auxiliary predicates
//! *and* ontology entailments are retracted exactly when their last
//! asserted support disappears, in time proportional to the affected
//! fact set — after every commit the store is multiset-equal to loading
//! the surviving asserted triples fresh and re-materialising. To tell
//! assertions from entailments the store keeps an *asserted ledger*
//! (the explicitly written quads) from the first ontology-bearing
//! commit on: deletes apply to the ledger, and a triple that is both
//! asserted and entailed stays visible until its last support is gone.
//! One caveat remains: a store converted from a pre-materialised engine
//! ([`crate::SparqLog::into_store`]) counts the rows already entailed
//! at conversion time as asserted.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use sparqlog_datalog::fxhash::{FxHashMap, FxHashSet};
use sparqlog_datalog::{
    evaluate, retract, stage_deletion, Budget, ColumnBatch, Const, Database, EvalOptions, FrozenDb,
    MaintainError, Mask, Program, Relation, Rule, Sym, SymbolTable, TermId,
};
use sparqlog_rdf::{Dataset, Graph, Term};
use sparqlog_sparql::{
    parse_update, ClearTarget, GroundQuad, QuadPattern, TermPattern, Update, UpdateOperation,
};

use crate::data_translation::{base_program, default_graph_const, preds, term_to_const};
use crate::engine::SparqLogError;
use crate::ontology::Ontology;
use crate::query_translation::update_where_query;
use crate::serving::{FrozenDatabase, PreparedQuery};
use crate::solution::QueryResults;
use crate::subscribe::{prefilter, Registry, Subscription, DEFAULT_MAILBOX_CAPACITY};

const POISONED: &str = "store poisoned: a previous commit failed mid-materialisation";

/// Counters reported by a committed write session.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CommitStats {
    /// Triples actually added (staged duplicates of existing triples do
    /// not count).
    pub added: usize,
    /// Triples actually removed (staged removals of absent triples do
    /// not count).
    pub removed: usize,
}

impl CommitStats {
    fn absorb(&mut self, other: CommitStats) {
        self.added += other.added;
        self.removed += other.removed;
    }
}

struct StoreState {
    /// The serving snapshot. `None` only while a zero-copy commit holds
    /// the state lock (readers block, never observe it) — or permanently
    /// after such a commit failed ([`POISONED`]).
    frozen: Option<Arc<FrozenDatabase>>,
    /// Accumulated ontology rules, re-materialised on every commit.
    ontology: Program,
    /// The asserted ledger: the explicitly written quads, tracked
    /// separately from the (entailment-bearing) `triple` relation from
    /// the first ontology-carrying commit on. `None` while no ontology
    /// has ever been installed — `triple` *is* the asserted set then.
    /// Only touched under the commit lock.
    asserted: Option<Arc<Relation>>,
    /// Evaluation options for commits and for snapshots created after
    /// the next commit.
    options: EvalOptions,
}

/// A durable RDF store: one handle for loading, updating and querying.
///
/// All methods take `&self` — the store is `Send + Sync` and meant to be
/// shared (directly or behind an `Arc`) between writer and reader
/// threads. See the [module docs](self) for the lifecycle and
/// consistency model.
pub struct Store {
    state: RwLock<StoreState>,
    /// Serialises commits — and whole SPARQL Update requests, so a
    /// request's `WHERE` evaluation and its commit form one critical
    /// section (no lost updates between concurrent read-modify-write
    /// requests). Held around [`Store::apply_locked`]; never acquired
    /// by read paths.
    commit_lock: Mutex<()>,
    /// Uniquifies blank-node labels minted by `INSERT` templates and
    /// `INSERT DATA` blocks across update executions.
    bnode_epoch: AtomicUsize,
    /// Standing-query subscriptions, notified after each commit (see
    /// [`Store::subscribe`]). Shared with the [`Subscription`] handles
    /// so dropping one deregisters it without a store reference.
    subs: Arc<Registry>,
    /// Monotone commit counter stamped onto subscription deltas.
    /// Incremented per successful commit, under the commit lock.
    commit_seq: AtomicU64,
}

impl Default for Store {
    fn default() -> Self {
        Self::new()
    }
}

impl Store {
    /// Creates an empty store with default evaluation options.
    pub fn new() -> Self {
        Self::with_options(EvalOptions::default())
    }

    /// Creates an empty store with explicit evaluation options (timeout,
    /// thread count, ...).
    pub fn with_options(options: EvalOptions) -> Self {
        Self::from_parts(Database::new(), options, Program::new())
    }

    pub(crate) fn from_parts(db: Database, options: EvalOptions, ontology: Program) -> Self {
        let frozen = Arc::new(FrozenDatabase::new(db.freeze(), options.clone()));
        Store {
            state: RwLock::new(StoreState {
                frozen: Some(frozen),
                ontology,
                asserted: None,
                options,
            }),
            commit_lock: Mutex::new(()),
            bnode_epoch: AtomicUsize::new(0),
            subs: Arc::new(Registry::default()),
            commit_seq: AtomicU64::new(0),
        }
    }

    fn current(&self) -> Arc<FrozenDatabase> {
        self.state
            .read()
            .unwrap()
            .frozen
            .as_ref()
            .expect(POISONED)
            .clone()
    }

    /// The current read view: an `Arc`-shared, index-complete snapshot.
    ///
    /// Snapshots are immutable and version-stable — later commits do not
    /// affect them — and deref to [`FrozenDatabase`], so the whole
    /// concurrent query API (`execute`, `execute_batch`, the translation
    /// cache) is available on them.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            inner: self.current(),
        }
    }

    /// Opens a write session staging triple-level changes; nothing is
    /// visible to readers until [`Writer::commit`].
    pub fn writer(&self) -> Writer<'_> {
        Writer {
            store: self,
            adds: Vec::new(),
            removes: Vec::new(),
            clears: Vec::new(),
        }
    }

    /// Parses and executes a query against the current snapshot
    /// (convenience for [`Store::snapshot`] + `execute`; takes a fresh
    /// snapshot per call, so prefer holding a [`Snapshot`] when issuing
    /// many queries against one version).
    pub fn execute(&self, query: &str) -> Result<QueryResults, SparqLogError> {
        self.current().execute(query)
    }

    /// [`Store::execute`] under an explicit [`Budget`], which replaces
    /// the store's default budget for this execution only (see
    /// [`FrozenDatabase::execute_with_budget`]).
    pub fn execute_with_budget(
        &self,
        query: &str,
        budget: &Budget,
    ) -> Result<QueryResults, SparqLogError> {
        self.current().execute_with_budget(query, budget)
    }

    /// Executes a batch of queries against the current snapshot, fanned
    /// over the worker pool (see [`FrozenDatabase::execute_batch`]).
    pub fn execute_batch(&self, queries: &[&str]) -> Vec<Result<QueryResults, SparqLogError>> {
        self.current().execute_batch(queries)
    }

    /// [`Store::execute_batch`] under an explicit [`Budget`] — per-query
    /// limits plus batch-wide first-abort cancellation (see
    /// [`FrozenDatabase::execute_batch_with_budget`]).
    pub fn execute_batch_with_budget(
        &self,
        queries: &[&str],
        budget: &Budget,
    ) -> Vec<Result<QueryResults, SparqLogError>> {
        self.current().execute_batch_with_budget(queries, budget)
    }

    /// Parses and translates a query once, returning a reusable
    /// [`PreparedQuery`] handle. Translations are data-independent, so
    /// the handle stays valid across commits — execute it against any
    /// later [`Snapshot`] (or through
    /// [`FrozenDatabase::execute_prepared`] /
    /// [`FrozenDatabase::execute_prepared_batch`] on a snapshot).
    pub fn prepare(&self, query: &str) -> Result<PreparedQuery, SparqLogError> {
        self.current().prepare(query)
    }

    /// Registers a standing `SELECT` query: after every commit that
    /// changes its results, the returned [`Subscription`] receives a
    /// [`ResultDelta`](crate::ResultDelta) — the exact multiset
    /// difference against the previous results, stamped with the
    /// commit's monotone sequence number. The subscription's baseline
    /// ([`Subscription::initial`]) is the result set at registration
    /// time, taken atomically with the registration (no commit can fall
    /// between them). See [`crate::subscribe`] for the delivery
    /// contract (bounded mailbox, lagging policy, drop cleanup).
    pub fn subscribe(&self, query: &PreparedQuery) -> Result<Subscription, SparqLogError> {
        self.subscribe_with_capacity(query, DEFAULT_MAILBOX_CAPACITY)
    }

    /// [`Store::subscribe`] with an explicit mailbox bound (clamped to
    /// at least 1): the maximum number of undelivered deltas before the
    /// oldest are dropped and surfaced as
    /// [`SubscriptionEvent::Lagged`](crate::SubscriptionEvent::Lagged).
    pub fn subscribe_with_capacity(
        &self,
        query: &PreparedQuery,
        capacity: usize,
    ) -> Result<Subscription, SparqLogError> {
        if !query.query().is_select() {
            return Err(SparqLogError::Translation(
                crate::query_translation::TranslationError {
                    message: "subscriptions require a SELECT query".into(),
                    unsupported: false,
                    feature: None,
                },
            ));
        }
        // Hold the commit lock across baseline + registration so no
        // commit can land between them (a commit would then be neither
        // in the baseline nor delivered as a delta).
        let _serial = self.commit_lock.lock().unwrap();
        let snapshot = self.current();
        let result = snapshot.execute_prepared(query)?;
        let baseline = result
            .solutions()
            .expect("SELECT queries yield solutions")
            .clone();
        let preds = prefilter(query, &snapshot);
        let (id, mailbox) = self
            .subs
            .register(query.clone(), baseline.clone(), preds, capacity);
        Ok(Subscription {
            registry: self.subs.clone(),
            mailbox,
            id,
            initial: baseline,
        })
    }

    /// Number of live subscriptions (closed handles are pruned at the
    /// next commit).
    pub fn subscription_count(&self) -> usize {
        self.subs.len()
    }

    /// Parses and executes a SPARQL 1.1 Update request. Operations apply
    /// in order, each seeing the effects of the previous one; the
    /// returned stats aggregate over all of them.
    pub fn update(&self, text: &str) -> Result<CommitStats, SparqLogError> {
        let update = parse_update(text)?;
        self.apply_update(&update)
    }

    /// Executes an already-parsed update request (see [`Store::update`]).
    ///
    /// The whole request runs under the store's commit lock: concurrent
    /// update requests serialise end to end, so a read-modify-write
    /// request (`DELETE/INSERT ... WHERE`) never computes its bindings
    /// from a state another writer is about to replace.
    pub fn apply_update(&self, update: &Update) -> Result<CommitStats, SparqLogError> {
        let _serial = self.commit_lock.lock().unwrap();
        let mut total = CommitStats::default();
        for op in &update.operations {
            let stats = match op {
                UpdateOperation::InsertData(quads) => {
                    // SPARQL 1.1 Update §3.1.1: blank nodes in INSERT
                    // DATA denote *fresh* nodes per request execution —
                    // relabel with a per-execution epoch so re-running
                    // the request mints new nodes instead of silently
                    // merging with equally-labelled existing ones.
                    // (Labels stay shared *within* one request. The '!'
                    // separator cannot occur in any parsed blank-node
                    // label, so a freshened label can never collide
                    // with a loaded one.)
                    let epoch = self.bnode_epoch.fetch_add(1, Ordering::Relaxed);
                    let freshen = |t: &Term| match t {
                        Term::BlankNode(label) => Term::bnode(format!("{label}!u{epoch}")),
                        other => other.clone(),
                    };
                    let adds: Vec<GroundQuad> = quads
                        .iter()
                        .map(|q| GroundQuad {
                            subject: freshen(&q.subject),
                            predicate: q.predicate.clone(),
                            object: freshen(&q.object),
                            graph: q.graph.clone(),
                        })
                        .collect();
                    self.apply_locked(&adds, &[], &[])?
                }
                UpdateOperation::DeleteData(quads) => self.apply_locked(&[], quads, &[])?,
                UpdateOperation::Clear(target) => {
                    self.apply_locked(&[], &[], std::slice::from_ref(target))?
                }
                UpdateOperation::DeleteInsert {
                    delete,
                    insert,
                    pattern,
                } => self.delete_insert_where(delete, insert, pattern.clone())?,
            };
            total.absorb(stats);
        }
        Ok(total)
    }

    /// The pattern-driven update family: run the `WHERE` clause through
    /// the ordinary query pipeline on the current snapshot, then feed
    /// every solution into the delete/insert templates. Deletes apply
    /// before inserts, both computed against the pre-operation state
    /// (SPARQL 1.1 Update §3.1.3). Caller holds the commit lock.
    fn delete_insert_where(
        &self,
        delete: &[QuadPattern],
        insert: &[QuadPattern],
        pattern: sparqlog_sparql::GraphPattern,
    ) -> Result<CommitStats, SparqLogError> {
        let query = update_where_query(pattern);
        let result = self.snapshot().execute_query(&query)?;
        let Some(solutions) = result.solutions() else {
            return Ok(CommitStats::default());
        };
        let epoch = self.bnode_epoch.fetch_add(1, Ordering::Relaxed);
        let mut adds = Vec::new();
        let mut removes = Vec::new();
        for (row, sol) in solutions.iter().enumerate() {
            for template in delete {
                // Parser guarantees no bnodes in delete templates, so
                // `fresh = None` never drops a quad for that reason.
                if let Some(q) = instantiate(template, &sol, None) {
                    removes.push(q);
                }
            }
            for template in insert {
                // '!' cannot occur in a parsed blank-node label, so the
                // minted label is collision-free (see InsertData above).
                let fresh = Some(format!("!u{epoch}r{row}"));
                if let Some(q) = instantiate(template, &sol, fresh.as_deref()) {
                    adds.push(q);
                }
            }
        }
        self.apply_locked(&adds, &removes, &[])
    }

    /// Stages and commits a Turtle document into the default graph.
    pub fn load_turtle(&self, src: &str) -> Result<CommitStats, SparqLogError> {
        let mut w = self.writer();
        w.add_turtle(src)?;
        w.commit()
    }

    /// Stages and commits an N-Triples document into the default graph.
    pub fn load_ntriples(&self, src: &str) -> Result<CommitStats, SparqLogError> {
        let mut w = self.writer();
        w.add_ntriples(src)?;
        w.commit()
    }

    /// Stages and commits a graph into the default graph.
    pub fn load_graph(&self, g: &Graph) -> Result<CommitStats, SparqLogError> {
        let mut w = self.writer();
        w.add_graph(g);
        w.commit()
    }

    /// Stages and commits a dataset (default and named graphs).
    pub fn load_dataset(&self, ds: &Dataset) -> Result<CommitStats, SparqLogError> {
        let mut w = self.writer();
        w.add_dataset(ds);
        w.commit()
    }

    /// Adds ontology axioms and re-materialises; queries against
    /// snapshots taken afterwards see the entailed triples.
    pub fn add_ontology(&self, onto: &Ontology) -> Result<CommitStats, SparqLogError> {
        let _serial = self.commit_lock.lock().unwrap();
        {
            let mut state = self.state.write().unwrap();
            let symbols = state.frozen.as_ref().expect(POISONED).symbols().clone();
            let prog = onto.to_program(&symbols);
            state.ontology.rules.extend(prog.rules);
        }
        self.apply_locked(&[], &[], &[])
    }

    /// Total number of facts (triples plus auxiliary and derived
    /// predicates) in the current snapshot.
    pub fn fact_count(&self) -> usize {
        self.current().database().fact_count()
    }

    /// The store's symbol table (shared across all snapshots).
    pub fn symbols(&self) -> Arc<SymbolTable> {
        self.current().symbols().clone()
    }

    /// The evaluation options commits run with.
    pub fn options(&self) -> EvalOptions {
        self.state.read().unwrap().options.clone()
    }

    /// Sets the worker-thread count for subsequent commits and
    /// snapshots (the current snapshot is re-wrapped; the translation
    /// cache is store-lifetime and carries over). See
    /// [`SparqLog::set_threads`](crate::SparqLog::set_threads).
    pub fn set_threads(&self, threads: Option<usize>) {
        let mut options = self.options();
        options.threads = threads;
        self.set_options(options);
    }

    /// Sets the default [`Budget`] every subsequent query (and commit
    /// materialisation) runs under — the store-wide guard-rail policy.
    /// Per-call `*_with_budget` entry points override it; snapshots taken
    /// before this call keep the budget they were taken with. The budget
    /// is a *policy*: a relative timeout in it is re-armed per query, not
    /// counted from this call.
    pub fn set_default_budget(&self, budget: Budget) {
        let mut options = self.options();
        options.budget = budget;
        self.set_options(options);
    }

    /// Replaces the evaluation options for subsequent commits, queries
    /// and snapshots — thread count, the cost-based planner and
    /// magic-sets toggles, timeouts and depth limits. The current
    /// snapshot is re-wrapped around the new options; the translation
    /// cache (and its cached plans) is store-lifetime and carries over.
    pub fn set_options(&self, options: EvalOptions) {
        let mut state = self.state.write().unwrap();
        state.options = options;
        let current = state.frozen.as_ref().expect(POISONED);
        let (base, cache) = (current.database().clone(), current.cache_handle());
        state.frozen = Some(Arc::new(FrozenDatabase::with_cache(
            base,
            state.options.clone(),
            cache,
        )));
    }

    /// [`Store::apply_locked`] behind the commit lock — the entry point
    /// for write sessions and bulk loads.
    fn apply(
        &self,
        adds: &[GroundQuad],
        removes: &[GroundQuad],
        clears: &[ClearTarget],
    ) -> Result<CommitStats, SparqLogError> {
        let _serial = self.commit_lock.lock().unwrap();
        self.apply_locked(adds, removes, clears)
    }

    /// Applies a staged delta: thaw the current snapshot, mutate,
    /// re-materialise the auxiliary predicates, re-freeze incrementally.
    /// Caller holds the commit lock (which serialises writers); the
    /// state lock is only held across the heavy phase on the zero-copy
    /// path (see below).
    fn apply_locked(
        &self,
        adds: &[GroundQuad],
        removes: &[GroundQuad],
        clears: &[ClearTarget],
    ) -> Result<CommitStats, SparqLogError> {
        let commit_start = Instant::now();
        let mut state = self.state.write().unwrap();
        let options = state.options.clone();
        let ontology_rules: Vec<Rule> = state.ontology.rules.clone();
        let current = state.frozen.take().expect(POISONED);

        // Reclaim the snapshot. When no snapshot handle is alive the
        // wrapper and then the FrozenDb unwrap uniquely and the
        // relations are *moved* into the mutable database, indexes and
        // all — zero copy, but the state lock stays held for the whole
        // commit (readers arriving mid-commit block; none existed at
        // commit start). When live snapshots force the copy path, the
        // old snapshot is put straight back and the state lock released:
        // readers keep being served the pre-commit version while the
        // commit works on the copy, and a failed commit leaves the store
        // untouched instead of poisoned.
        let (base, cache, asserted, held_state) = match Arc::try_unwrap(current) {
            Ok(fd) => {
                let (base, _options, cache) = fd.into_base();
                let asserted = state.asserted.take();
                (base, cache, asserted, Some(state))
            }
            Err(shared) => {
                let base = shared.database().clone();
                let cache = shared.cache_handle();
                let asserted = state.asserted.clone();
                state.frozen = Some(shared);
                drop(state);
                (base, cache, asserted, None)
            }
        };
        // The asserted ledger follows the same two paths: moved out on
        // the zero-copy path, cloned alongside the database on the copy
        // path (a failed copy-path commit leaves the installed ledger
        // untouched).
        let mut asserted: Option<Relation> =
            asserted.map(|a| Arc::try_unwrap(a).unwrap_or_else(|shared| shared.clone_for_write()));
        // Carry the outgoing snapshot's statistics (if any query
        // collected them) across the commit: the re-frozen snapshot
        // re-scans only the relations whose row counts changed.
        let prev_stats = base.stats_if_ready();
        let mut db = FrozenDb::thaw(base);
        let symbols = db.symbols().clone();
        let dict = db.dict().clone();

        let triple_p = symbols.intern(preds::TRIPLE);
        let iri_p = symbols.intern(preds::IRI);
        let literal_p = symbols.intern(preds::LITERAL);
        let bnode_p = symbols.intern(preds::BNODE);
        let named_p = symbols.intern(preds::NAMED);
        let term_p = symbols.intern(preds::TERM);
        let comp_p = symbols.intern(preds::COMP);
        let soo_p = symbols.intern(preds::SUBJECT_OR_OBJECT);
        let null_p = symbols.intern(preds::NULL);

        let default_graph = dict.encode(&default_graph_const(&symbols));
        let graph_const = |g: &Option<Arc<str>>| match g {
            None => default_graph_const(&symbols),
            Some(name) => Const::Iri(symbols.intern(name)),
        };
        let encode_quad = |q: &GroundQuad| -> [TermId; 4] {
            [
                dict.encode(&term_to_const(&q.subject, &symbols)),
                dict.encode(&term_to_const(&q.predicate, &symbols)),
                dict.encode(&term_to_const(&q.object, &symbols)),
                dict.encode(&graph_const(&q.graph)),
            ]
        };

        let mut stats = CommitStats::default();

        let mut program = base_program(&symbols);
        let has_ontology = !ontology_rules.is_empty();
        program.rules.extend(ontology_rules);

        // Start the asserted ledger at the first ontology-bearing
        // commit: from here on `triple` also carries entailed rows, so
        // the assertions need their own record for deletes to maintain
        // against. (At this point `triple` still holds assertions only —
        // except for a store converted from a pre-materialised engine,
        // whose already-entailed rows become part of the baseline; see
        // the module docs.)
        if has_ontology && asserted.is_none() {
            asserted = Some(match db.relation(triple_p) {
                Some(rel) => rel.clone_for_write(),
                None => Relation::new(),
            });
        }

        // ------------------------------------------------ removals
        // Collect the asserted rows a staged removal actually hits: a
        // DELETE DATA of absent quads or a CLEAR of an empty graph
        // leaves this empty and is routed to the (much cheaper)
        // pure-addition path. Under an ontology the ledger — not the
        // entailment-bearing `triple` relation — is the removal target,
        // so deleting a merely-entailed triple is a no-op.
        let mut removed_rows: Vec<[TermId; 4]> = Vec::new();
        if (!removes.is_empty() || !clears.is_empty()) && db.relation(triple_p).is_some() {
            let remove_rows: HashSet<[TermId; 4]> = removes.iter().map(encode_quad).collect();
            let mut clear_default = false;
            let mut clear_named = false;
            let mut clear_graphs: HashSet<TermId> = HashSet::new();
            for c in clears {
                match c {
                    ClearTarget::Default => clear_default = true,
                    ClearTarget::Named => clear_named = true,
                    ClearTarget::All => {
                        clear_default = true;
                        clear_named = true;
                    }
                    ClearTarget::Graph(g) => {
                        clear_graphs.insert(dict.encode(&Const::Iri(symbols.intern(g))));
                    }
                }
            }
            let view: &Relation = match asserted.as_ref() {
                Some(ledger) => ledger,
                None => db.relation(triple_p).expect("checked above"),
            };
            // Probe the graph-column index for clear targets first: only
            // a CLEAR that hits anything pays the scan below.
            let default_rows = || view.lookup(0b1000, &[default_graph]).len();
            let clears_hit = (clear_default && default_rows() > 0)
                || (clear_named && default_rows() < view.len())
                || clear_graphs
                    .iter()
                    .any(|g| !view.lookup(0b1000, &[*g]).is_empty());
            if clears_hit {
                for row in view.iter() {
                    let row4: [TermId; 4] = row.try_into().expect("triple/4 rows are quads");
                    let g = row4[3];
                    let cleared = (clear_default && g == default_graph)
                        || (clear_named && g != default_graph)
                        || clear_graphs.contains(&g);
                    if cleared || remove_rows.contains(&row4) {
                        removed_rows.push(row4);
                    }
                }
            } else {
                removed_rows.extend(remove_rows.iter().filter(|r| view.contains(*r)));
            }
        }
        let has_removals = !removed_rows.is_empty();
        stats.removed = removed_rows.len();

        // Subscription prefilter bookkeeping: the predicate ids of every
        // `triple` row this commit adds or (net) removes. Stays `exact`
        // only on the paths that never run a full fixpoint — whenever
        // `evaluate` is involved the entailed consequences are unknown
        // and every subscriber is re-checked.
        let mut changed_preds: FxHashSet<TermId> = FxHashSet::default();
        let mut exact_delta = true;

        // `true` once the DRed maintainer has brought every derived
        // predicate (and the entailed triples) up to date for the
        // removals; `false` routes to the full re-derivation fallback.
        let mut maintained = false;
        if has_removals {
            let removed_set: FxHashSet<[TermId; 4]> = removed_rows.iter().copied().collect();
            let removed_vecs: FxHashSet<Vec<TermId>> =
                removed_rows.iter().map(|r| r.to_vec()).collect();
            // Drop the assertions from the ledger first: the external-
            // support probe below must see the *post*-deletion asserted
            // set, so a deleted assertion no longer supports itself.
            // Targeted removal — the ledger never pays a full rebuild.
            if let Some(ledger) = asserted.as_mut() {
                ledger.remove_rows(&removed_vecs);
            }

            // Stage the deletion seeds: the removed quads themselves,
            // plus the load-time class and named-graph facts of terms
            // whose last asserted occurrence just disappeared (class
            // facts come from asserted data only, so survival is probed
            // against the asserted view — O(occurrences), not O(store)).
            let mut deleted: FxHashMap<Sym, ColumnBatch> = FxHashMap::default();
            for row in &removed_rows {
                stage_deletion(&mut deleted, triple_p, row);
            }
            let mut term_cands: FxHashSet<TermId> = FxHashSet::default();
            let mut graph_cands: FxHashSet<TermId> = FxHashSet::default();
            for row in &removed_rows {
                term_cands.extend(row[..3].iter().copied());
                if row[3] != default_graph {
                    graph_cands.insert(row[3]);
                }
            }
            {
                // Post-removal asserted view: the retained ledger, or —
                // without an ontology — the still-uncompacted `triple`
                // relation minus the removed set.
                let view: &Relation = match asserted.as_ref() {
                    Some(ledger) => ledger,
                    None => db.relation(triple_p).expect("seeds exist"),
                };
                let survives = |mask: Mask, key: &[TermId]| {
                    view.lookup(mask, key).iter().any(|&i| {
                        let row4: [TermId; 4] =
                            view.row(i).try_into().expect("triple/4 rows are quads");
                        !removed_set.contains(&row4)
                    })
                };
                for &t in &term_cands {
                    if [0b0001, 0b0010, 0b0100].iter().any(|&m| survives(m, &[t])) {
                        continue;
                    }
                    for class in [iri_p, literal_p, bnode_p] {
                        if db.relation(class).is_some_and(|r| r.contains(&[t])) {
                            stage_deletion(&mut deleted, class, &[t]);
                            break;
                        }
                    }
                }
                for &g in &graph_cands {
                    if !survives(0b1000, &[g])
                        && db.relation(named_p).is_some_and(|r| r.contains(&[g]))
                    {
                        stage_deletion(&mut deleted, named_p, &[g]);
                    }
                }
            }

            // Delete/re-derive. A triple row keeps external support
            // while it remains in the asserted ledger (it may *also* be
            // entailed); everything else lives and dies by the rules.
            let empty = Relation::new();
            let (track, ledger): (bool, &Relation) = match asserted.as_ref() {
                Some(ledger) => (true, ledger),
                None => (false, &empty),
            };
            let support =
                |pred: Sym, row: &[TermId]| track && pred == triple_p && ledger.contains(row);
            match retract(&program, &mut db, &deleted, &support) {
                Ok(retraction) => {
                    maintained = true;
                    if let Some(rows) = retraction.removed.get(&triple_p) {
                        changed_preds.extend(rows.iter().map(|r| r[1]));
                    }
                }
                Err(MaintainError::Unsupported(_)) => {
                    exact_delta = false;
                    // The program has a shape the maintainer does not
                    // handle: fall back to rebuilding `triple` from the
                    // assertions and re-deriving everything below.
                    match asserted.as_ref() {
                        Some(ledger) => {
                            adopt(&mut db, triple_p, ledger.clone_for_write());
                        }
                        None => {
                            db.relation_mut(triple_p).remove_rows(&removed_vecs);
                        }
                    }
                    // Refilter the load-time class and named-graph facts
                    // against the surviving assertions (membership in
                    // the old class relation is the classifier, so a
                    // term without a class fact can never gain one).
                    let mut new_iri = Relation::new();
                    let mut new_literal = Relation::new();
                    let mut new_bnode = Relation::new();
                    let mut new_named = Relation::new();
                    if let Some(rel) = db.relation(triple_p) {
                        let old_iri = db.relation(iri_p);
                        let old_bnode = db.relation(bnode_p);
                        let old_literal = db.relation(literal_p);
                        let in_class =
                            |r: Option<&Relation>, id: TermId| r.is_some_and(|r| r.contains(&[id]));
                        for row in rel.iter() {
                            for &id in &row[..3] {
                                if in_class(old_iri, id) {
                                    new_iri.insert(&[id]);
                                } else if in_class(old_bnode, id) {
                                    new_bnode.insert(&[id]);
                                } else if in_class(old_literal, id) {
                                    new_literal.insert(&[id]);
                                }
                            }
                            if row[3] != default_graph {
                                new_named.insert(&[row[3]]);
                            }
                        }
                    }
                    for (pred, fresh) in [
                        (iri_p, new_iri),
                        (literal_p, new_literal),
                        (bnode_p, new_bnode),
                        (named_p, new_named),
                    ] {
                        adopt(&mut db, pred, fresh);
                    }
                }
            }
        }

        // ------------------------------------------------ additions
        // Track freshly appearing terms for the fast auxiliary path.
        // Under an ontology, "fresh" means new to the *ledger*: a triple
        // that was only entailed so far becomes asserted (and its terms
        // gain class facts), even though it is already visible.
        let mut fresh_terms: Vec<(TermId, Sym)> = Vec::new();
        let mut fresh_triples: Vec<[TermId; 4]> = Vec::new();
        for q in adds {
            let row = encode_quad(q);
            let fresh = match asserted.as_mut() {
                Some(ledger) => {
                    let fresh = ledger.insert(&row);
                    db.relation_mut(triple_p).insert(&row);
                    fresh
                }
                None => db.relation_mut(triple_p).insert(&row),
            };
            if !fresh {
                continue;
            }
            stats.added += 1;
            fresh_triples.push(row);
            for (term, id) in [
                (&q.subject, row[0]),
                (&q.predicate, row[1]),
                (&q.object, row[2]),
            ] {
                let class = match term {
                    Term::Iri(_) => iri_p,
                    Term::BlankNode(_) => bnode_p,
                    Term::Literal(_) => literal_p,
                };
                if db.relation_mut(class).insert(&[id]) {
                    fresh_terms.push((id, class));
                }
            }
            if q.graph.is_some() {
                db.relation_mut(named_p).insert(&[row[3]]);
            }
        }

        for row in &fresh_triples {
            changed_preds.insert(row[1]);
        }

        // ------------------------------------ auxiliary predicates
        let evaluated = if has_removals && !maintained {
            // Fallback exact re-derivation: take the derived relations
            // out, re-run the rules from the surviving facts, and swap
            // the old relation back in wherever the content is unchanged
            // so its indexes survive.
            let mut derived: Vec<Sym> = program
                .rules
                .iter()
                .map(|r| r.head.pred)
                .chain(program.facts.iter().map(|(p, _)| *p))
                .filter(|&p| p != triple_p)
                .collect();
            derived.sort_unstable();
            derived.dedup();
            let olds: Vec<(Sym, Relation)> = derived
                .iter()
                .filter_map(|&p| db.take_relation(p).map(|r| (p, r)))
                .collect();
            let result = evaluate(&program, &mut db, &options);
            for (pred, old) in olds {
                if db.relation(pred).is_some_and(|new| old.content_eq(new)) {
                    db.set_relation(pred, old);
                }
            }
            result
        } else if !has_ontology {
            // Additions without ontology rules (removals, if any, are
            // already maintained): the auxiliary rules are non-recursive
            // over their sources, so their consequences are computed
            // directly from the delta — O(|delta|), no fixpoint pass
            // over the full store.
            let null_id = dict.encode(&Const::Null);
            db.relation_mut(null_p).insert(&[null_id]);
            db.relation_mut(comp_p).insert(&[null_id, null_id, null_id]);
            for &(id, _class) in &fresh_terms {
                if db.relation_mut(term_p).insert(&[id]) {
                    let comp = db.relation_mut(comp_p);
                    comp.insert(&[id, id, id]);
                    comp.insert(&[id, null_id, id]);
                    comp.insert(&[null_id, id, id]);
                }
            }
            for row in &fresh_triples {
                let soo = db.relation_mut(soo_p);
                soo.insert(&[row[0], row[3]]);
                soo.insert(&[row[2], row[3]]);
            }
            Ok(Default::default())
        } else if maintained && adds.is_empty() {
            // Maintained removals with nothing added: the DRed pass left
            // the store exactly fresh-reload-equivalent — no fixpoint.
            Ok(Default::default())
        } else {
            // Additions with ontology rules (or a fresh ontology
            // install): materialisation is monotone, so re-running it
            // only adds the new consequences (existing rows dedup away,
            // indexes stay maintained).
            exact_delta = false;
            evaluate(&program, &mut db, &options)
        };
        if let Err(e) = evaluated {
            // Derived predicates may be half-updated: drop the mutated
            // copy. On the copy path the pre-commit snapshot is still
            // installed and the store keeps serving it; on the zero-copy
            // path there is nothing to fall back to — the store is
            // poisoned (`frozen` stays `None`).
            return Err(e.into());
        }

        // ------------------------------------------------ re-freeze
        // Freezing is profile-guided: besides promoting the indexes the
        // snapshot already carries (eager on untouched relations, lazily
        // probed ones on the rest), the masks named by the plans of
        // currently cached queries are built eagerly, so hot query
        // shapes never fall back to lazy index construction after a
        // commit. The translation cache is threaded through:
        // translations (and their cached plans, until statistics drift)
        // are data-independent, so hot query shapes stay warm.
        let needs = cache.live_index_needs();
        let snapshot = db.freeze_with_needs(&needs);
        if let Some(prev) = &prev_stats {
            snapshot.warm_stats_from(prev);
        }
        let new_frozen = Arc::new(FrozenDatabase::with_cache(snapshot, options, cache));
        let notify_snapshot = new_frozen.clone();
        let new_asserted = asserted.map(Arc::new);
        match held_state {
            Some(mut state) => {
                state.frozen = Some(new_frozen);
                state.asserted = new_asserted;
            }
            None => {
                let mut state = self.state.write().unwrap();
                state.frozen = Some(new_frozen);
                state.asserted = new_asserted;
            }
        }

        // ------------------------------------------- subscriptions
        // The snapshot is installed; fan the commit out to standing
        // queries (still under the commit lock, so deltas are stamped
        // and delivered in commit order). A provably empty delta —
        // exact bookkeeping, no triple or ledger change — skips the
        // whole pass.
        let commit_seq = self.commit_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let provably_empty =
            exact_delta && changed_preds.is_empty() && stats.added == 0 && stats.removed == 0;
        if !provably_empty {
            self.subs.notify(
                &notify_snapshot,
                exact_delta.then_some(&changed_preds),
                commit_seq,
            );
        }

        let m = notify_snapshot.core_metrics();
        if m.registry.armed() {
            m.commits.inc();
            m.commit_duration_us
                .observe(commit_start.elapsed().as_micros() as u64);
            m.rows_added.add(stats.added as u64);
            m.rows_removed.add(stats.removed as u64);
            if has_removals {
                if maintained {
                    m.removals_maintained.inc();
                } else {
                    m.removals_fallback.inc();
                }
            }
            m.snapshot_refreshes.inc();
        }
        Ok(stats)
    }

    /// The store's metrics registry: one per store, shared by every
    /// snapshot and surviving commits (it travels with the translation
    /// cache). Covers evaluation, planning, store commit, and
    /// subscription families; the HTTP layer registers its request
    /// families into the same registry, and `GET /metrics` renders it
    /// in the Prometheus text exposition format.
    pub fn metrics(&self) -> Arc<sparqlog_obs::MetricsRegistry> {
        self.current().metrics().clone()
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("facts", &self.fact_count())
            .finish()
    }
}

/// Replaces `pred`'s relation with `fresh` — unless the old relation has
/// identical content, in which case it is kept so its already-built
/// indexes are reused by the re-freeze.
fn adopt(db: &mut Database, pred: Sym, fresh: Relation) {
    match db.take_relation(pred) {
        Some(old) if old.content_eq(&fresh) => db.set_relation(pred, old),
        _ if fresh.is_empty() => {}
        _ => db.set_relation(pred, fresh),
    }
}

/// Instantiates a quad template under one solution. `fresh` is the
/// blank-node freshening suffix for INSERT templates (`None` in DELETE
/// templates, where the parser already rejected blank nodes). Returns
/// `None` — dropping the quad, per SPARQL 1.1 Update §3.1.3 — when a
/// template variable is unbound or the instantiation is not a valid RDF
/// triple.
fn instantiate(
    template: &QuadPattern,
    sol: &crate::solution::Solution<'_>,
    fresh: Option<&str>,
) -> Option<GroundQuad> {
    let resolve = |tp: &TermPattern| -> Option<Term> {
        match tp {
            TermPattern::Term(Term::BlankNode(label)) => {
                fresh.map(|suffix| Term::bnode(format!("{label}{suffix}")))
            }
            TermPattern::Term(t) => Some(t.clone()),
            TermPattern::Var(v) => sol.get(v.name()).cloned(),
        }
    };
    let subject = resolve(&template.subject)?;
    let predicate = resolve(&template.predicate)?;
    let object = resolve(&template.object)?;
    if subject.is_literal() || !predicate.is_iri() {
        return None;
    }
    Some(GroundQuad {
        subject,
        predicate,
        object,
        graph: template.graph.clone(),
    })
}

/// An immutable, version-stable read view of a [`Store`].
///
/// Cloning is one atomic refcount. Derefs to [`FrozenDatabase`], so the
/// whole concurrent query API is available: [`FrozenDatabase::execute`],
/// [`FrozenDatabase::execute_batch`], the translation cache. Passing a
/// SPARQL *Update* string to `execute` returns
/// [`SparqLogError::ReadOnly`] — route writes through the owning store.
#[derive(Clone, Debug)]
pub struct Snapshot {
    inner: Arc<FrozenDatabase>,
}

impl Snapshot {
    /// The underlying serving wrapper (also reachable via deref).
    pub fn frozen(&self) -> &FrozenDatabase {
        &self.inner
    }

    /// The underlying frozen Datalog snapshot.
    pub fn database(&self) -> &Arc<FrozenDb> {
        self.inner.database()
    }

    /// Total number of facts in this snapshot.
    pub fn fact_count(&self) -> usize {
        self.inner.database().fact_count()
    }
}

impl std::ops::Deref for Snapshot {
    type Target = FrozenDatabase;

    fn deref(&self) -> &FrozenDatabase {
        &self.inner
    }
}

/// A write session on a [`Store`]: stages triple additions, removals
/// and graph clears, applied atomically by [`Writer::commit`].
///
/// Staged changes are invisible to every reader (and to queries issued
/// through the same store) until the commit installs the new snapshot.
/// Dropping the writer without committing discards the staged changes.
#[derive(Debug)]
pub struct Writer<'a> {
    store: &'a Store,
    adds: Vec<GroundQuad>,
    removes: Vec<GroundQuad>,
    clears: Vec<ClearTarget>,
}

impl Writer<'_> {
    /// Stages a triple addition into the default graph.
    pub fn insert(&mut self, subject: Term, predicate: Term, object: Term) {
        self.insert_quad(GroundQuad {
            subject,
            predicate,
            object,
            graph: None,
        });
    }

    /// Stages a triple addition into the named graph `graph`.
    pub fn insert_in(&mut self, graph: &str, subject: Term, predicate: Term, object: Term) {
        self.insert_quad(GroundQuad {
            subject,
            predicate,
            object,
            graph: Some(Arc::from(graph)),
        });
    }

    /// Stages a quad addition.
    pub fn insert_quad(&mut self, quad: GroundQuad) {
        self.adds.push(quad);
    }

    /// Stages a triple removal from the default graph.
    pub fn remove(&mut self, subject: Term, predicate: Term, object: Term) {
        self.remove_quad(GroundQuad {
            subject,
            predicate,
            object,
            graph: None,
        });
    }

    /// Stages a triple removal from the named graph `graph`.
    pub fn remove_in(&mut self, graph: &str, subject: Term, predicate: Term, object: Term) {
        self.remove_quad(GroundQuad {
            subject,
            predicate,
            object,
            graph: Some(Arc::from(graph)),
        });
    }

    /// Stages a quad removal.
    pub fn remove_quad(&mut self, quad: GroundQuad) {
        self.removes.push(quad);
    }

    /// Stages a graph clear.
    pub fn clear(&mut self, target: ClearTarget) {
        self.clears.push(target);
    }

    /// Stages every triple of a graph into the default graph.
    pub fn add_graph(&mut self, g: &Graph) {
        for (s, p, o) in g.iter() {
            self.insert(s.clone(), p.clone(), o.clone());
        }
    }

    /// Stages a whole dataset (default and named graphs).
    pub fn add_dataset(&mut self, ds: &Dataset) {
        self.add_graph(ds.default_graph());
        for (name, graph) in ds.named_graphs() {
            for (s, p, o) in graph.iter() {
                self.insert_in(name, s.clone(), p.clone(), o.clone());
            }
        }
    }

    /// Parses a Turtle document and stages its triples into the default
    /// graph.
    pub fn add_turtle(&mut self, src: &str) -> Result<(), SparqLogError> {
        let g = sparqlog_rdf::turtle::parse(src).map_err(|e| SparqLogError::Data(e.to_string()))?;
        self.add_graph(&g);
        Ok(())
    }

    /// Parses an N-Triples document and stages its triples into the
    /// default graph.
    pub fn add_ntriples(&mut self, src: &str) -> Result<(), SparqLogError> {
        let g =
            sparqlog_rdf::ntriples::parse(src).map_err(|e| SparqLogError::Data(e.to_string()))?;
        self.add_graph(&g);
        Ok(())
    }

    /// Number of staged additions and removals (clears count as one
    /// removal each until committed).
    pub fn staged(&self) -> usize {
        self.adds.len() + self.removes.len() + self.clears.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.staged() == 0
    }

    /// Applies the staged changes atomically and installs the new
    /// snapshot. Removals apply before additions (so a quad staged for
    /// both ends up present). Returns the number of triples actually
    /// added and removed.
    pub fn commit(self) -> Result<CommitStats, SparqLogError> {
        self.store.apply(&self.adds, &self.removes, &self.clears)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subscribe::SubscriptionEvent;
    use sparqlog_sparql::parse_query;

    const EX: &str = "http://ex.org/";

    fn iri(l: &str) -> Term {
        Term::iri(format!("{EX}{l}"))
    }

    fn borders_store() -> Store {
        let store = Store::new();
        store
            .load_turtle(
                r#"@prefix ex: <http://ex.org/> .
                   ex:spain ex:borders ex:france .
                   ex:france ex:borders ex:belgium .
                   ex:belgium ex:borders ex:germany ."#,
            )
            .unwrap();
        store
    }

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn store_and_snapshot_are_send_sync() {
        assert_send_sync::<Store>();
        assert_send_sync::<Snapshot>();
    }

    #[test]
    fn writer_inserts_and_removes_triples() {
        let store = borders_store();
        let q = "PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ex:spain ex:borders+ ?b }";
        assert_eq!(store.execute(q).unwrap().len(), 3);

        let mut w = store.writer();
        w.insert(iri("germany"), iri("borders"), iri("austria"));
        w.remove(iri("belgium"), iri("borders"), iri("germany"));
        assert_eq!(w.staged(), 2);
        let stats = w.commit().unwrap();
        assert_eq!(
            stats,
            CommitStats {
                added: 1,
                removed: 1
            }
        );
        assert_eq!(store.execute(q).unwrap().len(), 2, "france, belgium");

        // Duplicate adds and absent removes are no-ops.
        let mut w = store.writer();
        w.insert(iri("germany"), iri("borders"), iri("austria"));
        w.remove(iri("belgium"), iri("borders"), iri("germany"));
        assert_eq!(
            w.commit().unwrap(),
            CommitStats {
                added: 0,
                removed: 0
            }
        );
    }

    #[test]
    fn snapshots_are_version_stable() {
        let store = borders_store();
        let q = "PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ?a ex:borders ?b }";
        let before = store.snapshot();
        assert_eq!(before.execute(q).unwrap().len(), 3);
        store.update("CLEAR DEFAULT").unwrap();
        assert_eq!(before.execute(q).unwrap().len(), 3, "old version intact");
        assert_eq!(store.snapshot().execute(q).unwrap().len(), 0);
    }

    #[test]
    fn insert_data_and_delete_data_roundtrip() {
        let store = Store::new();
        let stats = store
            .update(
                r#"PREFIX ex: <http://ex.org/>
                   INSERT DATA { ex:a ex:p ex:b . ex:a ex:p "lit"@en .
                                 GRAPH <http://g> { ex:a ex:p ex:c } }"#,
            )
            .unwrap();
        assert_eq!(
            stats,
            CommitStats {
                added: 3,
                removed: 0
            }
        );
        assert_eq!(
            store
                .execute("PREFIX ex: <http://ex.org/> SELECT ?o WHERE { ex:a ex:p ?o }")
                .unwrap()
                .len(),
            2,
            "default graph only"
        );
        assert_eq!(
            store
                .execute(
                    "PREFIX ex: <http://ex.org/>
                     SELECT ?o WHERE { GRAPH <http://g> { ex:a ex:p ?o } }"
                )
                .unwrap()
                .len(),
            1
        );
        let stats = store
            .update(r#"PREFIX ex: <http://ex.org/> DELETE DATA { ex:a ex:p "lit"@en }"#)
            .unwrap();
        assert_eq!(
            stats,
            CommitStats {
                added: 0,
                removed: 1
            }
        );
        assert_eq!(
            store
                .execute("PREFIX ex: <http://ex.org/> SELECT ?o WHERE { ex:a ex:p ?o }")
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn delete_insert_where_rewrites_bindings() {
        let store = borders_store();
        // Reverse every border relation.
        let stats = store
            .update(
                r#"PREFIX ex: <http://ex.org/>
                   DELETE { ?x ex:borders ?y }
                   INSERT { ?y ex:borders ?x }
                   WHERE { ?x ex:borders ?y }"#,
            )
            .unwrap();
        assert_eq!(
            stats,
            CommitStats {
                added: 3,
                removed: 3
            }
        );
        let r = store
            .execute("PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ex:germany ex:borders+ ?b }")
            .unwrap();
        assert_eq!(r.len(), 3, "chain now runs germany -> spain");
    }

    #[test]
    fn delete_where_shorthand_and_unbound_templates() {
        let store = borders_store();
        store
            .update("PREFIX ex: <http://ex.org/> DELETE WHERE { ex:spain ex:borders ?y }")
            .unwrap();
        assert_eq!(
            store
                .execute("PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ex:spain ex:borders ?b }")
                .unwrap()
                .len(),
            0
        );
        // A template var the WHERE clause never binds drops those quads.
        let stats = store
            .update(
                r#"PREFIX ex: <http://ex.org/>
                   INSERT { ?x ex:tagged ?missing }
                   WHERE { ?x ex:borders ?y }"#,
            )
            .unwrap();
        assert_eq!(
            stats,
            CommitStats {
                added: 0,
                removed: 0
            }
        );
    }

    #[test]
    fn insert_templates_mint_fresh_bnodes_per_solution() {
        let store = borders_store();
        store
            .update(
                r#"PREFIX ex: <http://ex.org/>
                   INSERT { ?x ex:note _:n } WHERE { ?x ex:borders ?y }"#,
            )
            .unwrap();
        let r = store
            .execute("PREFIX ex: <http://ex.org/> SELECT DISTINCT ?n WHERE { ?x ex:note ?n }")
            .unwrap();
        assert_eq!(r.len(), 3, "one fresh bnode per solution");
    }

    #[test]
    fn ontology_delete_does_not_leak_entailed_terms_into_class_facts() {
        // An ontology-entailed triple mentions ex:Person, which never
        // occurs in asserted data. A commit with an (unrelated) removal
        // refilters the class facts from all surviving triples —
        // including entailed ones — and must not invent iri(Person):
        // the class relations only ever shrink toward the asserted set.
        let store = Store::new();
        store
            .load_turtle(
                r#"@prefix ex: <http://ex.org/> .
                   @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
                   ex:alice rdf:type ex:Student .
                   ex:x ex:junk ex:y ."#,
            )
            .unwrap();
        store
            .add_ontology(&crate::Ontology::new().with(crate::Axiom::SubClassOf(
                "http://ex.org/Student".into(),
                "http://ex.org/Person".into(),
            )))
            .unwrap();
        // Entailment is materialised...
        assert_eq!(
            store
                .execute(
                    "PREFIX ex: <http://ex.org/>
                     ASK { ex:alice a ex:Person }"
                )
                .unwrap(),
            QueryResults::Boolean(true)
        );
        let iri_count = |store: &Store| {
            let snap = store.snapshot();
            let p = snap.symbols().get("iri").unwrap();
            snap.database().relation(p).unwrap().len()
        };
        let before = iri_count(&store);
        store
            .update("PREFIX ex: <http://ex.org/> DELETE DATA { ex:x ex:junk ex:y }")
            .unwrap();
        // ... but the delete must not add iri(Person) (or anything else).
        assert!(iri_count(&store) < before, "ex:x/junk/y class facts gone");
        let person = store.symbols().get("http://ex.org/Person").unwrap();
        let snap = store.snapshot();
        let iri_p = snap.symbols().get("iri").unwrap();
        let rel = snap.database().relation(iri_p).unwrap();
        let person_id = snap
            .database()
            .dict()
            .encode(&sparqlog_datalog::Const::Iri(person));
        assert!(
            !rel.contains(&[person_id]),
            "entailed-only term must not gain a class fact"
        );
    }

    #[test]
    fn ontology_entailments_are_retracted_on_delete() {
        // The PR 4 gap: deleting the premise of a materialised
        // entailment must retract the entailed triple — the store stays
        // equivalent to reloading the surviving assertions fresh.
        let ask = "PREFIX ex: <http://ex.org/> ASK { ex:alice a ex:Person }";
        let store = Store::new();
        store
            .load_turtle(
                r#"@prefix ex: <http://ex.org/> .
                   ex:alice a ex:Student .
                   ex:bob a ex:Student ."#,
            )
            .unwrap();
        store
            .add_ontology(&crate::Ontology::new().with(crate::Axiom::SubClassOf(
                "http://ex.org/Student".into(),
                "http://ex.org/Person".into(),
            )))
            .unwrap();
        assert_eq!(store.execute(ask).unwrap(), QueryResults::Boolean(true));

        store
            .update("PREFIX ex: <http://ex.org/> DELETE DATA { ex:alice a ex:Student }")
            .unwrap();
        assert_eq!(
            store.execute(ask).unwrap(),
            QueryResults::Boolean(false),
            "entailment retracted with its premise"
        );
        // The unrelated entailment survives...
        assert_eq!(
            store
                .execute("PREFIX ex: <http://ex.org/> ASK { ex:bob a ex:Person }")
                .unwrap(),
            QueryResults::Boolean(true)
        );
        // ... and matches a fresh reload of the surviving assertions.
        let fresh = Store::new();
        fresh
            .load_turtle(
                r#"@prefix ex: <http://ex.org/> .
                   ex:bob a ex:Student ."#,
            )
            .unwrap();
        fresh
            .add_ontology(&crate::Ontology::new().with(crate::Axiom::SubClassOf(
                "http://ex.org/Student".into(),
                "http://ex.org/Person".into(),
            )))
            .unwrap();
        assert_eq!(store.fact_count(), fresh.fact_count());

        // Re-asserting brings the entailment back.
        store
            .update("PREFIX ex: <http://ex.org/> INSERT DATA { ex:alice a ex:Student }")
            .unwrap();
        assert_eq!(store.execute(ask).unwrap(), QueryResults::Boolean(true));
    }

    #[test]
    fn deleting_a_merely_entailed_triple_is_a_noop() {
        // Only assertions can be deleted: a DELETE DATA naming a triple
        // that is entailed (but not asserted) removes nothing, and the
        // entailment stays visible — fresh-reload semantics.
        let store = Store::new();
        store
            .load_turtle(
                r#"@prefix ex: <http://ex.org/> .
                   ex:alice a ex:Student ."#,
            )
            .unwrap();
        store
            .add_ontology(&crate::Ontology::new().with(crate::Axiom::SubClassOf(
                "http://ex.org/Student".into(),
                "http://ex.org/Person".into(),
            )))
            .unwrap();
        let stats = store
            .update("PREFIX ex: <http://ex.org/> DELETE DATA { ex:alice a ex:Person }")
            .unwrap();
        assert_eq!(stats.removed, 0);
        assert_eq!(
            store
                .execute("PREFIX ex: <http://ex.org/> ASK { ex:alice a ex:Person }")
                .unwrap(),
            QueryResults::Boolean(true)
        );
    }

    #[test]
    fn subscriptions_deliver_exact_deltas_in_commit_order() {
        use crate::subscribe::SubscriptionEvent;

        let store = borders_store();
        let q = store
            .prepare("PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ?a ex:borders ?b }")
            .unwrap();
        let sub = store.subscribe(&q).unwrap();
        assert_eq!(sub.initial().len(), 3);
        assert_eq!(store.subscription_count(), 1);

        // An addition arrives as one added row.
        store
            .update("PREFIX ex: <http://ex.org/> INSERT DATA { ex:germany ex:borders ex:austria }")
            .unwrap();
        let Some(SubscriptionEvent::Delta(d1)) = sub.try_recv() else {
            panic!("expected a delta");
        };
        assert_eq!(d1.added.len(), 1);
        assert_eq!(d1.removed.len(), 0);

        // A commit on an unrelated predicate is prefiltered out.
        store
            .update("PREFIX ex: <http://ex.org/> INSERT DATA { ex:spain ex:capital ex:madrid }")
            .unwrap();
        assert_eq!(sub.try_recv(), None, "unrelated predicate, no delta");

        // A removal arrives as one removed row, with a later seq.
        store
            .update("PREFIX ex: <http://ex.org/> DELETE DATA { ex:spain ex:borders ex:france }")
            .unwrap();
        let Some(SubscriptionEvent::Delta(d2)) = sub.try_recv() else {
            panic!("expected a delta");
        };
        assert_eq!(d2.added.len(), 0);
        assert_eq!(d2.removed.len(), 1);
        assert!(d2.commit_seq > d1.commit_seq, "monotone commit numbers");
        assert_eq!(sub.try_recv(), None);

        // Dropping the handle deregisters it.
        drop(sub);
        store
            .update("PREFIX ex: <http://ex.org/> INSERT DATA { ex:a ex:borders ex:b }")
            .unwrap();
        assert_eq!(store.subscription_count(), 0);
    }

    #[test]
    fn lagging_subscribers_lose_oldest_deltas_and_learn_it() {
        use crate::subscribe::SubscriptionEvent;

        let store = borders_store();
        let q = store
            .prepare("PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ?a ex:borders ?b }")
            .unwrap();
        let sub = store.subscribe_with_capacity(&q, 1).unwrap();
        for i in 0..3 {
            store
                .update(&format!(
                    "PREFIX ex: <http://ex.org/> INSERT DATA {{ ex:n{i} ex:borders ex:m{i} }}"
                ))
                .unwrap();
        }
        assert_eq!(sub.try_recv(), Some(SubscriptionEvent::Lagged(2)));
        let Some(SubscriptionEvent::Delta(d)) = sub.try_recv() else {
            panic!("newest delta survives");
        };
        assert_eq!(d.added.len(), 1);
        assert_eq!(sub.try_recv(), None);
    }

    #[test]
    fn subscribe_rejects_non_select_queries() {
        let store = borders_store();
        let q = store
            .prepare("PREFIX ex: <http://ex.org/> ASK { ex:spain ex:borders ex:france }")
            .unwrap();
        assert!(store.subscribe(&q).is_err());
    }

    #[test]
    fn freshened_bnode_labels_cannot_collide_with_parsed_labels() {
        // A pre-loaded bnode whose label happens to match the old
        // suffixing scheme must not merge with a freshened insert.
        let store = Store::new();
        store
            .load_turtle("@prefix ex: <http://ex.org/> . _:b!u0 ex:p ex:o .")
            .unwrap_err(); // '!' is not even lexable in a label ...
        store
            .load_turtle("@prefix ex: <http://ex.org/> . _:b_u0 ex:p ex:o .")
            .unwrap(); // ... but the old '_'-separated form is.
        store
            .update("PREFIX ex: <http://ex.org/> INSERT DATA { _:b ex:q ex:o2 }")
            .unwrap();
        let joined = store
            .execute("PREFIX ex: <http://ex.org/> SELECT ?s WHERE { ?s ex:p ex:o . ?s ex:q ex:o2 }")
            .unwrap();
        assert!(joined.is_empty(), "fresh bnode must not merge with _:b_u0");
    }

    #[test]
    fn insert_data_bnodes_are_fresh_per_request() {
        let store = Store::new();
        let req = r#"PREFIX ex: <http://ex.org/> INSERT DATA { _:b ex:p ex:o . _:b ex:q ex:o }"#;
        let first = store.update(req).unwrap();
        assert_eq!(first.added, 2);
        // Re-running the identical request mints fresh blank nodes
        // (SPARQL 1.1 Update §3.1.1) instead of deduplicating.
        let second = store.update(req).unwrap();
        assert_eq!(second.added, 2, "fresh bnodes, not duplicates");
        let subjects = store
            .execute("PREFIX ex: <http://ex.org/> SELECT DISTINCT ?s WHERE { ?s ex:p ex:o }")
            .unwrap();
        assert_eq!(subjects.len(), 2);
        // Within one request the label still denotes one node.
        let joined = store
            .execute("PREFIX ex: <http://ex.org/> SELECT ?s WHERE { ?s ex:p ex:o . ?s ex:q ex:o }")
            .unwrap();
        assert_eq!(joined.len(), 2);
    }

    #[test]
    fn removals_that_hit_nothing_take_the_cheap_path() {
        let store = borders_store();
        let before = store.snapshot().database().content_signature();
        // Absent quad + empty graph: logically a no-op commit.
        let no_op = |store: &Store| {
            let mut w = store.writer();
            w.remove(iri("spain"), iri("borders"), iri("narnia"));
            w.clear(ClearTarget::Graph(Arc::from("http://empty")));
            w.commit().unwrap()
        };
        let stats = no_op(&store);
        assert_eq!(
            stats,
            CommitStats {
                added: 0,
                removed: 0
            }
        );
        // The facts are untouched; the only signature difference the
        // commit may introduce is the promotion of the index its own
        // removal probe demanded (profile-guided freezing).
        let after_first = store.snapshot().database().content_signature();
        let facts = |sig: &[String]| -> Vec<String> {
            sig.iter()
                .filter(|l| !l.starts_with("@index"))
                .cloned()
                .collect()
        };
        assert_eq!(
            facts(&after_first),
            facts(&before),
            "no-op commit leaves the facts identical"
        );
        // Steady state: repeating the no-op changes nothing at all.
        no_op(&store);
        assert_eq!(
            store.snapshot().database().content_signature(),
            after_first,
            "repeated no-op commit leaves the snapshot content-identical"
        );
    }

    #[test]
    fn clear_targets() {
        let store = Store::new();
        store
            .update(
                r#"PREFIX ex: <http://ex.org/>
                   INSERT DATA { ex:a ex:p 1 .
                                 GRAPH <http://g1> { ex:a ex:p 2 }
                                 GRAPH <http://g2> { ex:a ex:p 3 } }"#,
            )
            .unwrap();
        let count = |store: &Store| {
            let default = store.execute("SELECT ?o WHERE { ?s ?p ?o }").unwrap().len();
            let named = store
                .execute("SELECT ?o WHERE { GRAPH ?g { ?s ?p ?o } }")
                .unwrap()
                .len();
            (default, named)
        };
        assert_eq!(count(&store), (1, 2));
        store.update("CLEAR GRAPH <http://g1>").unwrap();
        assert_eq!(count(&store), (1, 1));
        store.update("CLEAR DEFAULT").unwrap();
        assert_eq!(count(&store), (0, 1));
        store.update("CLEAR ALL").unwrap();
        assert_eq!(count(&store), (0, 0));
    }

    #[test]
    fn sequential_operations_see_prior_effects() {
        let store = Store::new();
        store
            .update(
                r#"PREFIX ex: <http://ex.org/>
                   INSERT DATA { ex:a ex:p ex:b } ;
                   INSERT { ?y ex:q ?x } WHERE { ?x ex:p ?y } ;
                   DELETE DATA { ex:a ex:p ex:b }"#,
            )
            .unwrap();
        assert_eq!(
            store
                .execute("PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ex:b ex:q ?x }")
                .unwrap()
                .len(),
            1,
            "second op saw the first op's insert"
        );
        assert_eq!(
            store
                .execute("PREFIX ex: <http://ex.org/> SELECT ?y WHERE { ex:a ex:p ?y }")
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn snapshot_rejects_updates_with_read_only_error() {
        let store = borders_store();
        let err = store
            .snapshot()
            .execute("PREFIX ex: <http://ex.org/> INSERT DATA { ex:x ex:p ex:y }")
            .unwrap_err();
        assert_eq!(err, SparqLogError::ReadOnly("INSERT"));
        // The store-level execute is read-only too.
        assert_eq!(
            store.execute("CLEAR ALL").unwrap_err(),
            SparqLogError::ReadOnly("CLEAR")
        );
        // ... but Store::update handles the same text.
        store
            .update("PREFIX ex: <http://ex.org/> INSERT DATA { ex:x ex:p ex:y }")
            .unwrap();
    }

    #[test]
    fn engine_migrates_into_store() {
        let mut engine = crate::SparqLog::new();
        engine
            .load_turtle("@prefix ex: <http://ex.org/> . ex:a ex:p ex:b .")
            .unwrap();
        let store: Store = engine.into();
        store
            .update("PREFIX ex: <http://ex.org/> INSERT DATA { ex:b ex:p ex:c }")
            .unwrap();
        assert_eq!(
            store
                .execute("PREFIX ex: <http://ex.org/> SELECT ?z WHERE { ex:a ex:p+ ?z }")
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn parsed_query_and_batch_apis_work_on_snapshots() {
        let store = borders_store();
        let snapshot = store.snapshot();
        let q = parse_query("PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ?a ex:borders ?b }")
            .unwrap();
        assert_eq!(snapshot.execute_query(&q).unwrap().len(), 3);
        let results = store.execute_batch(&[
            "PREFIX ex: <http://ex.org/> ASK { ex:spain ex:borders ex:france }",
            "not a query",
        ]);
        assert_eq!(results[0].as_ref().unwrap().len(), 1);
        assert!(results[1].is_err());
    }

    #[test]
    fn metrics_cover_queries_commits_aborts_and_subscriptions() {
        let store = borders_store(); // one load commit, 3 triples
        let reg = store.metrics();
        assert_eq!(reg.counter_value("sparqlog_store_commits_total"), Some(1));
        assert_eq!(
            reg.counter_value("sparqlog_store_rows_added_total"),
            Some(3)
        );
        assert_eq!(
            reg.counter_value("sparqlog_store_snapshot_refreshes_total"),
            Some(1)
        );
        assert_eq!(reg.counter_value("sparqlog_queries_total"), Some(0));

        let q = "PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ex:spain ex:borders+ ?b }";
        store.execute(q).unwrap();
        store.execute(q).unwrap();
        assert_eq!(reg.counter_value("sparqlog_queries_total"), Some(2));
        assert_eq!(reg.counter_value("sparqlog_translations_total"), Some(1));
        assert!(
            reg.counter_value("sparqlog_eval_join_probes_total")
                .unwrap()
                > 0
        );

        // A row-capped query aborts and lands in the labelled family.
        let tight = Budget::new().with_max_rows(1);
        let err = store.execute_with_budget(q, &tight).unwrap_err();
        assert!(err.is_aborted());
        assert_eq!(reg.counter_vec_sum("sparqlog_query_aborts_total"), Some(1));
        assert_eq!(reg.counter_value("sparqlog_queries_total"), Some(2));

        // Subscriptions: a changing commit delivers one notification.
        let prepared = store
            .prepare("PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ex:spain ex:borders ?b }")
            .unwrap();
        let sub = store.subscribe(&prepared).unwrap();
        store
            .update("PREFIX ex: <http://ex.org/> INSERT DATA { ex:spain ex:borders ex:andorra }")
            .unwrap();
        assert!(matches!(
            sub.recv_timeout(std::time::Duration::from_secs(5)),
            Some(SubscriptionEvent::Delta(_))
        ));
        assert_eq!(
            reg.counter_value("sparqlog_subscription_notifications_total"),
            Some(1)
        );

        // Maintained removal path.
        store
            .update("PREFIX ex: <http://ex.org/> DELETE DATA { ex:spain ex:borders ex:andorra }")
            .unwrap();
        assert_eq!(
            reg.counter_value("sparqlog_store_removals_maintained_total"),
            Some(1)
        );
        assert_eq!(
            reg.counter_value("sparqlog_store_rows_removed_total"),
            Some(1)
        );
        assert_eq!(reg.counter_value("sparqlog_store_commits_total"), Some(3));

        // The whole registry renders as valid exposition text.
        let text = reg.render_to_string();
        let samples = sparqlog_obs::MetricsRegistry::parse_exposition(&text).unwrap();
        assert!(samples
            .iter()
            .any(|(n, _, v)| n == "sparqlog_store_commits_total" && *v == 3.0));
        assert!(text.contains("sparqlog_query_aborts_total{reason=\"row_limit\"} 1"));
        assert!(text.contains("sparqlog_query_duration_us_bucket"));

        // Disarmed, the recording sites go quiet (the A/B overhead
        // switch) — and re-arming restores them. (Standing-query
        // re-evaluations counted as queries above, so count relative.)
        let before = reg.counter_value("sparqlog_queries_total").unwrap();
        reg.disarm();
        store.execute(q).unwrap();
        assert_eq!(reg.counter_value("sparqlog_queries_total"), Some(before));
        reg.arm();
        store.execute(q).unwrap();
        assert_eq!(
            reg.counter_value("sparqlog_queries_total"),
            Some(before + 1)
        );
    }

    #[test]
    fn profiled_execution_reports_rules_and_rounds() {
        let store = borders_store();
        let q = "PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ex:spain ex:borders+ ?b }";
        let snapshot = store.snapshot();
        let (results, profile) = snapshot.execute_profiled(q).unwrap();
        assert_eq!(results.len(), 3);
        assert!(!profile.rules.is_empty());
        assert!(!profile.strata.is_empty());
        assert!(profile.rules.iter().any(|r| r.jobs > 0 && r.derived > 0));
        let rendered = profile.render();
        assert!(rendered.contains("stratum 0"), "{rendered}");
        assert!(profile.to_json().contains("\"delta_rows\""));

        // Prepared-handle variant agrees with the plain execution.
        let prepared = store.prepare(q).unwrap();
        let (r2, p2) = snapshot.execute_prepared_profiled(&prepared).unwrap();
        assert_eq!(r2, results);
        assert!(p2.elapsed > std::time::Duration::ZERO);

        // The unprofiled paths still work and return identical results.
        assert_eq!(snapshot.execute(q).unwrap(), results);
    }
}
