//! Standing-query subscriptions: register a [`PreparedQuery`] on a
//! [`Store`](crate::Store) and receive a typed [`ResultDelta`] after
//! every commit that changes its results.
//!
//! This is the live-dashboard / cache-invalidation workload the
//! Bonifati et al. query-log study shows real endpoints grow into:
//! large volumes of small, repeated query shapes that are far cheaper
//! to *maintain* than to re-execute client-side. The store side rides
//! on the incremental maintenance machinery: each commit computes its
//! maintenance delta once (the DRed retraction plus the fresh
//! assertions), uses the changed predicates to skip subscribers that
//! provably cannot be affected, and re-evaluates only the remaining
//! standing queries against the freshly installed snapshot, diffing
//! against the previous result multiset.
//!
//! # Delivery contract
//!
//! * Deltas are **exact**: `added`/`removed` are the multiset
//!   difference between the query's results on the post- and pre-commit
//!   snapshots. Applying every delta in order to the
//!   [`Subscription::initial`] rows reproduces a fresh execution.
//! * `commit_seq` is the store's monotone commit number. Commits that
//!   do not change a subscriber's results deliver nothing, so
//!   consumers may observe gaps; the sequence they *do* see is
//!   strictly increasing.
//! * The mailbox is **bounded** (default
//!   [`DEFAULT_MAILBOX_CAPACITY`]). A lagging subscriber loses the
//!   *oldest* undelivered deltas first; the loss is surfaced as
//!   [`SubscriptionEvent::Lagged`] with the number of dropped deltas,
//!   at which point the consumer's accumulated view is stale and
//!   should be rebuilt by re-running the query on a fresh snapshot.
//!   Server-side state is unaffected — subsequent deltas remain exact.
//! * Dropping (or [`Subscription::unsubscribe`]-ing) the handle
//!   deregisters it; the store also prunes closed entries at each
//!   commit.
//!
//! Blocking receives ([`Subscription::recv`],
//! [`Subscription::recv_timeout`]) wake only on delivery: if the owning
//! store is dropped, a blocked `recv` never returns — prefer
//! `recv_timeout`/`try_recv` when the store's lifetime is not under
//! your control.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use sparqlog_datalog::fxhash::FxHashSet;
use sparqlog_datalog::TermId;
use sparqlog_rdf::Term;
use sparqlog_sparql::{GraphPattern, TermPattern};

use crate::serving::{FrozenDatabase, PreparedQuery};
use crate::solution::SolutionSeq;

/// Default bound on undelivered deltas per subscription.
pub const DEFAULT_MAILBOX_CAPACITY: usize = 64;

/// One solution row: bindings aligned with the subscription's
/// projected variables (`None` = unbound).
pub type SolutionRow = Vec<Option<Term>>;

/// The incremental result change one commit produced for one
/// subscription.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultDelta {
    /// Solutions present after the commit but not before (multiset
    /// semantics: a row appears once per added duplicate).
    pub added: SolutionSeq,
    /// Solutions present before the commit but not after.
    pub removed: SolutionSeq,
    /// The producing commit's monotone sequence number.
    pub commit_seq: u64,
}

/// What [`Subscription::recv`] (and friends) yield.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscriptionEvent {
    /// A result change. Deltas arrive in commit order.
    Delta(ResultDelta),
    /// The mailbox overflowed and this many *oldest* deltas were
    /// dropped; the consumer's accumulated view is stale (see the
    /// module docs for the recovery contract).
    Lagged(u64),
}

struct MailboxInner {
    queue: VecDeque<ResultDelta>,
    /// Deltas dropped since the consumer last observed the lag.
    missed: u64,
    closed: bool,
}

pub(crate) struct Mailbox {
    inner: Mutex<MailboxInner>,
    ready: Condvar,
    capacity: usize,
}

impl Mailbox {
    fn new(capacity: usize) -> Self {
        Mailbox {
            inner: Mutex::new(MailboxInner {
                queue: VecDeque::new(),
                missed: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a delta, dropping the oldest entries past capacity.
    /// Returns how many were dropped (the caller's lag metric).
    pub(crate) fn push(&self, delta: ResultDelta) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return 0;
        }
        let mut dropped = 0;
        while inner.queue.len() >= self.capacity {
            inner.queue.pop_front();
            inner.missed += 1;
            dropped += 1;
        }
        inner.queue.push_back(delta);
        drop(inner);
        self.ready.notify_all();
        dropped
    }

    fn take(inner: &mut MailboxInner) -> Option<SubscriptionEvent> {
        if inner.missed > 0 {
            let n = inner.missed;
            inner.missed = 0;
            return Some(SubscriptionEvent::Lagged(n));
        }
        inner.queue.pop_front().map(SubscriptionEvent::Delta)
    }

    pub(crate) fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }
}

/// Registry entry, owned by the store. `last` is the server-side result
/// multiset as of the latest commit — the diffing baseline, independent
/// of what the consumer has drained.
pub(crate) struct SubEntry {
    id: u64,
    prepared: PreparedQuery,
    mailbox: Arc<Mailbox>,
    last: Vec<SolutionRow>,
    vars: Vec<String>,
    /// The closed set of triple predicates the query can touch, when
    /// the `WHERE` shape allows deriving one (`None` = unknown — always
    /// re-evaluate).
    preds: Option<Vec<TermId>>,
}

/// The store-side subscription registry plus the shared commit
/// sequence. Lives behind one mutex: commits, subscribes and
/// unsubscribes all serialise on it briefly.
#[derive(Default)]
pub(crate) struct Registry {
    entries: Mutex<Vec<SubEntry>>,
    next_id: std::sync::atomic::AtomicU64,
}

impl Registry {
    pub(crate) fn register(
        &self,
        prepared: PreparedQuery,
        baseline: SolutionSeq,
        preds: Option<Vec<TermId>>,
        capacity: usize,
    ) -> (u64, Arc<Mailbox>) {
        let id = self
            .next_id
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mailbox = Arc::new(Mailbox::new(capacity));
        self.entries.lock().unwrap().push(SubEntry {
            id,
            prepared,
            mailbox: mailbox.clone(),
            last: baseline.rows,
            vars: baseline.vars,
            preds,
        });
        (id, mailbox)
    }

    pub(crate) fn len(&self) -> usize {
        let mut entries = self.entries.lock().unwrap();
        entries.retain(|e| !e.mailbox.is_closed());
        entries.len()
    }

    pub(crate) fn unregister(&self, id: u64) {
        let mut entries = self.entries.lock().unwrap();
        if let Some(pos) = entries.iter().position(|e| e.id == id) {
            let entry = entries.swap_remove(pos);
            entry.mailbox.close();
        }
    }

    /// Post-commit fan-out, called with the freshly installed snapshot.
    /// `changed_preds` is the exact set of triple-predicate ids the
    /// commit touched when the commit path could prove one (`None` =
    /// conservative: re-evaluate everyone).
    pub(crate) fn notify(
        &self,
        snapshot: &FrozenDatabase,
        changed_preds: Option<&FxHashSet<TermId>>,
        commit_seq: u64,
    ) {
        let metrics = snapshot.core_metrics();
        let armed = metrics.registry.armed();
        let mut entries = self.entries.lock().unwrap();
        entries.retain(|e| !e.mailbox.is_closed());
        for entry in entries.iter_mut() {
            if let (Some(changed), Some(preds)) = (changed_preds, &entry.preds) {
                if !preds.iter().any(|p| changed.contains(p)) {
                    continue; // provably unaffected
                }
            }
            let Ok(result) = snapshot.execute_prepared(&entry.prepared) else {
                // An evaluation failure (budget, timeout) must not lose
                // the delta chain silently: count it as a missed delta.
                entry.mailbox.inner.lock().unwrap().missed += 1;
                entry.mailbox.ready.notify_all();
                if armed {
                    metrics.sub_lagged.inc();
                }
                continue;
            };
            let Some(solutions) = result.solutions() else {
                continue;
            };
            let (added, removed) = multiset_diff(&entry.last, &solutions.rows);
            if added.is_empty() && removed.is_empty() {
                continue;
            }
            entry.last = solutions.rows.clone();
            let dropped = entry.mailbox.push(ResultDelta {
                added: SolutionSeq {
                    vars: entry.vars.clone(),
                    rows: added,
                },
                removed: SolutionSeq {
                    vars: entry.vars.clone(),
                    rows: removed,
                },
                commit_seq,
            });
            if armed {
                metrics.sub_notifications.inc();
                metrics.sub_lagged.add(dropped);
            }
        }
    }
}

/// Multiset difference: rows in `new` beyond their multiplicity in
/// `old` (added) and vice versa (removed).
fn multiset_diff(old: &[SolutionRow], new: &[SolutionRow]) -> (Vec<SolutionRow>, Vec<SolutionRow>) {
    let mut counts: HashMap<&SolutionRow, isize> = HashMap::with_capacity(new.len());
    for row in new {
        *counts.entry(row).or_default() += 1;
    }
    for row in old {
        *counts.entry(row).or_default() -= 1;
    }
    let mut added = Vec::new();
    let mut removed = Vec::new();
    for (row, n) in counts {
        for _ in 0..n.max(0) {
            added.push(row.clone());
        }
        for _ in 0..(-n).max(0) {
            removed.push(row.clone());
        }
    }
    (added, removed)
}

/// Derives the closed predicate set of a `WHERE` pattern: `Some(preds)`
/// when the pattern is built from plain triple patterns (joins, unions,
/// optionals, minus) whose predicates are all constant IRIs — then the
/// query's results can only change when a triple with one of those
/// predicates does. Property paths, `GRAPH` blocks and filters fall
/// back to `None` (filters may consult term-class predicates through
/// `EXISTS`-style shapes; paths and graph blocks reach arbitrary
/// predicates).
fn closed_predicates(pattern: &GraphPattern, out: &mut Vec<Term>) -> bool {
    match pattern {
        GraphPattern::Empty => true,
        GraphPattern::Triple(t) => match &t.predicate {
            TermPattern::Term(term @ Term::Iri(_)) => {
                if !out.contains(term) {
                    out.push(term.clone());
                }
                true
            }
            _ => false,
        },
        GraphPattern::Join(a, b)
        | GraphPattern::Union(a, b)
        | GraphPattern::Optional(a, b)
        | GraphPattern::Minus(a, b) => closed_predicates(a, out) && closed_predicates(b, out),
        GraphPattern::Path { .. } | GraphPattern::Filter(..) | GraphPattern::Graph(..) => false,
    }
}

/// Computes the subscribe-time prefilter for `prepared` against the
/// store's dictionary: the encoded predicate ids, or `None` when the
/// query shape does not admit a closed set.
pub(crate) fn prefilter(
    prepared: &PreparedQuery,
    snapshot: &FrozenDatabase,
) -> Option<Vec<TermId>> {
    let query = prepared.query();
    if !query.dataset.is_empty() {
        return None;
    }
    let mut terms = Vec::new();
    if !closed_predicates(&query.pattern, &mut terms) {
        return None;
    }
    let symbols = snapshot.symbols();
    let dict = snapshot.database().dict();
    Some(
        terms
            .iter()
            .map(|t| dict.encode(&crate::data_translation::term_to_const(t, symbols)))
            .collect(),
    )
}

/// A standing query's receiving end, returned by
/// [`Store::subscribe`](crate::Store::subscribe).
///
/// Holds the initial result set ([`Subscription::initial`]) and a
/// bounded mailbox of [`SubscriptionEvent`]s; see the [module
/// docs](self) for the full delivery contract. Dropping the handle
/// unsubscribes.
pub struct Subscription {
    pub(crate) registry: Arc<Registry>,
    pub(crate) mailbox: Arc<Mailbox>,
    pub(crate) id: u64,
    pub(crate) initial: SolutionSeq,
}

impl Subscription {
    /// The query's full result set at subscription time — the baseline
    /// the deltas apply to.
    pub fn initial(&self) -> &SolutionSeq {
        &self.initial
    }

    /// The projected variable names.
    pub fn vars(&self) -> &[String] {
        &self.initial.vars
    }

    /// Removes the next pending event, without blocking. `None` means
    /// the mailbox is currently empty.
    pub fn try_recv(&self) -> Option<SubscriptionEvent> {
        let mut inner = self.mailbox.inner.lock().unwrap();
        Mailbox::take(&mut inner)
    }

    /// Blocks until an event arrives. See the module docs before using
    /// this with a store you do not own: the call only wakes on
    /// delivery.
    pub fn recv(&self) -> SubscriptionEvent {
        let mut inner = self.mailbox.inner.lock().unwrap();
        loop {
            if let Some(event) = Mailbox::take(&mut inner) {
                return event;
            }
            inner = self.mailbox.ready.wait(inner).unwrap();
        }
    }

    /// Blocks until an event arrives or `timeout` elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<SubscriptionEvent> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.mailbox.inner.lock().unwrap();
        loop {
            if let Some(event) = Mailbox::take(&mut inner) {
                return Some(event);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _res) = self
                .mailbox
                .ready
                .wait_timeout(inner, deadline - now)
                .unwrap();
            inner = guard;
        }
    }

    /// Deregisters the subscription (equivalent to dropping it).
    pub fn unsubscribe(self) {}
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.registry.unregister(self.id);
    }
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("id", &self.id)
            .field("vars", &self.initial.vars)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(names: &[&str]) -> SolutionRow {
        names
            .iter()
            .map(|n| Some(Term::iri(format!("http://ex.org/{n}"))))
            .collect()
    }

    #[test]
    fn multiset_diff_respects_multiplicity() {
        let old = vec![row(&["a"]), row(&["a"]), row(&["b"])];
        let new = vec![row(&["a"]), row(&["b"]), row(&["b"]), row(&["c"])];
        let (mut added, mut removed) = multiset_diff(&old, &new);
        added.sort();
        removed.sort();
        assert_eq!(added, vec![row(&["b"]), row(&["c"])]);
        assert_eq!(removed, vec![row(&["a"])]);
    }

    #[test]
    fn mailbox_drops_oldest_and_reports_lag() {
        let mb = Mailbox::new(2);
        let delta = |seq| ResultDelta {
            added: SolutionSeq {
                vars: vec![],
                rows: vec![],
            },
            removed: SolutionSeq {
                vars: vec![],
                rows: vec![],
            },
            commit_seq: seq,
        };
        for seq in 1..=4 {
            mb.push(delta(seq));
        }
        let mut inner = mb.inner.lock().unwrap();
        assert_eq!(
            Mailbox::take(&mut inner),
            Some(SubscriptionEvent::Lagged(2))
        );
        assert_eq!(
            Mailbox::take(&mut inner),
            Some(SubscriptionEvent::Delta(delta(3)))
        );
        assert_eq!(
            Mailbox::take(&mut inner),
            Some(SubscriptionEvent::Delta(delta(4)))
        );
        assert_eq!(Mailbox::take(&mut inner), None);
    }
}
