//! # SparqLog — SPARQL 1.1 evaluation via Warded Datalog±
//!
//! A from-scratch Rust reproduction of *SparqLog: A System for Efficient
//! Evaluation of SPARQL 1.1 Queries via Datalog* (Angles, Gottlob,
//! Pavlović, Pichler, Sallinger; VLDB 2023). This crate is the paper's
//! primary contribution: a complete translation engine from SPARQL 1.1
//! (under both bag and set semantics) to Warded Datalog±, evaluated on
//! the workspace's Vadalog-substitute engine
//! ([`sparqlog_datalog`]).
//!
//! The three translation methods of §4:
//!
//! * **T_D** ([`data_translation`]): RDF dataset → Datalog facts +
//!   auxiliary predicates (`term`, `comp`, `subjectOrObject`, `null`);
//! * **T_Q** ([`query_translation`]): SPARQL query → Datalog± rules,
//!   with Skolem tuple-IDs realising bag semantics and `Id = []`
//!   realising the set semantics of recursive property paths;
//! * **T_S** ([`solution`]): goal-predicate tuples → SPARQL solution
//!   multiset, applying solution modifiers.
//!
//! Ontological reasoning (RQ3) comes from [`ontology`]: RDFS/OWL 2 QL
//! axioms compiled to (possibly existential) rules over `triple/4` and
//! materialised at load time.
//!
//! Two entry points share this pipeline:
//!
//! * [`Store`] — the unified read/write API: cheap `Arc`-shared
//!   [`Snapshot`]s, staged [`Writer`] sessions, SPARQL 1.1 Update, and
//!   incremental snapshot refresh (see [`store`]);
//! * [`SparqLog`] — the original single-threaded engine façade, kept as
//!   a thin wrapper for load-then-query workloads and the paper's
//!   harnesses ([`SparqLog::into_store`] migrates).
//!
//! # Quick start
//!
//! ```
//! use sparqlog::SparqLog;
//!
//! let mut engine = SparqLog::new();
//! engine
//!     .load_turtle(
//!         r#"@prefix ex: <http://ex.org/> .
//!            ex:spain ex:borders ex:france .
//!            ex:france ex:borders ex:belgium .
//!            ex:france ex:borders ex:germany .
//!            ex:belgium ex:borders ex:germany .
//!            ex:germany ex:borders ex:austria ."#,
//!     )
//!     .unwrap();
//! // Figure 3 of the paper: countries reachable from Spain.
//! let result = engine
//!     .execute(
//!         "PREFIX ex: <http://ex.org/>
//!          SELECT ?B WHERE { ?A ex:borders+ ?B . FILTER (?A = ex:spain) }",
//!     )
//!     .unwrap();
//! assert_eq!(result.len(), 4); // france, belgium, germany, austria
//! ```

#![warn(missing_docs)]

pub mod data_translation;
pub mod engine;
pub mod expr_translation;
pub mod features;
pub(crate) mod metrics;
pub mod ontology;
pub mod query_translation;
pub mod results_io;
pub mod serving;
pub mod solution;
pub mod store;
pub mod subscribe;

pub use data_translation::{const_to_term, term_to_const};
pub use engine::{SparqLog, SparqLogError};
pub use ontology::{Axiom, Ontology};
pub use query_translation::{translate_query, TranslatedQuery, TranslationError};
pub use results_io::{SerializeError, WriteError};
pub use serving::{FrozenDatabase, PreparedQuery};
#[allow(deprecated)]
pub use solution::QueryResult;
pub use solution::{canonical_triples, QueryResults, Solution, SolutionSeq};
pub use sparqlog_datalog::{AbortReason, Budget, CancelToken, QueryProfile};
pub use sparqlog_obs::MetricsRegistry;
pub use sparqlog_rdf::{Graph, Term};
pub use store::{CommitStats, Snapshot, Store, Writer};
pub use subscribe::{
    ResultDelta, SolutionRow, Subscription, SubscriptionEvent, DEFAULT_MAILBOX_CAPACITY,
};
