//! Per-store metric handles over the [`sparqlog_obs`] registry.
//!
//! Every [`Store`](crate::Store) owns one
//! [`MetricsRegistry`](sparqlog_obs::MetricsRegistry), created with its
//! translation cache so it survives commits exactly like the cache does
//! and is shared by every snapshot. [`CoreMetrics`] registers the
//! engine's metric families once and caches the `Arc` handles, so the
//! recording sites in the serving, store and subscription layers pay a
//! relaxed atomic add — never a name lookup.
//!
//! The datalog crate stays free of metric handles: the evaluator
//! reports through [`EvalStats`](sparqlog_datalog::EvalStats) and the
//! serving layer sinks those numbers here after each query.

use std::sync::Arc;

use sparqlog_datalog::AbortReason;
use sparqlog_obs::{Counter, CounterVec, Histogram, MetricsRegistry};

/// Cached handles for every metric family the core crate records.
///
/// Owned by the store's translation cache (one per store, shared by all
/// its snapshots). The registry itself is reachable via
/// [`CoreMetrics::registry`] for rendering and for other layers (HTTP)
/// to register their own families into.
pub(crate) struct CoreMetrics {
    /// The owning registry (rendered by `GET /metrics`).
    pub(crate) registry: Arc<MetricsRegistry>,
    /// Parse+translate passes (cache misses; also the `f{n}_` predicate
    /// namespace sequence, so this counter is never gated on `armed`).
    pub(crate) translations: Arc<Counter>,
    /// Executions served from a still-valid cached physical plan.
    pub(crate) plan_hits: Arc<Counter>,
    /// Physical plans computed (first executions and drift replans).
    pub(crate) plans_computed: Arc<Counter>,
    /// Queries evaluated to completion.
    pub(crate) queries: Arc<Counter>,
    /// Evaluation wall time per completed query, µs.
    pub(crate) query_duration_us: Arc<Histogram>,
    /// Semi-naive rounds across all completed queries.
    pub(crate) eval_rounds: Arc<Counter>,
    /// Rows derived (after dedup) across all completed queries.
    pub(crate) eval_rows_derived: Arc<Counter>,
    /// Join probes (delta rows scanned, index entries probed).
    pub(crate) eval_join_probes: Arc<Counter>,
    /// Governor aborts by `reason` label.
    pub(crate) aborts: Arc<CounterVec>,
    /// Committed write transactions.
    pub(crate) commits: Arc<Counter>,
    /// Commit latency (thaw → re-freeze), µs.
    pub(crate) commit_duration_us: Arc<Histogram>,
    /// Triples actually added by commits.
    pub(crate) rows_added: Arc<Counter>,
    /// Triples actually removed by commits.
    pub(crate) rows_removed: Arc<Counter>,
    /// Removal commits handled by the incremental DRed maintainer.
    pub(crate) removals_maintained: Arc<Counter>,
    /// Removal commits that fell back to full re-derivation.
    pub(crate) removals_fallback: Arc<Counter>,
    /// Snapshots re-frozen and installed by commits.
    pub(crate) snapshot_refreshes: Arc<Counter>,
    /// Result deltas delivered to standing-query subscriptions.
    pub(crate) sub_notifications: Arc<Counter>,
    /// Deltas dropped on lagging subscribers (mailbox overflow or a
    /// failed re-evaluation).
    pub(crate) sub_lagged: Arc<Counter>,
}

impl CoreMetrics {
    /// Registers (or re-attaches to) the core metric families in
    /// `registry` and caches the handles.
    pub(crate) fn new(registry: Arc<MetricsRegistry>) -> Self {
        let r = &registry;
        CoreMetrics {
            translations: r.counter(
                "sparqlog_translations_total",
                "SPARQL parse+translate passes performed (translation-cache misses).",
            ),
            plan_hits: r.counter(
                "sparqlog_plan_cache_hits_total",
                "Executions served from a still-valid cached physical plan.",
            ),
            plans_computed: r.counter(
                "sparqlog_plans_computed_total",
                "Physical plans computed: first executions and statistics-drift replans.",
            ),
            queries: r.counter("sparqlog_queries_total", "Queries evaluated to completion."),
            query_duration_us: r.histogram(
                "sparqlog_query_duration_us",
                "Query evaluation wall time in microseconds.",
                22,
            ),
            eval_rounds: r.counter(
                "sparqlog_eval_rounds_total",
                "Semi-naive fixpoint rounds across completed queries.",
            ),
            eval_rows_derived: r.counter(
                "sparqlog_eval_rows_derived_total",
                "Rows derived (after dedup) across completed queries.",
            ),
            eval_join_probes: r.counter(
                "sparqlog_eval_join_probes_total",
                "Join probes: delta rows scanned and index entries probed.",
            ),
            aborts: r.counter_vec(
                "sparqlog_query_aborts_total",
                "Queries stopped by the execution governor, by reason.",
                &["reason"],
            ),
            commits: r.counter(
                "sparqlog_store_commits_total",
                "Committed write transactions.",
            ),
            commit_duration_us: r.histogram(
                "sparqlog_store_commit_duration_us",
                "Commit latency (thaw, apply, re-materialise, re-freeze) in microseconds.",
                22,
            ),
            rows_added: r.counter(
                "sparqlog_store_rows_added_total",
                "Triples actually added by commits (staged duplicates excluded).",
            ),
            rows_removed: r.counter(
                "sparqlog_store_rows_removed_total",
                "Triples actually removed by commits (absent removals excluded).",
            ),
            removals_maintained: r.counter(
                "sparqlog_store_removals_maintained_total",
                "Removal commits handled by the incremental DRed maintainer.",
            ),
            removals_fallback: r.counter(
                "sparqlog_store_removals_fallback_total",
                "Removal commits that fell back to full re-derivation.",
            ),
            snapshot_refreshes: r.counter(
                "sparqlog_store_snapshot_refreshes_total",
                "Snapshots re-frozen and installed by commits.",
            ),
            sub_notifications: r.counter(
                "sparqlog_subscription_notifications_total",
                "Result deltas delivered to standing-query subscriptions.",
            ),
            sub_lagged: r.counter(
                "sparqlog_subscription_lagged_total",
                "Deltas dropped on lagging subscribers (overflow or failed re-evaluation).",
            ),
            registry,
        }
    }

    /// The stable `reason` label for an abort counter child.
    pub(crate) fn abort_label(reason: AbortReason) -> &'static str {
        match reason {
            AbortReason::Deadline => "deadline",
            AbortReason::Cancelled => "cancelled",
            AbortReason::RowLimit => "row_limit",
            AbortReason::DictGrowth => "dict_growth",
        }
    }
}

impl std::fmt::Debug for CoreMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreMetrics")
            .field("queries", &self.queries.get())
            .field("commits", &self.commits.get())
            .finish()
    }
}
