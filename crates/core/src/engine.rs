//! The SparqLog façade: load RDF data (T_D), translate queries (T_Q),
//! evaluate on the Datalog± engine, extract solutions (T_S).
//!
//! Since the [`Store`](crate::Store) redesign this type is the
//! *single-threaded, query-only* face of the system — load, then
//! execute with `&mut self`. It remains fully supported (the paper's
//! compliance and benchmark harnesses drive it), but applications
//! wanting concurrent reads, writes after the initial load, or SPARQL
//! 1.1 Update should use [`Store`](crate::Store) — or migrate an
//! existing engine with [`SparqLog::into_store`].
//!
//! ```
//! use sparqlog::SparqLog;
//!
//! let mut engine = SparqLog::new();
//! engine
//!     .load_turtle(
//!         r#"@prefix ex: <http://ex.org/> .
//!            ex:spain ex:borders ex:france .
//!            ex:france ex:borders ex:belgium ."#,
//!     )
//!     .unwrap();
//! let result = engine
//!     .execute(
//!         "PREFIX ex: <http://ex.org/>
//!          SELECT ?B WHERE { ?A ex:borders+ ?B . FILTER (?A = ex:spain) }",
//!     )
//!     .unwrap();
//! assert_eq!(result.len(), 2); // france, belgium
//! ```

use std::sync::Arc;
use std::time::Duration;

use sparqlog_datalog::{
    evaluate, AbortReason, Database, EvalError, EvalOptions, EvalStats, Program, SymbolTable,
};
use sparqlog_rdf::{Dataset, Graph};
use sparqlog_sparql::{parse_query, ParseError, Query};

use crate::data_translation::{base_program, load_dataset};
use crate::ontology::Ontology;
use crate::query_translation::{translate_query, TranslatedQuery, TranslationError};
use crate::serving::FrozenDatabase;
use crate::solution::{extract_results, QueryResults};

/// Errors surfaced by [`SparqLog`].
#[derive(Debug, Clone, PartialEq)]
pub enum SparqLogError {
    /// The query string could not be parsed.
    Parse(ParseError),
    /// The query parses but uses features outside the translation.
    Translation(TranslationError),
    /// Datalog evaluation failed (timeout, unsafe rule, ...).
    Eval(EvalError),
    /// The execution governor stopped the query: a
    /// [`Budget`](crate::Budget) limit was crossed or the query's
    /// [`CancelToken`](crate::CancelToken) fired. The query did not
    /// complete; no partial results are returned, and the store is
    /// unaffected.
    Aborted {
        /// Which limit tripped.
        reason: AbortReason,
        /// Wall-clock time spent in evaluation when the abort was
        /// observed.
        elapsed: Duration,
        /// How far execution got: rows derived so far (merged rows plus
        /// staged, not-yet-deduplicated candidates). Compare against the
        /// budget's row cap to judge whether the query was close to
        /// finishing or running away.
        rows_derived: usize,
    },
    /// Data loading failed.
    Data(String),
    /// A SPARQL *Update* string was passed to a read-only entry point —
    /// a [`Snapshot`](crate::Snapshot) or the legacy
    /// [`FrozenDatabase::execute`](crate::FrozenDatabase::execute).
    /// Carries the update keyword that was recognised; route the request
    /// through [`Store::update`](crate::Store::update) or a
    /// [`Store::writer`](crate::Store::writer) session instead.
    ReadOnly(&'static str),
    /// A [`PreparedQuery`](crate::PreparedQuery) was executed against a
    /// store other than the one that prepared it. Translated programs
    /// are tied to their store's symbol table; re-prepare on the target
    /// store.
    ForeignPrepared,
}

impl SparqLogError {
    /// True when the failure is an explicitly unsupported SPARQL feature
    /// (the paper's compliance tables report these separately from
    /// errors).
    pub fn is_unsupported(&self) -> bool {
        match self {
            SparqLogError::Parse(e) => e.unsupported,
            SparqLogError::Translation(e) => e.unsupported,
            _ => false,
        }
    }

    /// The name of the unsupported SPARQL feature, when
    /// [`Self::is_unsupported`] — carried structurally (from
    /// `ParseError::feature` / `TranslationError::feature`) so callers
    /// can branch on the feature instead of string-matching messages:
    ///
    /// ```
    /// use sparqlog::SparqLog;
    ///
    /// let mut engine = SparqLog::new();
    /// let err = engine
    ///     .execute("SELECT * WHERE { BIND(1 AS ?x) }")
    ///     .unwrap_err();
    /// assert_eq!(err.unsupported_feature(), Some("BIND"));
    /// ```
    pub fn unsupported_feature(&self) -> Option<&str> {
        match self {
            SparqLogError::Parse(e) => e.feature.as_deref(),
            SparqLogError::Translation(e) => e.feature.as_deref(),
            _ => None,
        }
    }

    /// True for evaluation time-outs — the legacy
    /// [`EvalOptions::timeout`] path and governor deadline aborts alike.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            SparqLogError::Eval(EvalError::Timeout)
                | SparqLogError::Aborted {
                    reason: AbortReason::Deadline,
                    ..
                }
        )
    }

    /// True when the execution governor aborted the query
    /// ([`SparqLogError::Aborted`]), for any reason.
    pub fn is_aborted(&self) -> bool {
        matches!(self, SparqLogError::Aborted { .. })
    }
}

impl std::fmt::Display for SparqLogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparqLogError::Parse(e) => write!(f, "parse error: {e}"),
            SparqLogError::Translation(e) => write!(f, "translation error: {e}"),
            SparqLogError::Eval(e) => write!(f, "evaluation error: {e}"),
            SparqLogError::Aborted {
                reason,
                elapsed,
                rows_derived,
            } => write!(
                f,
                "query aborted ({reason}) after {elapsed:?} with {rows_derived} rows \
                 derived; raise the budget limit or narrow the query"
            ),
            SparqLogError::Data(e) => write!(f, "data error: {e}"),
            SparqLogError::ReadOnly(kw) => write!(
                f,
                "read-only entry point: {kw} is a SPARQL Update operation; \
                 use Store::update or a Store::writer session"
            ),
            SparqLogError::ForeignPrepared => write!(
                f,
                "prepared query belongs to a different store; re-prepare it \
                 on the store it is executed against"
            ),
        }
    }
}

impl std::error::Error for SparqLogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparqLogError::Parse(e) => Some(e),
            SparqLogError::Translation(e) => Some(e),
            SparqLogError::Eval(e) => Some(e),
            SparqLogError::Data(_)
            | SparqLogError::Aborted { .. }
            | SparqLogError::ReadOnly(_)
            | SparqLogError::ForeignPrepared => None,
        }
    }
}

impl From<ParseError> for SparqLogError {
    fn from(e: ParseError) -> Self {
        SparqLogError::Parse(e)
    }
}

impl From<TranslationError> for SparqLogError {
    fn from(e: TranslationError) -> Self {
        SparqLogError::Translation(e)
    }
}

impl From<EvalError> for SparqLogError {
    fn from(e: EvalError) -> Self {
        // Governor aborts are promoted to a top-level variant: they are a
        // policy outcome (limit crossed, cancellation), not an evaluation
        // defect, and callers dispatch on them (retry with a bigger
        // budget, report 408/503, ...).
        match e {
            EvalError::Aborted {
                reason,
                elapsed,
                rows_derived,
            } => SparqLogError::Aborted {
                reason,
                elapsed,
                rows_derived,
            },
            e => SparqLogError::Eval(e),
        }
    }
}

/// The SparqLog engine.
///
/// Holds the translated database. Loading materialises the T_D auxiliary
/// predicates (and any ontology rules); each executed query is translated
/// with a unique predicate prefix, evaluated bottom-up, and read back as
/// a SPARQL result.
pub struct SparqLog {
    db: Database,
    options: EvalOptions,
    ontology: Program,
    query_counter: usize,
}

impl Default for SparqLog {
    fn default() -> Self {
        Self::new()
    }
}

impl SparqLog {
    /// Creates an engine with default evaluation options (no timeout).
    ///
    /// ```
    /// use sparqlog::SparqLog;
    ///
    /// let engine = SparqLog::new();
    /// assert_eq!(engine.database().fact_count(), 0);
    /// ```
    pub fn new() -> Self {
        Self::with_options(EvalOptions::default())
    }

    /// Creates an engine with explicit evaluation options (the benchmark
    /// harness sets a timeout here, mirroring the paper's 900 s budget).
    pub fn with_options(options: EvalOptions) -> Self {
        SparqLog {
            db: Database::new(),
            options,
            ontology: Program::new(),
            query_counter: 0,
        }
    }

    /// The engine's symbol table.
    pub fn symbols(&self) -> &Arc<SymbolTable> {
        self.db.symbols()
    }

    /// Sets the Datalog engine's worker-thread count for subsequent
    /// loads/materialisations and query evaluations. `None` restores the
    /// default resolution (the `SPARQLOG_THREADS` env var, then the
    /// machine's available parallelism); `Some(1)` forces the
    /// deterministic single-threaded path. Whatever the setting, results
    /// are multiset-identical — only evaluation concurrency changes.
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.options.threads = threads;
    }

    /// The current evaluation options.
    pub fn options(&self) -> &EvalOptions {
        &self.options
    }

    /// Read access to the underlying Datalog database (for tests and
    /// inspection).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Loads an RDF dataset: generates the T_D facts and materialises the
    /// auxiliary predicates and ontology rules.
    pub fn load_dataset(&mut self, ds: &Dataset) -> Result<EvalStats, SparqLogError> {
        load_dataset(ds, &mut self.db);
        self.materialize()
    }

    /// Loads a graph as the default graph.
    pub fn load_graph(&mut self, g: &Graph) -> Result<EvalStats, SparqLogError> {
        let ds = Dataset::from_default_graph(g.clone());
        self.load_dataset(&ds)
    }

    /// Parses and loads a Turtle document into the default graph.
    ///
    /// Loading immediately materialises the T_D auxiliary predicates, so
    /// the returned statistics count derived facts, not just triples:
    ///
    /// ```
    /// use sparqlog::SparqLog;
    ///
    /// let mut engine = SparqLog::new();
    /// let stats = engine
    ///     .load_turtle("@prefix ex: <http://ex.org/> . ex:a ex:p ex:b .")
    ///     .unwrap();
    /// assert!(stats.derived > 0); // term/1, comp/3, ... materialised
    /// ```
    pub fn load_turtle(&mut self, src: &str) -> Result<EvalStats, SparqLogError> {
        let g = sparqlog_rdf::turtle::parse(src).map_err(|e| SparqLogError::Data(e.to_string()))?;
        self.load_graph(&g)
    }

    /// Parses and loads an N-Triples document into the default graph.
    pub fn load_ntriples(&mut self, src: &str) -> Result<EvalStats, SparqLogError> {
        let g =
            sparqlog_rdf::ntriples::parse(src).map_err(|e| SparqLogError::Data(e.to_string()))?;
        self.load_graph(&g)
    }

    /// Adds ontology axioms and re-materialises. Queries executed
    /// afterwards see the entailed triples.
    pub fn add_ontology(&mut self, onto: &Ontology) -> Result<EvalStats, SparqLogError> {
        let prog = onto.to_program(self.db.symbols());
        self.ontology.rules.extend(prog.rules);
        self.materialize()
    }

    /// (Re-)runs the base + ontology rules to fixpoint.
    fn materialize(&mut self) -> Result<EvalStats, SparqLogError> {
        let mut prog = base_program(self.db.symbols());
        prog.rules.extend(self.ontology.rules.iter().cloned());
        Ok(evaluate(&prog, &mut self.db, &self.options)?)
    }

    /// Translates a query without executing it (exposed for tests and the
    /// `table1_features` binary).
    pub fn translate(&mut self, query: &Query) -> Result<TranslatedQuery, SparqLogError> {
        self.query_counter += 1;
        let prefix = format!("q{}_", self.query_counter);
        Ok(translate_query(query, self.db.symbols(), &prefix)?)
    }

    /// Parses, translates, evaluates and extracts a query result.
    ///
    /// ```
    /// use sparqlog::SparqLog;
    ///
    /// let mut engine = SparqLog::new();
    /// engine
    ///     .load_turtle(
    ///         "@prefix ex: <http://ex.org/> .
    ///          ex:a ex:p ex:b . ex:a ex:p ex:c .",
    ///     )
    ///     .unwrap();
    /// let result = engine
    ///     .execute("PREFIX ex: <http://ex.org/> SELECT ?o WHERE { ex:a ex:p ?o }")
    ///     .unwrap();
    /// assert_eq!(result.len(), 2); // ex:b, ex:c
    /// ```
    pub fn execute(&mut self, query_str: &str) -> Result<QueryResults, SparqLogError> {
        let query = parse_query(query_str)?;
        self.execute_query(&query)
    }

    /// Executes an already-parsed query.
    pub fn execute_query(&mut self, query: &Query) -> Result<QueryResults, SparqLogError> {
        let tq = self.translate(query)?;
        evaluate(&tq.program, &mut self.db, &self.options)?;
        Ok(extract_results(&tq, query, &self.db))
    }

    /// Ends the mutate phase: consumes the engine into a read-only
    /// [`FrozenDatabase`] snapshot that serves queries from any number of
    /// threads concurrently (every query entry point takes `&self`).
    ///
    /// Freezing pre-builds all per-mask hash indexes on the materialised
    /// relations, so no query ever mutates — or locks — shared state. Use
    /// [`FrozenDatabase::execute`] for single queries (translations are
    /// cached by query text) and [`FrozenDatabase::execute_batch`] to fan
    /// a batch across the worker pool.
    ///
    /// ```
    /// use sparqlog::SparqLog;
    ///
    /// let mut engine = SparqLog::new();
    /// engine
    ///     .load_turtle(
    ///         "@prefix ex: <http://ex.org/> .
    ///          ex:a ex:p ex:b . ex:b ex:p ex:c .",
    ///     )
    ///     .unwrap();
    /// let frozen = engine.freeze();
    /// let q = "PREFIX ex: <http://ex.org/> SELECT ?z WHERE { ex:a ex:p+ ?z }";
    /// // `&frozen` is all a thread needs:
    /// std::thread::scope(|s| {
    ///     let a = s.spawn(|| frozen.execute(q).unwrap().len());
    ///     let b = s.spawn(|| frozen.execute(q).unwrap().len());
    ///     assert_eq!(a.join().unwrap(), 2);
    ///     assert_eq!(b.join().unwrap(), 2);
    /// });
    /// ```
    pub fn freeze(self) -> FrozenDatabase {
        FrozenDatabase::new(self.db.freeze(), self.options)
    }

    /// Migrates the engine into a [`Store`](crate::Store): the loaded
    /// data, evaluation options and ontology rules all carry over, and
    /// the result supports the full read/write lifecycle
    /// (snapshots, write sessions, SPARQL Update). Unlike
    /// [`SparqLog::freeze`] this is not one-way.
    pub fn into_store(self) -> crate::Store {
        crate::Store::from_parts(self.db, self.options, self.ontology)
    }
}

impl From<SparqLog> for crate::Store {
    fn from(engine: SparqLog) -> Self {
        engine.into_store()
    }
}
