//! The data translation method **T_D** (paper §4.1.1, Appendix A.1).
//!
//! Translates an RDF dataset into Datalog± facts and the auxiliary rules
//! every translated query relies on:
//!
//! * `iri/1`, `literal/1`, `bnode/1` facts for every RDF term;
//! * `term/1` rules (Def. A.1);
//! * `triple/4` facts, with `"default"` as the default graph's name;
//! * `named/1` facts for the named graphs;
//! * `null/1` and the compatibility predicate `comp/3` (Def. A.2);
//! * `subjectOrObject/2` (Def. A.17, extended with the graph argument so
//!   zero-length paths are computed per graph).

use std::sync::Arc;

use sparqlog_datalog::{AtomArg, Const, Database, Program, RuleBuilder, Sym, SymbolTable};
use sparqlog_rdf::vocab::xsd;
use sparqlog_rdf::{Dataset, Graph, LiteralKind, Term};

/// Predicate names used by the translation.
pub mod preds {
    /// `iri/1` — every IRI term of the dataset.
    pub const IRI: &str = "iri";
    /// `literal/1` — every literal term.
    pub const LITERAL: &str = "literal";
    /// `bnode/1` — every blank-node term.
    pub const BNODE: &str = "bnode";
    /// `term/1` — the union of the three term classes (Def. A.1).
    pub const TERM: &str = "term";
    /// `triple/4` — `(S, P, O, graph)` facts.
    pub const TRIPLE: &str = "triple";
    /// `named/1` — the named graphs of the dataset.
    pub const NAMED: &str = "named";
    /// `null/1` — the distinguished unbound marker (Def. A.2).
    pub const NULL: &str = "null";
    /// `comp/3` — the compatibility predicate of Def. A.2.
    pub const COMP: &str = "comp";
    /// `subjectOrObject/2` — path endpoints per graph (Def. A.17).
    pub const SUBJECT_OR_OBJECT: &str = "subjectOrObject";
    /// The name of the default graph in the `triple/4` representation.
    pub const DEFAULT_GRAPH: &str = "default";
}

/// Converts an RDF term into a Datalog constant.
///
/// Literals typed `xsd:string` are normalised to plain strings (RDF 1.1
/// makes them identical), which keeps term equality in Datalog aligned
/// with RDF term equality.
pub fn term_to_const(term: &Term, symbols: &SymbolTable) -> Const {
    match term {
        Term::Iri(i) => Const::Iri(symbols.intern(i)),
        Term::BlankNode(b) => Const::Bnode(symbols.intern(b)),
        Term::Literal(l) => match l.kind() {
            LiteralKind::Plain => Const::Str(symbols.intern(l.lexical())),
            LiteralKind::Lang(tag) => {
                Const::LangStr(symbols.intern(l.lexical()), symbols.intern(tag))
            }
            LiteralKind::Typed(dt) if dt.as_ref() == xsd::STRING => {
                Const::Str(symbols.intern(l.lexical()))
            }
            LiteralKind::Typed(dt) => Const::Typed(symbols.intern(l.lexical()), symbols.intern(dt)),
        },
    }
}

/// Converts a Datalog constant back into an RDF term (`None` for `null`,
/// machine values are mapped to their XSD literals, Skolem terms become
/// blank nodes — they are labelled nulls, which is exactly what blank
/// nodes denote).
pub fn const_to_term(c: &Const, symbols: &SymbolTable) -> Option<Term> {
    match c {
        Const::Iri(s) => Some(Term::iri(symbols.resolve(*s))),
        Const::Bnode(s) => Some(Term::bnode(symbols.resolve(*s))),
        Const::Str(s) => Some(Term::literal(symbols.resolve(*s))),
        Const::LangStr(lex, lang) => Some(Term::lang_literal(
            symbols.resolve(*lex),
            &symbols.resolve(*lang),
        )),
        Const::Typed(lex, dt) => Some(Term::typed_literal(
            symbols.resolve(*lex),
            symbols.resolve(*dt),
        )),
        Const::Int(i) => Some(Term::integer(*i)),
        Const::Float(f) => Some(Term::double(f.0)),
        Const::Bool(b) => Some(Term::boolean(*b)),
        Const::Null => None,
        Const::Skolem(t) => {
            let mut label = format!("sk_{}", symbols.resolve(t.functor));
            for a in &t.args {
                label.push('_');
                label.push_str(&format!("{:x}", fx_hash_const(a)));
            }
            Some(Term::bnode(label))
        }
    }
}

fn fx_hash_const(c: &Const) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = sparqlog_datalog::fxhash::FxHasher::default();
    c.hash(&mut h);
    h.finish()
}

/// Loads a dataset's facts into `db` (the fact part of T_D).
pub fn load_dataset(ds: &Dataset, db: &mut Database) {
    let symbols = db.symbols().clone();
    let default = Const::Str(symbols.intern(preds::DEFAULT_GRAPH));
    load_graph_facts(ds.default_graph(), &default, db, &symbols);
    for (name, graph) in ds.named_graphs() {
        let g = Const::Iri(symbols.intern(name));
        db.add_fact_str(preds::NAMED, vec![g.clone()]);
        load_graph_facts(graph, &g, db, &symbols);
    }
}

fn load_graph_facts(graph: &Graph, graph_const: &Const, db: &mut Database, symbols: &SymbolTable) {
    for term in graph.terms() {
        let c = term_to_const(term, symbols);
        let pred = match term {
            Term::Iri(_) => preds::IRI,
            Term::BlankNode(_) => preds::BNODE,
            Term::Literal(_) => preds::LITERAL,
        };
        db.add_fact_str(pred, vec![c]);
    }
    for (s, p, o) in graph.iter() {
        db.add_fact_str(
            preds::TRIPLE,
            vec![
                term_to_const(s, symbols),
                term_to_const(p, symbols),
                term_to_const(o, symbols),
                graph_const.clone(),
            ],
        );
    }
}

/// Builds the auxiliary-rule program of T_D: `term/1`, `null/1`, `comp/3`
/// and `subjectOrObject/2`. Evaluated once at load time; all translated
/// queries then reference the materialised predicates.
pub fn base_program(symbols: &Arc<SymbolTable>) -> Program {
    let mut program = Program::new();
    let term = symbols.intern(preds::TERM);
    let comp = symbols.intern(preds::COMP);
    let null = symbols.intern(preds::NULL);
    let soo = symbols.intern(preds::SUBJECT_OR_OBJECT);
    let triple = symbols.intern(preds::TRIPLE);

    // null("null").  (Def. A.2 — we use the distinguished Null constant.)
    program.facts.push((null, vec![Const::Null]));

    // term(X) :- iri(X) / literal(X) / bnode(X).   (Def. A.1)
    for src in [preds::IRI, preds::LITERAL, preds::BNODE] {
        let mut b = RuleBuilder::new();
        let hx = b.v("X");
        b.head(term, vec![hx]);
        let x = b.v("X");
        b.pos(symbols.intern(src), vec![x]);
        program.rules.push(b.build());
    }

    // comp(X, X, X) :- term(X).
    {
        let mut b = RuleBuilder::new();
        let (h1, h2, h3) = (b.v("X"), b.v("X"), b.v("X"));
        b.head(comp, vec![h1, h2, h3]);
        let x = b.v("X");
        b.pos(term, vec![x]);
        program.rules.push(b.build());
    }
    // comp(X, Z, X) :- term(X), null(Z).
    {
        let mut b = RuleBuilder::new();
        let (h1, h2, h3) = (b.v("X"), b.v("Z"), b.v("X"));
        b.head(comp, vec![h1, h2, h3]);
        let x = b.v("X");
        b.pos(term, vec![x]);
        let z = b.v("Z");
        b.pos(null, vec![z]);
        program.rules.push(b.build());
    }
    // comp(Z, X, X) :- term(X), null(Z).
    {
        let mut b = RuleBuilder::new();
        let (h1, h2, h3) = (b.v("Z"), b.v("X"), b.v("X"));
        b.head(comp, vec![h1, h2, h3]);
        let x = b.v("X");
        b.pos(term, vec![x]);
        let z = b.v("Z");
        b.pos(null, vec![z]);
        program.rules.push(b.build());
    }
    // comp(Z, Z, Z) :- null(Z).
    {
        let mut b = RuleBuilder::new();
        let (h1, h2, h3) = (b.v("Z"), b.v("Z"), b.v("Z"));
        b.head(comp, vec![h1, h2, h3]);
        let z = b.v("Z");
        b.pos(null, vec![z]);
        program.rules.push(b.build());
    }

    // subjectOrObject(X, D) :- triple(X, P, Y, D).
    // subjectOrObject(Y, D) :- triple(X, P, Y, D).   (Def. A.17 + graph)
    for subject_side in [true, false] {
        let mut b = RuleBuilder::new();
        let hv = if subject_side { b.v("X") } else { b.v("Y") };
        let hd = b.v("D");
        b.head(soo, vec![hv, hd]);
        let (x, p, y, d) = (b.v("X"), b.v("P"), b.v("Y"), b.v("D"));
        b.pos(triple, vec![x, p, y, d]);
        program.rules.push(b.build());
    }

    program
}

/// Creates an [`AtomArg`] for a constant (convenience for the translator).
pub fn carg(c: Const) -> AtomArg {
    AtomArg::Const(c)
}

/// The default-graph constant.
pub fn default_graph_const(symbols: &SymbolTable) -> Const {
    Const::Str(symbols.intern(preds::DEFAULT_GRAPH))
}

/// Interns a predicate name.
pub fn sym(symbols: &SymbolTable, name: &str) -> Sym {
    symbols.intern(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_datalog::{evaluate, EvalOptions};
    use sparqlog_rdf::Triple;

    fn film_dataset() -> Dataset {
        // §3.1 of the paper.
        let mut g = Graph::new();
        g.insert(Triple::new(
            Term::iri("http://ex.org/glucas"),
            Term::iri("http://ex.org/name"),
            Term::literal("George"),
        ));
        g.insert(Triple::new(
            Term::iri("http://ex.org/glucas"),
            Term::iri("http://ex.org/lastname"),
            Term::literal("Lucas"),
        ));
        g.insert(Triple::new(
            Term::bnode("b1"),
            Term::iri("http://ex.org/name"),
            Term::literal("Steven"),
        ));
        Dataset::from_default_graph(g)
    }

    #[test]
    fn facts_generated_per_term_and_triple() {
        let mut db = Database::new();
        load_dataset(&film_dataset(), &mut db);
        let s = db.symbols().clone();
        assert_eq!(db.relation(s.get("triple").unwrap()).unwrap().len(), 3);
        assert_eq!(db.relation(s.get("iri").unwrap()).unwrap().len(), 3);
        assert_eq!(db.relation(s.get("literal").unwrap()).unwrap().len(), 3);
        assert_eq!(db.relation(s.get("bnode").unwrap()).unwrap().len(), 1);
    }

    #[test]
    fn base_rules_materialise_term_and_comp() {
        let mut db = Database::new();
        load_dataset(&film_dataset(), &mut db);
        let prog = base_program(db.symbols());
        evaluate(&prog, &mut db, &EvalOptions::default()).unwrap();
        let s = db.symbols().clone();
        // 7 distinct terms (3 iris + 3 literals + 1 bnode).
        assert_eq!(db.relation(s.get("term").unwrap()).unwrap().len(), 7);
        // comp: one (X,X,X) per term + two null rules per term + (null,null,null).
        assert_eq!(
            db.relation(s.get("comp").unwrap()).unwrap().len(),
            7 * 3 + 1
        );
        // subjectOrObject: subjects {glucas, b1} + objects {George, Lucas, Steven}.
        assert_eq!(
            db.relation(s.get("subjectOrObject").unwrap())
                .unwrap()
                .len(),
            5
        );
    }

    #[test]
    fn named_graphs_get_named_facts() {
        let mut ds = Dataset::new();
        ds.named_graph_mut("http://g1").insert(Triple::new(
            Term::iri("a"),
            Term::iri("p"),
            Term::iri("b"),
        ));
        let mut db = Database::new();
        load_dataset(&ds, &mut db);
        let s = db.symbols().clone();
        assert_eq!(db.relation(s.get("named").unwrap()).unwrap().len(), 1);
        let triples = db.relation(s.get("triple").unwrap()).unwrap();
        let t = db.decode_tuple(triples.iter().next().unwrap());
        assert_eq!(t[3], Const::Iri(s.intern("http://g1")));
    }

    #[test]
    fn term_const_roundtrip() {
        let symbols = SymbolTable::new();
        for t in [
            Term::iri("http://a"),
            Term::bnode("b"),
            Term::literal("plain"),
            Term::lang_literal("chat", "fr"),
            Term::integer(5),
            Term::boolean(true),
        ] {
            let c = term_to_const(&t, &symbols);
            let back = const_to_term(&c, &symbols).unwrap();
            // xsd:integer/boolean literals survive as typed literals.
            assert_eq!(t, back, "{t}");
        }
        // xsd:string normalises to plain.
        let t = Term::typed_literal("x", xsd::STRING);
        let c = term_to_const(&t, &symbols);
        assert_eq!(const_to_term(&c, &symbols).unwrap(), Term::literal("x"));
        // null has no term.
        assert_eq!(const_to_term(&Const::Null, &symbols), None);
    }

    #[test]
    fn skolem_consts_become_blank_nodes() {
        let symbols = SymbolTable::new();
        let c = Const::skolem(symbols.intern("f"), vec![Const::Int(1)]);
        let t = const_to_term(&c, &symbols).unwrap();
        assert!(t.is_bnode());
        // Deterministic.
        assert_eq!(t, const_to_term(&c, &symbols).unwrap());
    }
}
