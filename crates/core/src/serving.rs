//! Concurrent query serving: frozen engine snapshots and the parallel
//! query-batch API.
//!
//! Since the [`Store`](crate::Store) redesign, [`FrozenDatabase`] is
//! the *serving layer* under [`Store::snapshot`](crate::Store::snapshot)
//! rather than a one-way terminal state: a [`Snapshot`](crate::Snapshot)
//! derefs to this type, and the store's commit path thaws the underlying
//! [`FrozenDb`] back into a mutable database and re-freezes it
//! incrementally. [`SparqLog::freeze`](crate::SparqLog::freeze) remains
//! as the direct (one-way) route for freeze-once workloads.
//!
//! The paper's experiments run one query at a time, but the workloads its
//! reproduction targets — see the query-log studies cited in PAPERS.md —
//! are floods of small, read-only queries over a materialised store.
//! Those are embarrassingly parallel: once loading and materialisation
//! are done, nothing about executing a query needs `&mut` access.
//!
//! [`SparqLog::freeze`](crate::SparqLog::freeze) makes that lifecycle split explicit. It consumes
//! the mutable engine and returns a [`FrozenDatabase`]: an
//! index-complete, read-only snapshot whose every query entry point
//! takes `&self`, so any number of threads can translate and evaluate
//! queries against it concurrently (it is `Send + Sync`; wrap it in an
//! `Arc` or hand out `&` references from a scope). Three pieces make
//! this work:
//!
//! * the **snapshot** ([`sparqlog_datalog::FrozenDb`]): relations frozen
//!   after materialisation with all per-mask hash indexes pre-built, so
//!   reads never lock; each query derives its answer predicates into a
//!   private overlay database that falls through to the snapshot;
//! * the **translation cache**: translated programs are memoised by
//!   query text, so repeated query shapes — the common case in real
//!   query logs — skip the SPARQL→Datalog pipeline entirely;
//! * the **batch fan-out** ([`FrozenDatabase::execute_batch`]): a batch
//!   of queries is spread across the evaluator's scoped worker pool
//!   ([`sparqlog_datalog::run_scoped`]), one overlay per query, with
//!   results returned in input order regardless of scheduling.
//!
//! ```
//! use sparqlog::SparqLog;
//!
//! let mut engine = SparqLog::new();
//! engine
//!     .load_turtle(
//!         r#"@prefix ex: <http://ex.org/> .
//!            ex:spain ex:borders ex:france .
//!            ex:france ex:borders ex:belgium ."#,
//!     )
//!     .unwrap();
//! let frozen = engine.freeze(); // no further loads; queries go parallel
//! let queries = [
//!     "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:borders ex:france }",
//!     "PREFIX ex: <http://ex.org/> ASK { ex:spain ex:borders ex:belgium }",
//! ];
//! let results = frozen.execute_batch(&queries);
//! assert_eq!(results[0].as_ref().unwrap().len(), 1); // spain
//! assert!(results[1].as_ref().unwrap().is_empty()); // ASK ⇒ false
//! ```

use std::sync::{Arc, Mutex, RwLock};

use sparqlog_datalog::{
    demand_prunes, demand_subprogram, evaluate_frozen, evaluate_frozen_with_plan,
    fxhash::FxHashMap, magic_sets_rewrite_analyzed, plan_program, run_scoped_caught, Budget,
    CancelToken, DbStats, EvalError, EvalOptions, EvalStats, FrozenDb, Mask, Program, ProgramPlan,
    QueryProfile, StatsFingerprint, Sym, SymbolTable,
};
use sparqlog_obs::MetricsRegistry;
use sparqlog_sparql::{parse_query, update_keyword, Query};

use crate::engine::SparqLogError;
use crate::metrics::CoreMetrics;
use crate::query_translation::{translate_query, TranslatedQuery};
use crate::solution::{extract_results, QueryResults};

/// A cached physical plan: the program it was computed for (the
/// magic-sets rewrite of the translation when it applied *and* its
/// measured demand pruned — see [`FrozenDatabase::compute_plan`] — else
/// `None` meaning the translation's own program), the plan itself, and
/// the statistics fingerprint it is valid against.
struct PlanEntry {
    /// The magic-rewritten program, when the rewrite applied and won.
    program: Option<Program>,
    plan: ProgramPlan,
    /// Row counts of the read relations at planning time — the entry is
    /// discarded (and the query replanned) once these drift past the
    /// threshold ([`StatsFingerprint::drifted`]).
    fingerprint: StatsFingerprint,
}

/// A parsed-and-translated query, shared between the cache, prepared
/// handles and any executions in flight.
struct CachedQuery {
    query: Query,
    translated: TranslatedQuery,
    /// The memoised physical plan ([`PlanEntry`]). Living on the cached
    /// query rather than the snapshot, it survives commits exactly like
    /// the translation does — re-executing a [`PreparedQuery`] performs
    /// zero planning work until statistics drift.
    plan: RwLock<Option<Arc<PlanEntry>>>,
}

/// Upper bound on memoised distinct query texts. A server fed queries
/// with inline literals or generated IDs sees unboundedly many distinct
/// texts; past this cap, new texts are translated per execution instead
/// of inserted (first-come retention — the recurring shapes of a real
/// query log are seen early and stay cached).
pub const MAX_CACHED_TRANSLATIONS: usize = 4096;

/// The text-keyed translation cache plus the store's metric handles.
///
/// Owned behind an `Arc` so it outlives any single [`FrozenDatabase`]:
/// translations are data-independent (they reference interned symbols,
/// never facts), so the [`Store`](crate::Store) commit path threads one
/// cache through every snapshot it installs — hot query shapes stay warm
/// across commits instead of re-translating after every write. The
/// metrics registry rides along for the same reason: counters must
/// survive commits, and per-store ownership keeps tests isolated.
pub(crate) struct TranslationCache {
    /// Query text → parsed + translated program. Bounded by
    /// [`MAX_CACHED_TRANSLATIONS`] (first-come retention).
    map: RwLock<FxHashMap<String, Arc<CachedQuery>>>,
    /// The store's metric families. `metrics.translations` doubles as
    /// the distinct-translation sequence that namespaces each translated
    /// program's predicates (`f1_ans0`, `f2_ans0`, ...) so programs of
    /// different queries can never collide in an overlay.
    pub(crate) metrics: CoreMetrics,
}

impl TranslationCache {
    fn new() -> Self {
        TranslationCache {
            map: RwLock::new(FxHashMap::default()),
            metrics: CoreMetrics::new(Arc::new(MetricsRegistry::new())),
        }
    }

    /// The distinct `(pred, mask)` hash indexes named by the plans of
    /// currently cached queries — what the store's commit path asks the
    /// re-frozen snapshot to build eagerly, so hot query shapes never
    /// fall back to lazy index construction after a commit.
    pub(crate) fn live_index_needs(&self) -> Vec<(Sym, Mask)> {
        let mut out: Vec<(Sym, Mask)> = Vec::new();
        for cached in self.map.read().unwrap().values() {
            if let Some(entry) = cached.plan.read().unwrap().as_ref() {
                for need in entry.plan.index_needs() {
                    if !out.contains(&need) {
                        out.push(need);
                    }
                }
            }
        }
        out
    }
}

/// A query parsed and translated once, reusable across executions,
/// snapshots and commits of the store that prepared it.
///
/// Produced by [`Store::prepare`](crate::Store::prepare),
/// `Snapshot::prepare` or [`FrozenDatabase::prepare`]. The handle is
/// `Send + Sync` and cheap to clone (one `Arc` bump); because
/// translations are data-independent, a handle prepared before a commit
/// keeps working on every later snapshot of the same store. Executing it
/// against a *different* store returns
/// [`SparqLogError::ForeignPrepared`] — the translated program is tied
/// to its store's symbol table.
///
/// ```
/// use sparqlog::Store;
///
/// let store = Store::new();
/// store
///     .update("PREFIX ex: <http://ex.org/> INSERT DATA { ex:a ex:p ex:b }")
///     .unwrap();
/// let q = store
///     .prepare("PREFIX ex: <http://ex.org/> SELECT ?o WHERE { ex:a ex:p ?o }")
///     .unwrap();
/// assert_eq!(store.snapshot().execute_prepared(&q).unwrap().len(), 1);
/// // ... the handle survives commits:
/// store
///     .update("PREFIX ex: <http://ex.org/> INSERT DATA { ex:a ex:p ex:c }")
///     .unwrap();
/// assert_eq!(store.snapshot().execute_prepared(&q).unwrap().len(), 2);
/// ```
#[derive(Clone)]
pub struct PreparedQuery {
    inner: Arc<CachedQuery>,
    /// Identity of the preparing store's symbol table, checked at
    /// execution so a handle cannot silently mis-resolve against an
    /// unrelated store.
    symbols: Arc<SymbolTable>,
}

impl PreparedQuery {
    /// The parsed query this handle executes.
    pub fn query(&self) -> &Query {
        &self.inner.query
    }
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("query", &self.inner.query.to_string())
            .finish()
    }
}

/// A frozen, read-only engine snapshot serving concurrent queries.
///
/// Produced by [`SparqLog::freeze`](crate::SparqLog::freeze). All query
/// entry points take
/// `&self`; the type is `Send + Sync`, so threads may share one instance
/// directly or behind an `Arc`. No data can be loaded any more — the
/// mutate phase ended at the freeze.
///
/// Executing a query touches three shared structures, each safely
/// concurrent: the snapshot (read-only), the symbol table / term
/// dictionary (internally synchronised interners), and the translation
/// cache (an `RwLock` map; hits are read-locked only). Everything else —
/// the evaluation overlay, staging buffers, solution extraction — is
/// private to the executing thread.
pub struct FrozenDatabase {
    base: Arc<FrozenDb>,
    options: EvalOptions,
    /// The translation cache — shared with every other snapshot of the
    /// owning [`Store`](crate::Store), so it survives commits.
    cache: Arc<TranslationCache>,
}

impl FrozenDatabase {
    pub(crate) fn new(base: Arc<FrozenDb>, options: EvalOptions) -> Self {
        Self::with_cache(base, options, Arc::new(TranslationCache::new()))
    }

    /// Wraps a snapshot around an existing translation cache — the
    /// [`Store`](crate::Store) commit path uses this to carry the cache
    /// (and its predicate-namespace counter) across commits.
    pub(crate) fn with_cache(
        base: Arc<FrozenDb>,
        options: EvalOptions,
        cache: Arc<TranslationCache>,
    ) -> Self {
        FrozenDatabase {
            base,
            options,
            cache,
        }
    }

    /// The shared translation cache (for re-wrapping by the store).
    pub(crate) fn cache_handle(&self) -> Arc<TranslationCache> {
        self.cache.clone()
    }

    /// Dismantles the serving wrapper back into its snapshot, options
    /// and translation cache — the [`Store`](crate::Store) commit path
    /// reclaims the snapshot through this (and thaws it in place when no
    /// other handle is alive).
    pub(crate) fn into_base(self) -> (Arc<FrozenDb>, EvalOptions, Arc<TranslationCache>) {
        (self.base, self.options, self.cache)
    }

    /// The shared symbol table.
    pub fn symbols(&self) -> &Arc<SymbolTable> {
        self.base.symbols()
    }

    /// The underlying frozen Datalog snapshot.
    pub fn database(&self) -> &Arc<FrozenDb> {
        &self.base
    }

    /// The evaluation options every query runs with (inherited from the
    /// engine at freeze time).
    pub fn options(&self) -> &EvalOptions {
        &self.options
    }

    /// Number of distinct query texts currently memoised in the
    /// translation cache (shared with every snapshot of the owning
    /// store, so commits do not reset it).
    pub fn cached_translations(&self) -> usize {
        self.cache.map.read().unwrap().len()
    }

    /// Total number of parse+translate passes ever performed through
    /// this handle's (store-shared) translation cache. Cache hits and
    /// prepared-query executions do not increment it — the counter is
    /// how tests prove a hot query shape stayed warm across a commit.
    /// Also exported as `sparqlog_translations_total` on
    /// [`Self::metrics`].
    pub fn translations_performed(&self) -> usize {
        self.cache.metrics.translations.get() as usize
    }

    /// The metrics registry shared by every snapshot of the owning
    /// store — the registry `GET /metrics` renders. Other layers (the
    /// HTTP server) register their own families into it so one scrape
    /// covers the whole stack.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.cache.metrics.registry
    }

    /// The cached per-family handles (crate-internal recording sites).
    pub(crate) fn core_metrics(&self) -> &CoreMetrics {
        &self.cache.metrics
    }

    /// Parses and translates a query once, returning a reusable
    /// [`PreparedQuery`] handle. Goes through the translation cache, so
    /// preparing an already-hot text is free; the returned handle skips
    /// even the cache's text hash on execution.
    pub fn prepare(&self, text: &str) -> Result<PreparedQuery, SparqLogError> {
        Ok(self.wrap_prepared(self.translation(text)?))
    }

    /// [`Self::prepare`] for an already-parsed query (no text cache —
    /// the translation is performed fresh and owned by the handle).
    pub fn prepare_query(&self, query: Query) -> Result<PreparedQuery, SparqLogError> {
        Ok(self.wrap_prepared(self.translate_entry(query)?))
    }

    fn wrap_prepared(&self, inner: Arc<CachedQuery>) -> PreparedQuery {
        PreparedQuery {
            inner,
            symbols: self.base.symbols().clone(),
        }
    }

    /// Guards against executing a handle prepared by a different store:
    /// its program's interned symbols would mis-resolve here.
    fn check_prepared(&self, p: &PreparedQuery) -> Result<(), SparqLogError> {
        if Arc::ptr_eq(&p.symbols, self.base.symbols()) {
            Ok(())
        } else {
            Err(SparqLogError::ForeignPrepared)
        }
    }

    /// Executes a [`PreparedQuery`]: no parsing, no translation, no
    /// cache probe — straight to evaluation against this snapshot.
    pub fn execute_prepared(&self, p: &PreparedQuery) -> Result<QueryResults, SparqLogError> {
        self.check_prepared(p)?;
        self.run(&p.inner, &self.options)
    }

    /// [`Self::execute_prepared`] under an explicit [`Budget`], which
    /// replaces the snapshot's default budget for this execution only.
    pub fn execute_prepared_with_budget(
        &self,
        p: &PreparedQuery,
        budget: &Budget,
    ) -> Result<QueryResults, SparqLogError> {
        self.check_prepared(p)?;
        self.run(&p.inner, &self.options_with(budget))
    }

    /// [`Self::execute_batch`] over prepared handles: fans evaluation
    /// out over the worker pool with zero per-query translation work,
    /// returning results in input order.
    pub fn execute_prepared_batch(
        &self,
        queries: &[PreparedQuery],
    ) -> Vec<Result<QueryResults, SparqLogError>> {
        self.batch(queries.len(), &self.options.budget, |i| {
            self.check_prepared(&queries[i])?;
            Ok(queries[i].inner.clone())
        })
    }

    /// [`Self::execute_prepared_batch`] under an explicit [`Budget`]
    /// (see [`Self::execute_batch_with_budget`] for the semantics).
    pub fn execute_prepared_batch_with_budget(
        &self,
        queries: &[PreparedQuery],
        budget: &Budget,
    ) -> Vec<Result<QueryResults, SparqLogError>> {
        self.batch(queries.len(), budget, |i| {
            self.check_prepared(&queries[i])?;
            Ok(queries[i].inner.clone())
        })
    }

    /// Parses, translates (or recalls), evaluates and extracts one query.
    ///
    /// Takes `&self`: any number of threads may call this concurrently.
    /// The first execution of a query text pays parsing + translation and
    /// memoises both; later executions of the same text go straight to
    /// evaluation.
    ///
    /// ```
    /// use sparqlog::SparqLog;
    ///
    /// let mut engine = SparqLog::new();
    /// engine
    ///     .load_turtle("@prefix ex: <http://ex.org/> . ex:a ex:p ex:b .")
    ///     .unwrap();
    /// let frozen = engine.freeze();
    /// let q = "PREFIX ex: <http://ex.org/> SELECT ?o WHERE { ex:a ex:p ?o }";
    /// assert_eq!(frozen.execute(q).unwrap().len(), 1);
    /// assert_eq!(frozen.execute(q).unwrap().len(), 1); // cached translation
    /// assert_eq!(frozen.cached_translations(), 1);
    /// ```
    pub fn execute(&self, query_str: &str) -> Result<QueryResults, SparqLogError> {
        let cached = self.translation(query_str)?;
        self.run(&cached, &self.options)
    }

    /// [`Self::execute`] under an explicit [`Budget`], which replaces the
    /// snapshot's default budget for this execution only. A query that
    /// crosses a limit (or whose [`CancelToken`] fires) returns
    /// [`SparqLogError::Aborted`] within one evaluation batch of the
    /// limit, leaving the snapshot untouched.
    ///
    /// ```
    /// use std::time::Duration;
    /// use sparqlog::{Budget, SparqLog};
    ///
    /// let mut engine = SparqLog::new();
    /// engine
    ///     .load_turtle("@prefix ex: <http://ex.org/> . ex:a ex:p ex:b .")
    ///     .unwrap();
    /// let frozen = engine.freeze();
    /// let q = "PREFIX ex: <http://ex.org/> SELECT ?o WHERE { ex:a ex:p ?o }";
    /// let budget = Budget::new().with_timeout(Duration::from_secs(30));
    /// assert_eq!(frozen.execute_with_budget(q, &budget).unwrap().len(), 1);
    /// ```
    pub fn execute_with_budget(
        &self,
        query_str: &str,
        budget: &Budget,
    ) -> Result<QueryResults, SparqLogError> {
        let cached = self.translation(query_str)?;
        self.run(&cached, &self.options_with(budget))
    }

    /// Executes an already-parsed query (translated fresh each call — the
    /// translation cache is keyed by query text; use [`Self::execute`]
    /// for text-level memoisation).
    pub fn execute_query(&self, query: &Query) -> Result<QueryResults, SparqLogError> {
        let cached = self.translate_entry(query.clone())?;
        self.run(&cached, &self.options)
    }

    /// Executes a batch of queries across the scoped worker pool,
    /// returning one result per query **in input order**.
    ///
    /// The fan-out width is the engine's effective thread count
    /// ([`EvalOptions::resolved_threads`], capped at the batch length);
    /// each query evaluates single-threaded inside the batch —
    /// inter-query parallelism replaces the intra-query parallelism a
    /// lone [`Self::execute`] call would use, so results are identical to
    /// the sequential ones whatever the width. Per-query failures come
    /// back as `Err` entries without affecting the rest of the batch.
    ///
    /// ```
    /// use sparqlog::SparqLog;
    ///
    /// let mut engine = SparqLog::new();
    /// engine
    ///     .load_turtle("@prefix ex: <http://ex.org/> . ex:a ex:p ex:b .")
    ///     .unwrap();
    /// let frozen = engine.freeze();
    /// let results = frozen.execute_batch(&[
    ///     "PREFIX ex: <http://ex.org/> SELECT ?o WHERE { ex:a ex:p ?o }",
    ///     "this is not sparql",
    /// ]);
    /// assert_eq!(results[0].as_ref().unwrap().len(), 1);
    /// assert!(results[1].is_err()); // the batch keeps going
    /// ```
    pub fn execute_batch(&self, queries: &[&str]) -> Vec<Result<QueryResults, SparqLogError>> {
        self.batch(queries.len(), &self.options.budget, |i| {
            self.translation(queries[i])
        })
    }

    /// [`Self::execute_batch`] under an explicit [`Budget`], which
    /// replaces the snapshot's default budget for every query in the
    /// batch. Each query gets the budget individually (the timeout clock
    /// starts when *its* evaluation starts, row/dictionary caps are
    /// per-query), except cancellation, which is batch-wide: the first
    /// query to return [`SparqLogError::Aborted`] cancels its still-
    /// running siblings, so a batch against an overloaded store drains in
    /// roughly one query's worth of time instead of `n`. Ordinary
    /// per-query failures (parse errors, unsupported features) do *not*
    /// cancel siblings — they come back as `Err` entries in input order
    /// exactly as in [`Self::execute_batch`].
    pub fn execute_batch_with_budget(
        &self,
        queries: &[&str],
        budget: &Budget,
    ) -> Vec<Result<QueryResults, SparqLogError>> {
        self.batch(queries.len(), budget, |i| self.translation(queries[i]))
    }

    /// [`Self::execute_batch`] over already-parsed queries (no text
    /// cache; each query is translated once for the batch).
    pub fn execute_query_batch(
        &self,
        queries: &[Query],
    ) -> Vec<Result<QueryResults, SparqLogError>> {
        self.batch(queries.len(), &self.options.budget, |i| {
            self.translate_entry(queries[i].clone())
        })
    }

    /// This snapshot's options with `budget` substituted — the per-call
    /// override used by every `*_with_budget` entry point.
    fn options_with(&self, budget: &Budget) -> EvalOptions {
        EvalOptions {
            budget: budget.clone(),
            ..self.options.clone()
        }
    }

    /// Shared batch driver: resolves each query to a translation, fans
    /// evaluation out over the scoped pool, and collects results in input
    /// order via per-job slots.
    ///
    /// Two robustness layers (PR 7):
    ///
    /// * **Sibling cancellation** — when the batch is governed, every
    ///   query runs under a child of one group [`CancelToken`] (itself a
    ///   child of the caller's token, so external cancellation still
    ///   propagates); the first governor abort cancels the group.
    /// * **Panic containment** — jobs run under
    ///   [`run_scoped_caught`], so a panicking query (a bug, not a policy
    ///   outcome) yields an `Err` in its own slot while every other
    ///   query's result is returned intact.
    fn batch(
        &self,
        n: usize,
        budget: &Budget,
        translation_of: impl Fn(usize) -> Result<Arc<CachedQuery>, SparqLogError> + Sync,
    ) -> Vec<Result<QueryResults, SparqLogError>> {
        let threads = self.options.resolved_threads().min(n.max(1));
        let (group, effective) = if budget.is_unlimited() {
            // Ungoverned batch: no abort can occur, so skip the token and
            // keep the per-query evaluations on the ungoverned fast path.
            (None, budget.clone())
        } else {
            let group = match budget.cancel_token() {
                Some(t) => t.child(),
                None => CancelToken::new(),
            };
            (Some(group.clone()), budget.clone().with_cancel(group))
        };
        // Under fan-out each query runs the deterministic single-threaded
        // evaluator: the pool's workers are already saturated by whole
        // queries, and nesting a second pool per query would oversubscribe.
        let per_query = EvalOptions {
            threads: Some(1),
            budget: effective,
            ..self.options.clone()
        };
        let slots: Vec<Mutex<Option<Result<QueryResults, SparqLogError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let panics = run_scoped_caught(threads, n, &|i| {
            let result = translation_of(i).and_then(|cached| self.run(&cached, &per_query));
            if let (Some(group), Err(SparqLogError::Aborted { .. })) = (&group, &result) {
                group.cancel();
            }
            *slots[i].lock().unwrap() = Some(result);
        });
        for p in panics {
            let mut slot = slots[p.job].lock().unwrap_or_else(|e| e.into_inner());
            *slot = Some(Err(SparqLogError::Eval(EvalError::Internal(format!(
                "query worker panicked: {}",
                p.message
            )))));
        }
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every batch job ran or was caught")
            })
            .collect()
    }

    /// The memoised translation for `text`, parsing and translating on
    /// the first sighting. On a cache race the first inserted entry wins
    /// and is what later executions reuse; the loser's translation is
    /// used once and dropped (both are correct — prefixes only namespace
    /// predicates). Once [`MAX_CACHED_TRANSLATIONS`] distinct texts are
    /// memoised, further texts translate per execution without
    /// inserting, bounding the cache's memory.
    fn translation(&self, text: &str) -> Result<Arc<CachedQuery>, SparqLogError> {
        panic_marker_hook(text);
        if let Some(hit) = self.cache.map.read().unwrap().get(text) {
            return Ok(hit.clone());
        }
        let query = match parse_query(text) {
            Ok(q) => q,
            // An update string would otherwise surface as a baffling
            // "expected SELECT or ASK" parse error — recognise it and
            // say what is actually wrong with *this entry point*.
            Err(e) => match update_keyword(text) {
                Some(kw) => return Err(SparqLogError::ReadOnly(kw)),
                None => return Err(e.into()),
            },
        };
        let entry = self.translate_entry(query)?;
        let mut cache = self.cache.map.write().unwrap();
        if cache.len() >= MAX_CACHED_TRANSLATIONS && !cache.contains_key(text) {
            return Ok(entry);
        }
        Ok(cache.entry(text.to_string()).or_insert(entry).clone())
    }

    /// Translates a parsed query under a fresh predicate namespace.
    fn translate_entry(&self, query: Query) -> Result<Arc<CachedQuery>, SparqLogError> {
        // Never gated on `armed`: the returned value is the `f{n}_`
        // namespace sequence, not just a statistic.
        let n = self.cache.metrics.translations.inc() as usize;
        let translated = translate_query(&query, self.base.symbols(), &format!("f{n}_"))?;
        Ok(Arc::new(CachedQuery {
            query,
            translated,
            plan: RwLock::new(None),
        }))
    }

    /// Evaluates a translated query against the snapshot in a private
    /// overlay and extracts the typed result. With planning enabled the
    /// query's cached physical plan is used (computed on the first
    /// execution, revalidated against the snapshot's statistics); with it
    /// disabled, or when the program does not stratify for planning,
    /// evaluation falls back to the unplanned path.
    fn run(
        &self,
        cached: &CachedQuery,
        options: &EvalOptions,
    ) -> Result<QueryResults, SparqLogError> {
        self.run_collect(cached, options)
            .map(|(results, _)| results)
    }

    /// [`Self::run`], also returning the evaluation statistics — and the
    /// one place query-level metrics are recorded: completed queries,
    /// duration, fixpoint work (rounds / rows / probes) and governor
    /// aborts by reason. Recording is skipped while the registry is
    /// disarmed (the overhead benchmark's A/B switch).
    fn run_collect(
        &self,
        cached: &CachedQuery,
        options: &EvalOptions,
    ) -> Result<(QueryResults, EvalStats), SparqLogError> {
        let evaluated = match self.plan_entry(cached, options) {
            Some(entry) => {
                let program = entry.program.as_ref().unwrap_or(&cached.translated.program);
                evaluate_frozen_with_plan(program, &self.base, options, Some(&entry.plan))
            }
            None => evaluate_frozen(&cached.translated.program, &self.base, options),
        };
        let m = &self.cache.metrics;
        match evaluated {
            Ok((db, stats)) => {
                if m.registry.armed() {
                    m.queries.inc();
                    m.query_duration_us
                        .observe(stats.elapsed.as_micros() as u64);
                    m.eval_rounds.add(stats.rounds as u64);
                    m.eval_rows_derived.add(stats.derived as u64);
                    m.eval_join_probes.add(stats.probes);
                }
                Ok((
                    extract_results(&cached.translated, &cached.query, &db),
                    stats,
                ))
            }
            Err(e) => {
                let e: SparqLogError = e.into();
                if m.registry.armed() {
                    if let SparqLogError::Aborted { reason, .. } = &e {
                        m.aborts.with(&[CoreMetrics::abort_label(*reason)]).inc();
                    }
                }
                Err(e)
            }
        }
    }

    /// [`Self::run`] with [`EvalOptions::profile`] armed, unboxing the
    /// profile the evaluator attaches.
    fn run_profiled(
        &self,
        cached: &CachedQuery,
        options: &EvalOptions,
    ) -> Result<(QueryResults, QueryProfile), SparqLogError> {
        let options = EvalOptions {
            profile: true,
            ..options.clone()
        };
        let (results, stats) = self.run_collect(cached, &options)?;
        let profile = stats.profile.expect("profiling was armed");
        Ok((results, *profile))
    }

    /// [`Self::execute`] with per-query profiling armed: alongside the
    /// results, returns the `EXPLAIN ANALYZE`-style [`QueryProfile`] —
    /// per-rule timings, per-round delta sizes, index builds (see
    /// [`sparqlog_datalog::QueryProfile`]). Profiling adds per-job
    /// timing overhead, so it is opt-in per call rather than an option
    /// on the snapshot.
    ///
    /// ```
    /// use sparqlog::SparqLog;
    ///
    /// let mut engine = SparqLog::new();
    /// engine
    ///     .load_turtle("@prefix ex: <http://ex.org/> . ex:a ex:p ex:b .")
    ///     .unwrap();
    /// let frozen = engine.freeze();
    /// let q = "PREFIX ex: <http://ex.org/> SELECT ?o WHERE { ex:a ex:p ?o }";
    /// let (results, profile) = frozen.execute_profiled(q).unwrap();
    /// assert_eq!(results.len(), 1);
    /// assert!(profile.render().contains("stratum 0"));
    /// ```
    pub fn execute_profiled(
        &self,
        query_str: &str,
    ) -> Result<(QueryResults, QueryProfile), SparqLogError> {
        let cached = self.translation(query_str)?;
        self.run_profiled(&cached, &self.options)
    }

    /// [`Self::execute_profiled`] under an explicit [`Budget`] (the
    /// HTTP layer's `profile=true` path: request budgets still apply).
    pub fn execute_profiled_with_budget(
        &self,
        query_str: &str,
        budget: &Budget,
    ) -> Result<(QueryResults, QueryProfile), SparqLogError> {
        let cached = self.translation(query_str)?;
        self.run_profiled(&cached, &self.options_with(budget))
    }

    /// [`Self::execute_prepared`] with per-query profiling armed (see
    /// [`Self::execute_profiled`]).
    pub fn execute_prepared_profiled(
        &self,
        p: &PreparedQuery,
    ) -> Result<(QueryResults, QueryProfile), SparqLogError> {
        self.check_prepared(p)?;
        self.run_profiled(&p.inner, &self.options)
    }

    /// The query's physical plan: a cache hit when an entry exists and
    /// the snapshot's statistics have not drifted past its fingerprint;
    /// otherwise the query is (re)planned — magic-sets rewrite first when
    /// enabled and its measured demand prunes, then cost-based ordering
    /// against the snapshot's statistics — and the entry replaced. `None`
    /// when planning is disabled or fails (the unplanned evaluation path
    /// handles both the rewrite and ordering itself).
    fn plan_entry(&self, cached: &CachedQuery, options: &EvalOptions) -> Option<Arc<PlanEntry>> {
        if !options.plan {
            return None;
        }
        let stats = self.base.stats();
        if let Some(entry) = cached.plan.read().unwrap().as_ref() {
            if !entry.fingerprint.drifted(&stats) {
                self.cache.metrics.plan_hits.inc();
                return Some(entry.clone());
            }
        }
        let entry = self.compute_plan(cached, options, &stats)?;
        *cached.plan.write().unwrap() = Some(entry.clone());
        self.cache.metrics.plans_computed.inc();
        Some(entry)
    }

    /// Plans `cached` from scratch against `stats` (the slow path of
    /// [`Self::plan_entry`]). The magic-sets rewrite is kept only when
    /// its measured demand prunes: the demand subprogram is evaluated
    /// against the snapshot (one cheap fixpoint, linear in the demanded
    /// subgraph, amortised over every execution the entry serves) — the
    /// same measurement the unplanned evaluation path performs, so the
    /// planned and unplanned paths always pick the same program. The
    /// fingerprint covers the unrewritten program's reads; the rewrite
    /// reads the same base relations (its demand predicates are derived),
    /// so the one fingerprint invalidates either choice.
    fn compute_plan(
        &self,
        cached: &CachedQuery,
        options: &EvalOptions,
        stats: &DbStats,
    ) -> Option<Arc<PlanEntry>> {
        let symbols = self.base.symbols();
        let program = &cached.translated.program;
        let rewritten = if options.magic_sets {
            magic_sets_rewrite_analyzed(program, symbols).and_then(|rw| {
                let keep = match demand_subprogram(&rw) {
                    Some(sub) => {
                        let sub_options = EvalOptions {
                            magic_sets: false,
                            plan: false,
                            threads: Some(1),
                            ..options.clone()
                        };
                        match evaluate_frozen(&sub, &self.base, &sub_options) {
                            Ok((db, _)) => demand_prunes(&rw, &db),
                            // Not measurable (e.g. timeout): keep the
                            // rewrite, the conservative pre-demotion
                            // behavior.
                            Err(_) => true,
                        }
                    }
                    None => true,
                };
                keep.then_some(rw.program)
            })
        } else {
            None
        };
        let plan = plan_program(rewritten.as_ref().unwrap_or(program), symbols, stats).ok()?;
        let fingerprint = stats.fingerprint(program);
        Some(Arc::new(PlanEntry {
            program: rewritten,
            plan,
            fingerprint,
        }))
    }

    /// The snapshot's relation statistics (row counts and per-column
    /// distinct estimates) — collected once per snapshot and carried
    /// incrementally across the store's commits.
    pub fn stats(&self) -> Arc<DbStats> {
        self.base.stats()
    }

    /// Executions served from a still-valid cached physical plan, across
    /// every snapshot sharing this store's caches. Together with
    /// [`Self::plans_computed`] this is how tests prove a
    /// [`PreparedQuery`] re-execution performs zero planning work.
    pub fn plan_cache_hits(&self) -> usize {
        self.cache.metrics.plan_hits.get() as usize
    }

    /// Physical plans computed through this store's caches: first
    /// executions and statistics-drift replans.
    pub fn plans_computed(&self) -> usize {
        self.cache.metrics.plans_computed.get() as usize
    }

    /// Renders the physical plan a [`PreparedQuery`] executes with
    /// against this snapshot: per rule the chosen atom order, the
    /// `(pred, mask)` index each probe uses and its cardinality estimate.
    /// Computes (and caches) the plan if the handle has not executed yet.
    /// A magic-sets rewrite appears here (its `__magic` guards and demand
    /// rules) exactly when its measured demand pruned — see
    /// [`sparqlog_datalog::demand_prunes`].
    /// Errors on a foreign handle; returns a diagnostic string when
    /// planning is disabled or the program cannot be planned.
    pub fn explain(&self, p: &PreparedQuery) -> Result<String, SparqLogError> {
        self.check_prepared(p)?;
        match self.plan_entry(&p.inner, &self.options) {
            Some(entry) => {
                let program = entry
                    .program
                    .as_ref()
                    .unwrap_or(&p.inner.translated.program);
                Ok(entry.plan.render(program, self.base.symbols()))
            }
            None => Ok("(no physical plan: planning disabled or program not plannable)".into()),
        }
    }
}

/// Debug-build fault injection: when `SPARQLOG_PANIC_MARKER` is set, any
/// query whose text contains the marker panics inside its batch job. The
/// panic-containment regression tests use this to prove one poisoned
/// query cannot take down its batch; release builds compile the hook out.
fn panic_marker_hook(text: &str) {
    if cfg!(debug_assertions) {
        if let Ok(marker) = std::env::var("SPARQLOG_PANIC_MARKER") {
            if !marker.is_empty() && text.contains(&marker) {
                panic!("injected fault: query contains {marker:?}");
            }
        }
    }
}

impl std::fmt::Debug for FrozenDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenDatabase")
            .field("facts", &self.base.fact_count())
            .field("cached_translations", &self.cached_translations())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SparqLog;

    const DATA: &str = r#"@prefix ex: <http://ex.org/> .
        ex:spain ex:borders ex:france .
        ex:france ex:borders ex:belgium .
        ex:belgium ex:borders ex:germany ."#;

    fn frozen() -> FrozenDatabase {
        let mut engine = SparqLog::new();
        engine.load_turtle(DATA).unwrap();
        engine.freeze()
    }

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn frozen_database_is_send_sync() {
        assert_send_sync::<FrozenDatabase>();
    }

    #[test]
    fn execute_matches_mutable_engine() {
        let q = "PREFIX ex: <http://ex.org/>
                 SELECT ?b WHERE { ex:spain ex:borders+ ?b }";
        let mut engine = SparqLog::new();
        engine.load_turtle(DATA).unwrap();
        engine.set_threads(Some(1));
        let expected = engine.execute(q).unwrap();
        let frozen = frozen();
        assert_eq!(frozen.execute(q).unwrap(), expected);
    }

    #[test]
    fn translation_cache_hits_by_text() {
        let frozen = frozen();
        let q = "PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ?a ex:borders ?b }";
        let r1 = frozen.execute(q).unwrap();
        let r2 = frozen.execute(q).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(frozen.cached_translations(), 1, "one entry, two executions");
        frozen
            .execute("PREFIX ex: <http://ex.org/> ASK { ex:spain ex:borders ?x }")
            .unwrap();
        assert_eq!(frozen.cached_translations(), 2);
    }

    #[test]
    fn batch_results_in_input_order_with_errors_inline() {
        let frozen = frozen();
        let queries = [
            "PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ex:spain ex:borders ?b }",
            "nonsense ***",
            "PREFIX ex: <http://ex.org/> ASK { ex:belgium ex:borders ex:germany }",
        ];
        let results = frozen.execute_batch(&queries);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap().len(), 1);
        assert!(results[1].is_err());
        assert_eq!(results[2].as_ref().unwrap().len(), 1, "ASK true");
    }

    #[test]
    fn update_strings_get_read_only_error_not_parse_noise() {
        let frozen = frozen();
        let err = frozen
            .execute("PREFIX ex: <http://ex.org/> INSERT DATA { ex:a ex:p ex:b }")
            .unwrap_err();
        assert_eq!(err, SparqLogError::ReadOnly("INSERT"));
        assert!(err.to_string().contains("read-only"), "{err}");
        let err = frozen.execute("CLEAR ALL").unwrap_err();
        assert_eq!(err, SparqLogError::ReadOnly("CLEAR"));
        // Genuinely malformed input still reports a parse error.
        assert!(matches!(
            frozen.execute("garbage ***").unwrap_err(),
            SparqLogError::Parse(_)
        ));
    }

    #[test]
    fn query_typed_batch() {
        let frozen = frozen();
        let queries: Vec<Query> = [
            "PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ex:spain ex:borders ?b }",
            "PREFIX ex: <http://ex.org/> SELECT ?a WHERE { ?a ex:borders ex:germany }",
        ]
        .iter()
        .map(|q| parse_query(q).unwrap())
        .collect();
        let results = frozen.execute_query_batch(&queries);
        assert_eq!(results[0].as_ref().unwrap().len(), 1);
        assert_eq!(results[1].as_ref().unwrap().len(), 1);
    }

    #[test]
    fn empty_batch() {
        assert!(frozen().execute_batch(&[]).is_empty());
    }

    #[test]
    fn prepared_reexecution_performs_zero_planning_work() {
        let frozen = frozen();
        let q = frozen
            .prepare(
                "PREFIX ex: <http://ex.org/>
                 SELECT ?a ?c WHERE { ?a ex:borders ?b . ?b ex:borders ?c }",
            )
            .unwrap();
        let first = frozen.execute_prepared(&q).unwrap();
        assert_eq!(frozen.plans_computed(), 1, "first execution plans");
        assert_eq!(frozen.plan_cache_hits(), 0);
        for _ in 0..5 {
            assert_eq!(frozen.execute_prepared(&q).unwrap(), first);
        }
        assert_eq!(frozen.plans_computed(), 1, "re-execution never replans");
        assert_eq!(frozen.plan_cache_hits(), 5);
    }

    #[test]
    fn explain_shows_probe_masks_and_estimates() {
        let frozen = frozen();
        let q = frozen
            .prepare(
                "PREFIX ex: <http://ex.org/>
                 SELECT ?a ?c WHERE { ?a ex:borders ?b . ?b ex:borders ?c }",
            )
            .unwrap();
        let text = frozen.explain(&q).unwrap();
        assert!(text.contains("order:"), "{text}");
        assert!(text.contains("mask="), "{text}");
        assert!(text.contains("est="), "{text}");
        // Explaining cached the plan; the execution below hits it.
        let computed = frozen.plans_computed();
        frozen.execute_prepared(&q).unwrap();
        assert_eq!(frozen.plans_computed(), computed);
    }

    #[test]
    fn planned_and_unplanned_results_agree() {
        let mut engine = SparqLog::new();
        engine.load_turtle(DATA).unwrap();
        let frozen = engine.freeze();
        let mut raw_engine = SparqLog::new();
        raw_engine.load_turtle(DATA).unwrap();
        let unplanned = {
            let (base, mut options, cache) = raw_engine.freeze().into_base();
            options.plan = false;
            options.magic_sets = false;
            FrozenDatabase::with_cache(base, options, cache)
        };
        for q in [
            "PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ex:spain ex:borders+ ?b }",
            "PREFIX ex: <http://ex.org/>
             SELECT ?a ?c WHERE { ?a ex:borders ?b . ?b ex:borders ?c }",
            "PREFIX ex: <http://ex.org/> ASK { ex:spain ex:borders ?x }",
        ] {
            assert_eq!(
                frozen.execute(q).unwrap(),
                unplanned.execute(q).unwrap(),
                "{q}"
            );
        }
        assert_eq!(unplanned.plans_computed(), 0, "planning stayed off");
    }

    /// `n` chain triples `ex:n0 → ex:n1 → …` (or a closed ring of `n`
    /// nodes) as Turtle.
    fn path_turtle(n: usize, ring: bool) -> String {
        let mut ttl = String::from("@prefix ex: <http://ex.org/> .\n");
        for i in 0..n {
            let succ = if ring { (i + 1) % n } else { i + 1 };
            ttl.push_str(&format!("ex:n{i} ex:p ex:n{succ} .\n"));
        }
        ttl
    }

    #[test]
    fn selective_demand_keeps_the_magic_rewrite() {
        // A path bound near the end of a 30-edge chain demands a handful
        // of nodes: planning measures that and keeps the rewrite.
        let mut engine = SparqLog::new();
        engine.load_turtle(&path_turtle(30, false)).unwrap();
        let frozen = engine.freeze();
        let q = frozen
            .prepare("PREFIX ex: <http://ex.org/> SELECT ?z WHERE { ex:n25 ex:p+ ?z }")
            .unwrap();
        assert!(
            frozen.explain(&q).unwrap().contains("__magic"),
            "selective demand keeps the rewrite"
        );
        let r = frozen.execute_prepared(&q).unwrap();
        assert_eq!(r.len(), 5, "n26..n30");
        assert_eq!(frozen.execute_prepared(&q).unwrap(), r);
    }

    #[test]
    fn non_pruning_demand_demotes_the_magic_rewrite() {
        // On a strongly-connected ring every endpoint demands every
        // node — the restriction prunes nothing and its guard joins are
        // pure overhead, so planning measures the demand fixpoint once
        // and picks the plain program instead; no execution ever pays
        // for the rewrite.
        let mut engine = SparqLog::new();
        engine.load_turtle(&path_turtle(30, true)).unwrap();
        let frozen = engine.freeze();
        let q = frozen
            .prepare("PREFIX ex: <http://ex.org/> SELECT ?z WHERE { ex:n0 ex:p+ ?z }")
            .unwrap();
        assert!(
            !frozen.explain(&q).unwrap().contains("__magic"),
            "non-pruning demand demotes to the plain plan"
        );
        let r = frozen.execute_prepared(&q).unwrap();
        assert_eq!(r.len(), 30, "every node is reachable");
        assert_eq!(frozen.execute_prepared(&q).unwrap(), r);
        assert_eq!(
            frozen.plans_computed(),
            1,
            "the demotion is part of the one plan"
        );
    }

    #[test]
    fn snapshot_stats_reflect_the_data() {
        let frozen = frozen();
        let stats = frozen.stats();
        let triple = frozen.symbols().get("triple").expect("triple interned");
        assert_eq!(stats.relation(triple).expect("triple has stats").rows, 3);
    }
}
