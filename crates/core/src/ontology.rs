//! Ontological reasoning: the OWL 2 QL / RDFS subset the paper's
//! ontology benchmark uses (§6.3 "Ontological reasoning": `subPropertyOf`
//! and `subClassOf` axioms over SP²Bench), plus existential axioms
//! (`someValuesFrom`), which exercise the Warded Datalog± machinery —
//! requirement RQ3.
//!
//! Axioms become Datalog± rules over the `triple/4` predicate and are
//! materialised at load time, together with the T_D base rules. SPARQL
//! queries then see the entailed triples "for free" (§1: "we also get
//! ontological reasoning for free").

use sparqlog_datalog::{AtomArg, Program, RuleBuilder, SymbolTable};
use sparqlog_rdf::vocab::{owl, rdf, rdfs};
use sparqlog_rdf::Graph;

use crate::data_translation::preds;

/// One ontological axiom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Axiom {
    /// `c1 rdfs:subClassOf c2`
    SubClassOf(String, String),
    /// `p1 rdfs:subPropertyOf p2`
    SubPropertyOf(String, String),
    /// `p rdfs:domain c`
    Domain(String, String),
    /// `p rdfs:range c`
    Range(String, String),
    /// `p1 owl:inverseOf p2`
    InverseOf(String, String),
    /// `class ⊑ ∃property.filler` — the existential axiom of OWL 2 QL
    /// (`owl:someValuesFrom`). Generates labelled nulls.
    SomeValuesFrom {
        /// The subclass being axiomatised.
        class: String,
        /// The property of the existential restriction.
        property: String,
        /// The filler class of the restriction.
        filler: String,
    },
}

/// A set of axioms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ontology {
    /// The axioms, in insertion order.
    pub axioms: Vec<Axiom>,
}

impl Ontology {
    /// An empty ontology.
    pub fn new() -> Self {
        Ontology::default()
    }

    /// Extracts the supported axioms from an RDF graph containing RDFS /
    /// OWL vocabulary triples (`rdfs:subClassOf`, `rdfs:subPropertyOf`,
    /// `rdfs:domain`, `rdfs:range`, `owl:inverseOf`).
    pub fn from_graph(g: &Graph) -> Self {
        let mut axioms = Vec::new();
        for (s, p, o) in g.iter() {
            let (Some(s), Some(p)) = (s.as_iri(), p.as_iri()) else {
                continue;
            };
            let Some(o) = o.as_iri() else { continue };
            match p {
                rdfs::SUB_CLASS_OF => axioms.push(Axiom::SubClassOf(s.to_string(), o.to_string())),
                rdfs::SUB_PROPERTY_OF => {
                    axioms.push(Axiom::SubPropertyOf(s.to_string(), o.to_string()))
                }
                rdfs::DOMAIN => axioms.push(Axiom::Domain(s.to_string(), o.to_string())),
                rdfs::RANGE => axioms.push(Axiom::Range(s.to_string(), o.to_string())),
                owl::INVERSE_OF => axioms.push(Axiom::InverseOf(s.to_string(), o.to_string())),
                _ => {}
            }
        }
        Ontology { axioms }
    }

    /// Adds an axiom (builder style).
    pub fn with(mut self, axiom: Axiom) -> Self {
        self.axioms.push(axiom);
        self
    }

    /// Compiles the axioms to Datalog± rules over `triple/4`.
    pub fn to_program(&self, symbols: &SymbolTable) -> Program {
        let mut program = Program::new();
        let triple = symbols.intern(preds::TRIPLE);
        let rdf_type = AtomArg::Const(sparqlog_datalog::Const::Iri(symbols.intern(rdf::TYPE)));
        let iri = |s: &str| AtomArg::Const(sparqlog_datalog::Const::Iri(symbols.intern(s)));

        for axiom in &self.axioms {
            match axiom {
                Axiom::SubClassOf(c1, c2) => {
                    // triple(X, type, c2, D) :- triple(X, type, c1, D).
                    let mut b = RuleBuilder::new();
                    let (hx, hd) = (b.v("X"), b.v("D"));
                    b.head(triple, vec![hx, rdf_type.clone(), iri(c2), hd]);
                    let (x, d) = (b.v("X"), b.v("D"));
                    b.pos(triple, vec![x, rdf_type.clone(), iri(c1), d]);
                    program.rules.push(b.build());
                }
                Axiom::SubPropertyOf(p1, p2) => {
                    // triple(X, p2, Y, D) :- triple(X, p1, Y, D).
                    let mut b = RuleBuilder::new();
                    let (hx, hy, hd) = (b.v("X"), b.v("Y"), b.v("D"));
                    b.head(triple, vec![hx, iri(p2), hy, hd]);
                    let (x, y, d) = (b.v("X"), b.v("Y"), b.v("D"));
                    b.pos(triple, vec![x, iri(p1), y, d]);
                    program.rules.push(b.build());
                }
                Axiom::Domain(p, c) => {
                    // triple(X, type, c, D) :- triple(X, p, Y, D).
                    let mut b = RuleBuilder::new();
                    let (hx, hd) = (b.v("X"), b.v("D"));
                    b.head(triple, vec![hx, rdf_type.clone(), iri(c), hd]);
                    let (x, y, d) = (b.v("X"), b.v("Y"), b.v("D"));
                    b.pos(triple, vec![x, iri(p), y, d]);
                    program.rules.push(b.build());
                }
                Axiom::Range(p, c) => {
                    // triple(Y, type, c, D) :- triple(X, p, Y, D).
                    let mut b = RuleBuilder::new();
                    let (hy, hd) = (b.v("Y"), b.v("D"));
                    b.head(triple, vec![hy, rdf_type.clone(), iri(c), hd]);
                    let (x, y, d) = (b.v("X"), b.v("Y"), b.v("D"));
                    b.pos(triple, vec![x, iri(p), y, d]);
                    program.rules.push(b.build());
                }
                Axiom::InverseOf(p1, p2) => {
                    // Both directions.
                    for (from, to) in [(p1, p2), (p2, p1)] {
                        let mut b = RuleBuilder::new();
                        let (hy, hx, hd) = (b.v("Y"), b.v("X"), b.v("D"));
                        b.head(triple, vec![hy, iri(to), hx, hd]);
                        let (x, y, d) = (b.v("X"), b.v("Y"), b.v("D"));
                        b.pos(triple, vec![x, iri(from), y, d]);
                        program.rules.push(b.build());
                    }
                }
                Axiom::SomeValuesFrom {
                    class,
                    property,
                    filler,
                } => {
                    // The existential axiom class ⊑ ∃property.filler:
                    //   ∃Z gen(X, Z, D) :- triple(X, type, class, D).
                    //   triple(X, property, Z, D) :- gen(X, Z, D).
                    //   triple(Z, type, filler, D) :- gen(X, Z, D).
                    // The auxiliary predicate shares one labelled null Z
                    // between the two derived triples. Named after the
                    // property IRI so the same axiom yields the same
                    // predicate in every store (content signatures stay
                    // cross-store comparable).
                    let gen = symbols.intern(&format!("_ex_gen_{property}"));
                    {
                        let mut b = RuleBuilder::new();
                        let (hx, hz, hd) = (b.v("X"), b.v("Z"), b.v("D"));
                        b.head(gen, vec![hx, hz, hd]);
                        let (x, d) = (b.v("X"), b.v("D"));
                        b.pos(triple, vec![x, rdf_type.clone(), iri(class), d]);
                        program.rules.push(b.build());
                    }
                    {
                        let mut b = RuleBuilder::new();
                        let (hx, hz, hd) = (b.v("X"), b.v("Z"), b.v("D"));
                        b.head(triple, vec![hx, iri(property), hz, hd]);
                        let (x, z, d) = (b.v("X"), b.v("Z"), b.v("D"));
                        b.pos(gen, vec![x, z, d]);
                        program.rules.push(b.build());
                    }
                    {
                        let mut b = RuleBuilder::new();
                        let (hz, hd) = (b.v("Z"), b.v("D"));
                        b.head(triple, vec![hz, rdf_type.clone(), iri(filler), hd]);
                        let (x, z, d) = (b.v("X"), b.v("Z"), b.v("D"));
                        b.pos(gen, vec![x, z, d]);
                        program.rules.push(b.build());
                    }
                }
            }
        }
        program
    }

    /// Number of axioms.
    pub fn len(&self) -> usize {
        self.axioms.len()
    }

    /// True if there are no axioms.
    pub fn is_empty(&self) -> bool {
        self.axioms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_rdf::{Term, Triple};

    #[test]
    fn from_graph_reads_rdfs_axioms() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            Term::iri("http://ex/Article"),
            Term::iri(rdfs::SUB_CLASS_OF),
            Term::iri("http://ex/Document"),
        ));
        g.insert(Triple::new(
            Term::iri("http://ex/journalEditor"),
            Term::iri(rdfs::SUB_PROPERTY_OF),
            Term::iri("http://ex/editor"),
        ));
        g.insert(Triple::new(
            Term::iri("http://ex/editor"),
            Term::iri(rdfs::DOMAIN),
            Term::iri("http://ex/Document"),
        ));
        let o = Ontology::from_graph(&g);
        assert_eq!(o.len(), 3);
        assert!(matches!(o.axioms[0], Axiom::SubClassOf(_, _)));
    }

    #[test]
    fn to_program_rule_counts() {
        let symbols = SymbolTable::new();
        let o = Ontology::new()
            .with(Axiom::SubClassOf("a".into(), "b".into()))
            .with(Axiom::InverseOf("p".into(), "q".into()))
            .with(Axiom::SomeValuesFrom {
                class: "C".into(),
                property: "p".into(),
                filler: "F".into(),
            });
        let prog = o.to_program(&symbols);
        // 1 (subclass) + 2 (inverse) + 3 (existential) rules.
        assert_eq!(prog.rules.len(), 6);
        // The existential rule really is existential.
        assert!(prog.rules.iter().any(|r| !r.existential_vars().is_empty()));
    }
}
