//! Concurrency correctness of the frozen-snapshot query-serving path.
//!
//! Two properties are pinned down here:
//!
//! * **Differential**: `execute_batch` over a frozen snapshot, at any
//!   fan-out width, returns *byte-identical* results to the mutable
//!   engine executing the same queries one by one on the deterministic
//!   single-threaded evaluator. (Decoded solutions are deterministic
//!   even though raw Skolem `TermId`s are interned in scheduling order —
//!   extraction renders them structurally.)
//! * **Hammer**: one `FrozenDatabase` serving 8 OS threads that all
//!   translate, evaluate and extract concurrently (mixing cache hits,
//!   cache misses and batches) never produces a result that differs
//!   from the sequential reference.

use sparqlog::{QueryResults, SparqLog};

/// A dataset with enough shape to exercise joins, recursion, OPTIONAL
/// and filters: a chain with shortcuts, typed people, and labels.
fn turtle() -> String {
    let mut src = String::from("@prefix ex: <http://ex.org/> .\n");
    for i in 0..60 {
        src.push_str(&format!("ex:n{i} ex:next ex:n{} .\n", (i + 1) % 60));
        if i % 5 == 0 {
            src.push_str(&format!("ex:n{i} ex:next ex:n{} .\n", (i * 2 + 3) % 60));
        }
        if i % 3 == 0 {
            src.push_str(&format!("ex:n{i} ex:label \"node {i}\" .\n"));
        }
        if i % 4 == 0 {
            src.push_str(&format!("ex:n{i} ex:type ex:Hub .\n"));
        }
    }
    src
}

fn queries() -> Vec<String> {
    let mut qs = vec![
        // Plain join.
        "PREFIX ex: <http://ex.org/>
         SELECT ?a ?b WHERE { ?a ex:next ?b . ?b ex:type ex:Hub }"
            .to_string(),
        // Recursion (set semantics) from a fixed start.
        "PREFIX ex: <http://ex.org/>
         SELECT ?z WHERE { ex:n0 ex:next+ ?z }"
            .to_string(),
        // OPTIONAL with unbound cells.
        "PREFIX ex: <http://ex.org/>
         SELECT ?a ?l WHERE { ?a ex:type ex:Hub . OPTIONAL { ?a ex:label ?l } }"
            .to_string(),
        // FILTER + DISTINCT.
        "PREFIX ex: <http://ex.org/>
         SELECT DISTINCT ?b WHERE { ?a ex:next ?b . FILTER (?a != ?b) }"
            .to_string(),
        // ASK.
        "PREFIX ex: <http://ex.org/> ASK { ex:n5 ex:next ?x }".to_string(),
        // UNION.
        "PREFIX ex: <http://ex.org/>
         SELECT ?x WHERE { { ?x ex:type ex:Hub } UNION { ?x ex:label ?l } }"
            .to_string(),
    ];
    // Repeat some shapes so the batch exercises translation-cache hits.
    qs.push(qs[1].clone());
    qs.push(qs[0].clone());
    qs
}

/// The sequential reference: the mutable engine, pinned single-threaded.
fn sequential_results(qs: &[String]) -> Vec<QueryResults> {
    let mut engine = SparqLog::new();
    engine.set_threads(Some(1));
    engine.load_turtle(&turtle()).unwrap();
    qs.iter().map(|q| engine.execute(q).unwrap()).collect()
}

#[test]
fn batch_is_byte_identical_to_sequential_at_every_width() {
    let qs = queries();
    let expected = sequential_results(&qs);
    for threads in [1usize, 2, 4, 8] {
        let mut engine = SparqLog::new();
        engine.set_threads(Some(threads));
        engine.load_turtle(&turtle()).unwrap();
        let frozen = engine.freeze();
        let refs: Vec<&str> = qs.iter().map(String::as_str).collect();
        let got = frozen.execute_batch(&refs);
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(
                g.as_ref().unwrap(),
                e,
                "threads={threads}, query #{i}: batch differs from sequential"
            );
        }
    }
}

#[test]
fn repeated_batches_are_stable_under_cache_reuse() {
    let qs = queries();
    let refs: Vec<&str> = qs.iter().map(String::as_str).collect();
    let mut engine = SparqLog::new();
    engine.set_threads(Some(4));
    engine.load_turtle(&turtle()).unwrap();
    let frozen = engine.freeze();
    let first = frozen.execute_batch(&refs);
    for round in 0..3 {
        let again = frozen.execute_batch(&refs);
        for (i, (a, b)) in again.iter().zip(&first).enumerate() {
            assert_eq!(
                a.as_ref().unwrap(),
                b.as_ref().unwrap(),
                "round {round}, query #{i}: cached translation changed the result"
            );
        }
    }
    // 6 distinct texts were translated once each; 2 were repeats.
    assert_eq!(frozen.cached_translations(), 6);
}

#[test]
fn hammer_one_frozen_database_from_eight_threads() {
    let qs = queries();
    let expected = sequential_results(&qs);
    let mut engine = SparqLog::new();
    engine.set_threads(Some(1));
    engine.load_turtle(&turtle()).unwrap();
    let frozen = engine.freeze();

    std::thread::scope(|s| {
        for k in 0..8usize {
            let (frozen, qs, expected) = (&frozen, &qs, &expected);
            s.spawn(move || {
                for round in 0..6 {
                    // Each thread walks the query list at its own offset,
                    // so cache misses, hits and concurrent first-sightings
                    // of the same text all happen.
                    let i = (k + round) % qs.len();
                    let got = frozen.execute(&qs[i]).unwrap();
                    assert_eq!(got, expected[i], "thread {k}, query #{i}");
                    if round == 3 {
                        // And a nested batch mid-hammer.
                        let pair = [qs[i].as_str(), qs[(i + 1) % qs.len()].as_str()];
                        let batch = frozen.execute_batch(&pair);
                        assert_eq!(batch[0].as_ref().unwrap(), &expected[i]);
                        assert_eq!(batch[1].as_ref().unwrap(), &expected[(i + 1) % qs.len()]);
                    }
                }
            });
        }
    });
}
