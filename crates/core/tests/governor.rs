//! The execution governor at the serving layer (PR 7): budgets and
//! cancellation through `Store` / `Snapshot` / `FrozenDatabase`, batch
//! sibling cancellation, panic containment, and — the critical property —
//! that a storm of aborted queries leaves no shared-state corruption
//! behind: the same snapshot then answers every query byte-identically
//! to an uncancelled run.

use std::time::{Duration, Instant};

use sparqlog::{AbortReason, Budget, CancelToken, QueryResults, SparqLogError, Store};

/// A ring with shortcuts: recursive property paths over it derive the
/// full closure, expensive enough that a 1 ms deadline always interrupts.
fn ring_store(n: usize) -> Store {
    let mut src = String::from("@prefix ex: <http://ex.org/> .\n");
    for i in 0..n {
        src.push_str(&format!("ex:n{i} ex:next ex:n{} .\n", (i + 1) % n));
        if i % 7 == 0 {
            src.push_str(&format!("ex:n{i} ex:next ex:n{} .\n", (i * 3 + 1) % n));
        }
    }
    let store = Store::new();
    store.load_turtle(&src).unwrap();
    store
}

/// Query shapes of varying weight; the recursive ones are the heavy
/// hitters a tight deadline is guaranteed to catch.
fn queries(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| match i % 4 {
            0 => "PREFIX ex: <http://ex.org/> SELECT ?a ?b WHERE { ?a ex:next+ ?b }".to_string(),
            1 => format!(
                "PREFIX ex: <http://ex.org/> SELECT ?z WHERE {{ ex:n{} ex:next+ ?z }}",
                i % 20
            ),
            2 => "PREFIX ex: <http://ex.org/> SELECT ?a ?b ?c WHERE { ?a ex:next ?b . ?b ex:next ?c }"
                .to_string(),
            _ => format!(
                "PREFIX ex: <http://ex.org/> ASK {{ ex:n0 ex:next+ ex:n{} }}",
                i % 20
            ),
        })
        .collect()
}

/// The acceptance stress test: 100 concurrent queries under 1 ms
/// deadlines against a live snapshot — at one worker and at the default
/// width — then the differential check: the very same snapshot re-answers
/// every query (uncapped) identically to a reference computed before the
/// storm. Aborts must be invisible to later queries.
#[test]
fn deadline_storm_leaves_no_corruption() {
    let store = ring_store(150);
    let qs = queries(100);
    let refs: Vec<&str> = qs.iter().map(String::as_str).collect();
    let snapshot = store.snapshot();

    // Reference results from before any abort ever happened — one per
    // distinct text (the storm repeats shapes; re-proving identical
    // results once per text is the same differential at a fraction of
    // the cost).
    let mut distinct: Vec<&str> = Vec::new();
    for q in &refs {
        if !distinct.contains(q) {
            distinct.push(q);
        }
    }
    let expected: Vec<QueryResults> = distinct
        .iter()
        .map(|q| snapshot.execute(q).unwrap())
        .collect();

    let deadline = Budget::new().with_timeout(Duration::from_millis(1));
    for threads in [Some(1), None] {
        store.set_threads(threads);
        let stormed = store.snapshot();
        let results = stormed.execute_batch_with_budget(&refs, &deadline);
        assert_eq!(results.len(), refs.len());
        let mut aborted = 0usize;
        for (i, r) in results.iter().enumerate() {
            match r {
                Ok(_) => {}
                Err(e @ SparqLogError::Aborted { .. }) => {
                    assert!(e.is_aborted());
                    aborted += 1;
                }
                Err(other) => panic!("query #{i}: unexpected error {other:?}"),
            }
        }
        // The full-closure queries cannot finish in 1 ms.
        assert!(aborted > 0, "storm at threads {threads:?} aborted nothing");

        // Differential re-run on the stormed snapshot: byte-identical.
        for (i, (q, e)) in distinct.iter().zip(&expected).enumerate() {
            assert_eq!(
                &stormed.execute(q).unwrap(),
                e,
                "query #{i} differs after the storm at threads {threads:?}"
            );
        }
    }
}

/// Deterministic sibling cancellation: at fan-out width 1 the batch runs
/// in input order, so when query 0 trips its row cap the group token is
/// already cancelled by the time the (expensive) siblings start — they
/// abort at their entry check instead of burning their own budgets.
#[test]
fn first_abort_cancels_batch_siblings() {
    let store = ring_store(150);
    store.set_threads(Some(1));
    let heavy = "PREFIX ex: <http://ex.org/> SELECT ?a ?b WHERE { ?a ex:next+ ?b }";
    let refs = [heavy; 6];
    let budget = Budget::new().with_max_rows(2_000);
    let start = Instant::now();
    let results = store.snapshot().execute_batch_with_budget(&refs, &budget);
    let elapsed = start.elapsed();
    match &results[0] {
        Err(SparqLogError::Aborted {
            reason: AbortReason::RowLimit,
            rows_derived,
            ..
        }) => assert!(*rows_derived > 2_000),
        other => panic!("query 0 should trip its own row cap, got {other:?}"),
    }
    for (i, r) in results.iter().enumerate().skip(1) {
        match r {
            Err(SparqLogError::Aborted {
                reason: AbortReason::Cancelled,
                ..
            }) => {}
            other => panic!("sibling #{i} should be group-cancelled, got {other:?}"),
        }
    }
    // Siblings died at their entry checks — the batch cost ~one abort,
    // not six row-cap runs.
    assert!(elapsed < Duration::from_secs(5), "batch took {elapsed:?}");
}

/// Ordinary per-query failures must NOT cancel siblings: a parse error
/// in one slot leaves the others' results intact, budget or not.
#[test]
fn parse_error_does_not_cancel_siblings() {
    let store = ring_store(30);
    let ok = "PREFIX ex: <http://ex.org/> SELECT ?z WHERE { ex:n0 ex:next ?z }";
    let results = store.snapshot().execute_batch_with_budget(
        &["this is not sparql", ok],
        &Budget::new().with_timeout(Duration::from_secs(30)),
    );
    assert!(matches!(results[0], Err(SparqLogError::Parse(_))));
    assert!(!results[1].as_ref().unwrap().is_empty());
}

/// External cancellation reaches every query of a batch through the
/// budget's token (the group token is chained under it).
#[test]
fn external_token_cancels_whole_batch() {
    let store = ring_store(30);
    let cancel = CancelToken::new();
    cancel.cancel(); // already fired: every job aborts at entry
    let q = "PREFIX ex: <http://ex.org/> SELECT ?a ?b WHERE { ?a ex:next+ ?b }";
    let results = store
        .snapshot()
        .execute_batch_with_budget(&[q, q, q], &Budget::new().with_cancel(cancel));
    for r in &results {
        assert!(
            matches!(
                r,
                Err(SparqLogError::Aborted {
                    reason: AbortReason::Cancelled,
                    ..
                })
            ),
            "got {r:?}"
        );
    }
}

/// One poisoned query in a batch (injected panic) comes back as an
/// internal error in its own slot; every sibling's result is intact and
/// correct, and the store keeps serving afterwards.
#[test]
fn poisoned_query_in_batch_leaves_siblings_intact() {
    let store = ring_store(30);
    let ok = "PREFIX ex: <http://ex.org/> SELECT ?z WHERE { ex:n0 ex:next ?z }";
    let poisoned = "PREFIX ex: <http://ex.org/> # XPOISONX
                    SELECT ?z WHERE { ex:n0 ex:next ?z }";
    let expected = store.execute(ok).unwrap();
    std::env::set_var("SPARQLOG_PANIC_MARKER", "XPOISONX");
    let results = store.snapshot().execute_batch(&[ok, poisoned, ok, ok]);
    std::env::remove_var("SPARQLOG_PANIC_MARKER");
    match &results[1] {
        Err(SparqLogError::Eval(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("panicked"), "unexpected message: {msg}");
        }
        other => panic!("poisoned slot should be an internal error, got {other:?}"),
    }
    for i in [0usize, 2, 3] {
        assert_eq!(results[i].as_ref().unwrap(), &expected, "sibling #{i}");
    }
    // The pool survived the panic; the store still answers.
    assert_eq!(store.execute(ok).unwrap(), expected);
}

/// The store-wide default budget governs plain `execute`; a per-call
/// budget overrides it in both directions.
#[test]
fn store_default_budget_governs_and_is_overridable() {
    let store = ring_store(150);
    let heavy = "PREFIX ex: <http://ex.org/> SELECT ?a ?b WHERE { ?a ex:next+ ?b }";
    store.set_default_budget(Budget::new().with_max_rows(1_000));
    let err = store.execute(heavy).unwrap_err();
    assert!(
        matches!(
            err,
            SparqLogError::Aborted {
                reason: AbortReason::RowLimit,
                ..
            }
        ),
        "got {err:?}"
    );
    // Per-call override lifts the default cap...
    let full = store.execute_with_budget(heavy, &Budget::new()).unwrap();
    assert!(!full.is_empty());
    // ...and a per-call cap tightens an unlimited default.
    store.set_default_budget(Budget::new());
    assert!(store
        .execute_with_budget(heavy, &Budget::new().with_max_rows(1_000))
        .unwrap_err()
        .is_aborted());
    assert_eq!(store.execute(heavy).unwrap(), full);
}

/// Prepared queries honour per-call budgets too, and the handle stays
/// valid after an abort.
#[test]
fn prepared_query_with_budget() {
    let store = ring_store(150);
    let q = store
        .prepare("PREFIX ex: <http://ex.org/> SELECT ?a ?b WHERE { ?a ex:next+ ?b }")
        .unwrap();
    let snapshot = store.snapshot();
    let err = snapshot
        .execute_prepared_with_budget(&q, &Budget::new().with_max_rows(500))
        .unwrap_err();
    assert!(err.is_aborted());
    let batch = snapshot.execute_prepared_batch_with_budget(
        &[q.clone(), q.clone()],
        &Budget::new().with_max_rows(500),
    );
    assert!(batch.iter().all(|r| r.as_ref().is_err()));
    // Unbudgeted execution of the same handle still completes.
    assert!(!snapshot.execute_prepared(&q).unwrap().is_empty());
}

/// `SparqLogError`'s std::error integration: `Display` names the tripped
/// limit and how far execution got, `source()` exposes inner errors, and
/// `is_timeout()` covers governor deadline aborts.
#[test]
fn abort_error_is_actionable() {
    use std::error::Error;
    let store = ring_store(150);
    let heavy = "PREFIX ex: <http://ex.org/> SELECT ?a ?b WHERE { ?a ex:next+ ?b }";

    let err = store
        .execute_with_budget(heavy, &Budget::new().with_max_rows(1_000))
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("derived-row limit"), "message: {msg}");
    assert!(msg.contains("rows"), "message: {msg}");
    assert!(err.source().is_none(), "Aborted is a root cause");
    assert!(!err.is_timeout());

    let err = store
        .execute_with_budget(heavy, &Budget::new().with_timeout(Duration::from_millis(1)))
        .unwrap_err();
    assert!(
        err.is_timeout(),
        "deadline aborts count as timeouts: {err:?}"
    );

    let parse = store.execute("nonsense").unwrap_err();
    assert!(parse.source().is_some(), "parse errors chain their cause");
}
