//! Differential update suite: proves the [`Store`]'s incremental write
//! path against the one reference that cannot drift — a fresh engine
//! loaded from scratch with the post-update dataset.
//!
//! Two properties, each across evaluator widths 1/2/4/8:
//!
//! * **update-vs-reload**: after a script of SPARQL Update operations,
//!   every probe query answers multiset-equal to a fresh engine loaded
//!   with the store's final quads;
//! * **refreeze-vs-fresh-freeze**: the incrementally committed snapshot
//!   holds exactly the same facts (via `FrozenDb::content_signature`)
//!   as a from-scratch `freeze()` of the same data, and every eager
//!   index either snapshot carries is complete and current — the
//!   thaw/re-freeze path neither loses rows nor leaves an index stale.
//!   (Index *sets* are compared for integrity, not identity: freezing
//!   is profile-guided, so which masks are eager depends on probe
//!   history, which legitimately differs between an incrementally
//!   updated store and a freshly loaded engine.)

use sparqlog::{QueryResults, SparqLog, Store};
use sparqlog_datalog::EvalOptions;
use sparqlog_rdf::{Dataset, Term, Triple};

/// Asserts two snapshot signatures are equivalent under profile-guided
/// indexing: identical fact lines, and every `@index` line on either
/// side records a complete, current index (`rows=n/n`).
fn assert_signatures_equivalent(a: &[String], b: &[String], ctx: &str) {
    fn facts(sig: &[String]) -> Vec<&String> {
        sig.iter().filter(|l| !l.starts_with("@index")).collect()
    }
    assert_eq!(facts(a), facts(b), "{ctx}: facts diverge");
    for line in a.iter().chain(b).filter(|l| l.starts_with("@index")) {
        let counts = line.rsplit_once("rows=").expect("@index line shape").1;
        let (indexed, len) = counts.split_once('/').expect("@index line shape");
        assert_eq!(indexed, len, "{ctx}: stale or partial index: {line}");
    }
}

const FIXTURE: &str = r#"@prefix ex: <http://ex.org/> .
    ex:spain ex:borders ex:france .
    ex:france ex:borders ex:belgium .
    ex:belgium ex:borders ex:germany .
    ex:germany ex:borders ex:austria .
    ex:spain ex:name "Spain" .
    ex:france ex:name "France" .
    _:b1 ex:name "Anonymous" .
    ex:spain ex:population 47 .
    ex:france ex:population 68 ."#;

/// The update script: exercises every supported operation, including
/// removal paths (DELETE DATA, DELETE/INSERT WHERE, CLEAR GRAPH) and
/// named graphs.
const SCRIPT: &[&str] = &[
    // Pure additions, default and named graph.
    r#"PREFIX ex: <http://ex.org/>
       INSERT DATA { ex:austria ex:borders ex:italy .
                     ex:austria ex:name "Austria" .
                     GRAPH <http://meta> { ex:spain ex:source ex:census .
                                           ex:france ex:source ex:census } }"#,
    // Pattern-driven rewrite: derive a symmetric relation, drop one name.
    r#"PREFIX ex: <http://ex.org/>
       DELETE { ?x ex:name "France" }
       INSERT { ?y ex:neighbour ?x . ?x ex:neighbour ?y }
       WHERE { ?x ex:borders ?y }"#,
    // Ground removal + shorthand removal.
    r#"PREFIX ex: <http://ex.org/>
       DELETE DATA { ex:spain ex:population 47 } ;
       DELETE WHERE { ex:belgium ex:borders ?y }"#,
    // Clear one named graph (removes the census facts).
    "CLEAR GRAPH <http://meta>",
    // Re-add into the named graph so it is non-empty at the end.
    r#"PREFIX ex: <http://ex.org/>
       INSERT DATA { GRAPH <http://meta> { ex:austria ex:source ex:survey } }"#,
];

const PROBES: &[&str] = &[
    "PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ex:spain ex:borders+ ?b }",
    "PREFIX ex: <http://ex.org/> SELECT ?x ?n WHERE { ?x ex:neighbour ?y . ?x ex:name ?n }",
    "PREFIX ex: <http://ex.org/> SELECT DISTINCT ?n WHERE { ?x ex:name ?n }",
    "PREFIX ex: <http://ex.org/>
     SELECT ?x ?p WHERE { ?x ex:name ?n OPTIONAL { ?x ex:population ?p } }",
    "PREFIX ex: <http://ex.org/> SELECT ?s ?o WHERE { GRAPH <http://meta> { ?s ex:source ?o } }",
    "PREFIX ex: <http://ex.org/> ASK { ex:belgium ex:borders ?y }",
    "PREFIX ex: <http://ex.org/> ASK { ex:austria ex:borders ex:italy }",
    "SELECT ?g WHERE { GRAPH ?g { ?s ?p ?o } }",
];

fn store_at(threads: usize) -> Store {
    let store = Store::with_options(EvalOptions {
        threads: Some(threads),
        ..Default::default()
    });
    store.load_turtle(FIXTURE).expect("fixture loads");
    for step in SCRIPT {
        store.update(step).expect("update step applies");
    }
    store
}

/// Reads the store's final quads back out through plain queries — the
/// "post-update dataset" the fresh engine reloads.
fn dump(store: &Store) -> Dataset {
    let mut ds = Dataset::new();
    let triple = |sol: &sparqlog::Solution<'_>| -> Triple {
        Triple::new(
            sol.get("s").expect("subject bound").clone(),
            sol.get("p").expect("predicate bound").clone(),
            sol.get("o").expect("object bound").clone(),
        )
    };
    let result = store.execute("SELECT ?s ?p ?o WHERE { ?s ?p ?o }").unwrap();
    for sol in result.solutions().expect("SELECT result").iter() {
        ds.default_graph_mut().insert(triple(&sol));
    }
    let result = store
        .execute("SELECT ?g ?s ?p ?o WHERE { GRAPH ?g { ?s ?p ?o } }")
        .unwrap();
    for sol in result.solutions().expect("SELECT result").iter() {
        let g = match sol.get("g").expect("graph bound") {
            Term::Iri(i) => i.to_string(),
            other => panic!("graph names are IRIs, got {other}"),
        };
        ds.named_graph_mut(&g).insert(triple(&sol));
    }
    ds
}

fn fresh_engine(ds: &Dataset, threads: usize) -> SparqLog {
    let mut engine = SparqLog::new();
    engine.set_threads(Some(threads));
    engine.load_dataset(ds).expect("reload succeeds");
    engine
}

#[test]
fn update_then_query_matches_fresh_reload_across_widths() {
    for threads in [1, 2, 4, 8] {
        let store = store_at(threads);
        let ds = dump(&store);
        let mut fresh = fresh_engine(&ds, threads);
        for probe in PROBES {
            let a = store.execute(probe).expect("store probe");
            let b = fresh.execute(probe).expect("fresh probe");
            match (&a, &b) {
                (QueryResults::Solutions(sa), QueryResults::Solutions(sb)) => {
                    assert!(
                        sa.multiset_eq(sb),
                        "threads={threads} probe={probe}\nstore:\n{sa}\nfresh:\n{sb}"
                    );
                }
                _ => assert_eq!(a, b, "threads={threads} probe={probe}"),
            }
        }
    }
}

#[test]
fn incremental_refreeze_matches_fresh_freeze_across_widths() {
    for threads in [1, 2, 4, 8] {
        let store = store_at(threads);
        let ds = dump(&store);
        let fresh = fresh_engine(&ds, threads).freeze();
        let incremental = store.snapshot().database().content_signature();
        let scratch = fresh.database().content_signature();
        assert_signatures_equivalent(&incremental, &scratch, &format!("threads={threads}"));
    }
}

#[test]
fn every_commit_along_the_script_stays_fresh_equivalent() {
    // Not just the end state: after *each* script step the snapshot must
    // match a from-scratch freeze (catches errors that later steps would
    // mask, e.g. a stale index repaired by the next full recompute).
    let store = store_at(1);
    drop(store); // exercised above; here we replay step by step
    let store = Store::with_options(EvalOptions {
        threads: Some(1),
        ..Default::default()
    });
    store.load_turtle(FIXTURE).unwrap();
    for (i, step) in SCRIPT.iter().enumerate() {
        store.update(step).unwrap();
        let ds = dump(&store);
        let fresh = fresh_engine(&ds, 1).freeze();
        assert_signatures_equivalent(
            &store.snapshot().database().content_signature(),
            &fresh.database().content_signature(),
            &format!("after script step {i}"),
        );
    }
}

#[test]
fn commit_under_live_snapshots_is_equivalent_to_unique_commit() {
    // The thaw path forks: unique handles are moved, shared ones are
    // copied. Both must produce identical snapshots.
    let unique = store_at(1);

    let shared = Store::with_options(EvalOptions {
        threads: Some(1),
        ..Default::default()
    });
    shared.load_turtle(FIXTURE).unwrap();
    let mut pins = Vec::new();
    for step in SCRIPT {
        pins.push(shared.snapshot()); // force the clone path on every commit
        shared.update(step).unwrap();
    }
    assert_signatures_equivalent(
        &unique.snapshot().database().content_signature(),
        &shared.snapshot().database().content_signature(),
        "unique vs shared commit path",
    );
    // The pinned snapshots still answer from their own versions.
    assert_eq!(
        pins[0]
            .execute("PREFIX ex: <http://ex.org/> ASK { ex:belgium ex:borders ex:germany }")
            .unwrap(),
        QueryResults::Boolean(true)
    );
}
