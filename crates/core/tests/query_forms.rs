//! End-to-end coverage of the four query forms and the prepared-query
//! lifecycle: CONSTRUCT/DESCRIBE through `SparqLog`, `Store::execute`
//! and `PreparedQuery`; the store-lifetime translation cache surviving
//! commits; foreign-handle rejection.

use sparqlog::{QueryResults, SparqLog, SparqLogError, Store};

const DATA: &str = r#"@prefix ex: <http://ex.org/> .
    ex:spain ex:borders ex:france .
    ex:france ex:borders ex:belgium .
    ex:belgium ex:borders ex:germany .
    ex:spain ex:name "Spain" .
    ex:spain ex:capital _:madrid .
    _:madrid ex:name "Madrid" ."#;

fn store() -> Store {
    let store = Store::new();
    store.load_turtle(DATA).unwrap();
    store
}

#[test]
fn construct_instantiates_template_per_solution() {
    let store = store();
    let result = store
        .execute(
            r#"PREFIX ex: <http://ex.org/>
               CONSTRUCT { ?b ex:borderedBy ?a } WHERE { ?a ex:borders ?b }"#,
        )
        .unwrap();
    let g = result.graph().expect("CONSTRUCT yields a graph");
    assert_eq!(g.len(), 3);
    let nt = result.to_ntriples().unwrap();
    assert!(
        nt.contains("<http://ex.org/france> <http://ex.org/borderedBy> <http://ex.org/spain>"),
        "{nt}"
    );
}

#[test]
fn construct_drops_invalid_and_unbound_instantiations() {
    let store = store();
    // ?n is only bound for ex:spain; literal subjects are invalid.
    let result = store
        .execute(
            r#"PREFIX ex: <http://ex.org/>
               CONSTRUCT { ?a ex:label ?n . ?n ex:labelOf ?a }
               WHERE { ?a ex:borders ?b OPTIONAL { ?a ex:name ?n } }"#,
        )
        .unwrap();
    let g = result.graph().unwrap();
    // Only spain binds ?n: one valid label triple; the literal-subject
    // template instantiation is dropped.
    assert_eq!(g.len(), 1, "{result}");
}

#[test]
fn construct_mints_fresh_bnodes_per_solution() {
    let store = store();
    let result = store
        .execute(
            r#"PREFIX ex: <http://ex.org/>
               CONSTRUCT { ?a ex:note _:n . _:n ex:about ?b }
               WHERE { ?a ex:borders ?b }"#,
        )
        .unwrap();
    let g = result.graph().unwrap();
    // 3 solutions × 2 templates, all distinct because each solution's
    // _:n is fresh — but shared *within* a solution.
    assert_eq!(g.len(), 6);
    let mut subjects_of_about: Vec<String> = g
        .iter()
        .filter(|(_, p, _)| p.as_iri() == Some("http://ex.org/about"))
        .map(|(s, _, _)| s.to_string())
        .collect();
    subjects_of_about.sort();
    subjects_of_about.dedup();
    assert_eq!(subjects_of_about.len(), 3, "one fresh bnode per solution");
}

#[test]
fn construct_shorthand_and_modifiers() {
    let store = store();
    let result = store
        .execute("PREFIX ex: <http://ex.org/> CONSTRUCT WHERE { ?a ex:borders ?b }")
        .unwrap();
    assert_eq!(result.graph().unwrap().len(), 3);

    // LIMIT applies to the solution sequence before instantiation.
    let result = store
        .execute(
            r#"PREFIX ex: <http://ex.org/>
               CONSTRUCT { ?a ex:seen ?b } WHERE { ?a ex:borders ?b } LIMIT 2"#,
        )
        .unwrap();
    assert_eq!(result.graph().unwrap().len(), 2);
}

#[test]
fn construct_orders_by_non_template_variable() {
    let store = store();
    // ?b is not in the template, but ORDER BY ?b + LIMIT 1 must still
    // pick the solution with the smallest ?b (belgium → ?a = france),
    // not an arbitrary one: the translator carries ?b as a hidden
    // column so the deferred sort sees its key.
    let result = store
        .execute(
            r#"PREFIX ex: <http://ex.org/>
               CONSTRUCT { ?a ex:first ex:marker }
               WHERE { ?a ex:borders ?b } ORDER BY ?b LIMIT 1"#,
        )
        .unwrap();
    let nt = result.to_ntriples().unwrap();
    assert_eq!(result.len(), 1);
    assert!(nt.contains("<http://ex.org/france>"), "{nt}");

    // Same for DESCRIBE — and the hidden ?b column must not leak into
    // the described resources (only ?a's binding is described).
    let result = store
        .execute(
            r#"PREFIX ex: <http://ex.org/>
               DESCRIBE ?a WHERE { ?a ex:borders ?b } ORDER BY DESC(?b) LIMIT 1"#,
        )
        .unwrap();
    // max ?b = germany → ?a = belgium, whose CBD is its 1 triple.
    let nt = result.to_ntriples().unwrap();
    assert!(
        nt.contains("<http://ex.org/belgium> <http://ex.org/borders>"),
        "{nt}"
    );
    assert_eq!(result.len(), 1, "hidden sort column not described: {nt}");
}

#[test]
fn describe_computes_concise_bounded_description() {
    let store = store();
    // Explicit IRI target, no WHERE clause: ex:spain's three triples
    // plus the bnode closure through _:madrid.
    let result = store.execute("DESCRIBE <http://ex.org/spain>").unwrap();
    let g = result.graph().expect("DESCRIBE yields a graph");
    assert_eq!(g.len(), 4, "{result}");
    assert!(result.to_ntriples().unwrap().contains("\"Madrid\""));

    // Variable targets range over the WHERE solutions.
    let result = store
        .execute(
            r#"PREFIX ex: <http://ex.org/>
               DESCRIBE ?x WHERE { ?x ex:borders ex:belgium }"#,
        )
        .unwrap();
    // france's single outgoing triple.
    assert_eq!(result.graph().unwrap().len(), 1);

    // DESCRIBE * describes every in-scope variable binding: ?y binds
    // france (1 outgoing triple) and ?o belgium (1 outgoing triple).
    let result = store
        .execute(
            r#"PREFIX ex: <http://ex.org/>
               DESCRIBE * WHERE { ex:spain ex:borders ?y . ?y ex:borders ?o }"#,
        )
        .unwrap();
    assert_eq!(result.graph().unwrap().len(), 2, "{result}");

    // Unknown resources describe to the empty graph.
    let result = store.execute("DESCRIBE <http://ex.org/narnia>").unwrap();
    assert!(result.is_empty());
}

#[test]
fn describe_ignores_named_graph_triples() {
    let store = store();
    store
        .update(
            r#"PREFIX ex: <http://ex.org/>
               INSERT DATA { GRAPH <http://g> { ex:spain ex:secret ex:x } }"#,
        )
        .unwrap();
    let result = store.execute("DESCRIBE <http://ex.org/spain>").unwrap();
    assert!(
        !result.to_ntriples().unwrap().contains("secret"),
        "CBD ranges over the default graph only"
    );
}

#[test]
fn all_four_forms_via_store_and_prepared_handles() {
    let store = store();
    let queries = [
        (
            "PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ex:spain ex:borders ?b }",
            1,
        ),
        (
            "PREFIX ex: <http://ex.org/> ASK { ex:spain ex:borders ex:france }",
            1,
        ),
        (
            "PREFIX ex: <http://ex.org/> CONSTRUCT { ?a ex:linked ?b } WHERE { ?a ex:borders ?b }",
            3,
        ),
        ("DESCRIBE <http://ex.org/france>", 1),
    ];
    for (text, expected) in queries {
        let direct = store.execute(text).unwrap();
        assert_eq!(direct.len(), expected, "{text}");
        let prepared = store.prepare(text).unwrap();
        let via_handle = store.snapshot().execute_prepared(&prepared).unwrap();
        assert_eq!(via_handle, direct, "prepared differs: {text}");
    }
    // The typed accessors agree with the forms.
    assert!(store.execute(queries[0].0).unwrap().solutions().is_some());
    assert_eq!(store.execute(queries[1].0).unwrap().boolean(), Some(true));
    assert!(store.execute(queries[2].0).unwrap().graph().is_some());
    assert!(store.execute(queries[3].0).unwrap().graph().is_some());
}

#[test]
fn prepared_batch_matches_sequential() {
    let store = store();
    let texts = [
        "PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ?a ex:borders ?b }",
        "PREFIX ex: <http://ex.org/> ASK { ex:belgium ex:borders ex:germany }",
        "PREFIX ex: <http://ex.org/> CONSTRUCT { ?b ex:rev ?a } WHERE { ?a ex:borders ?b }",
    ];
    let prepared: Vec<_> = texts.iter().map(|t| store.prepare(t).unwrap()).collect();
    let snapshot = store.snapshot();
    let batch = snapshot.execute_prepared_batch(&prepared);
    assert_eq!(batch.len(), 3);
    for (i, text) in texts.iter().enumerate() {
        assert_eq!(
            *batch[i].as_ref().unwrap(),
            snapshot.execute(text).unwrap(),
            "{text}"
        );
    }
}

#[test]
fn prepared_query_and_cache_survive_commits() {
    let store = store();
    let q = "PREFIX ex: <http://ex.org/> SELECT ?b WHERE { ex:spain ex:borders+ ?b }";

    let prepared = store.prepare(q).unwrap();
    let snapshot = store.snapshot();
    assert_eq!(snapshot.execute_prepared(&prepared).unwrap().len(), 3);
    // prepare() went through the text cache: one translation so far.
    assert_eq!(snapshot.cached_translations(), 1);
    let translations_before = snapshot.translations_performed();

    // A commit through the writer...
    let mut w = store.writer();
    w.insert(
        sparqlog::Term::iri("http://ex.org/germany"),
        sparqlog::Term::iri("http://ex.org/borders"),
        sparqlog::Term::iri("http://ex.org/austria"),
    );
    w.commit().unwrap();

    // ... the new snapshot sees the new data through the *same* prepared
    // handle, with no re-translation:
    let after = store.snapshot();
    assert_eq!(after.execute_prepared(&prepared).unwrap().len(), 4);
    assert_eq!(
        after.cached_translations(),
        1,
        "translation cache carried across the commit"
    );
    // Executing the same text again is a cache hit, not a fresh pass.
    assert_eq!(after.execute(q).unwrap().len(), 4);
    assert_eq!(
        after.translations_performed(),
        translations_before,
        "hot query shape stayed warm through writer().commit()"
    );

    // An update-request commit carries it too.
    store
        .update("PREFIX ex: <http://ex.org/> DELETE DATA { ex:germany ex:borders ex:austria }")
        .unwrap();
    let last = store.snapshot();
    assert_eq!(last.execute_prepared(&prepared).unwrap().len(), 3);
    assert!(last.cached_translations() >= 1);
}

#[test]
fn foreign_prepared_handles_are_rejected() {
    let store = store();
    let other = Store::new();
    let prepared = other.prepare("SELECT ?s WHERE { ?s ?p ?o }").unwrap();
    let err = store.snapshot().execute_prepared(&prepared).unwrap_err();
    assert_eq!(err, SparqLogError::ForeignPrepared);
    let errs = store.snapshot().execute_prepared_batch(&[prepared]);
    assert_eq!(
        errs[0].as_ref().unwrap_err(),
        &SparqLogError::ForeignPrepared
    );
}

#[test]
fn frozen_database_serves_graph_forms_too() {
    // The legacy freeze-once path gets the new forms for free.
    let mut engine = SparqLog::new();
    engine.load_turtle(DATA).unwrap();
    let frozen = engine.freeze();
    let r = frozen
        .execute("PREFIX ex: <http://ex.org/> CONSTRUCT WHERE { ?a ex:borders ?b }")
        .unwrap();
    assert_eq!(r.graph().unwrap().len(), 3);
    let prepared = frozen.prepare("DESCRIBE <http://ex.org/spain>").unwrap();
    assert_eq!(frozen.execute_prepared(&prepared).unwrap().len(), 4);
}

#[test]
fn unsupported_features_carry_their_name_structurally() {
    let mut engine = SparqLog::new();
    // Parser-level unsupported.
    let err = engine
        .execute("SELECT * WHERE { VALUES ?x { 1 } }")
        .unwrap_err();
    assert!(err.is_unsupported());
    assert_eq!(err.unsupported_feature(), Some("VALUES"));
    // Translation-level unsupported (parses fine, translator refuses).
    let err = engine
        .execute("SELECT (COUNT(?x) AS ?a) (SUM(?x) AS ?b) WHERE { ?s ?p ?x }")
        .unwrap_err();
    assert!(err.is_unsupported());
    assert_eq!(
        err.unsupported_feature(),
        Some("multiple aggregates in one SELECT")
    );
    // Other error classes expose no feature.
    let err = engine.execute("not sparql at all ***").unwrap_err();
    assert_eq!(err.unsupported_feature(), None);
    let err = Store::new().execute("CLEAR ALL").unwrap_err();
    assert_eq!(err, SparqLogError::ReadOnly("CLEAR"));
    assert_eq!(err.unsupported_feature(), None);
}

#[test]
fn deprecated_alias_still_compiles() {
    #[allow(deprecated)]
    fn takes_old_name(r: &sparqlog::QueryResult) -> usize {
        r.len()
    }
    let store = store();
    let r: QueryResults = store
        .execute("PREFIX ex: <http://ex.org/> ASK { ex:spain ex:borders ex:france }")
        .unwrap();
    assert_eq!(takes_old_name(&r), 1);
}
