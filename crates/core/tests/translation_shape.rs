//! White-box tests of T_Q: the generated programs have exactly the shape
//! the paper's definitions prescribe (rule counts, ID regime, system
//! directives), and every workload query translates to a warded program.

use sparqlog::translate_query;
use sparqlog_datalog::{BodyItem, Expr, PostOp, SymbolTable};
use sparqlog_sparql::parse_query;

fn translate(q: &str) -> (sparqlog_datalog::Program, std::sync::Arc<SymbolTable>) {
    let symbols = SymbolTable::new();
    let query = parse_query(q).unwrap();
    let tq = translate_query(&query, &symbols, "t_").unwrap();
    (tq.program, symbols)
}

/// Counts rules whose body contains a Skolem-constructor assignment.
fn skolem_rules(p: &sparqlog_datalog::Program) -> usize {
    p.rules
        .iter()
        .filter(|r| {
            r.body.iter().any(
                |i| matches!(i, BodyItem::Assign(_, Expr::Skolem(_, args)) if !args.is_empty()),
            )
        })
        .count()
}

#[test]
fn triple_pattern_is_one_rule_plus_projection() {
    let (p, _) = translate("SELECT ?s WHERE { ?s <http://p> ?o }");
    // ans1 (triple, Def. A.3) + ans (SELECT, Def. A.21).
    assert_eq!(p.rules.len(), 2);
    assert_eq!(p.outputs.len(), 1);
}

#[test]
fn optional_generates_three_rules() {
    let (p, _) = translate("SELECT * WHERE { ?s <http://p> ?o OPTIONAL { ?o <http://q> ?z } }");
    // Def. A.7: ans_opt + 2 ans rules; + 2 leaf rules + SELECT = 6.
    assert_eq!(p.rules.len(), 6);
}

#[test]
fn union_generates_two_rules() {
    let (p, _) = translate("SELECT * WHERE { { ?s <http://p> ?o } UNION { ?s <http://q> ?o } }");
    // Def. A.6: 2 union rules + 2 leaves + SELECT = 5.
    assert_eq!(p.rules.len(), 5);
}

#[test]
fn minus_generates_join_equal_and_final_rules() {
    let (p, symbols) = translate("SELECT * WHERE { ?s <http://p> ?o MINUS { ?s <http://q> ?z } }");
    // Def. A.10: ans_join + 1 ans_equal (one shared var) + final + 2
    // leaves + SELECT = 6.
    assert_eq!(p.rules.len(), 6);
    let names: Vec<String> = p
        .rules
        .iter()
        .map(|r| symbols.resolve(r.head.pred).to_string())
        .collect();
    assert!(names.iter().any(|n| n.contains("ans_join")));
    assert!(names.iter().any(|n| n.contains("ans_equal")));
}

#[test]
fn one_or_more_path_generates_closure_rules() {
    let (p, _) = translate("SELECT * WHERE { ?s <http://p>+ ?o }");
    // Def. A.16: 2 closure rules + link rule + glue (A.11) + SELECT = 5.
    assert_eq!(p.rules.len(), 5);
}

#[test]
fn zero_or_more_adds_zero_rules() {
    let (p, _) = translate("SELECT * WHERE { <http://a> <http://p>* ?o }");
    // A.19: subjectOrObject zero rule + endpoint rule (constant subject)
    // + 2 closure rules + link + glue + SELECT = 7.
    assert_eq!(p.rules.len(), 7);
}

#[test]
fn bag_semantics_uses_skolem_ids() {
    let (p, _) = translate("SELECT ?s WHERE { ?s <http://p> ?o . ?o <http://q> ?z }");
    // Every non-path rule generates a fresh Skolem ID.
    assert!(skolem_rules(&p) >= 3, "join + 2 leaves + projection");
}

#[test]
fn distinct_forces_nil_ids_everywhere() {
    let (p, _) = translate("SELECT DISTINCT ?s WHERE { ?s <http://p> ?o . ?o <http://q> ?z }");
    assert_eq!(
        skolem_rules(&p),
        0,
        "set semantics: no argument-carrying IDs"
    );
}

#[test]
fn ask_uses_set_semantics_and_negation() {
    let (p, _) = translate("ASK { ?s <http://p> ?o }");
    assert_eq!(skolem_rules(&p), 0);
    let has_negation = p
        .rules
        .iter()
        .any(|r| r.body.iter().any(|i| matches!(i, BodyItem::Neg(_))));
    assert!(has_negation, "Def. A.22's 'not ans_ask(true)' rule");
}

#[test]
fn simple_order_by_becomes_post_directive() {
    let symbols = SymbolTable::new();
    let query =
        parse_query("SELECT ?o WHERE { ?s <http://p> ?o } ORDER BY ?o LIMIT 3 OFFSET 1").unwrap();
    let tq = translate_query(&query, &symbols, "t_").unwrap();
    assert!(tq.modifiers_in_post);
    let ops: Vec<&PostOp> = tq.program.post.iter().map(|(_, op)| op).collect();
    assert_eq!(ops.len(), 3);
    assert!(matches!(ops[0], PostOp::OrderBy(cols) if cols == &vec![(1, false)]));
    assert!(matches!(ops[1], PostOp::Offset(1)));
    assert!(matches!(ops[2], PostOp::Limit(3)));
}

#[test]
fn complex_order_by_defers_to_solution_layer() {
    let symbols = SymbolTable::new();
    let query =
        parse_query("SELECT ?o WHERE { ?s <http://p> ?o } ORDER BY (!BOUND(?o)) LIMIT 3").unwrap();
    let tq = translate_query(&query, &symbols, "t_").unwrap();
    assert!(!tq.modifiers_in_post);
    assert!(tq.program.post.is_empty());
}

#[test]
fn join_reordering_avoids_cross_products() {
    // SP²Bench q4's disconnected prefix: article1-type then article2-type.
    let (p, symbols) = translate(
        "SELECT * WHERE {
           ?a1 <http://type> <http://Article> .
           ?a2 <http://type> <http://Article> .
           ?a1 <http://journal> ?j .
           ?a2 <http://journal> ?j }",
    );
    // Every join rule's two answer atoms must share a variable through
    // the comp chain: check that no rule body contains two `ans` atoms
    // with disjoint variable sets and no comp atom between them.
    for rule in &p.rules {
        let ans_atoms: Vec<&sparqlog_datalog::Atom> = rule
            .body
            .iter()
            .filter_map(|i| match i {
                BodyItem::Pos(a) if symbols.resolve(a.pred).contains("ans") => Some(a),
                _ => None,
            })
            .collect();
        if ans_atoms.len() == 2 {
            let has_comp = rule.body.iter().any(
                |i| matches!(i, BodyItem::Pos(a) if symbols.resolve(a.pred).as_ref() == "comp"),
            );
            assert!(
                has_comp,
                "join rule without comp atoms would be a cross product: {}",
                rule.display(&symbols)
            );
        }
    }
}
