//! Golden-fixture tests for the W3C wire-format serializers: exact
//! expected output for Results-JSON, CSV and TSV — covering blank
//! nodes, typed and language-tagged literals and unbound variables —
//! plus the N-Triples/Turtle graph writers on CONSTRUCT output.

use sparqlog::Store;

/// A fixture whose solution sequence exercises every term shape. The
/// OPTIONAL leaves ?extra unbound for two of the three solutions.
fn fixture() -> Store {
    let store = Store::new();
    store
        .load_turtle(
            r#"@prefix ex: <http://ex.org/> .
               @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
               ex:a ex:p "plain" .
               ex:a ex:q "5"^^xsd:integer .
               _:node ex:p "chat"@fr .
               _:node ex:p "esc,\"quote\"" ."#,
        )
        .unwrap();
    store
}

const QUERY: &str = r#"PREFIX ex: <http://ex.org/>
    SELECT ?s ?o ?extra WHERE {
      ?s ex:p ?o OPTIONAL { ?s ex:q ?extra }
    } ORDER BY ?o"#;

#[test]
fn results_json_golden() {
    let json = fixture().execute(QUERY).unwrap().to_json().unwrap();
    // ORDER BY ?o: "chat"@fr < "esc..." < "plain" under the term order.
    let expected = concat!(
        r#"{"head":{"vars":["s","o","extra"]},"results":{"bindings":["#,
        r#"{"s":{"type":"bnode","value":"node"},"o":{"type":"literal","value":"chat","xml:lang":"fr"}},"#,
        r#"{"s":{"type":"bnode","value":"node"},"o":{"type":"literal","value":"esc,\"quote\""}},"#,
        r#"{"s":{"type":"uri","value":"http://ex.org/a"},"o":{"type":"literal","value":"plain"},"#,
        r#""extra":{"type":"literal","value":"5","datatype":"http://www.w3.org/2001/XMLSchema#integer"}}"#,
        r#"]}}"#,
    );
    assert_eq!(json, expected);
}

#[test]
fn results_csv_golden() {
    let csv = fixture().execute(QUERY).unwrap().to_csv().unwrap();
    let expected = "s,o,extra\r\n\
                    _:node,chat,\r\n\
                    _:node,\"esc,\"\"quote\"\"\",\r\n\
                    http://ex.org/a,plain,5\r\n";
    assert_eq!(csv, expected);
}

#[test]
fn results_tsv_golden() {
    let tsv = fixture().execute(QUERY).unwrap().to_tsv().unwrap();
    let expected = "?s\t?o\t?extra\n\
                    _:node\t\"chat\"@fr\t\n\
                    _:node\t\"esc,\\\"quote\\\"\"\t\n\
                    <http://ex.org/a>\t\"plain\"\t\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>\n";
    assert_eq!(tsv, expected);
}

#[test]
fn ask_serializations() {
    let store = fixture();
    let t = store
        .execute(r#"PREFIX ex: <http://ex.org/> ASK { ex:a ex:p "plain" }"#)
        .unwrap();
    assert_eq!(t.to_json().unwrap(), r#"{"head":{},"boolean":true}"#);
    assert_eq!(t.to_csv().unwrap(), "true\r\n");
    assert_eq!(t.to_tsv().unwrap(), "true\n");
    let f = store
        .execute(r#"PREFIX ex: <http://ex.org/> ASK { ex:a ex:p "absent" }"#)
        .unwrap();
    assert_eq!(f.to_json().unwrap(), r#"{"head":{},"boolean":false}"#);
}

#[test]
fn construct_graph_writers_golden() {
    let store = Store::new();
    store
        .load_turtle(
            r#"@prefix ex: <http://ex.org/> .
               @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
               ex:a rdf:type ex:C . ex:a ex:p "v"@en ."#,
        )
        .unwrap();
    let result = store.execute("CONSTRUCT WHERE { ?s ?p ?o }").unwrap();

    let nt = result.to_ntriples().unwrap();
    let mut lines: Vec<&str> = nt.lines().collect();
    lines.sort();
    assert_eq!(
        lines,
        vec![
            "<http://ex.org/a> <http://ex.org/p> \"v\"@en .",
            "<http://ex.org/a> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/C> .",
        ]
    );

    // Turtle groups by subject and compacts rdf:type to `a`; it must
    // re-parse to the same graph.
    let ttl = result.to_turtle().unwrap();
    assert_eq!(ttl.matches(" .\n").count(), 1, "one subject group: {ttl}");
    assert!(ttl.contains(" a "), "{ttl}");
    let reparsed = sparqlog_rdf::turtle::parse(&ttl).unwrap();
    assert_eq!(reparsed.len(), 2);

    // N-Triples output round-trips through the N-Triples parser too.
    let reparsed = sparqlog_rdf::ntriples::parse(&nt).unwrap();
    assert_eq!(reparsed.len(), 2);
}

// ------------------------------------------- streaming differentials

/// An `io::Write` that accepts at most ONE byte per `write` call — the
/// pathological re-chunking. Any serializer that mishandles partial
/// writes (assumes `write` consumes the whole slice, splits an escape
/// sequence statefully, ...) produces different bytes through this.
struct OneByteWriter(Vec<u8>);

impl std::io::Write for OneByteWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        self.0.push(buf[0]);
        Ok(1)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Every format, three paths — the PR 5 string serializer, the
/// incremental writer into a `Vec`, and the incremental writer
/// re-chunked at 1-byte granularity — must agree byte for byte over the
/// golden fixtures.
#[test]
fn streaming_paths_are_byte_identical_to_string_serializers() {
    use sparqlog::results_io::{write_csv, write_json, write_ntriples, write_tsv, write_turtle};

    let solutions = fixture().execute(QUERY).unwrap();
    let boolean = fixture()
        .execute(r#"PREFIX ex: <http://ex.org/> ASK { ex:a ex:p "plain" }"#)
        .unwrap();
    let graph_store = Store::new();
    graph_store
        .load_turtle(
            r#"@prefix ex: <http://ex.org/> .
               @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
               ex:a rdf:type ex:C . ex:a ex:p "v"@en . ex:b ex:p ex:a ."#,
        )
        .unwrap();
    let graph = graph_store.execute("CONSTRUCT WHERE { ?s ?p ?o }").unwrap();

    type WriteFn =
        fn(&sparqlog::QueryResults, &mut dyn std::io::Write) -> Result<(), sparqlog::WriteError>;
    let cases: Vec<(&str, &sparqlog::QueryResults, String, WriteFn)> = vec![
        ("json", &solutions, solutions.to_json().unwrap(), write_json),
        ("csv", &solutions, solutions.to_csv().unwrap(), write_csv),
        ("tsv", &solutions, solutions.to_tsv().unwrap(), write_tsv),
        ("json-ask", &boolean, boolean.to_json().unwrap(), write_json),
        ("csv-ask", &boolean, boolean.to_csv().unwrap(), write_csv),
        ("tsv-ask", &boolean, boolean.to_tsv().unwrap(), write_tsv),
        (
            "ntriples",
            &graph,
            graph.to_ntriples().unwrap(),
            write_ntriples,
        ),
        ("turtle", &graph, graph.to_turtle().unwrap(), write_turtle),
    ];

    for (name, results, expected, write_fn) in cases {
        let mut buffered = Vec::new();
        write_fn(results, &mut buffered).unwrap();
        assert_eq!(
            String::from_utf8(buffered).unwrap(),
            expected,
            "streamed {name} diverges from the string serializer"
        );

        let mut one = OneByteWriter(Vec::new());
        write_fn(results, &mut one).unwrap();
        assert_eq!(
            String::from_utf8(one.0).unwrap(),
            expected,
            "1-byte-granularity {name} diverges from the string serializer"
        );
    }
}

#[test]
fn empty_solution_sequences_serialize_headers_only() {
    let store = fixture();
    let r = store
        .execute("PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:nope ?y }")
        .unwrap();
    assert_eq!(
        r.to_json().unwrap(),
        r#"{"head":{"vars":["x"]},"results":{"bindings":[]}}"#
    );
    assert_eq!(r.to_csv().unwrap(), "x\r\n");
    assert_eq!(r.to_tsv().unwrap(), "?x\n");
}
