//! Incremental-maintenance differential suite (PR 9).
//!
//! Property: after *every* commit of a random add/remove interleaving,
//! the maintained store is multiset-equal (via
//! `FrozenDb::content_signature`) to a from-scratch reload+freeze of
//! the same asserted quads — with and without ontology materialisation,
//! across evaluator widths 1/2/4, and under pinned live snapshots
//! (which force the copy commit path). Plus the subscription contract:
//! every delivered [`ResultDelta`](sparqlog::ResultDelta) equals the
//! multiset difference of full re-executions around the commit.

use sparqlog::{Axiom, Ontology, SparqLog, Store, SubscriptionEvent};
use sparqlog_datalog::EvalOptions;
use sparqlog_rdf::{Dataset, Term, Triple};

const EX: &str = "http://ex.org/";
const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Deterministic xorshift64* — the suite must not depend on ambient
/// randomness.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// One asserted quad of the test universe.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Quad {
    s: Term,
    p: Term,
    o: Term,
    g: Option<&'static str>,
}

/// A small closed universe of quads: plain edges, names, `rdf:type`
/// facts (ontology fodder) and one named graph.
fn universe() -> Vec<Quad> {
    let iri = |l: &str| Term::iri(format!("{EX}{l}"));
    let mut out = Vec::new();
    for si in 0..4 {
        for oi in 0..3 {
            out.push(Quad {
                s: iri(&format!("s{si}")),
                p: iri("knows"),
                o: iri(&format!("s{oi}")),
                g: None,
            });
        }
        out.push(Quad {
            s: iri(&format!("s{si}")),
            p: Term::iri(RDF_TYPE),
            o: iri("Student"),
            g: None,
        });
        out.push(Quad {
            s: iri(&format!("s{si}")),
            p: iri("name"),
            o: Term::literal(format!("node {si}")),
            g: None,
        });
        out.push(Quad {
            s: iri(&format!("s{si}")),
            p: iri("source"),
            o: iri("census"),
            g: Some("http://meta"),
        });
    }
    out
}

/// Applies one random commit (1–4 staged operations, biased toward
/// hitting present quads on removal) to `store`, mirroring it in the
/// shadow `model`. A commit applies all removals before all additions
/// (SPARQL DELETE/INSERT order), so the shadow model does the same.
/// Returns the staged ops for error context.
fn random_commit(rng: &mut Rng, store: &Store, model: &mut Vec<Quad>, pool: &[Quad]) -> String {
    let mut w = store.writer();
    let mut log = String::new();
    let mut adds: Vec<Quad> = Vec::new();
    let mut removes: Vec<Quad> = Vec::new();
    for _ in 0..1 + rng.below(4) {
        let add = rng.below(2) == 0 || model.is_empty();
        if add {
            let q = pool[rng.below(pool.len())].clone();
            log.push_str(&format!("+{q:?} "));
            match q.g {
                None => w.insert(q.s.clone(), q.p.clone(), q.o.clone()),
                Some(g) => w.insert_in(g, q.s.clone(), q.p.clone(), q.o.clone()),
            }
            adds.push(q);
        } else {
            // 3:1 bias toward removing a quad that is actually present.
            let q = if rng.below(4) < 3 {
                model[rng.below(model.len())].clone()
            } else {
                pool[rng.below(pool.len())].clone()
            };
            log.push_str(&format!("-{q:?} "));
            match q.g {
                None => w.remove(q.s.clone(), q.p.clone(), q.o.clone()),
                Some(g) => w.remove_in(g, q.s.clone(), q.p.clone(), q.o.clone()),
            }
            removes.push(q);
        }
    }
    w.commit().expect("commit applies");
    model.retain(|m| !removes.contains(m));
    for q in adds {
        if !model.contains(&q) {
            model.push(q);
        }
    }
    log
}

fn dataset_of(model: &[Quad]) -> Dataset {
    let mut ds = Dataset::new();
    for q in model {
        let t = Triple::new(q.s.clone(), q.p.clone(), q.o.clone());
        match q.g {
            None => ds.default_graph_mut().insert(t),
            Some(g) => ds.named_graph_mut(g).insert(t),
        };
    }
    ds
}

/// See `store_updates.rs`: identical fact lines; every eager index
/// complete and current (index *sets* legitimately differ under
/// profile-guided freezing).
fn assert_signatures_equivalent(a: &[String], b: &[String], ctx: &str) {
    fn facts(sig: &[String]) -> Vec<&String> {
        sig.iter().filter(|l| !l.starts_with("@index")).collect()
    }
    assert_eq!(facts(a), facts(b), "{ctx}: facts diverge");
    for line in a.iter().chain(b).filter(|l| l.starts_with("@index")) {
        let counts = line.rsplit_once("rows=").expect("@index line shape").1;
        let (indexed, len) = counts.split_once('/').expect("@index line shape");
        assert_eq!(indexed, len, "{ctx}: stale or partial index: {line}");
    }
}

fn ontology() -> Ontology {
    Ontology::new()
        .with(Axiom::SubClassOf(
            format!("{EX}Student"),
            format!("{EX}Person"),
        ))
        .with(Axiom::SomeValuesFrom {
            class: format!("{EX}Student"),
            property: format!("{EX}enrolledIn"),
            filler: format!("{EX}Course"),
        })
}

#[test]
fn random_interleavings_match_fresh_reload_across_widths() {
    let pool = universe();
    for threads in [1usize, 2, 4] {
        let mut rng = Rng::new(0x5EED_0000 + threads as u64);
        let store = Store::with_options(EvalOptions {
            threads: Some(threads),
            ..Default::default()
        });
        let mut model: Vec<Quad> = Vec::new();
        let mut history = Vec::new();
        for step in 0..30 {
            history.push(random_commit(&mut rng, &store, &mut model, &pool));
            let mut fresh = SparqLog::new();
            fresh.set_threads(Some(threads));
            fresh.load_dataset(&dataset_of(&model)).expect("reload");
            assert_signatures_equivalent(
                &store.snapshot().database().content_signature(),
                &fresh.freeze().database().content_signature(),
                &format!("threads={threads} step={step} ops={}", history[step]),
            );
        }
    }
}

#[test]
fn random_interleavings_with_ontology_match_fresh_rebuild() {
    // Same property with materialised entailments in play — including
    // existential (labelled-null) consequences. The reference rebuild
    // loads the surviving assertions fresh and re-materialises, so any
    // leaked or lost entailment shows up as a signature diff.
    let pool = universe();
    for threads in [1usize, 2, 4] {
        let mut rng = Rng::new(0xABCD_0000 + threads as u64);
        let options = EvalOptions {
            threads: Some(threads),
            ..Default::default()
        };
        let store = Store::with_options(options.clone());
        store.add_ontology(&ontology()).expect("ontology installs");
        let mut model: Vec<Quad> = Vec::new();
        for step in 0..20 {
            let ops = random_commit(&mut rng, &store, &mut model, &pool);
            let fresh = Store::with_options(options.clone());
            fresh.load_dataset(&dataset_of(&model)).expect("reload");
            fresh.add_ontology(&ontology()).expect("ontology installs");
            assert_signatures_equivalent(
                &store.snapshot().database().content_signature(),
                &fresh.snapshot().database().content_signature(),
                &format!("threads={threads} step={step} ops={ops}"),
            );
        }
    }
}

#[test]
fn random_interleavings_under_pinned_snapshots() {
    // Pinning a snapshot before every commit forces the copy commit
    // path; the maintained result must be identical, and each pin keeps
    // answering from its own version.
    let pool = universe();
    let store = Store::with_options(EvalOptions {
        threads: Some(2),
        ..Default::default()
    });
    store.add_ontology(&ontology()).expect("ontology installs");
    let mut rng = Rng::new(0xF1F1_F1F1);
    let mut model: Vec<Quad> = Vec::new();
    let mut pins = Vec::new();
    let mut pin_counts = Vec::new();
    let count_q = "SELECT ?s ?p ?o WHERE { ?s ?p ?o }";
    for step in 0..12 {
        let pin = store.snapshot();
        pin_counts.push(pin.execute(count_q).expect("pin query").len());
        pins.push(pin);
        let ops = random_commit(&mut rng, &store, &mut model, &pool);
        let fresh = Store::with_options(EvalOptions {
            threads: Some(2),
            ..Default::default()
        });
        fresh.load_dataset(&dataset_of(&model)).expect("reload");
        fresh.add_ontology(&ontology()).expect("ontology installs");
        assert_signatures_equivalent(
            &store.snapshot().database().content_signature(),
            &fresh.snapshot().database().content_signature(),
            &format!("pinned step={step} ops={ops}"),
        );
    }
    for (pin, expected) in pins.iter().zip(pin_counts) {
        assert_eq!(
            pin.execute(count_q).expect("pin query").len(),
            expected,
            "pinned snapshots stay version-stable"
        );
    }
}

#[test]
fn subscription_deltas_equal_rerun_diffs() {
    // The acceptance property: for every commit, the delta a
    // subscription delivers equals the multiset difference between full
    // re-executions of its query on the pre- and post-commit snapshots.
    let pool = universe();
    let store = Store::new();
    let queries = [
        // Closed predicate set — exercised *with* the prefilter.
        "PREFIX ex: <http://ex.org/> SELECT ?a ?b WHERE { ?a ex:knows ?b }",
        // FILTER defeats the prefilter — always re-evaluated.
        "PREFIX ex: <http://ex.org/>
         SELECT ?a WHERE { ?a ex:knows ?b FILTER (?b != ex:s0) }",
        // OPTIONAL + named graph join.
        "PREFIX ex: <http://ex.org/>
         SELECT ?s ?src WHERE { ?s ex:name ?n
           OPTIONAL { GRAPH <http://meta> { ?s ex:source ?src } } }",
    ];
    let prepared: Vec<_> = queries
        .iter()
        .map(|q| store.prepare(q).expect("prepares"))
        .collect();
    let subs: Vec<_> = prepared
        .iter()
        .map(|p| store.subscribe(p).expect("subscribes"))
        .collect();
    // Accumulated client-side view per subscription, as canonical rows.
    let mut acc: Vec<Vec<Vec<String>>> =
        subs.iter().map(|s| s.initial().canonical(false)).collect();

    let mut rng = Rng::new(0xD1FF_5EED);
    let mut model: Vec<Quad> = Vec::new();
    let mut last_seq = 0u64;
    for step in 0..25 {
        let ops = random_commit(&mut rng, &store, &mut model, &pool);
        let snapshot = store.snapshot();
        for (i, sub) in subs.iter().enumerate() {
            // Drain this commit's event (at most one: deltas coalesce
            // nothing, each commit delivers one delta or none).
            while let Some(event) = sub.try_recv() {
                let SubscriptionEvent::Delta(delta) = event else {
                    panic!("mailbox is large enough to never lag here");
                };
                assert!(delta.commit_seq > last_seq || i > 0, "monotone seq");
                last_seq = last_seq.max(delta.commit_seq);
                for row in delta.removed.canonical(false) {
                    let pos = acc[i]
                        .iter()
                        .position(|r| *r == row)
                        .unwrap_or_else(|| panic!("removed row {row:?} not in view"));
                    acc[i].swap_remove(pos);
                }
                acc[i].extend(delta.added.canonical(false));
            }
            // The accumulated view must now equal a full re-execution.
            let mut rerun = snapshot
                .execute_prepared(&prepared[i])
                .expect("rerun")
                .solutions()
                .expect("SELECT")
                .canonical(false);
            let mut view = acc[i].clone();
            rerun.sort();
            view.sort();
            assert_eq!(
                view, rerun,
                "step={step} query={i} ops={ops}: delta stream diverged from rerun diff"
            );
        }
    }
}
