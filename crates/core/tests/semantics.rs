//! End-to-end semantics tests of the SparqLog pipeline against the
//! paper's running examples and the SPARQL 1.1 semantics of Tables 4/5.

use sparqlog::{QueryResults, SparqLog};
use sparqlog_rdf::Term;

/// The film-directors graph of §3.1.
const FILMS: &str = r#"
@prefix ex: <http://ex.org/> .
ex:glucas ex:name "George" ;
          ex:lastname "Lucas" .
_:b1 ex:name "Steven" .
"#;

/// The bordering-countries graph of §4.2.
const COUNTRIES: &str = r#"
@prefix ex: <http://ex.org/> .
ex:spain ex:borders ex:france .
ex:france ex:borders ex:belgium .
ex:france ex:borders ex:germany .
ex:belgium ex:borders ex:germany .
ex:germany ex:borders ex:austria .
"#;

fn engine(turtle: &str) -> SparqLog {
    let mut e = SparqLog::new();
    e.load_turtle(turtle).unwrap();
    e
}

fn rows(r: &QueryResults) -> Vec<Vec<String>> {
    r.solutions().expect("SELECT result").canonical(false)
}

#[test]
fn paper_figure1_optional_query() {
    let mut e = engine(FILMS);
    let r = e
        .execute(
            r#"PREFIX ex: <http://ex.org/>
               SELECT ?N ?L WHERE { ?X ex:name ?N . OPTIONAL { ?X ex:lastname ?L } }
               ORDER BY ?N"#,
        )
        .unwrap();
    let s = r.solutions().unwrap();
    assert_eq!(s.vars, vec!["N", "L"]);
    assert_eq!(s.len(), 2);
    // μ1(?N)="George", μ1(?L)="Lucas"; μ2(?N)="Steven", ?L unbound.
    assert_eq!(s.rows[0][0], Some(Term::literal("George")));
    assert_eq!(s.rows[0][1], Some(Term::literal("Lucas")));
    assert_eq!(s.rows[1][0], Some(Term::literal("Steven")));
    assert_eq!(s.rows[1][1], None);
}

#[test]
fn paper_figure3_one_or_more_path() {
    let mut e = engine(COUNTRIES);
    let r = e
        .execute(
            r#"PREFIX ex: <http://ex.org/>
               SELECT ?B WHERE { ?A ex:borders+ ?B . FILTER (?A = ex:spain) }"#,
        )
        .unwrap();
    let mut got: Vec<String> = rows(&r).into_iter().map(|r| r[0].clone()).collect();
    got.sort();
    assert_eq!(
        got,
        vec![
            "<http://ex.org/austria>",
            "<http://ex.org/belgium>",
            "<http://ex.org/france>",
            "<http://ex.org/germany>"
        ]
    );
}

#[test]
fn bag_semantics_preserves_duplicates() {
    // Two distinct matches project onto the same ?typ value — bag
    // semantics must keep both.
    let mut e = engine(
        r#"@prefix ex: <http://e/> .
           ex:a ex:type ex:T . ex:b ex:type ex:T ."#,
    );
    let r = e
        .execute("PREFIX ex: <http://e/> SELECT ?t WHERE { ?x ex:type ?t }")
        .unwrap();
    assert_eq!(r.len(), 2, "duplicates preserved");
    let rd = e
        .execute("PREFIX ex: <http://e/> SELECT DISTINCT ?t WHERE { ?x ex:type ?t }")
        .unwrap();
    assert_eq!(rd.len(), 1, "DISTINCT collapses");
}

#[test]
fn union_duplicates_add_up() {
    let mut e = engine(r#"@prefix ex: <http://e/> . ex:a ex:p ex:b ."#);
    let r = e
        .execute(
            "PREFIX ex: <http://e/>
             SELECT ?x WHERE { { ?x ex:p ex:b } UNION { ?x ex:p ex:b } }",
        )
        .unwrap();
    assert_eq!(r.len(), 2, "UNION is multiset union (paper §5.1)");
}

#[test]
fn join_multiplicities_multiply() {
    // ?x has two p-edges and two q-edges: join on ?x gives 4 solutions.
    let mut e = engine(
        r#"@prefix ex: <http://e/> .
           ex:x ex:p ex:a , ex:b ; ex:q ex:c , ex:d ."#,
    );
    let r = e
        .execute("PREFIX ex: <http://e/> SELECT ?x WHERE { ?x ex:p ?y . ?x ex:q ?z }")
        .unwrap();
    assert_eq!(r.len(), 4);
}

#[test]
fn optional_unmatched_leaves_unbound() {
    let mut e = engine(
        r#"@prefix ex: <http://e/> .
           ex:a ex:p ex:v . ex:b ex:p ex:v . ex:a ex:q ex:w ."#,
    );
    let r = e
        .execute(
            "PREFIX ex: <http://e/>
             SELECT ?x ?w WHERE { ?x ex:p ex:v OPTIONAL { ?x ex:q ?w } }",
        )
        .unwrap();
    let s = r.solutions().unwrap();
    assert_eq!(s.len(), 2);
    let mut bound = 0;
    let mut unbound = 0;
    for row in &s.rows {
        match &row[1] {
            Some(_) => bound += 1,
            None => unbound += 1,
        }
    }
    assert_eq!((bound, unbound), (1, 1));
}

#[test]
fn optional_filter_def_a9() {
    // (P1 OPT (P2 FILTER C)): the filter restricts the extension, not P1.
    let mut e = engine(
        r#"@prefix ex: <http://e/> .
           ex:a ex:p 1 . ex:b ex:p 5 .
           ex:a ex:q 10 . ex:b ex:q 20 ."#,
    );
    let r = e
        .execute(
            "PREFIX ex: <http://e/>
             SELECT ?x ?v WHERE { ?x ex:p ?n OPTIONAL { ?x ex:q ?v FILTER (?v < 15) } }",
        )
        .unwrap();
    let s = r.solutions().unwrap();
    assert_eq!(s.len(), 2);
    for row in &s.rows {
        match row[0].as_ref().unwrap().str_value() {
            "http://e/a" => assert_eq!(row[1], Some(Term::integer(10))),
            "http://e/b" => assert_eq!(row[1], None, "filtered out → unbound"),
            other => panic!("unexpected subject {other}"),
        }
    }
}

#[test]
fn minus_removes_compatible_with_shared_var() {
    let mut e = engine(
        r#"@prefix ex: <http://e/> .
           ex:a ex:p ex:x . ex:b ex:p ex:x .
           ex:a ex:q ex:y ."#,
    );
    let r = e
        .execute(
            "PREFIX ex: <http://e/>
             SELECT ?s WHERE { ?s ex:p ex:x MINUS { ?s ex:q ex:y } }",
        )
        .unwrap();
    let got = rows(&r);
    assert_eq!(got, vec![vec!["<http://e/b>".to_string()]]);
}

#[test]
fn minus_with_disjoint_domains_keeps_everything() {
    // SPARQL §8.3.3: MINUS with no shared variables removes nothing.
    let mut e = engine(r#"@prefix ex: <http://e/> . ex:a ex:p ex:x . ex:c ex:q ex:y ."#);
    let r = e
        .execute(
            "PREFIX ex: <http://e/>
             SELECT ?s WHERE { ?s ex:p ex:x MINUS { ?t ex:q ex:y } }",
        )
        .unwrap();
    assert_eq!(r.len(), 1);
}

#[test]
fn filter_arithmetic_and_regex() {
    let mut e = engine(
        r#"@prefix ex: <http://e/> .
           ex:a ex:price 10 ; ex:label "Journal of Rust" .
           ex:b ex:price 99 ; ex:label "Proceedings" ."#,
    );
    let r = e
        .execute(
            r#"PREFIX ex: <http://e/>
               SELECT ?x WHERE { ?x ex:price ?p . ?x ex:label ?l
                                 FILTER (?p * 2 < 50 && REGEX(?l, "^journal", "i")) }"#,
        )
        .unwrap();
    assert_eq!(rows(&r), vec![vec!["<http://e/a>".to_string()]]);
}

#[test]
fn ask_queries() {
    let mut e = engine(COUNTRIES);
    assert_eq!(
        e.execute("PREFIX ex: <http://ex.org/> ASK { ex:spain ex:borders ex:france }")
            .unwrap(),
        QueryResults::Boolean(true)
    );
    assert_eq!(
        e.execute("PREFIX ex: <http://ex.org/> ASK { ex:spain ex:borders ex:austria }")
            .unwrap(),
        QueryResults::Boolean(false)
    );
}

#[test]
fn zero_or_one_path_includes_zero_length() {
    let mut e = engine(COUNTRIES);
    // ex:austria has no outgoing borders edge, but the zero-length path
    // (austria, austria) must exist (the fix the paper makes over [29]).
    let r = e
        .execute(
            "PREFIX ex: <http://ex.org/>
             SELECT ?B WHERE { ex:austria ex:borders? ?B }",
        )
        .unwrap();
    assert_eq!(rows(&r), vec![vec!["<http://ex.org/austria>".to_string()]]);
}

#[test]
fn zero_or_more_includes_start_node() {
    let mut e = engine(COUNTRIES);
    let r = e
        .execute(
            "PREFIX ex: <http://ex.org/>
             SELECT ?B WHERE { ex:spain ex:borders* ?B }",
        )
        .unwrap();
    // spain itself + 4 reachable countries.
    assert_eq!(r.len(), 5);
}

#[test]
fn zero_length_path_for_constant_not_in_graph() {
    // "the case that a path of zero length from t to t also exists for
    // those terms t which occur in the query but not in the current
    // graph" (§5.2) — the bug the paper fixes in earlier translations.
    let mut e = engine(COUNTRIES);
    let r = e
        .execute(
            "PREFIX ex: <http://ex.org/>
             SELECT ?B WHERE { ex:atlantis ex:borders? ?B }",
        )
        .unwrap();
    assert_eq!(
        rows(&r),
        vec![vec!["<http://ex.org/atlantis>".to_string()]],
        "zero-length path for query-only term"
    );
}

#[test]
fn recursive_path_set_semantics() {
    // Two routes from spain to germany (via france direct, via belgium):
    // `+` paths have set semantics, so germany appears once.
    let mut e = engine(COUNTRIES);
    let r = e
        .execute(
            "PREFIX ex: <http://ex.org/>
             SELECT ?B WHERE { ex:spain ex:borders+ ?B }",
        )
        .unwrap();
    let got = rows(&r);
    assert_eq!(got.len(), 4, "no duplicates from multiple routes: {got:?}");
}

#[test]
fn inverse_and_sequence_paths() {
    let mut e = engine(COUNTRIES);
    // ^borders: (s ^p o) ≡ (o p s) — who does france border / who borders
    // france.
    let r = e
        .execute(
            "PREFIX ex: <http://ex.org/>
             SELECT ?A WHERE { ex:france ^ex:borders ?A }",
        )
        .unwrap();
    assert_eq!(rows(&r), vec![vec!["<http://ex.org/spain>".to_string()]]);

    let r = e
        .execute(
            "PREFIX ex: <http://ex.org/>
             SELECT ?C WHERE { ex:spain ex:borders/ex:borders ?C }",
        )
        .unwrap();
    let mut got: Vec<String> = rows(&r).into_iter().map(|r| r[0].clone()).collect();
    got.sort();
    // spain → france → {belgium, germany}; bag semantics, one route each.
    assert_eq!(
        got,
        vec!["<http://ex.org/belgium>", "<http://ex.org/germany>"]
    );
}

#[test]
fn alternative_path_is_multiset_union() {
    let mut e = engine(r#"@prefix ex: <http://e/> . ex:a ex:p ex:b . ex:a ex:q ex:b ."#);
    let r = e
        .execute("PREFIX ex: <http://e/> SELECT ?y WHERE { ex:a (ex:p|ex:q) ?y }")
        .unwrap();
    assert_eq!(r.len(), 2, "both alternatives contribute");
}

#[test]
fn negated_property_set() {
    let mut e = engine(r#"@prefix ex: <http://e/> . ex:a ex:p ex:b . ex:a ex:q ex:c ."#);
    let r = e
        .execute("PREFIX ex: <http://e/> SELECT ?y WHERE { ex:a !(ex:p) ?y }")
        .unwrap();
    assert_eq!(rows(&r), vec![vec!["<http://e/c>".to_string()]]);
    // Negated set with inverse member.
    let r = e
        .execute("PREFIX ex: <http://e/> SELECT ?y WHERE { ex:b !(ex:q|^ex:p) ?y }")
        .unwrap();
    assert_eq!(r.len(), 0, "only ^p leads out of b, and it is negated");
}

#[test]
fn path_range_quantifiers() {
    // chain: n0 → n1 → n2 → n3 → n4
    let mut e = engine(
        r#"@prefix ex: <http://e/> .
           ex:n0 ex:p ex:n1 . ex:n1 ex:p ex:n2 .
           ex:n2 ex:p ex:n3 . ex:n3 ex:p ex:n4 ."#,
    );
    let q = |path: &str| format!("PREFIX ex: <http://e/> SELECT ?y WHERE {{ ex:n0 {path} ?y }}");
    let mut run = |path: &str| -> Vec<String> {
        let r = e.execute(&q(path)).unwrap();
        let mut got: Vec<String> = rows(&r).into_iter().map(|r| r[0].clone()).collect();
        got.sort();
        got
    };
    assert_eq!(run("ex:p{2}"), vec!["<http://e/n2>"]);
    assert_eq!(run("ex:p{3,}"), vec!["<http://e/n3>", "<http://e/n4>"]);
    assert_eq!(
        run("ex:p{0,2}"),
        vec!["<http://e/n0>", "<http://e/n1>", "<http://e/n2>"]
    );
}

#[test]
fn named_graphs_and_graph_pattern() {
    let mut e = SparqLog::new();
    let mut ds = sparqlog_rdf::Dataset::new();
    ds.default_graph_mut().insert(sparqlog_rdf::Triple::new(
        Term::iri("http://e/a"),
        Term::iri("http://e/p"),
        Term::iri("http://e/default"),
    ));
    ds.named_graph_mut("http://g1")
        .insert(sparqlog_rdf::Triple::new(
            Term::iri("http://e/a"),
            Term::iri("http://e/p"),
            Term::iri("http://e/in-g1"),
        ));
    ds.named_graph_mut("http://g2")
        .insert(sparqlog_rdf::Triple::new(
            Term::iri("http://e/b"),
            Term::iri("http://e/p"),
            Term::iri("http://e/in-g2"),
        ));
    e.load_dataset(&ds).unwrap();

    // Plain pattern sees only the default graph.
    let r = e.execute("SELECT ?o WHERE { ?s <http://e/p> ?o }").unwrap();
    assert_eq!(rows(&r), vec![vec!["<http://e/default>".to_string()]]);

    // GRAPH <iri> selects one named graph.
    let r = e
        .execute("SELECT ?o WHERE { GRAPH <http://g1> { ?s <http://e/p> ?o } }")
        .unwrap();
    assert_eq!(rows(&r), vec![vec!["<http://e/in-g1>".to_string()]]);

    // GRAPH ?g ranges over named graphs and binds ?g.
    let r = e
        .execute("SELECT ?g ?o WHERE { GRAPH ?g { ?s <http://e/p> ?o } }")
        .unwrap();
    let got = rows(&r);
    assert_eq!(got.len(), 2);
    assert!(got.iter().any(|r| r[0] == "<http://g1>"));
    assert!(got.iter().any(|r| r[0] == "<http://g2>"));
}

#[test]
fn order_limit_offset() {
    let mut e = engine(
        r#"@prefix ex: <http://e/> .
           ex:a ex:v 3 . ex:b ex:v 1 . ex:c ex:v 2 . ex:d ex:v 5 ."#,
    );
    let r = e
        .execute(
            "PREFIX ex: <http://e/>
             SELECT ?n WHERE { ?x ex:v ?n } ORDER BY ?n LIMIT 2 OFFSET 1",
        )
        .unwrap();
    let s = r.solutions().unwrap();
    assert_eq!(s.rows.len(), 2);
    assert_eq!(s.rows[0][0], Some(Term::integer(2)));
    assert_eq!(s.rows[1][0], Some(Term::integer(3)));
}

#[test]
fn order_by_desc_and_complex() {
    let mut e = engine(
        r#"@prefix ex: <http://e/> .
           ex:a ex:v 3 . ex:b ex:v 1 . ex:a ex:w 9 ."#,
    );
    let r = e
        .execute("PREFIX ex: <http://e/> SELECT ?n WHERE { ?x ex:v ?n } ORDER BY DESC(?n)")
        .unwrap();
    let s = r.solutions().unwrap();
    assert_eq!(s.rows[0][0], Some(Term::integer(3)));

    // Complex condition (FEASIBLE-style): unmatched OPTIONAL rows last.
    let r = e
        .execute(
            "PREFIX ex: <http://e/>
             SELECT ?n ?w WHERE { ?x ex:v ?n OPTIONAL { ?x ex:w ?w } }
             ORDER BY (!BOUND(?w)) ?n",
        )
        .unwrap();
    let s = r.solutions().unwrap();
    assert_eq!(s.rows[0][1], Some(Term::integer(9)), "bound row first");
    assert_eq!(s.rows[1][1], None);
}

#[test]
fn group_by_count() {
    let mut e = engine(
        r#"@prefix ex: <http://e/> .
           ex:p1 ex:author ex:alice . ex:p1 ex:author ex:bob .
           ex:p2 ex:author ex:carol ."#,
    );
    let r = e
        .execute(
            "PREFIX ex: <http://e/>
             SELECT ?p (COUNT(?a) AS ?n) WHERE { ?p ex:author ?a } GROUP BY ?p",
        )
        .unwrap();
    let got = rows(&r);
    assert_eq!(got.len(), 2);
    assert!(got
        .iter()
        .any(|r| r[0] == "<http://e/p1>" && r[1].contains('2')));
    assert!(got
        .iter()
        .any(|r| r[0] == "<http://e/p2>" && r[1].contains('1')));
}

#[test]
fn count_distinct_and_star() {
    let mut e = engine(
        r#"@prefix ex: <http://e/> .
           ex:p1 ex:t ex:a . ex:p1 ex:t ex:a2 . ex:p2 ex:t ex:a ."#,
    );
    let r = e
        .execute("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }")
        .unwrap();
    assert!(rows(&r)[0][0].contains('3'));
    let r = e
        .execute("PREFIX ex: <http://e/> SELECT (COUNT(DISTINCT ?o) AS ?n) WHERE { ?s ex:t ?o }")
        .unwrap();
    assert!(rows(&r)[0][0].contains('2'));
}

#[test]
fn ontology_subclass_subproperty() {
    use sparqlog::{Axiom, Ontology};
    let mut e = engine(
        r#"@prefix ex: <http://e/> .
           @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
           ex:art1 rdf:type ex:Article .
           ex:j1 ex:journalEditor ex:ed1 ."#,
    );
    let onto = Ontology::new()
        .with(Axiom::SubClassOf(
            "http://e/Article".into(),
            "http://e/Document".into(),
        ))
        .with(Axiom::SubPropertyOf(
            "http://e/journalEditor".into(),
            "http://e/editor".into(),
        ));
    e.add_ontology(&onto).unwrap();
    let r = e
        .execute("PREFIX ex: <http://e/> SELECT ?x WHERE { ?x a ex:Document }")
        .unwrap();
    assert_eq!(rows(&r), vec![vec!["<http://e/art1>".to_string()]]);
    let r = e
        .execute("PREFIX ex: <http://e/> SELECT ?e WHERE { ?j ex:editor ?e }")
        .unwrap();
    assert_eq!(rows(&r), vec![vec!["<http://e/ed1>".to_string()]]);
}

#[test]
fn ontology_existential_axiom_generates_labelled_null() {
    use sparqlog::{Axiom, Ontology};
    let mut e = engine(
        r#"@prefix ex: <http://e/> .
           @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
           ex:alice rdf:type ex:Person ."#,
    );
    let onto = Ontology::new().with(Axiom::SomeValuesFrom {
        class: "http://e/Person".into(),
        property: "http://e/hasParent".into(),
        filler: "http://e/Person".into(),
    });
    e.add_ontology(&onto).unwrap();
    let r = e
        .execute("PREFIX ex: <http://e/> SELECT ?p WHERE { ex:alice ex:hasParent ?p }")
        .unwrap();
    let s = r.solutions().unwrap();
    assert_eq!(s.len(), 1);
    assert!(
        s.rows[0][0].as_ref().unwrap().is_bnode(),
        "object invention yields a blank node (labelled null)"
    );
}

#[test]
fn filters_on_unbound_variables_fail() {
    let mut e = engine(r#"@prefix ex: <http://e/> . ex:a ex:p 1 ."#);
    // ?z is never bound: comparison errors → empty result; BOUND(?z) false.
    let r = e
        .execute("PREFIX ex: <http://e/> SELECT ?x WHERE { ?x ex:p ?n FILTER (?z > 0) }")
        .unwrap();
    assert!(r.is_empty());
    let r = e
        .execute("PREFIX ex: <http://e/> SELECT ?x WHERE { ?x ex:p ?n FILTER (!BOUND(?z)) }")
        .unwrap();
    assert_eq!(r.len(), 1);
}

#[test]
fn projection_of_never_bound_variable() {
    let mut e = engine(r#"@prefix ex: <http://e/> . ex:a ex:p 1 ."#);
    let r = e
        .execute("PREFIX ex: <http://e/> SELECT ?x ?ghost WHERE { ?x ex:p ?n }")
        .unwrap();
    let s = r.solutions().unwrap();
    assert_eq!(s.len(), 1);
    assert_eq!(s.rows[0][1], None);
}

#[test]
fn select_star_projection() {
    let mut e = engine(r#"@prefix ex: <http://e/> . ex:a ex:p ex:b ."#);
    let r = e.execute("SELECT * WHERE { ?s ?p ?o }").unwrap();
    let s = r.solutions().unwrap();
    assert_eq!(s.vars.len(), 3);
    assert_eq!(s.len(), 1);
}

#[test]
fn translated_programs_are_warded() {
    use sparqlog_datalog::check_wardedness;
    let mut e = engine(COUNTRIES);
    for q in [
        "SELECT ?s WHERE { ?s ?p ?o . ?o ?q ?z }",
        "PREFIX ex: <http://ex.org/> SELECT ?B WHERE { ?A ex:borders+ ?B }",
        "PREFIX ex: <http://ex.org/> SELECT ?N ?L WHERE
           { ?X ex:name ?N OPTIONAL { ?X ex:lastname ?L } }",
        "SELECT ?s WHERE { ?s ?p ?o MINUS { ?s ?q ?z } }",
        "SELECT DISTINCT ?s WHERE { { ?s ?p ?o } UNION { ?o ?p ?s } }",
    ] {
        let query = sparqlog_sparql::parse_query(q).unwrap();
        let tq = e.translate(&query).unwrap();
        let report = check_wardedness(&tq.program, e.symbols());
        assert!(report.warded, "{q}: {:?}", report.violations);
    }
}

#[test]
fn repeated_queries_are_isolated() {
    let mut e = engine(COUNTRIES);
    let q = "PREFIX ex: <http://ex.org/> SELECT ?B WHERE { ex:spain ex:borders* ?B }";
    let a = e.execute(q).unwrap();
    let b = e.execute(q).unwrap();
    assert_eq!(rows(&a), rows(&b), "query predicates are namespaced");
}

#[test]
fn triple_pattern_with_repeated_variable() {
    let mut e = engine(r#"@prefix ex: <http://e/> . ex:a ex:p ex:a . ex:a ex:p ex:b ."#);
    let r = e
        .execute("PREFIX ex: <http://e/> SELECT ?x WHERE { ?x ex:p ?x }")
        .unwrap();
    assert_eq!(rows(&r), vec![vec!["<http://e/a>".to_string()]]);
}

#[test]
fn empty_group_pattern() {
    let mut e = engine(r#"@prefix ex: <http://e/> . ex:a ex:p ex:b ."#);
    let r = e.execute("SELECT ?x WHERE { }").unwrap();
    let s = r.solutions().unwrap();
    assert_eq!(s.len(), 1, "empty pattern yields the empty mapping");
    assert_eq!(s.rows[0][0], None);
    assert_eq!(e.execute("ASK { }").unwrap(), QueryResults::Boolean(true));
}

#[test]
fn string_builtins_in_filters() {
    let mut e = engine(
        r#"@prefix ex: <http://e/> .
           ex:a ex:name "Alice" . ex:b ex:name "bob" ."#,
    );
    let r = e
        .execute(
            r#"PREFIX ex: <http://e/>
               SELECT ?x WHERE { ?x ex:name ?n
                 FILTER (UCASE(?n) = "ALICE" && STRLEN(?n) = 5 && CONTAINS(?n, "lic")) }"#,
        )
        .unwrap();
    assert_eq!(rows(&r), vec![vec!["<http://e/a>".to_string()]]);
    let r = e
        .execute(
            r#"PREFIX ex: <http://e/>
               SELECT ?x WHERE { ?x ex:name ?n FILTER (DATATYPE(?n) = <http://www.w3.org/2001/XMLSchema#string>) }"#,
        )
        .unwrap();
    assert_eq!(r.len(), 2);
}

#[test]
fn lang_tags_and_langmatches() {
    let mut e = engine(
        r#"@prefix ex: <http://e/> .
           ex:a ex:label "chat"@fr . ex:a ex:label "cat"@en-US . ex:a ex:label "plain" ."#,
    );
    let r = e
        .execute(
            r#"PREFIX ex: <http://e/>
               SELECT ?l WHERE { ex:a ex:label ?l FILTER (LANG(?l) = "fr") }"#,
        )
        .unwrap();
    assert_eq!(r.len(), 1);
    let r = e
        .execute(
            r#"PREFIX ex: <http://e/>
               SELECT ?l WHERE { ex:a ex:label ?l FILTER LANGMATCHES(LANG(?l), "en") }"#,
        )
        .unwrap();
    assert_eq!(r.len(), 1);
    // Language-tagged and plain literals are distinct terms.
    let r = e
        .execute(r#"PREFIX ex: <http://e/> SELECT ?x WHERE { ?x ex:label "chat" }"#)
        .unwrap();
    assert_eq!(r.len(), 0);
}

#[test]
fn facade_thread_plumbing_reaches_the_engine() {
    // The same query through the façade with 1 and 4 worker threads:
    // multiset-identical solutions, and the option survives on the engine.
    let data = r#"@prefix ex: <http://e/> .
        ex:a ex:p ex:b . ex:b ex:p ex:c . ex:c ex:p ex:a ."#;
    let run = |threads: Option<usize>| {
        let mut e = SparqLog::new();
        e.set_threads(threads);
        e.load_turtle(data).unwrap();
        e.execute("PREFIX ex: <http://e/> SELECT ?x ?y WHERE { ?x ex:p+ ?y }")
            .unwrap()
    };
    let seq = run(Some(1));
    let par = run(Some(4));
    let (QueryResults::Solutions(a), QueryResults::Solutions(b)) = (&seq, &par) else {
        panic!("expected solutions");
    };
    assert_eq!(a.len(), 9, "3-cycle closure is all 9 pairs");
    assert!(a.multiset_eq(b));

    let mut e = SparqLog::new();
    e.set_threads(Some(3));
    assert_eq!(e.options().resolved_threads(), 3);
    e.set_threads(None);
    // Default resolution consults the env/machine — just ensure it is sane.
    assert!(e.options().resolved_threads() >= 1);
}
