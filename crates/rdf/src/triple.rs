//! RDF triples and quads.

use std::fmt;

use crate::term::Term;

/// An RDF triple `(subject, predicate, object)`.
///
/// The data model does not enforce the positional restrictions of RDF 1.1
/// (e.g. literals in subject position) at the type level; parsers enforce
/// them at the syntax level. This permissiveness is deliberate: the SPARQL
/// reference engines instantiate triple *patterns* whose positions may carry
/// any term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// The subject term.
    pub subject: Term,
    /// The predicate term.
    pub predicate: Term,
    /// The object term.
    pub object: Term,
}

impl Triple {
    /// Creates a triple.
    pub fn new(subject: Term, predicate: Term, object: Term) -> Self {
        Triple {
            subject,
            predicate,
            object,
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// An RDF quad: a triple plus the graph it belongs to (`None` = default
/// graph).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Quad {
    /// The triple.
    pub triple: Triple,
    /// The containing graph's name; `None` = default graph.
    pub graph: Option<Term>,
}

impl Quad {
    /// Creates a quad in the default graph.
    pub fn in_default(triple: Triple) -> Self {
        Quad {
            triple,
            graph: None,
        }
    }

    /// Creates a quad in the named graph `g`.
    pub fn in_graph(triple: Triple, g: Term) -> Self {
        Quad {
            triple,
            graph: Some(g),
        }
    }
}

impl fmt::Display for Quad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.graph {
            None => write!(f, "{}", self.triple),
            Some(g) => write!(
                f,
                "{} {} {} {} .",
                self.triple.subject, self.triple.predicate, self.triple.object, g
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let t = Triple::new(
            Term::iri("http://a"),
            Term::iri("http://p"),
            Term::literal("x"),
        );
        assert_eq!(t.to_string(), "<http://a> <http://p> \"x\" .");
        let q = Quad::in_graph(t.clone(), Term::iri("http://g"));
        assert_eq!(q.to_string(), "<http://a> <http://p> \"x\" <http://g> .");
        assert_eq!(Quad::in_default(t).graph, None);
    }
}
