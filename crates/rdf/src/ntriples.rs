//! N-Triples parser and serializer.
//!
//! N-Triples is the line-based RDF syntax: one triple per line, full IRIs in
//! angle brackets, `.` terminated. It is the exchange format used by the
//! benchmark generators in this workspace.

use crate::graph::Graph;
use crate::term::Term;
use crate::triple::Triple;

/// An error produced while parsing N-Triples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "N-Triples parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses an N-Triples document into a [`Graph`].
pub fn parse(input: &str) -> Result<Graph, ParseError> {
    let mut g = Graph::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let triple = parse_line(line).map_err(|message| ParseError {
            line: lineno + 1,
            message,
        })?;
        g.insert(triple);
    }
    Ok(g)
}

/// Parses a single N-Triples line (without trailing newline).
fn parse_line(line: &str) -> Result<Triple, String> {
    let mut chars = Scanner::new(line);
    let subject = chars.term()?;
    chars.skip_ws();
    let predicate = chars.term()?;
    chars.skip_ws();
    let object = chars.term()?;
    chars.skip_ws();
    if !chars.eat('.') {
        return Err("expected '.' at end of triple".into());
    }
    chars.skip_ws();
    if !chars.at_end() {
        return Err("trailing content after '.'".into());
    }
    Ok(Triple::new(subject, predicate, object))
}

struct Scanner<'a> {
    rest: &'a str,
}

impl<'a> Scanner<'a> {
    fn new(s: &'a str) -> Self {
        Scanner { rest: s }
    }

    fn at_end(&self) -> bool {
        self.rest.is_empty()
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn eat(&mut self, c: char) -> bool {
        if let Some(r) = self.rest.strip_prefix(c) {
            self.rest = r;
            true
        } else {
            false
        }
    }

    fn term(&mut self) -> Result<Term, String> {
        self.skip_ws();
        let mut it = self.rest.chars();
        match it.next() {
            Some('<') => {
                let end = self
                    .rest
                    .find('>')
                    .ok_or_else(|| "unterminated IRI".to_string())?;
                let iri = &self.rest[1..end];
                self.rest = &self.rest[end + 1..];
                Ok(Term::iri(iri))
            }
            Some('_') => {
                if !self.rest.starts_with("_:") {
                    return Err("expected '_:' to start a blank node".into());
                }
                let body = &self.rest[2..];
                let len = body
                    .char_indices()
                    .find(|(_, c)| c.is_whitespace() || *c == '.')
                    .map(|(i, _)| i)
                    .unwrap_or(body.len());
                if len == 0 {
                    return Err("empty blank node label".into());
                }
                let label = &body[..len];
                self.rest = &body[len..];
                Ok(Term::bnode(label))
            }
            Some('"') => {
                let (lexical, consumed) = unescape_string(&self.rest[1..])?;
                self.rest = &self.rest[1 + consumed..];
                if let Some(r) = self.rest.strip_prefix("^^<") {
                    let end = r
                        .find('>')
                        .ok_or_else(|| "unterminated datatype IRI".to_string())?;
                    let dt = &r[..end];
                    self.rest = &r[end + 1..];
                    Ok(Term::typed_literal(lexical, dt))
                } else if let Some(r) = self.rest.strip_prefix('@') {
                    let len = r
                        .char_indices()
                        .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '-'))
                        .map(|(i, _)| i)
                        .unwrap_or(r.len());
                    if len == 0 {
                        return Err("empty language tag".into());
                    }
                    let tag = &r[..len];
                    self.rest = &r[len..];
                    Ok(Term::lang_literal(lexical, tag))
                } else {
                    Ok(Term::literal(lexical))
                }
            }
            Some(c) => Err(format!("unexpected character {c:?}")),
            None => Err("unexpected end of line".into()),
        }
    }
}

/// Unescapes an N-Triples string body starting just after the opening quote.
/// Returns `(content, bytes consumed including the closing quote)`.
fn unescape_string(s: &str) -> Result<(String, usize), String> {
    let mut out = String::new();
    let mut it = s.char_indices();
    while let Some((i, c)) = it.next() {
        match c {
            '"' => return Ok((out, i + 1)),
            '\\' => {
                let (_, esc) = it.next().ok_or("dangling escape")?;
                match esc {
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'u' => {
                        let mut code = String::new();
                        for _ in 0..4 {
                            code.push(it.next().ok_or("truncated \\u escape")?.1);
                        }
                        let n = u32::from_str_radix(&code, 16)
                            .map_err(|_| "invalid \\u escape".to_string())?;
                        out.push(char::from_u32(n).ok_or("invalid unicode code point")?);
                    }
                    other => return Err(format!("unknown escape \\{other}")),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string literal".into())
}

/// Writes a graph as an N-Triples document (one triple per line, in the
/// graph's insertion order) to an [`std::io::Write`] sink.
///
/// This is the streaming path: each triple is formatted straight into
/// `out`, so the document never materializes in memory. [`serialize`]
/// is a thin wrapper over this function.
pub fn write(g: &Graph, out: &mut dyn std::io::Write) -> std::io::Result<()> {
    for (s, p, o) in g.iter() {
        writeln!(out, "{s} {p} {o} .")?;
    }
    Ok(())
}

/// Serializes a graph as an N-Triples document (one triple per line, in the
/// graph's insertion order). Thin wrapper over [`write()`].
pub fn serialize(g: &Graph) -> String {
    let mut out = Vec::new();
    write(g, &mut out).expect("writing to a Vec<u8> cannot fail");
    String::from_utf8(out).expect("N-Triples output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_document() {
        let doc = r#"
# film directors, from the paper §3.1
<http://ex.org/glucas> <http://ex.org/name> "George" .
<http://ex.org/glucas> <http://ex.org/lastname> "Lucas" .
_:b1 <http://ex.org/name> "Steven" .
"#;
        let g = parse(doc).unwrap();
        assert_eq!(g.len(), 3);
        assert!(g.contains(&Triple::new(
            Term::bnode("b1"),
            Term::iri("http://ex.org/name"),
            Term::literal("Steven"),
        )));
    }

    #[test]
    fn parse_typed_and_lang_literals() {
        let doc = concat!(
            "<http://s> <http://p> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
            "<http://s> <http://p> \"chat\"@fr .\n",
        );
        let g = parse(doc).unwrap();
        assert!(g.contains(&Triple::new(
            Term::iri("http://s"),
            Term::iri("http://p"),
            Term::integer(5),
        )));
        assert!(g.contains(&Triple::new(
            Term::iri("http://s"),
            Term::iri("http://p"),
            Term::lang_literal("chat", "fr"),
        )));
    }

    #[test]
    fn parse_escapes() {
        let doc = "<http://s> <http://p> \"a\\\"b\\nc\\\\d\\u0041\" .\n";
        let g = parse(doc).unwrap();
        let (_, _, o) = g.iter().next().unwrap();
        assert_eq!(o.as_literal().unwrap().lexical(), "a\"b\nc\\dA");
    }

    #[test]
    fn roundtrip() {
        let doc = concat!(
            "<http://s> <http://p> \"x\" .\n",
            "<http://s> <http://p> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
            "_:b <http://p> \"hi\"@en .\n",
        );
        let g = parse(doc).unwrap();
        let g2 = parse(&serialize(&g)).unwrap();
        assert_eq!(g.len(), g2.len());
        for (s, p, o) in g.iter() {
            assert!(g2.contains(&Triple::new(s.clone(), p.clone(), o.clone())));
        }
    }

    #[test]
    fn errors_are_reported_with_line_numbers() {
        let err = parse("<http://s> <http://p> .\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse("<http://s> <http://p> \"x\"\n").unwrap_err();
        assert!(err.message.contains("'.'"), "{}", err.message);
        let err = parse("<http://s> <http://p> \"x\" . junk\n").unwrap_err();
        assert!(err.message.contains("trailing"), "{}", err.message);
    }

    #[test]
    fn unterminated_iri_and_string() {
        assert!(parse("<http://s <http://p> <http://o> .").is_err());
        assert!(parse("<http://s> <http://p> \"x .").is_err());
    }
}
