//! N-Quads parser and serializer: the dataset-level exchange format
//! (N-Triples plus an optional graph-name IRI per line).

use std::fmt::Write as _;

use crate::dataset::Dataset;
use crate::ntriples::ParseError;
use crate::term::Term;
use crate::triple::{Quad, Triple};

/// Parses an N-Quads document into a [`Dataset`]. Lines with three terms
/// go to the default graph; a fourth IRI selects a named graph.
pub fn parse(input: &str) -> Result<Dataset, ParseError> {
    let mut ds = Dataset::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let quad = parse_line(line).map_err(|message| ParseError {
            line: lineno + 1,
            message,
        })?;
        ds.insert(quad);
    }
    Ok(ds)
}

fn parse_line(line: &str) -> Result<Quad, String> {
    // Reuse the N-Triples term scanner by tokenising manually: strip the
    // trailing '.', then read three or four terms.
    let body = line
        .strip_suffix('.')
        .ok_or_else(|| "expected '.' at end of statement".to_string())?
        .trim_end();
    let mut terms = Vec::new();
    let mut rest = body;
    while !rest.trim_start().is_empty() {
        if terms.len() == 4 {
            return Err("too many terms in statement".into());
        }
        let (term, remainder) = scan_term(rest.trim_start())?;
        terms.push(term);
        rest = remainder;
    }
    match terms.len() {
        3 => {
            let mut it = terms.into_iter();
            Ok(Quad::in_default(Triple::new(
                it.next().unwrap(),
                it.next().unwrap(),
                it.next().unwrap(),
            )))
        }
        4 => {
            let mut it = terms.into_iter();
            let t = Triple::new(it.next().unwrap(), it.next().unwrap(), it.next().unwrap());
            let g = it.next().unwrap();
            if !g.is_iri() {
                return Err("graph name must be an IRI".into());
            }
            Ok(Quad::in_graph(t, g))
        }
        n => Err(format!("expected 3 or 4 terms, found {n}")),
    }
}

/// Scans one term off the front of `s`; returns the term and the rest.
fn scan_term(s: &str) -> Result<(Term, &str), String> {
    let mut chars = s.chars();
    match chars.next() {
        Some('<') => {
            let end = s.find('>').ok_or("unterminated IRI")?;
            Ok((Term::iri(&s[1..end]), &s[end + 1..]))
        }
        Some('_') => {
            let body = s.strip_prefix("_:").ok_or("expected '_:'")?;
            let len = body
                .char_indices()
                .find(|(_, c)| c.is_whitespace())
                .map(|(i, _)| i)
                .unwrap_or(body.len());
            if len == 0 {
                return Err("empty blank node label".into());
            }
            Ok((Term::bnode(&body[..len]), &body[len..]))
        }
        Some('"') => {
            // Find the closing quote, honouring escapes.
            let mut end = None;
            let mut escaped = false;
            for (i, c) in s[1..].char_indices() {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    end = Some(i + 1);
                    break;
                }
            }
            let end = end.ok_or("unterminated string literal")?;
            let lexical = unescape(&s[1..end])?;
            let rest = &s[end + 1..];
            if let Some(r) = rest.strip_prefix("^^<") {
                let close = r.find('>').ok_or("unterminated datatype IRI")?;
                Ok((Term::typed_literal(lexical, &r[..close]), &r[close + 1..]))
            } else if let Some(r) = rest.strip_prefix('@') {
                let len = r
                    .char_indices()
                    .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '-'))
                    .map(|(i, _)| i)
                    .unwrap_or(r.len());
                if len == 0 {
                    return Err("empty language tag".into());
                }
                Ok((Term::lang_literal(lexical, &r[..len]), &r[len..]))
            } else {
                Ok((Term::literal(lexical), rest))
            }
        }
        Some(c) => Err(format!("unexpected character {c:?}")),
        None => Err("unexpected end of statement".into()),
    }
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('u') => {
                let code: String = (0..4).filter_map(|_| it.next()).collect();
                if code.len() != 4 {
                    return Err("truncated \\u escape".into());
                }
                let n =
                    u32::from_str_radix(&code, 16).map_err(|_| "invalid \\u escape".to_string())?;
                out.push(char::from_u32(n).ok_or("invalid code point")?);
            }
            other => return Err(format!("unknown escape {other:?}")),
        }
    }
    Ok(out)
}

/// Serializes a dataset as N-Quads.
pub fn serialize(ds: &Dataset) -> String {
    let mut out = String::new();
    for (s, p, o) in ds.default_graph().iter() {
        let _ = writeln!(out, "{s} {p} {o} .");
    }
    for (name, g) in ds.named_graphs() {
        for (s, p, o) in g.iter() {
            let _ = writeln!(out, "{s} {p} {o} <{name}> .");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_mixed_document() {
        let doc = r#"
<http://a> <http://p> <http://b> .
<http://a> <http://p> "lit"@en <http://g1> .
_:b <http://p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> <http://g1> .
# comment
<http://c> <http://q> "x" <http://g2> .
"#;
        let ds = parse(doc).unwrap();
        assert_eq!(ds.default_graph().len(), 1);
        assert_eq!(ds.named_graph("http://g1").unwrap().len(), 2);
        assert_eq!(ds.named_graph("http://g2").unwrap().len(), 1);
        assert!(ds.named_graph("http://g1").unwrap().contains(&Triple::new(
            Term::bnode("b"),
            Term::iri("http://p"),
            Term::integer(5),
        )));
    }

    #[test]
    fn roundtrip() {
        let doc = concat!(
            "<http://a> <http://p> \"x\" .\n",
            "<http://a> <http://p> \"esc\\\"aped\" <http://g> .\n",
        );
        let ds = parse(doc).unwrap();
        let ds2 = parse(&serialize(&ds)).unwrap();
        assert_eq!(ds.len(), ds2.len());
        assert_eq!(ds2.named_graph("http://g").unwrap().len(), 1);
    }

    #[test]
    fn errors() {
        assert_eq!(parse("<http://a> <http://p>").unwrap_err().line, 1);
        assert!(parse("<http://a> <http://p> <http://o> \"lit\" .").is_err());
        assert!(parse("<a> <p> <o> <g> <extra> .").is_err());
        assert!(parse("<http://a> <http://p> \"unterminated .").is_err());
    }

    #[test]
    fn escapes_in_literals() {
        let ds = parse(r#"<http://a> <http://p> "a\"b\nc" ."#).unwrap();
        let (_, _, o) = ds.default_graph().iter().next().unwrap();
        assert_eq!(o.as_literal().unwrap().lexical(), "a\"b\nc");
    }
}
