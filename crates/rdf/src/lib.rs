//! RDF 1.1 data model for the SparqLog reproduction.
//!
//! This crate provides the substrate that every other crate in the workspace
//! builds upon: RDF [terms](term::Term) (IRIs, literals with datatypes and
//! language tags, blank nodes), [triples](triple::Triple),
//! [graphs](graph::Graph) with hash indexes on every component,
//! [datasets](dataset::Dataset) (a default graph plus named graphs), and
//! parsers/serializers for N-Triples and a practical subset of Turtle.
//!
//! The design goals mirror what the SparqLog paper (VLDB 2023) needs from
//! Apache Jena:
//!
//! * cheap term sharing (`Arc<str>` backed) so that loading a 50k-triple
//!   SP²Bench instance does not copy strings per triple,
//! * indexed pattern matching (`(s?, p?, o?)` with any subset bound) for the
//!   reference engines,
//! * a total order on terms so solution sequences can be sorted
//!   deterministically.
//!
//! # Example
//!
//! ```
//! use sparqlog_rdf::{Graph, Term, Triple};
//!
//! let mut g = Graph::new();
//! g.insert(Triple::new(
//!     Term::iri("http://ex.org/glucas"),
//!     Term::iri("http://ex.org/name"),
//!     Term::literal("George"),
//! ));
//! assert_eq!(g.len(), 1);
//! let hits: Vec<_> = g
//!     .triples_matching(None, Some(&Term::iri("http://ex.org/name")), None)
//!     .collect();
//! assert_eq!(hits.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod graph;
pub mod nquads;
pub mod ntriples;
pub mod term;
pub mod triple;
pub mod turtle;
pub mod vocab;

pub use dataset::Dataset;
pub use graph::Graph;
pub use term::{Literal, LiteralKind, Term};
pub use triple::{Quad, Triple};
