//! Well-known RDF vocabularies (XSD, RDF, RDFS) used across the workspace.

/// XML Schema datatypes.
pub mod xsd {
    /// The namespace prefix.
    pub const NS: &str = "http://www.w3.org/2001/XMLSchema#";
    /// `xsd:string`.
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    /// `xsd:integer`.
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    /// `xsd:decimal`.
    pub const DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
    /// `xsd:double`.
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    /// `xsd:float`.
    pub const FLOAT: &str = "http://www.w3.org/2001/XMLSchema#float";
    /// `xsd:boolean`.
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    /// `xsd:date`.
    pub const DATE: &str = "http://www.w3.org/2001/XMLSchema#date";
    /// `xsd:dateTime`.
    pub const DATE_TIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";
    /// `xsd:long`.
    pub const LONG: &str = "http://www.w3.org/2001/XMLSchema#long";
    /// `xsd:int`.
    pub const INT: &str = "http://www.w3.org/2001/XMLSchema#int";
    /// `xsd:short`.
    pub const SHORT: &str = "http://www.w3.org/2001/XMLSchema#short";
    /// `xsd:byte`.
    pub const BYTE: &str = "http://www.w3.org/2001/XMLSchema#byte";
    /// `xsd:nonNegativeInteger`.
    pub const NON_NEGATIVE_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#nonNegativeInteger";

    /// True for XSD datatypes whose value space is integer.
    pub fn is_integer(dt: &str) -> bool {
        matches!(
            dt,
            INTEGER | LONG | INT | SHORT | BYTE | NON_NEGATIVE_INTEGER
        )
    }

    /// True for XSD datatypes that SPARQL treats as numeric.
    pub fn is_numeric(dt: &str) -> bool {
        is_integer(dt) || matches!(dt, DECIMAL | DOUBLE | FLOAT)
    }
}

/// The RDF core vocabulary.
pub mod rdf {
    /// The namespace prefix.
    pub const NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    /// `rdf:type`.
    pub const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    /// `rdf:langString`.
    pub const LANG_STRING: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString";
    /// `rdf:first`.
    pub const FIRST: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#first";
    /// `rdf:rest`.
    pub const REST: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#rest";
    /// `rdf:nil`.
    pub const NIL: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil";
}

/// The RDF Schema vocabulary (used by the ontology benchmark).
pub mod rdfs {
    /// The namespace prefix.
    pub const NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
    /// `rdfs:subClassOf`.
    pub const SUB_CLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    /// `rdfs:subPropertyOf`.
    pub const SUB_PROPERTY_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
    /// `rdfs:domain`.
    pub const DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
    /// `rdfs:range`.
    pub const RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";
    /// `rdfs:label`.
    pub const LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
}

/// OWL vocabulary items needed for the OWL 2 QL subset.
pub mod owl {
    /// The namespace prefix.
    pub const NS: &str = "http://www.w3.org/2002/07/owl#";
    /// `owl:inverseOf`.
    pub const INVERSE_OF: &str = "http://www.w3.org/2002/07/owl#inverseOf";
    /// `owl:someValuesFrom`.
    pub const SOME_VALUES_FROM: &str = "http://www.w3.org/2002/07/owl#someValuesFrom";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_classification() {
        assert!(xsd::is_numeric(xsd::INTEGER));
        assert!(xsd::is_numeric(xsd::DOUBLE));
        assert!(xsd::is_integer(xsd::INT));
        assert!(!xsd::is_integer(xsd::DOUBLE));
        assert!(!xsd::is_numeric(xsd::STRING));
        assert!(!xsd::is_numeric(xsd::BOOLEAN));
    }
}
