//! Well-known RDF vocabularies (XSD, RDF, RDFS) used across the workspace.

/// XML Schema datatypes.
pub mod xsd {
    pub const NS: &str = "http://www.w3.org/2001/XMLSchema#";
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    pub const DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    pub const FLOAT: &str = "http://www.w3.org/2001/XMLSchema#float";
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    pub const DATE: &str = "http://www.w3.org/2001/XMLSchema#date";
    pub const DATE_TIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";
    pub const LONG: &str = "http://www.w3.org/2001/XMLSchema#long";
    pub const INT: &str = "http://www.w3.org/2001/XMLSchema#int";
    pub const SHORT: &str = "http://www.w3.org/2001/XMLSchema#short";
    pub const BYTE: &str = "http://www.w3.org/2001/XMLSchema#byte";
    pub const NON_NEGATIVE_INTEGER: &str =
        "http://www.w3.org/2001/XMLSchema#nonNegativeInteger";

    /// True for XSD datatypes whose value space is integer.
    pub fn is_integer(dt: &str) -> bool {
        matches!(
            dt,
            INTEGER | LONG | INT | SHORT | BYTE | NON_NEGATIVE_INTEGER
        )
    }

    /// True for XSD datatypes that SPARQL treats as numeric.
    pub fn is_numeric(dt: &str) -> bool {
        is_integer(dt) || matches!(dt, DECIMAL | DOUBLE | FLOAT)
    }
}

/// The RDF core vocabulary.
pub mod rdf {
    pub const NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    pub const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    pub const LANG_STRING: &str =
        "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString";
    pub const FIRST: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#first";
    pub const REST: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#rest";
    pub const NIL: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil";
}

/// The RDF Schema vocabulary (used by the ontology benchmark).
pub mod rdfs {
    pub const NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
    pub const SUB_CLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    pub const SUB_PROPERTY_OF: &str =
        "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
    pub const DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
    pub const RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";
    pub const LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
}

/// OWL vocabulary items needed for the OWL 2 QL subset.
pub mod owl {
    pub const NS: &str = "http://www.w3.org/2002/07/owl#";
    pub const INVERSE_OF: &str = "http://www.w3.org/2002/07/owl#inverseOf";
    pub const SOME_VALUES_FROM: &str = "http://www.w3.org/2002/07/owl#someValuesFrom";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_classification() {
        assert!(xsd::is_numeric(xsd::INTEGER));
        assert!(xsd::is_numeric(xsd::DOUBLE));
        assert!(xsd::is_integer(xsd::INT));
        assert!(!xsd::is_integer(xsd::DOUBLE));
        assert!(!xsd::is_numeric(xsd::STRING));
        assert!(!xsd::is_numeric(xsd::BOOLEAN));
    }
}
