//! RDF datasets: a default graph plus zero or more named graphs.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::graph::Graph;
use crate::term::Term;
use crate::triple::{Quad, Triple};

/// An RDF dataset (RDF 1.1 Concepts §4): one default graph and a map from
/// graph names (IRIs) to named graphs.
///
/// A `BTreeMap` keeps graph-name iteration deterministic, which matters for
/// reproducible benchmark output.
#[derive(Debug, Default, Clone)]
pub struct Dataset {
    default: Graph,
    named: BTreeMap<Arc<str>, Graph>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Creates a dataset whose default graph is `g`.
    pub fn from_default_graph(g: Graph) -> Self {
        Dataset {
            default: g,
            named: BTreeMap::new(),
        }
    }

    /// The default graph.
    pub fn default_graph(&self) -> &Graph {
        &self.default
    }

    /// Mutable access to the default graph.
    pub fn default_graph_mut(&mut self) -> &mut Graph {
        &mut self.default
    }

    /// The named graph with IRI `name`, if present.
    pub fn named_graph(&self, name: &str) -> Option<&Graph> {
        self.named.get(name)
    }

    /// Mutable access to the named graph `name`, creating it if absent.
    pub fn named_graph_mut(&mut self, name: &str) -> &mut Graph {
        self.named.entry(Arc::from(name)).or_default()
    }

    /// Iterates over `(name, graph)` pairs of the named graphs.
    pub fn named_graphs(&self) -> impl Iterator<Item = (&str, &Graph)> + '_ {
        self.named.iter().map(|(k, v)| (k.as_ref(), v))
    }

    /// The names of all named graphs.
    pub fn graph_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.named.keys().map(|k| k.as_ref())
    }

    /// Inserts a quad into the appropriate graph.
    pub fn insert(&mut self, quad: Quad) -> bool {
        match quad.graph {
            None => self.default.insert(quad.triple),
            Some(Term::Iri(name)) => self.named.entry(name).or_default().insert(quad.triple),
            Some(other) => panic!("graph names must be IRIs, got {other}"),
        }
    }

    /// Inserts a triple into the default graph.
    pub fn insert_default(&mut self, triple: Triple) -> bool {
        self.default.insert(triple)
    }

    /// Total number of triples across all graphs.
    pub fn len(&self) -> usize {
        self.default.len() + self.named.values().map(Graph::len).sum::<usize>()
    }

    /// True if every graph is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri("p"), Term::iri("o"))
    }

    #[test]
    fn default_and_named_graphs() {
        let mut d = Dataset::new();
        d.insert_default(t("a"));
        d.insert(Quad::in_graph(t("b"), Term::iri("http://g1")));
        d.insert(Quad::in_graph(t("c"), Term::iri("http://g2")));
        assert_eq!(d.len(), 3);
        assert_eq!(d.default_graph().len(), 1);
        assert_eq!(d.named_graph("http://g1").unwrap().len(), 1);
        assert!(d.named_graph("http://missing").is_none());
        let names: Vec<_> = d.graph_names().collect();
        assert_eq!(names, vec!["http://g1", "http://g2"]);
    }

    #[test]
    fn insert_quad_in_default() {
        let mut d = Dataset::new();
        d.insert(Quad::in_default(t("a")));
        assert_eq!(d.default_graph().len(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "graph names must be IRIs")]
    fn non_iri_graph_name_panics() {
        let mut d = Dataset::new();
        d.insert(Quad::in_graph(t("a"), Term::literal("nope")));
    }

    #[test]
    fn named_graph_mut_creates() {
        let mut d = Dataset::new();
        d.named_graph_mut("http://g").insert(t("x"));
        assert_eq!(d.named_graph("http://g").unwrap().len(), 1);
    }
}
