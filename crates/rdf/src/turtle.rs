//! A practical subset of the Turtle syntax.
//!
//! Supports everything our benchmarks and examples need:
//!
//! * `@prefix` / `@base` directives (and SPARQL-style `PREFIX` / `BASE`),
//! * prefixed names (`ex:spain`), full IRIs, blank nodes (`_:b` and `[]`),
//! * `a` as `rdf:type`,
//! * predicate lists (`;`) and object lists (`,`),
//! * string literals with escapes, language tags and datatypes,
//! * numeric (`5`, `-3.2`, `4.2e1`) and boolean (`true`/`false`) shorthand.
//!
//! Not supported (not needed by the paper's workloads): collections
//! `( ... )`, triple-quoted strings, and nested blank-node property lists.

use std::collections::HashMap;

use crate::graph::Graph;
use crate::term::Term;
use crate::triple::Triple;
use crate::vocab::{rdf, xsd};

/// An error produced while parsing Turtle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurtleError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for TurtleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Turtle parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for TurtleError {}

/// Parses a Turtle document into a [`Graph`].
pub fn parse(input: &str) -> Result<Graph, TurtleError> {
    Parser::new(input).parse_document()
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    prefixes: HashMap<String, String>,
    base: String,
    graph: Graph,
    bnode_counter: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            pos: 0,
            prefixes: HashMap::new(),
            base: String::new(),
            graph: Graph::new(),
            bnode_counter: 0,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, TurtleError> {
        Err(TurtleError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        loop {
            let r = self.rest();
            let trimmed = r.trim_start();
            self.pos += r.len() - trimmed.len();
            if trimmed.starts_with('#') {
                match trimmed.find('\n') {
                    Some(nl) => self.pos += nl + 1,
                    None => self.pos = self.input.len(),
                }
            } else {
                return;
            }
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword_ci(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let r = self.rest();
        if r.len() >= kw.len() && r[..kw.len()].eq_ignore_ascii_case(kw) {
            // Keyword must end at a boundary.
            let after = &r[kw.len()..];
            if after.is_empty() || !after.chars().next().unwrap().is_ascii_alphanumeric() {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn parse_document(mut self) -> Result<Graph, TurtleError> {
        loop {
            self.skip_ws();
            if self.rest().is_empty() {
                return Ok(self.graph);
            }
            if self.eat_keyword_ci("@prefix") || self.eat_keyword_ci("prefix") {
                self.parse_prefix()?;
            } else if self.eat_keyword_ci("@base") || self.eat_keyword_ci("base") {
                self.skip_ws();
                let iri = self.parse_iri_ref()?;
                self.base = iri;
                self.eat('.');
            } else {
                self.parse_triples_block()?;
                self.skip_ws();
                if !self.eat('.') {
                    return self.err("expected '.' after triples");
                }
            }
        }
    }

    fn parse_prefix(&mut self) -> Result<(), TurtleError> {
        self.skip_ws();
        let name = self.take_while(|c| c != ':' && !c.is_whitespace());
        if !self.eat(':') {
            return self.err("expected ':' in prefix declaration");
        }
        self.skip_ws();
        let iri = self.parse_iri_ref()?;
        self.prefixes.insert(name, iri);
        self.eat('.');
        Ok(())
    }

    fn take_while(&mut self, f: impl Fn(char) -> bool) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if f(c) {
                self.bump();
            } else {
                break;
            }
        }
        self.input[start..self.pos].to_string()
    }

    fn parse_iri_ref(&mut self) -> Result<String, TurtleError> {
        self.skip_ws();
        if !self.eat('<') {
            return self.err("expected '<' to start IRI");
        }
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == '>' {
                let iri = &self.input[start..self.pos];
                self.bump();
                return Ok(self.resolve_iri(iri));
            }
            self.bump();
        }
        self.err("unterminated IRI")
    }

    fn resolve_iri(&self, iri: &str) -> String {
        if iri.contains(':') || self.base.is_empty() {
            iri.to_string()
        } else {
            format!("{}{}", self.base, iri)
        }
    }

    fn parse_triples_block(&mut self) -> Result<(), TurtleError> {
        let subject = self.parse_term(true)?;
        loop {
            self.skip_ws();
            let predicate = if self.eat_keyword_ci("a") {
                Term::iri(rdf::TYPE)
            } else {
                self.parse_term(false)?
            };
            loop {
                let object = self.parse_term(false)?;
                self.graph
                    .insert(Triple::new(subject.clone(), predicate.clone(), object));
                if !self.eat(',') {
                    break;
                }
            }
            if !self.eat(';') {
                return Ok(());
            }
            // A trailing ';' before '.' is legal Turtle.
            self.skip_ws();
            if self.peek() == Some('.') {
                return Ok(());
            }
        }
    }

    fn parse_term(&mut self, subject_position: bool) -> Result<Term, TurtleError> {
        self.skip_ws();
        match self.peek() {
            Some('<') => {
                let iri = self.parse_iri_ref()?;
                Ok(Term::iri(iri))
            }
            Some('_') => {
                if self.rest().starts_with("_:") {
                    self.pos += 2;
                    let label =
                        self.take_while(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
                    if label.is_empty() {
                        return self.err("empty blank node label");
                    }
                    Ok(Term::bnode(label))
                } else {
                    self.err("expected '_:'")
                }
            }
            Some('[') => {
                self.bump();
                if !self.eat(']') {
                    return self.err("blank node property lists are not supported");
                }
                self.bnode_counter += 1;
                Ok(Term::bnode(format!("anon{}", self.bnode_counter)))
            }
            Some('"') | Some('\'') => self.parse_literal(),
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => self.parse_number(),
            Some(_) => {
                if !subject_position && self.eat_keyword_ci("true") {
                    return Ok(Term::boolean(true));
                }
                if !subject_position && self.eat_keyword_ci("false") {
                    return Ok(Term::boolean(false));
                }
                self.parse_prefixed_name()
            }
            None => self.err("unexpected end of input"),
        }
    }

    fn parse_prefixed_name(&mut self) -> Result<Term, TurtleError> {
        let prefix = self.take_while(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
        if !self.eat(':') {
            return self.err(format!("expected ':' after prefix {prefix:?}"));
        }
        let local =
            self.take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | '%'));
        // Turtle allows '.' inside local names but a trailing '.' terminates
        // the statement; give it back.
        let local = if let Some(stripped) = local.strip_suffix('.') {
            self.pos -= 1;
            stripped.to_string()
        } else {
            local
        };
        match self.prefixes.get(&prefix) {
            Some(ns) => Ok(Term::iri(format!("{ns}{local}"))),
            None => self.err(format!("undeclared prefix {prefix:?}")),
        }
    }

    fn parse_literal(&mut self) -> Result<Term, TurtleError> {
        let quote = self.bump().unwrap();
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string literal"),
                Some(c) if c == quote => break,
                Some('\\') => match self.bump() {
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('"') => out.push('"'),
                    Some('\'') => out.push('\''),
                    Some('\\') => out.push('\\'),
                    Some('u') => {
                        let mut code = String::new();
                        for _ in 0..4 {
                            match self.bump() {
                                Some(c) => code.push(c),
                                None => return self.err("truncated \\u escape"),
                            }
                        }
                        match u32::from_str_radix(&code, 16).ok().and_then(char::from_u32) {
                            Some(c) => out.push(c),
                            None => return self.err("invalid \\u escape"),
                        }
                    }
                    other => return self.err(format!("unknown escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
        if self.rest().starts_with("^^") {
            self.pos += 2;
            self.skip_ws();
            let dt = match self.peek() {
                Some('<') => self.parse_iri_ref()?,
                _ => match self.parse_prefixed_name()? {
                    Term::Iri(i) => i.to_string(),
                    _ => return self.err("datatype must be an IRI"),
                },
            };
            return Ok(Term::typed_literal(out, dt));
        }
        if self.peek() == Some('@') {
            self.bump();
            let tag = self.take_while(|c| c.is_ascii_alphanumeric() || c == '-');
            if tag.is_empty() {
                return self.err("empty language tag");
            }
            return Ok(Term::lang_literal(out, &tag));
        }
        Ok(Term::literal(out))
    }

    fn parse_number(&mut self) -> Result<Term, TurtleError> {
        let start = self.pos;
        if matches!(self.peek(), Some('-') | Some('+')) {
            self.bump();
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.bump();
            } else if c == '.' {
                // Only a decimal point if followed by a digit (else it is
                // the statement terminator).
                let mut look = self.rest().chars();
                look.next();
                if look.next().is_some_and(|d| d.is_ascii_digit()) {
                    is_float = true;
                    self.bump();
                } else {
                    break;
                }
            } else if c == 'e' || c == 'E' {
                is_float = true;
                self.bump();
                if matches!(self.peek(), Some('-') | Some('+')) {
                    self.bump();
                }
            } else {
                break;
            }
        }
        let text = &self.input[start..self.pos];
        if text.is_empty() || text == "-" || text == "+" {
            return self.err("invalid number");
        }
        if is_float {
            Ok(Term::typed_literal(text, xsd::DOUBLE))
        } else {
            Ok(Term::typed_literal(text, xsd::INTEGER))
        }
    }
}

/// Writes a graph as Turtle to an [`std::io::Write`] sink, grouping
/// triples by subject (predicate lists with `;`, object lists with `,`).
/// Terms are written in N-Triples syntax — full IRIs, no prefix
/// compaction — which every Turtle parser (including [`parse`]) accepts;
/// `rdf:type` predicates compact to `a`.
///
/// This is the streaming path: the grouping index holds borrowed term
/// references (O(distinct subjects + predicates) bookkeeping), and each
/// statement is formatted straight into `out`, so the document itself
/// never materializes in memory. [`serialize`] is a thin wrapper over
/// this function.
pub fn write(g: &Graph, out: &mut dyn std::io::Write) -> std::io::Result<()> {
    // Group by subject, then by predicate, preserving first-appearance
    // order of both.
    let mut subjects: Vec<&Term> = Vec::new();
    let mut by_subject: HashMap<&Term, Vec<(&Term, Vec<&Term>)>> = HashMap::new();
    for (s, p, o) in g.iter() {
        let preds = match by_subject.get_mut(s) {
            Some(preds) => preds,
            None => {
                subjects.push(s);
                by_subject.entry(s).or_default()
            }
        };
        match preds.iter_mut().find(|(q, _)| *q == p) {
            Some((_, objects)) => objects.push(o),
            None => preds.push((p, vec![o])),
        }
    }

    for s in subjects {
        let preds = &by_subject[s];
        write!(out, "{s}")?;
        for (i, (p, objects)) in preds.iter().enumerate() {
            if i > 0 {
                out.write_all(b" ;\n   ")?;
            }
            if p.as_iri() == Some(rdf::TYPE) {
                out.write_all(b" a")?;
            } else {
                write!(out, " {p}")?;
            }
            for (j, o) in objects.iter().enumerate() {
                write!(out, "{} {o}", if j > 0 { " ," } else { "" })?;
            }
        }
        out.write_all(b" .\n")?;
    }
    Ok(())
}

/// Serializes a graph as Turtle (see [`write()`] for the layout rules).
/// Thin wrapper over [`write()`].
pub fn serialize(g: &Graph) -> String {
    let mut out = Vec::new();
    write(g, &mut out).expect("writing to a Vec<u8> cannot fail");
    String::from_utf8(out).expect("Turtle output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_groups_and_roundtrips() {
        let doc = r#"@prefix ex: <http://ex.org/> .
            @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
            ex:a ex:p ex:b , ex:c ; ex:q "v"@en , 5 .
            ex:a rdf:type ex:C .
            _:b ex:p "x\ny" ."#;
        let g = parse(doc).unwrap();
        let text = serialize(&g);
        // Subject grouping: ex:a's four triples share one statement.
        assert_eq!(text.matches(" .\n").count(), 2, "{text}");
        assert!(text.contains(" a "), "rdf:type compacts to 'a': {text}");
        let g2 = parse(&text).unwrap();
        assert_eq!(g.len(), g2.len());
        for (s, p, o) in g.iter() {
            assert!(
                g2.contains(&Triple::new(s.clone(), p.clone(), o.clone())),
                "{s} {p} {o} lost in round-trip"
            );
        }
    }

    #[test]
    fn parse_paper_countries_graph() {
        // Verbatim from §4.2 of the paper.
        let doc = r#"
@prefix ex: <http://ex.org/> .
ex:spain ex:borders ex:france .
ex:france ex:borders ex:belgium .
ex:france ex:borders ex:germany .
ex:belgium ex:borders ex:germany .
ex:germany ex:borders ex:austria .
"#;
        let g = parse(doc).unwrap();
        assert_eq!(g.len(), 5);
        assert!(g.contains(&Triple::new(
            Term::iri("http://ex.org/spain"),
            Term::iri("http://ex.org/borders"),
            Term::iri("http://ex.org/france"),
        )));
    }

    #[test]
    fn predicate_and_object_lists() {
        let doc = r#"
@prefix ex: <http://ex.org/> .
ex:a ex:p ex:b , ex:c ; ex:q ex:d .
"#;
        let g = parse(doc).unwrap();
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn a_keyword_and_literals() {
        let doc = r#"
@prefix ex: <http://ex.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:x a ex:Person ;
     ex:name "George" ;
     ex:age 42 ;
     ex:height 1.78 ;
     ex:alive true ;
     ex:label "chef"@fr ;
     ex:code "X1"^^xsd:string .
"#;
        let g = parse(doc).unwrap();
        assert_eq!(g.len(), 7);
        assert!(g.contains(&Triple::new(
            Term::iri("http://ex.org/x"),
            Term::iri(rdf::TYPE),
            Term::iri("http://ex.org/Person"),
        )));
        assert!(g.contains(&Triple::new(
            Term::iri("http://ex.org/x"),
            Term::iri("http://ex.org/age"),
            Term::integer(42),
        )));
        assert!(g.contains(&Triple::new(
            Term::iri("http://ex.org/x"),
            Term::iri("http://ex.org/alive"),
            Term::boolean(true),
        )));
    }

    #[test]
    fn anonymous_bnodes_are_distinct() {
        let doc = r#"
@prefix ex: <http://ex.org/> .
ex:a ex:p [] .
ex:b ex:p [] .
"#;
        let g = parse(doc).unwrap();
        let objects: Vec<_> = g.iter().map(|(_, _, o)| o.clone()).collect();
        assert_eq!(objects.len(), 2);
        assert_ne!(objects[0], objects[1]);
    }

    #[test]
    fn base_resolution() {
        let doc = r#"
@base <http://ex.org/> .
<a> <p> <b> .
"#;
        let g = parse(doc).unwrap();
        assert!(g.contains(&Triple::new(
            Term::iri("http://ex.org/a"),
            Term::iri("http://ex.org/p"),
            Term::iri("http://ex.org/b"),
        )));
    }

    #[test]
    fn comments_are_skipped() {
        let doc = "# hello\n@prefix ex: <http://e/> . # trailing\nex:a ex:p ex:b . # done\n";
        assert_eq!(parse(doc).unwrap().len(), 1);
    }

    #[test]
    fn undeclared_prefix_is_an_error() {
        let err = parse("nope:a nope:p nope:b .").unwrap_err();
        assert!(err.message.contains("undeclared prefix"), "{}", err.message);
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let doc = "@prefix ex: <http://e/> .\nex:a ex:p -5 . ex:a ex:q 4.2e1 .";
        let g = parse(doc).unwrap();
        assert!(g.contains(&Triple::new(
            Term::iri("http://e/a"),
            Term::iri("http://e/p"),
            Term::integer(-5),
        )));
        assert!(g.contains(&Triple::new(
            Term::iri("http://e/a"),
            Term::iri("http://e/q"),
            Term::typed_literal("4.2e1", xsd::DOUBLE),
        )));
    }

    #[test]
    fn local_name_with_trailing_dot_terminates_statement() {
        let doc = "@prefix ex: <http://e/> .\nex:a ex:p ex:b.\n";
        let g = parse(doc).unwrap();
        assert!(g.contains(&Triple::new(
            Term::iri("http://e/a"),
            Term::iri("http://e/p"),
            Term::iri("http://e/b"),
        )));
    }
}
