//! RDF terms: IRIs, blank nodes and literals.
//!
//! Terms are the values that populate RDF graphs and SPARQL solution
//! mappings. They are backed by `Arc<str>` so cloning a term (which happens
//! constantly during query evaluation) is a reference-count bump, not a
//! string copy.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::vocab::xsd;

/// The kind of an RDF literal: plain, language-tagged or datatyped.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LiteralKind {
    /// A simple literal such as `"George"` (per RDF 1.1 this is the same as
    /// `xsd:string`, but we keep the distinction for round-tripping).
    Plain,
    /// A language-tagged string such as `"chat"@fr`. The tag is stored
    /// lower-cased, as RDF 1.1 demands case-insensitive comparison.
    Lang(Arc<str>),
    /// A datatyped literal such as `"5"^^xsd:integer`. The IRI of the
    /// datatype is stored without angle brackets.
    Typed(Arc<str>),
}

/// An RDF literal: a lexical form plus a [`LiteralKind`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    lexical: Arc<str>,
    kind: LiteralKind,
}

impl Literal {
    /// Creates a plain (simple) literal.
    pub fn plain(lexical: impl Into<Arc<str>>) -> Self {
        Literal {
            lexical: lexical.into(),
            kind: LiteralKind::Plain,
        }
    }

    /// Creates a language-tagged literal. The tag is lower-cased.
    pub fn lang(lexical: impl Into<Arc<str>>, tag: &str) -> Self {
        Literal {
            lexical: lexical.into(),
            kind: LiteralKind::Lang(tag.to_ascii_lowercase().into()),
        }
    }

    /// Creates a datatyped literal.
    pub fn typed(lexical: impl Into<Arc<str>>, datatype: impl Into<Arc<str>>) -> Self {
        Literal {
            lexical: lexical.into(),
            kind: LiteralKind::Typed(datatype.into()),
        }
    }

    /// The lexical form of the literal.
    pub fn lexical(&self) -> &str {
        &self.lexical
    }

    /// The literal's kind.
    pub fn kind(&self) -> &LiteralKind {
        &self.kind
    }

    /// The language tag, if this is a language-tagged string.
    pub fn language(&self) -> Option<&str> {
        match &self.kind {
            LiteralKind::Lang(tag) => Some(tag),
            _ => None,
        }
    }

    /// The datatype IRI per RDF 1.1 (plain ⇒ `xsd:string`,
    /// language-tagged ⇒ `rdf:langString`).
    pub fn datatype(&self) -> &str {
        match &self.kind {
            LiteralKind::Plain => xsd::STRING,
            LiteralKind::Lang(_) => crate::vocab::rdf::LANG_STRING,
            LiteralKind::Typed(dt) => dt,
        }
    }

    /// Attempts to interpret this literal as a number (for SPARQL filter
    /// arithmetic). Plain literals are *not* numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match &self.kind {
            LiteralKind::Typed(dt) if xsd::is_numeric(dt) => self.lexical.trim().parse().ok(),
            _ => None,
        }
    }

    /// Attempts to interpret this literal as an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match &self.kind {
            LiteralKind::Typed(dt) if xsd::is_integer(dt) => self.lexical.trim().parse().ok(),
            _ => None,
        }
    }

    /// Attempts to interpret this literal as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match &self.kind {
            LiteralKind::Typed(dt) if dt.as_ref() == xsd::BOOLEAN => match self.lexical.as_ref() {
                "true" | "1" => Some(true),
                "false" | "0" => Some(false),
                _ => None,
            },
            _ => None,
        }
    }

    /// True if the literal has a numeric XSD datatype and parses as one.
    pub fn is_numeric(&self) -> bool {
        self.as_f64().is_some()
    }
}

/// An RDF term. Subjects are IRIs or blank nodes, predicates are IRIs,
/// objects can be any term (RDF 1.1 Concepts §3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// An IRI, stored without surrounding angle brackets.
    Iri(Arc<str>),
    /// A blank node, stored without the `_:` prefix.
    BlankNode(Arc<str>),
    /// A literal.
    Literal(Literal),
}

impl Term {
    /// Creates an IRI term.
    pub fn iri(iri: impl Into<Arc<str>>) -> Self {
        Term::Iri(iri.into())
    }

    /// Creates a blank node term.
    pub fn bnode(label: impl Into<Arc<str>>) -> Self {
        Term::BlankNode(label.into())
    }

    /// Creates a plain literal term.
    pub fn literal(lexical: impl Into<Arc<str>>) -> Self {
        Term::Literal(Literal::plain(lexical))
    }

    /// Creates a language-tagged literal term.
    pub fn lang_literal(lexical: impl Into<Arc<str>>, tag: &str) -> Self {
        Term::Literal(Literal::lang(lexical, tag))
    }

    /// Creates a datatyped literal term.
    pub fn typed_literal(lexical: impl Into<Arc<str>>, datatype: impl Into<Arc<str>>) -> Self {
        Term::Literal(Literal::typed(lexical, datatype))
    }

    /// Creates an `xsd:integer` literal.
    pub fn integer(value: i64) -> Self {
        Term::typed_literal(value.to_string(), xsd::INTEGER)
    }

    /// Creates an `xsd:double` literal.
    pub fn double(value: f64) -> Self {
        Term::typed_literal(value.to_string(), xsd::DOUBLE)
    }

    /// Creates an `xsd:boolean` literal.
    pub fn boolean(value: bool) -> Self {
        Term::typed_literal(if value { "true" } else { "false" }, xsd::BOOLEAN)
    }

    /// True if the term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// True if the term is a blank node.
    pub fn is_bnode(&self) -> bool {
        matches!(self, Term::BlankNode(_))
    }

    /// True if the term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// The literal payload, if this term is a literal.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// The IRI string, if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(i) => Some(i),
            _ => None,
        }
    }

    /// The SPARQL `STR()` value of the term: the IRI string, the blank-node
    /// label, or the literal's lexical form.
    pub fn str_value(&self) -> &str {
        match self {
            Term::Iri(i) => i,
            Term::BlankNode(b) => b,
            Term::Literal(l) => l.lexical(),
        }
    }
}

/// Terms carry a total order so solution sequences can be sorted
/// deterministically: blank nodes < IRIs < literals, then lexicographic
/// (numeric literals compare by value first). This mirrors the SPARQL
/// `ORDER BY` term ordering closely enough for the paper's purposes — the
/// paper itself delegates ordering to Vadalog's native order (§4.3).
impl Ord for Term {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(t: &Term) -> u8 {
            match t {
                Term::BlankNode(_) => 0,
                Term::Iri(_) => 1,
                Term::Literal(_) => 2,
            }
        }
        match (self, other) {
            (Term::BlankNode(a), Term::BlankNode(b)) => a.cmp(b),
            (Term::Iri(a), Term::Iri(b)) => a.cmp(b),
            (Term::Literal(a), Term::Literal(b)) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x
                    .partial_cmp(&y)
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| a.cmp(b)),
                _ => a.cmp(b),
            },
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl PartialOrd for Term {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Term {
    /// Formats the term in N-Triples syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) => write!(f, "<{i}>"),
            Term::BlankNode(b) => write!(f, "_:{b}"),
            Term::Literal(l) => {
                write!(f, "\"{}\"", escape_literal(l.lexical()))?;
                match l.kind() {
                    LiteralKind::Plain => Ok(()),
                    LiteralKind::Lang(tag) => write!(f, "@{tag}"),
                    LiteralKind::Typed(dt) => write!(f, "^^<{dt}>"),
                }
            }
        }
    }
}

/// Escapes a literal's lexical form for N-Triples output.
pub fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_accessors() {
        let l = Literal::plain("George");
        assert_eq!(l.lexical(), "George");
        assert_eq!(l.datatype(), xsd::STRING);
        assert_eq!(l.language(), None);

        let l = Literal::lang("chat", "FR");
        assert_eq!(l.language(), Some("fr"), "language tags are lower-cased");
        assert_eq!(l.datatype(), crate::vocab::rdf::LANG_STRING);

        let l = Literal::typed("5", xsd::INTEGER);
        assert_eq!(l.as_i64(), Some(5));
        assert_eq!(l.as_f64(), Some(5.0));
        assert!(l.is_numeric());
    }

    #[test]
    fn plain_literal_is_not_numeric() {
        assert!(!Literal::plain("5").is_numeric());
        assert_eq!(Literal::plain("5").as_i64(), None);
    }

    #[test]
    fn boolean_literals() {
        assert_eq!(Literal::typed("true", xsd::BOOLEAN).as_bool(), Some(true));
        assert_eq!(Literal::typed("0", xsd::BOOLEAN).as_bool(), Some(false));
        assert_eq!(Literal::typed("maybe", xsd::BOOLEAN).as_bool(), None);
    }

    #[test]
    fn term_constructors_and_predicates() {
        assert!(Term::iri("http://a").is_iri());
        assert!(Term::bnode("b1").is_bnode());
        assert!(Term::literal("x").is_literal());
        assert_eq!(Term::integer(42).as_literal().unwrap().as_i64(), Some(42));
        assert_eq!(
            Term::boolean(true).as_literal().unwrap().as_bool(),
            Some(true)
        );
    }

    #[test]
    fn term_ordering_by_kind_then_value() {
        let b = Term::bnode("z");
        let i = Term::iri("http://a");
        let l = Term::literal("a");
        assert!(b < i && i < l);
        assert!(Term::iri("http://a") < Term::iri("http://b"));
    }

    #[test]
    fn numeric_literals_order_by_value() {
        let two = Term::integer(2);
        let ten = Term::integer(10);
        assert!(
            two < ten,
            "2 < 10 numerically even though \"10\" < \"2\" lexically"
        );
    }

    #[test]
    fn display_roundtrip_shapes() {
        assert_eq!(Term::iri("http://a").to_string(), "<http://a>");
        assert_eq!(Term::bnode("b1").to_string(), "_:b1");
        assert_eq!(Term::literal("hi").to_string(), "\"hi\"");
        assert_eq!(Term::lang_literal("hi", "en").to_string(), "\"hi\"@en");
        assert_eq!(
            Term::integer(5).to_string(),
            format!("\"5\"^^<{}>", xsd::INTEGER)
        );
        assert_eq!(
            Term::literal("a\"b\\c\nd").to_string(),
            "\"a\\\"b\\\\c\\nd\""
        );
    }

    #[test]
    fn str_value() {
        assert_eq!(Term::iri("http://a").str_value(), "http://a");
        assert_eq!(Term::bnode("b").str_value(), "b");
        assert_eq!(Term::literal("x").str_value(), "x");
    }
}
