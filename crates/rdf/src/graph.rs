//! An indexed RDF graph: a *set* of triples with hash indexes on each
//! component.
//!
//! Terms are interned into a per-graph term table (`u32` ids) so that triple
//! storage and the component indexes work on fixed-size integers; this is
//! the same trick Jena's TDB and most triple stores use, scaled down.

use std::collections::{HashMap, HashSet};

use crate::term::Term;
use crate::triple::Triple;

/// An RDF graph (set of triples) with `S`, `P` and `O` hash indexes.
#[derive(Debug, Default, Clone)]
pub struct Graph {
    terms: Vec<Term>,
    ids: HashMap<Term, u32>,
    triples: Vec<[u32; 3]>,
    set: HashSet<[u32; 3]>,
    by_s: HashMap<u32, Vec<u32>>,
    by_p: HashMap<u32, Vec<u32>>,
    by_o: HashMap<u32, Vec<u32>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of triples in the graph.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True if the graph contains no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Interns a term, returning its id within this graph.
    fn intern(&mut self, t: &Term) -> u32 {
        if let Some(&id) = self.ids.get(t) {
            return id;
        }
        let id = self.terms.len() as u32;
        self.terms.push(t.clone());
        self.ids.insert(t.clone(), id);
        id
    }

    /// Looks up the id of a term without interning it.
    fn id_of(&self, t: &Term) -> Option<u32> {
        self.ids.get(t).copied()
    }

    /// The term with the given internal id. Panics on an invalid id.
    pub fn term(&self, id: u32) -> &Term {
        &self.terms[id as usize]
    }

    /// Inserts a triple. Returns `true` if it was not already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        let s = self.intern(&triple.subject);
        let p = self.intern(&triple.predicate);
        let o = self.intern(&triple.object);
        let key = [s, p, o];
        if !self.set.insert(key) {
            return false;
        }
        let idx = self.triples.len() as u32;
        self.triples.push(key);
        self.by_s.entry(s).or_default().push(idx);
        self.by_p.entry(p).or_default().push(idx);
        self.by_o.entry(o).or_default().push(idx);
        true
    }

    /// True if the graph contains the triple.
    pub fn contains(&self, triple: &Triple) -> bool {
        match (
            self.id_of(&triple.subject),
            self.id_of(&triple.predicate),
            self.id_of(&triple.object),
        ) {
            (Some(s), Some(p), Some(o)) => self.set.contains(&[s, p, o]),
            _ => false,
        }
    }

    /// Iterates over all triples (decoded, in insertion order).
    pub fn iter(&self) -> impl Iterator<Item = (&Term, &Term, &Term)> + '_ {
        self.triples
            .iter()
            .map(move |&[s, p, o]| (self.term(s), self.term(p), self.term(o)))
    }

    /// Iterates over all distinct terms occurring anywhere in the graph.
    pub fn terms(&self) -> impl Iterator<Item = &Term> + '_ {
        self.terms.iter()
    }

    /// All distinct terms occurring as subject or object of some triple
    /// (the `subjectOrObject/1` predicate of the paper, Def. A.17).
    pub fn subjects_or_objects(&self) -> Vec<&Term> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for &[s, _, o] in &self.triples {
            if seen.insert(s) {
                out.push(self.term(s));
            }
            if seen.insert(o) {
                out.push(self.term(o));
            }
        }
        out
    }

    /// Pattern matching: yields all triples matching the bound components.
    /// `None` components match anything. Uses the most selective available
    /// index.
    pub fn triples_matching<'a>(
        &'a self,
        s: Option<&Term>,
        p: Option<&Term>,
        o: Option<&Term>,
    ) -> Box<dyn Iterator<Item = (&'a Term, &'a Term, &'a Term)> + 'a> {
        // Resolve bound components; a bound term unknown to the graph can
        // never match.
        let sid = match s {
            Some(t) => match self.id_of(t) {
                Some(id) => Some(id),
                None => return Box::new(std::iter::empty()),
            },
            None => None,
        };
        let pid = match p {
            Some(t) => match self.id_of(t) {
                Some(id) => Some(id),
                None => return Box::new(std::iter::empty()),
            },
            None => None,
        };
        let oid = match o {
            Some(t) => match self.id_of(t) {
                Some(id) => Some(id),
                None => return Box::new(std::iter::empty()),
            },
            None => None,
        };

        static EMPTY: Vec<u32> = Vec::new();
        // Pick the smallest candidate list among the bound positions.
        let candidates: &[u32] = {
            let mut best: Option<&Vec<u32>> = None;
            if let Some(id) = sid {
                best = Some(self.by_s.get(&id).unwrap_or(&EMPTY));
            }
            if let Some(id) = pid {
                let v = self.by_p.get(&id).unwrap_or(&EMPTY);
                if best.is_none_or(|b| v.len() < b.len()) {
                    best = Some(v);
                }
            }
            if let Some(id) = oid {
                let v = self.by_o.get(&id).unwrap_or(&EMPTY);
                if best.is_none_or(|b| v.len() < b.len()) {
                    best = Some(v);
                }
            }
            match best {
                Some(v) => v,
                None => {
                    // Fully unbound: scan everything.
                    return Box::new(self.iter());
                }
            }
        };

        Box::new(candidates.iter().filter_map(move |&idx| {
            let [ts, tp, to] = self.triples[idx as usize];
            if sid.is_none_or(|x| x == ts)
                && pid.is_none_or(|x| x == tp)
                && oid.is_none_or(|x| x == to)
            {
                Some((self.term(ts), self.term(tp), self.term(to)))
            } else {
                None
            }
        }))
    }

    /// Extends the graph with all triples of `other` (RDF merge without
    /// blank-node renaming — adequate for our benchmarks, which use
    /// disjoint blank-node labels).
    pub fn extend_from(&mut self, other: &Graph) {
        for (s, p, o) in other.iter() {
            self.insert(Triple::new(s.clone(), p.clone(), o.clone()));
        }
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut g = Graph::new();
        for t in iter {
            g.insert(t);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn sample() -> Graph {
        // The bordering-countries graph from the paper, §4.2.
        [
            t("ex:spain", "ex:borders", "ex:france"),
            t("ex:france", "ex:borders", "ex:belgium"),
            t("ex:france", "ex:borders", "ex:germany"),
            t("ex:belgium", "ex:borders", "ex:germany"),
            t("ex:germany", "ex:borders", "ex:austria"),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn insert_dedupes() {
        let mut g = Graph::new();
        assert!(g.insert(t("a", "p", "b")));
        assert!(!g.insert(t("a", "p", "b")));
        assert_eq!(g.len(), 1);
        assert!(!g.is_empty());
    }

    #[test]
    fn contains() {
        let g = sample();
        assert!(g.contains(&t("ex:spain", "ex:borders", "ex:france")));
        assert!(!g.contains(&t("ex:spain", "ex:borders", "ex:austria")));
        assert!(!g.contains(&t("unknown", "ex:borders", "ex:france")));
    }

    #[test]
    fn match_by_subject() {
        let g = sample();
        let hits: Vec<_> = g
            .triples_matching(Some(&Term::iri("ex:france")), None, None)
            .collect();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn match_by_object() {
        let g = sample();
        let hits: Vec<_> = g
            .triples_matching(None, None, Some(&Term::iri("ex:germany")))
            .collect();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn match_by_predicate_and_full_scan() {
        let g = sample();
        assert_eq!(
            g.triples_matching(None, Some(&Term::iri("ex:borders")), None)
                .count(),
            5
        );
        assert_eq!(g.triples_matching(None, None, None).count(), 5);
    }

    #[test]
    fn match_fully_bound() {
        let g = sample();
        assert_eq!(
            g.triples_matching(
                Some(&Term::iri("ex:spain")),
                Some(&Term::iri("ex:borders")),
                Some(&Term::iri("ex:france"))
            )
            .count(),
            1
        );
        assert_eq!(
            g.triples_matching(
                Some(&Term::iri("ex:spain")),
                Some(&Term::iri("ex:borders")),
                Some(&Term::iri("ex:austria"))
            )
            .count(),
            0
        );
    }

    #[test]
    fn match_unknown_term_is_empty() {
        let g = sample();
        assert_eq!(
            g.triples_matching(Some(&Term::iri("ex:mars")), None, None)
                .count(),
            0
        );
    }

    #[test]
    fn subjects_or_objects_dedupes() {
        let g = sample();
        let mut names: Vec<_> = g
            .subjects_or_objects()
            .iter()
            .map(|t| t.str_value().to_string())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                "ex:austria",
                "ex:belgium",
                "ex:france",
                "ex:germany",
                "ex:spain"
            ]
        );
    }

    #[test]
    fn extend_from_merges() {
        let mut g = sample();
        let mut other = Graph::new();
        other.insert(t("ex:austria", "ex:borders", "ex:italy"));
        other.insert(t("ex:spain", "ex:borders", "ex:france")); // duplicate
        g.extend_from(&other);
        assert_eq!(g.len(), 6);
    }
}
