//! Property-based tests of the RDF substrate: graph indexing against a
//! brute-force scan, and parser round-trips (in-tree deterministic case
//! generation — the workspace builds offline, without proptest).

use sparqlog_rdf::{ntriples, Graph, Term, Triple};

/// Deterministic SplitMix64 case generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

const CASES: u64 = 96;

fn random_term(rng: &mut Rng) -> Term {
    match rng.range(0, 5) {
        0 => Term::iri(format!("http://n/{}", rng.range(0, 6))),
        1 => Term::bnode(format!("b{}", rng.range(0, 4))),
        2 => Term::literal(format!("lit{}", rng.range(0, 4))),
        3 => Term::integer(rng.range(0, 5) as i64),
        _ => {
            let len = rng.range(1, 7);
            let s: String = (0..len)
                .map(|_| (b'a' + rng.range(0, 26) as u8) as char)
                .collect();
            Term::literal(s)
        }
    }
}

fn random_triple(rng: &mut Rng) -> Triple {
    let s = if rng.range(0, 2) == 0 {
        Term::iri(format!("http://n/{}", rng.range(0, 6)))
    } else {
        Term::bnode(format!("b{}", rng.range(0, 4)))
    };
    let p = Term::iri(format!("http://p/{}", rng.range(0, 3)));
    let o = random_term(rng);
    Triple::new(s, p, o)
}

fn random_triples(rng: &mut Rng, max_len: u64) -> Vec<Triple> {
    let len = rng.range(0, max_len);
    (0..len).map(|_| random_triple(rng)).collect()
}

/// Every pattern-match result equals a brute-force scan, for every
/// combination of bound positions.
#[test]
fn indexed_matching_equals_scan() {
    let mut rng = Rng(0x5ca9);
    for case in 0..CASES {
        let triples = random_triples(&mut rng, 40);
        let probe = random_triple(&mut rng);
        let mask = rng.range(0, 8) as u8;
        let g: Graph = triples.iter().cloned().collect();
        let s = (mask & 1 != 0).then_some(&probe.subject);
        let p = (mask & 2 != 0).then_some(&probe.predicate);
        let o = (mask & 4 != 0).then_some(&probe.object);
        let mut got: Vec<Triple> = g
            .triples_matching(s, p, o)
            .map(|(a, b, c)| Triple::new(a.clone(), b.clone(), c.clone()))
            .collect();
        let mut want: Vec<Triple> = g
            .iter()
            .filter(|(a, b, c)| {
                s.is_none_or(|t| t == *a) && p.is_none_or(|t| t == *b) && o.is_none_or(|t| t == *c)
            })
            .map(|(a, b, c)| Triple::new(a.clone(), b.clone(), c.clone()))
            .collect();
        got.sort();
        want.sort();
        assert_eq!(got, want, "case {case}, mask {mask:#b}");
    }
}

/// Graphs are sets: duplicate insertion never grows the graph, and
/// `contains` agrees with membership.
#[test]
fn set_semantics() {
    let mut rng = Rng(0x5e75);
    for case in 0..CASES {
        let triples = random_triples(&mut rng, 30);
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t.clone());
        }
        let n = g.len();
        for t in &triples {
            assert!(
                !g.insert(t.clone()),
                "case {case}: reinsert must be a no-op"
            );
            assert!(g.contains(t), "case {case}");
        }
        assert_eq!(g.len(), n, "case {case}");
    }
}

/// N-Triples serialisation round-trips every graph.
#[test]
fn ntriples_roundtrip() {
    let mut rng = Rng(0x0093);
    for case in 0..CASES {
        let g: Graph = random_triples(&mut rng, 30).into_iter().collect();
        let text = ntriples::serialize(&g);
        let back = ntriples::parse(&text).unwrap();
        assert_eq!(back.len(), g.len(), "case {case}");
        for (s, p, o) in g.iter() {
            assert!(
                back.contains(&Triple::new(s.clone(), p.clone(), o.clone())),
                "case {case}: {s} {p} {o}"
            );
        }
    }
}

/// subjects_or_objects yields exactly the subject/object terms.
#[test]
fn subject_or_object_complete() {
    let mut rng = Rng(0x500b);
    for case in 0..CASES {
        let g: Graph = random_triples(&mut rng, 30).into_iter().collect();
        let got: std::collections::BTreeSet<String> = g
            .subjects_or_objects()
            .iter()
            .map(|t| t.to_string())
            .collect();
        let want: std::collections::BTreeSet<String> = g
            .iter()
            .flat_map(|(s, _, o)| [s.to_string(), o.to_string()])
            .collect();
        assert_eq!(got, want, "case {case}");
    }
}

/// Term ordering is a total order (antisymmetric + transitive on
/// random samples).
#[test]
fn term_order_is_total() {
    use std::cmp::Ordering;
    let mut rng = Rng(0x07de);
    for case in 0..CASES {
        let a = random_term(&mut rng);
        let b = random_term(&mut rng);
        let c = random_term(&mut rng);
        assert_eq!(a.cmp(&b), b.cmp(&a).reverse(), "case {case}");
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            assert_ne!(a.cmp(&c), Ordering::Greater, "case {case}: {a} {b} {c}");
        }
        assert_eq!(a.cmp(&a), Ordering::Equal, "case {case}");
    }
}
