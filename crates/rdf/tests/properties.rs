//! Property-based tests of the RDF substrate: graph indexing against a
//! brute-force scan, and parser round-trips.

use proptest::prelude::*;
use sparqlog_rdf::{ntriples, Graph, Term, Triple};

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0u8..6).prop_map(|i| Term::iri(format!("http://n/{i}"))),
        (0u8..4).prop_map(|i| Term::bnode(format!("b{i}"))),
        (0u8..4).prop_map(|i| Term::literal(format!("lit{i}"))),
        (0i64..5).prop_map(Term::integer),
        "[a-z]{1,6}".prop_map(Term::literal),
    ]
}

fn triple_strategy() -> impl Strategy<Value = Triple> {
    (
        prop_oneof![
            (0u8..6).prop_map(|i| Term::iri(format!("http://n/{i}"))),
            (0u8..4).prop_map(|i| Term::bnode(format!("b{i}"))),
        ],
        (0u8..3).prop_map(|i| Term::iri(format!("http://p/{i}"))),
        term_strategy(),
    )
        .prop_map(|(s, p, o)| Triple::new(s, p, o))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Every pattern-match result equals a brute-force scan, for every
    /// combination of bound positions.
    #[test]
    fn indexed_matching_equals_scan(
        triples in prop::collection::vec(triple_strategy(), 0..40),
        probe in triple_strategy(),
        mask in 0u8..8,
    ) {
        let g: Graph = triples.iter().cloned().collect();
        let s = (mask & 1 != 0).then_some(&probe.subject);
        let p = (mask & 2 != 0).then_some(&probe.predicate);
        let o = (mask & 4 != 0).then_some(&probe.object);
        let mut got: Vec<Triple> = g
            .triples_matching(s, p, o)
            .map(|(a, b, c)| Triple::new(a.clone(), b.clone(), c.clone()))
            .collect();
        let mut want: Vec<Triple> = g
            .iter()
            .filter(|(a, b, c)| {
                s.is_none_or(|t| t == *a)
                    && p.is_none_or(|t| t == *b)
                    && o.is_none_or(|t| t == *c)
            })
            .map(|(a, b, c)| Triple::new(a.clone(), b.clone(), c.clone()))
            .collect();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Graphs are sets: duplicate insertion never grows the graph, and
    /// `contains` agrees with membership.
    #[test]
    fn set_semantics(triples in prop::collection::vec(triple_strategy(), 0..30)) {
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t.clone());
        }
        let n = g.len();
        for t in &triples {
            prop_assert!(!g.insert(t.clone()), "reinsert must be a no-op");
            prop_assert!(g.contains(t));
        }
        prop_assert_eq!(g.len(), n);
    }

    /// N-Triples serialisation round-trips every graph.
    #[test]
    fn ntriples_roundtrip(triples in prop::collection::vec(triple_strategy(), 0..30)) {
        let g: Graph = triples.into_iter().collect();
        let text = ntriples::serialize(&g);
        let back = ntriples::parse(&text).unwrap();
        prop_assert_eq!(back.len(), g.len());
        for (s, p, o) in g.iter() {
            prop_assert!(back.contains(&Triple::new(s.clone(), p.clone(), o.clone())));
        }
    }

    /// subjects_or_objects yields exactly the subject/object terms.
    #[test]
    fn subject_or_object_complete(
        triples in prop::collection::vec(triple_strategy(), 0..30)
    ) {
        let g: Graph = triples.iter().cloned().collect();
        let got: std::collections::BTreeSet<String> =
            g.subjects_or_objects().iter().map(|t| t.to_string()).collect();
        let want: std::collections::BTreeSet<String> = g
            .iter()
            .flat_map(|(s, _, o)| [s.to_string(), o.to_string()])
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Term ordering is a total order (antisymmetric + transitive on
    /// random samples).
    #[test]
    fn term_order_is_total(a in term_strategy(), b in term_strategy(), c in term_strategy()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
        prop_assert_eq!(a.cmp(&a), Ordering::Equal);
    }
}
