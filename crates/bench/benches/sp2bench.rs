//! Criterion bench behind Figure 7: SP²Bench query execution on the
//! SparqLog engine and the FusekiSim baseline (small instance — the full
//! sweep lives in the `fig7_sp2bench` binary).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use sparqlog::SparqLog;
use sparqlog_benchdata::sp2bench::{self, Sp2bConfig};
use sparqlog_refengine::FusekiSim;
use sparqlog_rdf::Dataset;

fn bench_sp2bench(c: &mut Criterion) {
    let dataset = Dataset::from_default_graph(sp2bench::generate(Sp2bConfig {
        target_triples: 2_000,
        seed: 1,
    }));
    let queries = sp2bench::queries();
    let mut group = c.benchmark_group("sp2bench");
    group.sample_size(10).measurement_time(Duration::from_secs(3));

    // Representative queries (cheap, join-heavy, negation, union, ask).
    for id in ["q1", "q3a", "q6", "q8", "q15"] {
        let (_, q) = queries.iter().find(|(i, _)| *i == id).unwrap();
        group.bench_function(format!("sparqlog/{id}"), |b| {
            b.iter(|| {
                let mut engine = SparqLog::new();
                engine.load_dataset(&dataset).unwrap();
                engine.execute(q).unwrap()
            })
        });
        group.bench_function(format!("fuseki/{id}"), |b| {
            b.iter(|| FusekiSim::new(dataset.clone()).execute(q).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sp2bench);
criterion_main!(benches);
