//! Bench behind Figure 7: SP²Bench query execution on the SparqLog
//! engine and the FusekiSim baseline (small instance — the full sweep
//! lives in the `fig7_sp2bench` binary).

use sparqlog::SparqLog;
use sparqlog_bench::microbench::Bench;
use sparqlog_benchdata::sp2bench::{self, Sp2bConfig};
use sparqlog_rdf::Dataset;
use sparqlog_refengine::FusekiSim;

fn main() {
    let dataset = Dataset::from_default_graph(sp2bench::generate(Sp2bConfig {
        target_triples: 2_000,
        seed: 1,
    }));
    let queries = sp2bench::queries();
    let mut b = Bench::new("sp2bench");

    // Representative queries (cheap, join-heavy, negation, union, ask).
    for id in ["q1", "q3a", "q6", "q8", "q15"] {
        let (_, q) = queries.iter().find(|(i, _)| *i == id).unwrap();
        b.bench(&format!("sparqlog/{id}"), || {
            let mut engine = SparqLog::new();
            engine.load_dataset(&dataset).unwrap();
            engine.execute(q).unwrap()
        });
        b.bench(&format!("fuseki/{id}"), || {
            FusekiSim::new(dataset.clone()).execute(q).unwrap()
        });
    }

    b.finish();
}
