//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Semi-naive delta reordering** (delta atom first + greedy
//!    selectivity order) vs. evaluating delta passes in the rule's
//!    written order;
//! 2. **comp-before-right-atom join translation** is exercised indirectly:
//!    the wide-join workload collapses to a cross product without the
//!    reorder, which the `off` variants make visible.

use sparqlog_bench::microbench::Bench;
use sparqlog_datalog::{evaluate, parser::parse_program, Database, EvalOptions};

/// A join-chain workload shaped like SP²Bench q4 (the query that exposed
/// both optimisations).
fn chain_src(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("r1({}, {}).\n", i % 97, i));
        src.push_str(&format!("r2({}, {}).\n", i, i % 53));
        src.push_str(&format!("r3({}, {}).\n", i % 53, i % 29));
    }
    src.push_str(
        "j1(A, B) :- r1(A, X), r2(X, B).\n\
         j2(A, C) :- j1(A, B), r3(B, C).\n\
         @output(\"j2\").\n",
    );
    src
}

fn main() {
    let mut b = Bench::new("ablation");

    for (name, reorder) in [("delta_reorder_on", true), ("delta_reorder_off", false)] {
        let src = chain_src(3_000);
        let opts = EvalOptions {
            semi_naive_reorder: reorder,
            ..Default::default()
        };
        b.bench(&format!("join_chain/{name}"), || {
            let mut db = Database::new();
            let prog = parse_program(&src, db.symbols()).unwrap();
            evaluate(&prog, &mut db, &opts).unwrap()
        });
    }

    // Recursive closure: the delta pass dominates here, so the ordering
    // matters less but must not regress.
    for (name, reorder) in [("delta_reorder_on", true), ("delta_reorder_off", false)] {
        let mut src = String::new();
        for i in 0..600 {
            src.push_str(&format!("edge({}, {}).\n", i, (i + 1) % 600));
            if i % 5 == 0 {
                src.push_str(&format!("edge({}, {}).\n", i, (i * 7 + 3) % 600));
            }
        }
        src.push_str(
            "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n@output(\"tc\").\n",
        );
        let opts = EvalOptions {
            semi_naive_reorder: reorder,
            ..Default::default()
        };
        b.bench(&format!("closure/{name}"), || {
            let mut db = Database::new();
            let prog = parse_program(&src, db.symbols()).unwrap();
            evaluate(&prog, &mut db, &opts).unwrap()
        });
    }

    b.finish();
}
