//! Overhead of the observability subsystem (PR 10): the PR's acceptance
//! gate is that instrumentation-*armed* evaluation costs ≤3% vs the
//! disarmed registry on the `datalog_core` / `query_batch` workloads.
//!
//! Two configurations per workload, A/B'd in the same process (same
//! store, same translation cache — only the registry's armed flag
//! differs, which is exactly the branch every recording site takes):
//!
//! * `armed` — the default: every completed query records its counters
//!   and duration-histogram sample, every fixpoint its rounds / rows /
//!   probes, every commit its latency;
//! * `disarmed` — [`MetricsRegistry::disarm`] flipped: recording sites
//!   see `armed() == false` and skip the atomics, the pre-PR cost model.
//!
//! The opt-in profiler is benchmarked separately (`profiled` vs
//! `plain`): per-job timing is *expected* to cost more — the number
//! documents how much, it is not under the 3% gate.

use sparqlog::{SparqLog, Store};
use sparqlog_bench::microbench::Bench;

/// The `datalog_core` recursive-closure shape, expressed through the
/// SPARQL path so evaluation crosses the instrumented `run_collect`.
fn ring(n: usize) -> String {
    let mut src = String::from("@prefix ex: <http://ex.org/> .\n");
    for i in 0..n {
        src.push_str(&format!("ex:n{i} ex:next ex:n{} .\n", (i + 1) % n));
        if i % 7 == 0 {
            src.push_str(&format!("ex:n{i} ex:next ex:n{} .\n", (i * 3 + 1) % n));
        }
    }
    src
}

/// The `query_batch` fixture and 32-query log.
fn turtle(n: usize) -> String {
    let mut src = String::from("@prefix ex: <http://ex.org/> .\n");
    for i in 0..n {
        src.push_str(&format!("ex:p{i} ex:knows ex:p{} .\n", (i + 1) % n));
        if i % 7 == 0 {
            src.push_str(&format!("ex:p{i} ex:knows ex:p{} .\n", (i * 3 + 2) % n));
        }
        if i % 10 == 0 {
            src.push_str(&format!("ex:p{i} ex:name \"person {i}\" .\n"));
        }
    }
    src
}

fn query_log() -> Vec<&'static str> {
    let shapes = [
        "PREFIX ex: <http://ex.org/>
         SELECT ?b WHERE { ?a ex:knows ?b . ?a ex:name ?n }",
        "PREFIX ex: <http://ex.org/>
         SELECT ?z WHERE { ex:p0 ex:knows+ ?z }",
        "PREFIX ex: <http://ex.org/> ASK { ex:p7 ex:knows ex:p8 }",
        "PREFIX ex: <http://ex.org/>
         SELECT DISTINCT ?n WHERE { ?a ex:name ?n }",
    ];
    (0..32).map(|i| shapes[i % shapes.len()]).collect()
}

fn single_threaded_store(src: &str) -> Store {
    let mut engine = SparqLog::new();
    engine.set_threads(Some(1));
    engine.load_turtle(src).expect("fixture loads");
    engine.into_store()
}

fn main() {
    let mut b = Bench::new("obs_overhead");

    // --- datalog_core's closure shape, armed vs disarmed.
    let ring_store = single_threaded_store(&ring(300));
    let closure = "PREFIX ex: <http://ex.org/> SELECT ?a ?b WHERE { ?a ex:next+ ?b }";
    let ring_snapshot = ring_store.snapshot();
    for mode in ["armed", "disarmed"] {
        if mode == "disarmed" {
            ring_store.metrics().disarm();
        }
        b.bench(&format!("tc_300_{mode}"), || {
            ring_snapshot.execute(closure).expect("query runs").len()
        });
    }
    ring_store.metrics().arm();

    // --- query_batch's batch_32q_t1, armed vs disarmed (the serving
    // regime: many small queries, so per-query recording dominates any
    // per-row cost).
    let store = single_threaded_store(&turtle(120));
    let log = query_log();
    let snapshot = store.snapshot();
    for mode in ["armed", "disarmed"] {
        if mode == "disarmed" {
            store.metrics().disarm();
        }
        b.bench(&format!("batch_32q_t1_{mode}"), || {
            snapshot
                .execute_batch(&log)
                .into_iter()
                .map(|r| r.expect("query runs").len())
                .sum::<usize>()
        });
    }
    store.metrics().arm();

    // --- The opt-in profiler's cost (informational, not gated): the
    // same closure with and without per-job timing.
    b.bench("tc_300_plain", || {
        ring_snapshot.execute(closure).expect("query runs").len()
    });
    b.bench("tc_300_profiled", || {
        let (results, profile) = ring_snapshot.execute_profiled(closure).expect("query runs");
        (results.len(), profile.elapsed)
    });

    b.finish();
}
