//! Cost of the query front-end under the PR 5 prepared-query API: the
//! same query log executed (a) re-parsed + re-translated every call,
//! (b) through the text-keyed translation cache, and (c) through
//! [`PreparedQuery`] handles — plus the prepared-handle batch fan-out.
//!
//! The spread between `retranslate_32q` and `prepared_32q` is the
//! front-end work a server saves per request once a shape is prepared;
//! `text_cache_32q` sits between them (it still pays the text hash and
//! cache lock per call).

use sparqlog::{PreparedQuery, Store};
use sparqlog_bench::microbench::Bench;
use sparqlog_sparql::parse_query;

/// The ring-with-shortcuts fixture shape shared with `query_batch`.
fn turtle(n: usize) -> String {
    let mut src = String::from("@prefix ex: <http://ex.org/> .\n");
    for i in 0..n {
        src.push_str(&format!("ex:p{i} ex:knows ex:p{} .\n", (i + 1) % n));
        if i % 7 == 0 {
            src.push_str(&format!("ex:p{i} ex:knows ex:p{} .\n", (i * 3 + 2) % n));
        }
        if i % 10 == 0 {
            src.push_str(&format!("ex:p{i} ex:name \"person {i}\" .\n"));
        }
    }
    src
}

/// Four query shapes — including a CONSTRUCT — repeated into a
/// 32-query log.
fn query_log() -> Vec<&'static str> {
    let shapes = [
        "PREFIX ex: <http://ex.org/>
         SELECT ?b WHERE { ?a ex:knows ?b . ?a ex:name ?n }",
        "PREFIX ex: <http://ex.org/>
         SELECT ?z WHERE { ex:p0 ex:knows+ ?z }",
        "PREFIX ex: <http://ex.org/> ASK { ex:p7 ex:knows ex:p8 }",
        "PREFIX ex: <http://ex.org/>
         CONSTRUCT { ?a ex:linked ?b } WHERE { ?a ex:knows ?b }",
    ];
    (0..32).map(|i| shapes[i % shapes.len()]).collect()
}

fn main() {
    let mut b = Bench::new("query_prepare");
    let store = Store::new();
    store.set_threads(Some(1));
    store.load_turtle(&turtle(120)).expect("fixture loads");
    let log = query_log();
    let snapshot = store.snapshot();

    // (a) Full front-end per call: parse + translate, no cache (the
    // parsed-query entry point translates fresh each time).
    let parsed: Vec<_> = log.iter().map(|q| parse_query(q).unwrap()).collect();
    b.bench("retranslate_32q", || {
        parsed
            .iter()
            .map(|q| snapshot.execute_query(q).expect("query runs").len())
            .sum::<usize>()
    });

    // (b) Text-keyed translation cache (warm after the first pass).
    b.bench("text_cache_32q", || {
        log.iter()
            .map(|q| snapshot.execute(q).expect("query runs").len())
            .sum::<usize>()
    });

    // (c) Prepared handles: zero front-end work per call.
    let prepared: Vec<PreparedQuery> = log.iter().map(|q| store.prepare(q).unwrap()).collect();
    b.bench("prepared_32q", || {
        prepared
            .iter()
            .map(|p| snapshot.execute_prepared(p).expect("query runs").len())
            .sum::<usize>()
    });

    // Prepared batch fan-out (width = thread count, 1 here).
    b.bench("prepared_batch_32q", || {
        snapshot
            .execute_prepared_batch(&prepared)
            .into_iter()
            .map(|r| r.expect("query runs").len())
            .sum::<usize>()
    });

    b.finish();
}
