//! The snapshot-refresh microbench: committing a small delta through
//! `Store::writer()` (thaw → mutate → incremental re-freeze) against the
//! from-scratch alternative the pre-Store API forced (reload the whole
//! post-update dataset into a fresh engine and `freeze()` it).
//!
//! The fixture is a ring-with-shortcuts graph of `N` people (the
//! recurring shape of the PR 2/3 benches). The incremental cases stage
//! a 10-triple add/remove delta; the baseline rebuilds everything. The
//! interesting ratio is `commit_delta_10` vs `full_refreeze`: commit
//! cost should track the *delta*, not the store size — the thawed
//! snapshot keeps its per-mask indexes, so untouched predicates never
//! pay the `2^arity - 1` rebuild.

use sparqlog::{SparqLog, Store, Term};
use sparqlog_bench::microbench::Bench;
use sparqlog_datalog::EvalOptions;

const N: usize = 2_000;

fn turtle(n: usize) -> String {
    let mut src = String::from("@prefix ex: <http://ex.org/> .\n");
    for i in 0..n {
        src.push_str(&format!("ex:p{i} ex:knows ex:p{} .\n", (i + 1) % n));
        if i % 7 == 0 {
            src.push_str(&format!("ex:p{i} ex:knows ex:p{} .\n", (i * 3 + 2) % n));
        }
        if i % 10 == 0 {
            src.push_str(&format!("ex:p{i} ex:name \"person {i}\" .\n"));
        }
    }
    src
}

fn ex(l: &str) -> Term {
    Term::iri(format!("http://ex.org/{l}"))
}

fn single_threaded() -> EvalOptions {
    EvalOptions {
        threads: Some(1),
        ..Default::default()
    }
}

fn main() {
    let mut b = Bench::new("store_update");
    let src = turtle(N);

    // Baseline: what a 10-triple change cost before the Store API —
    // reload the full dataset into a fresh engine and freeze it.
    b.bench("full_refreeze", || {
        let mut engine = SparqLog::with_options(single_threaded());
        engine.load_turtle(&src).unwrap();
        engine.freeze()
    });

    // Incremental: one established store absorbs a 10-triple delta per
    // iteration (5 adds + 5 removes of the previous iteration's adds,
    // so the store size stays constant across iterations).
    let store = Store::with_options(single_threaded());
    store.load_turtle(&src).unwrap();
    let mut epoch = 0usize;
    b.bench("commit_delta_10", || {
        let mut w = store.writer();
        for k in 0..5 {
            w.insert(
                ex(&format!("fresh{epoch}_{k}")),
                ex("knows"),
                ex(&format!("p{}", (epoch * 5 + k) % N)),
            );
            if epoch > 0 {
                w.remove(
                    ex(&format!("fresh{}_{k}", epoch - 1)),
                    ex("knows"),
                    ex(&format!("p{}", ((epoch - 1) * 5 + k) % N)),
                );
            }
        }
        epoch += 1;
        w.commit().unwrap()
    });

    // Pure additions commit on the O(delta) fast path (no removal, no
    // fixpoint): the cheapest write the store serves.
    let store_add = Store::with_options(single_threaded());
    store_add.load_turtle(&src).unwrap();
    let mut i = 0usize;
    b.bench("commit_add_10", || {
        let mut w = store_add.writer();
        for k in 0..10 {
            w.insert(
                ex(&format!("add{i}_{k}")),
                ex("follows"),
                ex(&format!("p{}", (i * 10 + k) % N)),
            );
        }
        i += 1;
        w.commit().unwrap()
    });

    // A SPARQL Update with a WHERE clause: pattern evaluation on the
    // snapshot + template instantiation + commit, end to end.
    let store_upd = Store::with_options(single_threaded());
    store_upd.load_turtle(&src).unwrap();
    let mut j = 0usize;
    b.bench("update_delete_insert_where", || {
        let text = format!(
            "PREFIX ex: <http://ex.org/>
             DELETE {{ ?x ex:name ?n }} INSERT {{ ?x ex:label{j} ?n }}
             WHERE {{ ?x ex:name ?n . FILTER (?x = ex:p0) }}"
        );
        j += 1;
        store_upd.update(&text).unwrap()
    });

    b.finish();
}
