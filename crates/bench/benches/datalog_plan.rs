//! Microbenchmarks of the cost-based physical planner (PR 6): the two
//! workloads the planner and the magic-sets rewrite were built for,
//! each measured with the optimisation off and on so the committed
//! `BENCH_pr6.json` records the before/after on identical fixtures.
//!
//! * `star_join_10k_*`: a star join whose selective atom sits *last* in
//!   rule text — `q(Y, Z) :- big1(X, Y), big2(X, Z), tiny(X)` over two
//!   10 000-row relations (200 distinct X, fan-out 50) and one 1-row
//!   `tiny`. Text order scans `big1` and expands to 500 000
//!   intermediate rows before `tiny` filters; the planner pulls `tiny`
//!   first and probes the bound-X indexes.
//! * `bound_tc_350_*`: transitive closure over a 350-node chain whose
//!   only consumer binds the start point — `reach(Z) :- tc(340, Z)`.
//!   Without the magic-sets rewrite the fixpoint materialises all
//!   ~61 000 `tc` facts; with it, demand propagates from node 340 and
//!   only the ~10-node tail is derived.
//!
//! Fact rows are pre-built and loaded through `Database::load_rows`
//! each iteration (the bulk fast path), so the numbers measure the
//! evaluator, not the textual Datalog parser.

use std::sync::Arc;

use sparqlog_bench::microbench::Bench;
use sparqlog_datalog::{
    evaluate, parser::parse_program, Const, Database, EvalOptions, Program, SymbolTable,
};

/// Evaluation pinned to one thread: the contrast under measurement is
/// plan/no-plan and magic/no-magic, not the worker pool.
fn options(plan: bool, magic_sets: bool) -> EvalOptions {
    EvalOptions {
        plan,
        magic_sets,
        threads: Some(1),
        ..Default::default()
    }
}

fn run(
    prog: &Program,
    symbols: &Arc<SymbolTable>,
    facts: &[(&str, &[Vec<Const>])],
    o: &EvalOptions,
) {
    let mut db = Database::with_symbols(symbols.clone());
    for &(pred, rows) in facts {
        db.load_rows(symbols.get(pred).expect("interned"), rows);
    }
    evaluate(prog, &mut db, o).unwrap();
}

fn main() {
    let mut b = Bench::new("datalog_plan");

    // ------------------------------------------------------- star join
    let symbols = SymbolTable::new();
    let star = parse_program(
        "q(Y, Z) :- big1(X, Y), big2(X, Z), tiny(X).\n@output(\"q\").\n",
        &symbols,
    )
    .unwrap();
    for p in ["big1", "big2", "tiny"] {
        symbols.intern(p);
    }
    let big_rows: Vec<Vec<Const>> = (0..10_000)
        .map(|i| vec![Const::Int(i % 200), Const::Int(i)])
        .collect();
    let tiny_rows: Vec<Vec<Const>> = vec![vec![Const::Int(7)]];
    let star_facts: &[(&str, &[Vec<Const>])] = &[
        ("big1", &big_rows),
        ("big2", &big_rows),
        ("tiny", &tiny_rows),
    ];
    b.bench("star_join_10k_unplanned", || {
        run(&star, &symbols, star_facts, &options(false, false))
    });
    b.bench("star_join_10k_planned", || {
        run(&star, &symbols, star_facts, &options(true, false))
    });

    // ---------------------------------------- bound-endpoint closure
    let tc = parse_program(
        "tc(X, Y) :- edge(X, Y).\n\
         tc(X, Z) :- edge(X, Y), tc(Y, Z).\n\
         reach(Z) :- tc(340, Z).\n\
         @output(\"reach\").\n",
        &symbols,
    )
    .unwrap();
    symbols.intern("edge");
    let edge_rows: Vec<Vec<Const>> = (0..349)
        .map(|i| vec![Const::Int(i), Const::Int(i + 1)])
        .collect();
    let tc_facts: &[(&str, &[Vec<Const>])] = &[("edge", &edge_rows)];
    b.bench("bound_tc_350_no_magic", || {
        run(&tc, &symbols, tc_facts, &options(true, false))
    });
    b.bench("bound_tc_350_magic", || {
        run(&tc, &symbols, tc_facts, &options(true, true))
    });

    b.finish();
}
