//! Criterion bench behind Figure 10: query answering under an ontology,
//! SparqLog (rules, materialised at load) vs. StardogSim (forward
//! chaining then direct evaluation).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use sparqlog::SparqLog;
use sparqlog_benchdata::ontology::{build, queries};
use sparqlog_benchdata::sp2bench::Sp2bConfig;
use sparqlog_refengine::StardogSim;
use sparqlog_rdf::Dataset;

fn bench_ontology(c: &mut Criterion) {
    let (graph, onto) = build(Sp2bConfig { target_triples: 2_000, seed: 3 });
    let dataset = Dataset::from_default_graph(graph);
    let qs = queries();
    let mut group = c.benchmark_group("ontology");
    group.sample_size(10).measurement_time(Duration::from_secs(5));

    for id in ["oq1", "oq3", "oq4"] {
        let (_, q) = qs.iter().find(|(i, _)| *i == id).unwrap();
        group.bench_function(format!("sparqlog/{id}"), |b| {
            b.iter(|| {
                let mut engine = SparqLog::new();
                engine.load_dataset(&dataset).unwrap();
                engine.add_ontology(&onto).unwrap();
                engine.execute(q).unwrap()
            })
        });
        group.bench_function(format!("stardog/{id}"), |b| {
            b.iter(|| {
                StardogSim::new(dataset.clone(), &onto).execute(q).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ontology);
criterion_main!(benches);
