//! Bench behind Figure 10: query answering under an ontology, SparqLog
//! (rules, materialised at load) vs. StardogSim (forward chaining then
//! direct evaluation).

use sparqlog::SparqLog;
use sparqlog_bench::microbench::Bench;
use sparqlog_benchdata::ontology::{build, queries};
use sparqlog_benchdata::sp2bench::Sp2bConfig;
use sparqlog_rdf::Dataset;
use sparqlog_refengine::StardogSim;

fn main() {
    let (graph, onto) = build(Sp2bConfig {
        target_triples: 2_000,
        seed: 3,
    });
    let dataset = Dataset::from_default_graph(graph);
    let qs = queries();
    let mut b = Bench::new("ontology");

    for id in ["oq1", "oq3", "oq4"] {
        let (_, q) = qs.iter().find(|(i, _)| *i == id).unwrap();
        b.bench(&format!("sparqlog/{id}"), || {
            let mut engine = SparqLog::new();
            engine.load_dataset(&dataset).unwrap();
            engine.add_ontology(&onto).unwrap();
            engine.execute(q).unwrap()
        });
        b.bench(&format!("stardog/{id}"), || {
            StardogSim::new(dataset.clone(), &onto).execute(q).unwrap()
        });
    }

    b.finish();
}
