//! Incremental-maintenance microbench (PR 9): what a small *removal*
//! commit costs on a large store, against the whole-store re-run it
//! replaces, plus the end-to-end latency of standing-query delivery.
//!
//! The fixture is the ring-with-shortcuts graph at 100k triples. The
//! headline ratio is `full_reload_100k` vs `commit_remove10_restore`:
//! the latter times a remove-10 commit *plus* the commit that restores
//! the edges (so the store stays at steady state across iterations) —
//! an upper bound on the single removal commit the acceptance gate
//! cares about. DRed maintenance touches the deleted rows and their
//! consequences; the reload rebuilds and re-indexes everything.

use std::time::Duration;

use sparqlog::{SparqLog, Store, SubscriptionEvent, Term};
use sparqlog_bench::microbench::Bench;
use sparqlog_datalog::EvalOptions;

/// ~1.24 triples per node: 80k nodes ≈ 100k triples.
const N: usize = 80_000;

fn turtle(n: usize) -> String {
    let mut src = String::from("@prefix ex: <http://ex.org/> .\n");
    for i in 0..n {
        src.push_str(&format!("ex:p{i} ex:knows ex:p{} .\n", (i + 1) % n));
        if i % 7 == 0 {
            src.push_str(&format!("ex:p{i} ex:knows ex:p{} .\n", (i * 3 + 2) % n));
        }
        if i % 10 == 0 {
            src.push_str(&format!("ex:p{i} ex:name \"person {i}\" .\n"));
        }
    }
    src
}

fn ex(l: &str) -> Term {
    Term::iri(format!("http://ex.org/{l}"))
}

fn single_threaded() -> EvalOptions {
    EvalOptions {
        threads: Some(1),
        ..Default::default()
    }
}

fn main() {
    let mut b = Bench::new("incremental");
    let src = turtle(N);

    // Baseline: the whole-store re-run a deletion used to cost — parse,
    // load and freeze the complete 100k-triple dataset from scratch.
    b.bench("full_reload_100k", || {
        let mut engine = SparqLog::with_options(single_threaded());
        engine.load_turtle(&src).unwrap();
        engine.freeze()
    });

    // Maintained: a 10-remove commit, then a commit restoring the same
    // 10 edges (steady state). Each iteration rotates to fresh ring
    // positions so retraction never sees an already-deleted row.
    let store = Store::with_options(single_threaded());
    store.load_turtle(&src).unwrap();
    let mut epoch = 0usize;
    b.bench("commit_remove10_restore", || {
        let base = (epoch * 10) % (N - 10);
        epoch += 1;
        let mut w = store.writer();
        for k in 0..10 {
            let i = base + k;
            w.remove(
                ex(&format!("p{i}")),
                ex("knows"),
                ex(&format!("p{}", i + 1)),
            );
        }
        let removed = w.commit().unwrap().removed;
        let mut w = store.writer();
        for k in 0..10 {
            let i = base + k;
            w.insert(
                ex(&format!("p{i}")),
                ex("knows"),
                ex(&format!("p{}", i + 1)),
            );
        }
        w.commit().unwrap();
        removed
    });

    // Standing-query delivery, end to end: commit a triple that changes
    // the subscribed result, then block until the delta arrives.
    let store_sub = Store::with_options(single_threaded());
    store_sub.load_turtle(&src).unwrap();
    let watched = store_sub
        .prepare("PREFIX ex: <http://ex.org/> SELECT ?w WHERE { ?w ex:watched ex:p0 }")
        .unwrap();
    let sub = store_sub.subscribe(&watched).unwrap();
    let mut round = 0usize;
    b.bench("notify_latency_affected", || {
        let mut w = store_sub.writer();
        w.insert(ex(&format!("viewer{round}")), ex("watched"), ex("p0"));
        round += 1;
        w.commit().unwrap();
        match sub.recv_timeout(Duration::from_secs(5)) {
            Some(SubscriptionEvent::Delta(d)) => d.commit_seq,
            other => panic!("expected a delta, got {other:?}"),
        }
    });

    // The prefilter at work: a commit on a predicate the subscription
    // cannot match skips re-evaluation entirely — this prices the
    // per-commit overhead a registered-but-unaffected subscriber adds.
    let mut tick = 0usize;
    b.bench("notify_skip_unaffected", || {
        let mut w = store_sub.writer();
        w.insert(ex(&format!("extra{tick}")), ex("follows"), ex("p1"));
        tick += 1;
        w.commit().unwrap();
        assert!(sub.try_recv().is_none(), "prefilter must skip this commit");
        tick
    });

    b.finish();
}
