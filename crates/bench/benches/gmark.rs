//! Bench behind Figures 8/9: recursive path queries on gMark instances —
//! the workload class where the Datalog translation shines.

use sparqlog::SparqLog;
use sparqlog_bench::microbench::Bench;
use sparqlog_benchdata::gmark::{generate, GmarkConfig, Scenario};
use sparqlog_rdf::Dataset;
use sparqlog_refengine::FusekiSim;

fn main() {
    let dataset = Dataset::from_default_graph(generate(GmarkConfig {
        scenario: Scenario::Social,
        nodes: 400,
        seed: 7,
    }));
    let mut b = Bench::new("gmark");

    let cases = [
        ("bound_plus", "PREFIX g: <http://example.org/gMark/> SELECT * WHERE { g:person3 g:knows+ ?y }"),
        ("two_var_plus", "PREFIX g: <http://example.org/gMark/> SELECT * WHERE { ?x g:follows+ ?y }"),
        ("alt_closure", "PREFIX g: <http://example.org/gMark/> SELECT * WHERE { g:person3 (g:knows|g:follows)+ ?y }"),
    ];
    for (name, q) in cases {
        b.bench(&format!("sparqlog/{name}"), || {
            let mut engine = SparqLog::new();
            engine.load_dataset(&dataset).unwrap();
            engine.execute(q).unwrap()
        });
        b.bench(&format!("fuseki/{name}"), || {
            FusekiSim::new(dataset.clone()).execute(q).unwrap()
        });
    }

    b.finish();
}
