//! Criterion bench behind Figures 8/9: recursive path queries on gMark
//! instances — the workload class where the Datalog translation shines.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use sparqlog::SparqLog;
use sparqlog_benchdata::gmark::{generate, GmarkConfig, Scenario};
use sparqlog_refengine::FusekiSim;
use sparqlog_rdf::Dataset;

fn bench_gmark(c: &mut Criterion) {
    let dataset = Dataset::from_default_graph(generate(GmarkConfig {
        scenario: Scenario::Social,
        nodes: 400,
        seed: 7,
    }));
    let mut group = c.benchmark_group("gmark");
    group.sample_size(10).measurement_time(Duration::from_secs(5));

    let cases = [
        ("bound_plus", "PREFIX g: <http://example.org/gMark/> SELECT * WHERE { g:person3 g:knows+ ?y }"),
        ("two_var_plus", "PREFIX g: <http://example.org/gMark/> SELECT * WHERE { ?x g:follows+ ?y }"),
        ("alt_closure", "PREFIX g: <http://example.org/gMark/> SELECT * WHERE { g:person3 (g:knows|g:follows)+ ?y }"),
    ];
    for (name, q) in cases {
        group.bench_function(format!("sparqlog/{name}"), |b| {
            b.iter(|| {
                let mut engine = SparqLog::new();
                engine.load_dataset(&dataset).unwrap();
                engine.execute(q).unwrap()
            })
        });
        group.bench_function(format!("fuseki/{name}"), |b| {
            b.iter(|| FusekiSim::new(dataset.clone()).execute(q).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gmark);
criterion_main!(benches);
