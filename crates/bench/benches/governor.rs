//! Overhead of the execution governor (PR 7): the PR's acceptance gate
//! is that *arming* the governor without any trippable limit costs ≤3%
//! on the `datalog_core` / `query_batch` workloads.
//!
//! Three configurations per workload:
//!
//! * `ungoverned` — no budget at all: the pre-PR fast path (one legacy
//!   timeout branch per check site);
//! * `armed_no_limit` — an idle [`CancelToken`] attached: every check
//!   site takes the governed path (deadline/cancel/row/dict tests), but
//!   nothing ever trips — this is "checks enabled but no limits set";
//! * `row_cap_high` — a row cap far above the fixpoint size: adds the
//!   per-emission `fetch_add` accounting, the most intrusive mode.

use sparqlog::{SparqLog, Store};
use sparqlog_bench::microbench::Bench;
use sparqlog_datalog::{
    evaluate, parser::parse_program, Budget, CancelToken, Database, EvalOptions,
};

fn tc_program(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("edge({i}, {}).\n", (i + 1) % n));
        if i % 7 == 0 {
            src.push_str(&format!("edge({i}, {}).\n", (i * 3 + 1) % n));
        }
    }
    src.push_str("tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n@output(\"tc\").\n");
    src
}

fn turtle(n: usize) -> String {
    let mut src = String::from("@prefix ex: <http://ex.org/> .\n");
    for i in 0..n {
        src.push_str(&format!("ex:p{i} ex:knows ex:p{} .\n", (i + 1) % n));
        if i % 7 == 0 {
            src.push_str(&format!("ex:p{i} ex:knows ex:p{} .\n", (i * 3 + 2) % n));
        }
        if i % 10 == 0 {
            src.push_str(&format!("ex:p{i} ex:name \"person {i}\" .\n"));
        }
    }
    src
}

fn query_log() -> Vec<&'static str> {
    let shapes = [
        "PREFIX ex: <http://ex.org/>
         SELECT ?b WHERE { ?a ex:knows ?b . ?a ex:name ?n }",
        "PREFIX ex: <http://ex.org/>
         SELECT ?z WHERE { ex:p0 ex:knows+ ?z }",
        "PREFIX ex: <http://ex.org/> ASK { ex:p7 ex:knows ex:p8 }",
        "PREFIX ex: <http://ex.org/>
         SELECT DISTINCT ?n WHERE { ?a ex:name ?n }",
    ];
    (0..32).map(|i| shapes[i % shapes.len()]).collect()
}

fn main() {
    let mut b = Bench::new("governor");

    // --- datalog_core's transitive_closure_300 under the three modes.
    let src = tc_program(300);
    let configs: [(&str, Budget); 3] = [
        ("ungoverned", Budget::new()),
        (
            "armed_no_limit",
            Budget::new().with_cancel(CancelToken::new()),
        ),
        ("row_cap_high", Budget::new().with_max_rows(usize::MAX / 2)),
    ];
    for (name, budget) in &configs {
        let options = EvalOptions {
            budget: budget.clone(),
            ..Default::default()
        };
        b.bench(&format!("tc_300_{name}"), || {
            let mut db = Database::new();
            let prog = parse_program(&src, db.symbols()).unwrap();
            evaluate(&prog, &mut db, &options).unwrap()
        });
    }

    // --- query_batch's batch_32q_t1 under the same three modes (the
    // armed batch additionally pays the group-token plumbing).
    let data = turtle(120);
    let log = query_log();
    for (name, budget) in [
        ("ungoverned", Budget::new()),
        (
            "armed_no_limit",
            Budget::new().with_cancel(CancelToken::new()),
        ),
        ("row_cap_high", Budget::new().with_max_rows(usize::MAX / 2)),
    ] {
        let mut engine = SparqLog::new();
        engine.set_threads(Some(1));
        engine.load_turtle(&data).expect("fixture loads");
        let store: Store = engine.into_store();
        store.set_default_budget(budget);
        let snapshot = store.snapshot();
        b.bench(&format!("batch_32q_t1_{name}"), || {
            snapshot
                .execute_batch(&log)
                .into_iter()
                .map(|r| r.expect("query runs").len())
                .sum::<usize>()
        });
    }

    b.finish();
}
