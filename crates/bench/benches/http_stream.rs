//! Streamed vs materialized serialization (PR 8): proof that the
//! incremental `io::Write` paths keep server-side memory at O(chunk)
//! while the PR 5 string serializers materialize the whole payload.
//!
//! A counting [`GlobalAlloc`] wrapper tracks live and peak heap bytes.
//! For a 100k-triple CONSTRUCT (and a 100k-row SELECT), each path runs
//! once under a reset peak-watermark:
//!
//! * `streamed` — `write_ntriples`/`write_json` through a 16 KiB
//!   [`ChunkedWriter`] into `io::sink()`, exactly the server's response
//!   path: peak heap growth should stay near the chunk buffer;
//! * `materialized` — `to_ntriples()`/`to_json()`: peak growth is the
//!   full serialized payload (several MB).
//!
//! Timing of both paths is also recorded through the usual microbench
//! harness. The peak numbers print to stdout and are recorded in
//! `BENCH_pr8.json`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use sparqlog::results_io::{write_json, write_ntriples};
use sparqlog::Store;
use sparqlog_bench::microbench::Bench;
use sparqlog_http::ChunkedWriter;

/// Heap accounting: live bytes and a resettable peak watermark.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            let live = if new_size >= layout.size() {
                LIVE.fetch_add(new_size - layout.size(), Ordering::Relaxed) + new_size
                    - layout.size()
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed)
                    - (layout.size() - new_size)
            };
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` with the peak watermark reset to the current live size and
/// returns its peak heap *growth* in bytes.
fn peak_growth<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let before = LIVE.load(Ordering::Relaxed);
    PEAK.store(before, Ordering::Relaxed);
    let out = std::hint::black_box(f());
    let peak = PEAK.load(Ordering::Relaxed);
    (out, peak.saturating_sub(before))
}

const CHUNK: usize = 16 * 1024;
const TRIPLES: usize = 100_000;

fn fixture() -> Store {
    let store = Store::new();
    {
        let mut w = store.writer();
        for i in 0..TRIPLES {
            w.insert(
                sparqlog_rdf::Term::iri(format!("http://ex.org/s{}", i / 8)),
                sparqlog_rdf::Term::iri(format!("http://ex.org/p{}", i % 8)),
                sparqlog_rdf::Term::iri(format!("http://ex.org/o{i}")),
            );
        }
        w.commit().expect("commit fixture");
    }
    store
}

fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.2} MiB ({b} bytes)", b as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1} KiB ({b} bytes)", b as f64 / 1024.0)
    }
}

fn main() {
    let store = fixture();
    let graph = store
        .execute("CONSTRUCT WHERE { ?s ?p ?o }")
        .expect("construct");
    let rows = store
        .execute("SELECT ?s ?p ?o WHERE { ?s ?p ?o }")
        .expect("select");

    // ---- peak-heap comparison (once per path, outside the timing loop)
    println!("peak heap growth serializing {TRIPLES} triples / rows:");
    let (_, peak) = peak_growth(|| {
        let mut out = ChunkedWriter::new(std::io::sink(), CHUNK);
        write_ntriples(&graph, &mut out).expect("stream ntriples");
        out.finish().expect("finish");
    });
    println!("  construct streamed (16 KiB chunks): {}", fmt_bytes(peak));
    let (s, peak) = peak_growth(|| graph.to_ntriples().expect("materialize ntriples"));
    println!(
        "  construct materialized String:      {} (payload {})",
        fmt_bytes(peak),
        fmt_bytes(s.len())
    );
    drop(s);
    let (_, peak) = peak_growth(|| {
        let mut out = ChunkedWriter::new(std::io::sink(), CHUNK);
        write_json(&rows, &mut out).expect("stream json");
        out.finish().expect("finish");
    });
    println!("  select streamed (16 KiB chunks):    {}", fmt_bytes(peak));
    let (s, peak) = peak_growth(|| rows.to_json().expect("materialize json"));
    println!(
        "  select materialized String:         {} (payload {})",
        fmt_bytes(peak),
        fmt_bytes(s.len())
    );
    drop(s);

    // ---- throughput: the streamed path must not cost time for its
    // bounded memory.
    let mut bench = Bench::new("http_stream");
    bench.bench("construct_100k_ntriples_streamed", || {
        let mut out = ChunkedWriter::new(std::io::sink(), CHUNK);
        write_ntriples(&graph, &mut out).expect("stream");
        out.finish().expect("finish")
    });
    bench.bench("construct_100k_ntriples_materialized", || {
        graph.to_ntriples().expect("materialize").len()
    });
    bench.bench("select_100k_json_streamed", || {
        let mut out = ChunkedWriter::new(std::io::sink(), CHUNK);
        write_json(&rows, &mut out).expect("stream");
        out.finish().expect("finish")
    });
    bench.bench("select_100k_json_materialized", || {
        rows.to_json().expect("materialize").len()
    });
    bench.finish();
}
