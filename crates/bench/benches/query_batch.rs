//! Throughput of the concurrent query-serving path: a fixed "query log"
//! batch evaluated against one frozen snapshot at fan-out widths 1, 2, 4
//! and 8, against the sequential `execute` loop as the baseline.
//!
//! The snapshot is frozen once per configuration *outside* the timed
//! closure, and the first (untimed) warm-up iteration populates the
//! translation cache — so the numbers measure steady-state query
//! evaluation, the regime a server lives in. On a multi-core host
//! `batch_t4`/`batch_t8` should scale; on a 1-CPU container the
//! interesting number is the batch *overhead* vs `sequential` (slot +
//! pool bookkeeping), which stays within a few percent.

use sparqlog::{FrozenDatabase, SparqLog};
use sparqlog_bench::microbench::Bench;

/// A ring-with-shortcuts social graph, the recurring fixture shape of
/// the PR 2 benches.
fn turtle(n: usize) -> String {
    let mut src = String::from("@prefix ex: <http://ex.org/> .\n");
    for i in 0..n {
        src.push_str(&format!("ex:p{i} ex:knows ex:p{} .\n", (i + 1) % n));
        if i % 7 == 0 {
            src.push_str(&format!("ex:p{i} ex:knows ex:p{} .\n", (i * 3 + 2) % n));
        }
        if i % 10 == 0 {
            src.push_str(&format!("ex:p{i} ex:name \"person {i}\" .\n"));
        }
    }
    src
}

/// Four query shapes repeated into a 32-query log: joins, bounded
/// recursion, ASK and DISTINCT — each repetition a translation-cache hit.
fn query_log() -> Vec<&'static str> {
    let shapes = [
        "PREFIX ex: <http://ex.org/>
         SELECT ?b WHERE { ?a ex:knows ?b . ?a ex:name ?n }",
        "PREFIX ex: <http://ex.org/>
         SELECT ?z WHERE { ex:p0 ex:knows+ ?z }",
        "PREFIX ex: <http://ex.org/> ASK { ex:p7 ex:knows ex:p8 }",
        "PREFIX ex: <http://ex.org/>
         SELECT DISTINCT ?n WHERE { ?a ex:name ?n }",
    ];
    (0..32).map(|i| shapes[i % shapes.len()]).collect()
}

fn freeze_with_threads(src: &str, threads: usize) -> FrozenDatabase {
    let mut engine = SparqLog::new();
    engine.set_threads(Some(threads));
    engine.load_turtle(src).expect("fixture loads");
    engine.freeze()
}

fn main() {
    let mut b = Bench::new("query_batch");
    let src = turtle(120);
    let log = query_log();

    // Baseline: the same log executed one by one (single-threaded
    // evaluator, translation cache warm after the first pass).
    let frozen = freeze_with_threads(&src, 1);
    b.bench("sequential_32q", || {
        log.iter()
            .map(|q| frozen.execute(q).expect("query runs").len())
            .sum::<usize>()
    });

    for threads in [1usize, 2, 4, 8] {
        let frozen = freeze_with_threads(&src, threads);
        b.bench(&format!("batch_32q_t{threads}"), || {
            frozen
                .execute_batch(&log)
                .into_iter()
                .map(|r| r.expect("query runs").len())
                .sum::<usize>()
        });
    }

    b.finish();
}
