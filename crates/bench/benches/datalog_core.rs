//! Microbenchmarks of the Datalog± substrate: transitive closure,
//! index joins and Skolem-ID generation — the primitives every
//! translated query exercises.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use sparqlog_datalog::{evaluate, parser::parse_program, Database, EvalOptions};

fn tc_program(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("edge({i}, {}).\n", (i + 1) % n));
        if i % 7 == 0 {
            src.push_str(&format!("edge({i}, {}).\n", (i * 3 + 1) % n));
        }
    }
    src.push_str("tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n@output(\"tc\").\n");
    src
}

fn bench_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("datalog_core");
    group.sample_size(10).measurement_time(Duration::from_secs(5));

    group.bench_function("transitive_closure_300", |b| {
        let src = tc_program(300);
        b.iter(|| {
            let mut db = Database::new();
            let prog = parse_program(&src, db.symbols()).unwrap();
            evaluate(&prog, &mut db, &EvalOptions::default()).unwrap()
        })
    });

    group.bench_function("skolem_ids_10k", |b| {
        let mut src = String::new();
        for i in 0..10_000 {
            src.push_str(&format!("q({i}).\n"));
        }
        src.push_str("p(I, X) :- q(X), I = skolem(\"f\", X).\n@output(\"p\").\n");
        b.iter(|| {
            let mut db = Database::new();
            let prog = parse_program(&src, db.symbols()).unwrap();
            evaluate(&prog, &mut db, &EvalOptions::default()).unwrap()
        })
    });

    group.bench_function("triangle_join_500", |b| {
        let mut src = String::new();
        for i in 0..500 {
            src.push_str(&format!("e({i}, {}).\n", (i + 1) % 500));
        }
        src.push_str("tri(X, W) :- e(X, Y), e(Y, Z), e(Z, W).\n@output(\"tri\").\n");
        b.iter(|| {
            let mut db = Database::new();
            let prog = parse_program(&src, db.symbols()).unwrap();
            evaluate(&prog, &mut db, &EvalOptions::default()).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_core);
criterion_main!(benches);
