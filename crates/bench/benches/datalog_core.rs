//! Microbenchmarks of the Datalog± substrate: transitive closure,
//! index joins and Skolem-ID generation — the primitives every
//! translated query exercises.
//!
//! `transitive_closure_300` keeps the PR 1 methodology (parse + load +
//! evaluate from scratch each iteration) so records stay comparable
//! across `BENCH_pr*.json`. The other cases pre-build their fact rows
//! once and load them through `Database::load_rows` each iteration —
//! the bulk fast path — so they measure the engine, not the textual
//! Datalog parser (their fixtures are 10 000 / 500 fact lines).

use sparqlog_bench::microbench::Bench;
use sparqlog_datalog::{
    evaluate, parser::parse_program, Const, Database, EvalOptions, SymbolTable,
};

fn tc_program(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("edge({i}, {}).\n", (i + 1) % n));
        if i % 7 == 0 {
            src.push_str(&format!("edge({i}, {}).\n", (i * 3 + 1) % n));
        }
    }
    src.push_str("tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n@output(\"tc\").\n");
    src
}

fn main() {
    let mut b = Bench::new("datalog_core");

    let src = tc_program(300);
    b.bench("transitive_closure_300", || {
        let mut db = Database::new();
        let prog = parse_program(&src, db.symbols()).unwrap();
        evaluate(&prog, &mut db, &EvalOptions::default()).unwrap()
    });

    // Skolem tuple-ID generation over 10k rows: rules parsed once, fact
    // rows pre-built, loaded per iteration via the bulk fast path.
    let symbols = SymbolTable::new();
    let skolem_rules = parse_program(
        "p(I, X) :- q(X), I = skolem(\"f\", X).\n@output(\"p\").\n",
        &symbols,
    )
    .unwrap();
    let q = symbols.intern("q");
    let q_rows: Vec<Vec<Const>> = (0..10_000).map(|i| vec![Const::Int(i)]).collect();
    b.bench("skolem_ids_10k", || {
        let mut db = Database::with_symbols(symbols.clone());
        db.load_rows(q, &q_rows);
        evaluate(&skolem_rules, &mut db, &EvalOptions::default()).unwrap()
    });

    // Three-way cyclic join over 500 pre-built edge rows.
    let tri_rules = parse_program(
        "tri(X, W) :- e(X, Y), e(Y, Z), e(Z, W).\n@output(\"tri\").\n",
        &symbols,
    )
    .unwrap();
    let e = symbols.intern("e");
    let e_rows: Vec<Vec<Const>> = (0..500)
        .map(|i| vec![Const::Int(i), Const::Int((i + 1) % 500)])
        .collect();
    b.bench("triangle_join_500", || {
        let mut db = Database::with_symbols(symbols.clone());
        db.load_rows(e, &e_rows);
        evaluate(&tri_rules, &mut db, &EvalOptions::default()).unwrap()
    });

    b.finish();
}
