//! Microbenchmarks of the Datalog± substrate: transitive closure,
//! index joins and Skolem-ID generation — the primitives every
//! translated query exercises.

use sparqlog_bench::microbench::Bench;
use sparqlog_datalog::{evaluate, parser::parse_program, Database, EvalOptions};

fn tc_program(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("edge({i}, {}).\n", (i + 1) % n));
        if i % 7 == 0 {
            src.push_str(&format!("edge({i}, {}).\n", (i * 3 + 1) % n));
        }
    }
    src.push_str("tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n@output(\"tc\").\n");
    src
}

fn main() {
    let mut b = Bench::new("datalog_core");

    let src = tc_program(300);
    b.bench("transitive_closure_300", || {
        let mut db = Database::new();
        let prog = parse_program(&src, db.symbols()).unwrap();
        evaluate(&prog, &mut db, &EvalOptions::default()).unwrap()
    });

    let mut src = String::new();
    for i in 0..10_000 {
        src.push_str(&format!("q({i}).\n"));
    }
    src.push_str("p(I, X) :- q(X), I = skolem(\"f\", X).\n@output(\"p\").\n");
    b.bench("skolem_ids_10k", || {
        let mut db = Database::new();
        let prog = parse_program(&src, db.symbols()).unwrap();
        evaluate(&prog, &mut db, &EvalOptions::default()).unwrap()
    });

    let mut src = String::new();
    for i in 0..500 {
        src.push_str(&format!("e({i}, {}).\n", (i + 1) % 500));
    }
    src.push_str("tri(X, W) :- e(X, Y), e(Y, Z), e(Z, W).\n@output(\"tri\").\n");
    b.bench("triangle_join_500", || {
        let mut db = Database::new();
        let prog = parse_program(&src, db.symbols()).unwrap();
        evaluate(&prog, &mut db, &EvalOptions::default()).unwrap()
    });

    b.finish();
}
