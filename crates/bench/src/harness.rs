//! Shared measurement harness for the table/figure binaries.
//!
//! Methodology follows the paper (§6.3): per query the database is
//! deleted and reloaded ("we delete and reload the dataset each time"),
//! load and execution are timed separately, and the comparison metric is
//! load + execution ("Vadalog loads and queries the database
//! simultaneously; hence, to perform a fair comparison ... we compare
//! their total loading and querying time"). Timeouts default to a scaled
//! version of the paper's 900 s.

use std::time::{Duration, Instant};

use sparqlog::{Ontology, QueryResults, SparqLog, SparqLogError};
use sparqlog_datalog::EvalOptions;
use sparqlog_rdf::Dataset;
use sparqlog_refengine::{EngineError, FusekiSim, StardogSim, VirtuosoSim};

/// How a query run ended, in the vocabulary of the paper's tables.
#[derive(Debug, Clone)]
pub enum Status {
    Ok(QueryResults),
    Timeout,
    NotSupported(String),
    Error(String),
}

impl Status {
    pub fn is_ok(&self) -> bool {
        matches!(self, Status::Ok(_))
    }

    pub fn result(&self) -> Option<&QueryResults> {
        match self {
            Status::Ok(r) => Some(r),
            _ => None,
        }
    }

    /// The short label used in the result tables.
    pub fn label(&self) -> &'static str {
        match self {
            Status::Ok(_) => "ok",
            Status::Timeout => "time-out",
            Status::NotSupported(_) => "not supported",
            Status::Error(_) => "error",
        }
    }
}

/// One measured run.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub load: Duration,
    pub exec: Duration,
    pub status: Status,
}

impl Measurement {
    pub fn total(&self) -> Duration {
        self.load + self.exec
    }
}

/// The engines under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    SparqLog,
    Fuseki,
    Virtuoso,
    Stardog,
}

impl Engine {
    pub fn name(self) -> &'static str {
        match self {
            Engine::SparqLog => "SparqLog",
            Engine::Fuseki => "Fuseki",
            Engine::Virtuoso => "Virtuoso",
            Engine::Stardog => "Stardog",
        }
    }
}

/// Runs one query on one engine with a fresh database (the paper's
/// delete-and-reload methodology).
pub fn run(
    engine: Engine,
    dataset: &Dataset,
    ontology: Option<&Ontology>,
    query: &str,
    timeout: Duration,
) -> Measurement {
    match engine {
        Engine::SparqLog => run_sparqlog(dataset, ontology, query, timeout),
        Engine::Fuseki => run_ref(
            query,
            timeout,
            |ds| FusekiSim::new(ds).with_timeout(timeout),
            dataset,
        ),
        Engine::Virtuoso => run_ref(
            query,
            timeout,
            |ds| VirtuosoSim::new(ds).with_timeout(timeout),
            dataset,
        ),
        Engine::Stardog => {
            let onto_owned;
            let onto = match ontology {
                Some(o) => o,
                None => {
                    onto_owned = Ontology::new();
                    &onto_owned
                }
            };
            let start = Instant::now();
            let engine = StardogSim::new(dataset.clone(), onto).with_timeout(timeout);
            let load = start.elapsed();
            let start = Instant::now();
            let status = classify_ref(engine.execute(query));
            Measurement {
                load,
                exec: start.elapsed(),
                status,
            }
        }
    }
}

fn run_sparqlog(
    dataset: &Dataset,
    ontology: Option<&Ontology>,
    query: &str,
    timeout: Duration,
) -> Measurement {
    let options = EvalOptions {
        timeout: Some(timeout),
        ..Default::default()
    };
    let start = Instant::now();
    let mut engine = SparqLog::with_options(options);
    let load_result = engine.load_dataset(dataset).and_then(|_| match ontology {
        Some(o) => engine.add_ontology(o).map(|_| ()),
        None => Ok(()),
    });
    let load = start.elapsed();
    if let Err(e) = load_result {
        return Measurement {
            load,
            exec: Duration::ZERO,
            status: classify_sl(Err(e)),
        };
    }
    let start = Instant::now();
    let status = classify_sl(engine.execute(query));
    Measurement {
        load,
        exec: start.elapsed(),
        status,
    }
}

fn run_ref<E>(
    query: &str,
    _timeout: Duration,
    build: impl FnOnce(Dataset) -> E,
    dataset: &Dataset,
) -> Measurement
where
    E: RefExec,
{
    let start = Instant::now();
    let engine = build(dataset.clone());
    let load = start.elapsed();
    let start = Instant::now();
    let status = classify_ref(engine.exec(query));
    Measurement {
        load,
        exec: start.elapsed(),
        status,
    }
}

trait RefExec {
    fn exec(&self, query: &str) -> Result<QueryResults, EngineError>;
}

impl RefExec for FusekiSim {
    fn exec(&self, query: &str) -> Result<QueryResults, EngineError> {
        self.execute(query)
    }
}

impl RefExec for VirtuosoSim {
    fn exec(&self, query: &str) -> Result<QueryResults, EngineError> {
        self.execute(query)
    }
}

fn classify_sl(r: Result<QueryResults, SparqLogError>) -> Status {
    match r {
        Ok(r) => Status::Ok(r),
        Err(e) if e.is_timeout() => Status::Timeout,
        Err(e) if e.is_unsupported() => Status::NotSupported(e.to_string()),
        Err(e) => Status::Error(e.to_string()),
    }
}

fn classify_ref(r: Result<QueryResults, EngineError>) -> Status {
    match r {
        Ok(r) => Status::Ok(r),
        Err(EngineError::Timeout) => Status::Timeout,
        Err(EngineError::NotSupported(m)) => Status::NotSupported(m),
        Err(EngineError::Malformed(m)) => Status::Error(m),
    }
}

/// Multiset equality of two results (the paper's comparison, D.2.2).
/// Graphs compare as triple sets with blank-node labels erased — the
/// same label-insensitivity the solution comparison applies.
pub fn results_equal(a: &QueryResults, b: &QueryResults) -> bool {
    match (a, b) {
        (QueryResults::Boolean(x), QueryResults::Boolean(y)) => x == y,
        (QueryResults::Solutions(x), QueryResults::Solutions(y)) => x.multiset_eq(y),
        (QueryResults::Graph(x), QueryResults::Graph(y)) => {
            canonical_triples(x) == canonical_triples(y)
        }
        _ => false,
    }
}

pub use sparqlog::canonical_triples;

/// The per-query timeout: `SPARQLOG_TIMEOUT_MS` env var, default 5000 ms
/// (a scaled version of the paper's 900 s budget).
pub fn timeout_from_env() -> Duration {
    let ms = std::env::var("SPARQLOG_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5_000u64);
    Duration::from_millis(ms)
}

/// Dataset scale factor: `SPARQLOG_SCALE` env var (1.0 = the defaults
/// documented in DESIGN.md).
pub fn scale_from_env() -> f64 {
    std::env::var("SPARQLOG_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Formats a duration in seconds with millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}
