//! Regenerates Figure 9 / Tables 8 & 10 (gMark test).
use sparqlog_bench::harness::{scale_from_env, timeout_from_env};
use sparqlog_benchdata::gmark::Scenario;
fn main() {
    println!(
        "{}",
        sparqlog_bench::tables::gmark_report(Scenario::Test, timeout_from_env(), scale_from_env())
    );
}
