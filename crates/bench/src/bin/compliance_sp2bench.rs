//! Regenerates the SP²Bench compliance results of §6.2.
use sparqlog_bench::harness::timeout_from_env;
fn main() {
    println!(
        "{}",
        sparqlog_bench::tables::compliance_sp2bench(timeout_from_env())
    );
}
