//! Regenerates Figure 8 / Tables 7 & 9 (gMark social).
use sparqlog_bench::harness::{scale_from_env, timeout_from_env};
use sparqlog_benchdata::gmark::Scenario;
fn main() {
    println!(
        "{}",
        sparqlog_bench::tables::gmark_report(
            Scenario::Social,
            timeout_from_env(),
            scale_from_env()
        )
    );
}
