//! Regenerates the FEASIBLE(S) compliance results of §6.2.
use sparqlog_bench::harness::timeout_from_env;
fn main() {
    println!(
        "{}",
        sparqlog_bench::tables::compliance_feasible(timeout_from_env())
    );
}
