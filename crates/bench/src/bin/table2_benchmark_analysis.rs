//! Regenerates Table 2 (benchmark feature coverage).
fn main() {
    println!("{}", sparqlog_bench::tables::table2());
}
