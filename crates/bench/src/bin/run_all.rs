//! Runs every experiment in paper order (the data behind EXPERIMENTS.md).
use sparqlog_bench::harness::{scale_from_env, timeout_from_env};
use sparqlog_bench::tables;
use sparqlog_benchdata::gmark::Scenario;

fn main() {
    let timeout = timeout_from_env();
    let scale = scale_from_env();
    let section = |name: &str| {
        println!("\n{}\n=== {name} ===\n", "=".repeat(72));
    };
    section("Table 1 — SPARQL feature coverage");
    println!("{}", tables::table1());
    section("Table 2 — benchmark feature coverage");
    println!("{}", tables::table2());
    section("Table 3 — BeSEPPI compliance");
    println!("{}", tables::table3(timeout));
    section("FEASIBLE(S) compliance (§6.2)");
    println!("{}", tables::compliance_feasible(timeout));
    section("SP2Bench compliance (§6.2)");
    println!("{}", tables::compliance_sp2bench(timeout));
    section("Figure 7 / Table 11 — SP2Bench performance");
    println!("{}", tables::fig7(timeout, scale));
    section("Figure 8 / Tables 7 & 9 — gMark social");
    println!("{}", tables::gmark_report(Scenario::Social, timeout, scale));
    section("Figure 9 / Tables 8 & 10 — gMark test");
    println!("{}", tables::gmark_report(Scenario::Test, timeout, scale));
    section("Figure 10 — ontology benchmark");
    println!("{}", tables::fig10(timeout, scale));
}
