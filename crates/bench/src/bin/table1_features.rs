//! Regenerates Table 1 (SPARQL feature matrix).
fn main() {
    println!("{}", sparqlog_bench::tables::table1());
}
