//! Regenerates Table 3 (BeSEPPI property-path compliance).
use sparqlog_bench::harness::timeout_from_env;
fn main() {
    println!("{}", sparqlog_bench::tables::table3(timeout_from_env()));
}
