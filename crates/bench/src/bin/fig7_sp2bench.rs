//! Regenerates Figure 7 / Table 11 (SP²Bench performance).
use sparqlog_bench::harness::{scale_from_env, timeout_from_env};
fn main() {
    println!(
        "{}",
        sparqlog_bench::tables::fig7(timeout_from_env(), scale_from_env())
    );
}
