//! Regenerates Figure 10 (ontology benchmark, SparqLog vs. StardogSim).
use sparqlog_bench::harness::{scale_from_env, timeout_from_env};
fn main() {
    println!(
        "{}",
        sparqlog_bench::tables::fig10(timeout_from_env(), scale_from_env())
    );
}
