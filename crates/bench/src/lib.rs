//! The benchmark harness: timing infrastructure ([`harness`]) and the
//! regeneration of every table and figure of the paper ([`tables`]).
//!
//! Binaries (run with `cargo run -p sparqlog-bench --release --bin <name>`):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1_features` | Table 1 (feature matrix) |
//! | `table2_benchmark_analysis` | Table 2 (benchmark feature coverage) |
//! | `table3_beseppi` | Table 3 (BeSEPPI compliance) |
//! | `compliance_feasible` | §6.2 FEASIBLE(S) compliance |
//! | `compliance_sp2bench` | §6.2 SP²Bench compliance |
//! | `fig7_sp2bench` | Figure 7 / Table 11 |
//! | `gmark_social` | Figure 8 / Tables 7 & 9 |
//! | `gmark_test` | Figure 9 / Tables 8 & 10 |
//! | `fig10_ontology` | Figure 10 |
//! | `run_all` | everything above, in order |
//!
//! Environment: `SPARQLOG_TIMEOUT_MS` (default 5000) scales the paper's
//! 900 s budget; `SPARQLOG_SCALE` (default 1.0) scales dataset sizes.
pub mod harness;
pub mod microbench;
pub mod tables;
