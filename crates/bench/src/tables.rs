//! Regeneration of every table and figure in the paper's evaluation
//! (§6, Appendix D). Each function returns the rendered table; the
//! `src/bin/` binaries are thin wrappers around these.

use std::fmt::Write as _;
use std::time::Duration;

use sparqlog_benchdata::beseppi::{self, Category, Verdict};
use sparqlog_benchdata::gmark::{self, Scenario};
use sparqlog_benchdata::{analysis, feasible, ontology, sp2bench};
use sparqlog_rdf::{Dataset, Term};

use crate::harness::{results_equal, run, secs, Engine, Measurement, Status};

/// Table 1: the SPARQL feature matrix.
pub fn table1() -> String {
    sparqlog::features::render_table1()
}

/// Table 2: benchmark feature coverage — measured for the generated
/// workloads, published values for the rest.
pub fn table2() -> String {
    let mut rows = Vec::new();
    let collect =
        |qs: Vec<(String, String)>| -> Vec<String> { qs.into_iter().map(|(_, q)| q).collect() };
    rows.push(analysis::analyze(
        "SP2Bench*",
        &sp2bench::queries()
            .into_iter()
            .map(|(_, q)| q)
            .collect::<Vec<_>>(),
    ));
    rows.push(analysis::analyze(
        "FEASIBLE(S)*",
        &collect(feasible::queries()),
    ));
    rows.push(analysis::analyze(
        "gMark-social*",
        &collect(gmark::queries(Scenario::Social)),
    ));
    rows.push(analysis::analyze(
        "gMark-test*",
        &collect(gmark::queries(Scenario::Test)),
    ));
    rows.push(analysis::analyze(
        "BeSEPPI*",
        &beseppi::queries()
            .into_iter()
            .map(|q| q.query)
            .collect::<Vec<_>>(),
    ));
    rows.extend(analysis::published_rows());
    let mut out = String::from(
        "Table 2 — Feature Coverage of SPARQL Benchmarks\n(* = measured on \
         this workspace's generated query sets; others as published)\n\n",
    );
    out.push_str(&analysis::render(&rows));
    out
}

/// Table 3: BeSEPPI property-path compliance for the three engines.
pub fn table3(timeout: Duration) -> String {
    let dataset = Dataset::from_default_graph(beseppi::graph());
    let queries = beseppi::queries();

    #[derive(Default, Clone, Copy)]
    struct Row {
        incomplete_correct: usize,
        complete_incorrect: usize,
        incomplete_incorrect: usize,
        error: usize,
    }
    let engines = [Engine::Virtuoso, Engine::Fuseki, Engine::SparqLog];
    let mut counts = vec![[Row::default(); 7]; engines.len()];

    for (qi, q) in queries.iter().enumerate() {
        if qi % 40 == 0 {
            eprintln!("[table3] {qi}/{} queries", queries.len());
        }
        let cat_idx = Category::ALL.iter().position(|c| *c == q.category).unwrap();
        for (ei, engine) in engines.iter().enumerate() {
            let m = run(*engine, &dataset, None, &q.query, timeout);
            let row = &mut counts[ei][cat_idx];
            match m.status.result() {
                None => row.error += 1,
                Some(result) => {
                    let actual = result_rows(result);
                    match beseppi::classify(&q.expected, &actual) {
                        Verdict::Correct => {}
                        Verdict::IncompleteButCorrect => row.incomplete_correct += 1,
                        Verdict::CompleteButIncorrect => row.complete_incorrect += 1,
                        Verdict::IncompleteAndIncorrect => row.incomplete_incorrect += 1,
                    }
                }
            }
        }
    }

    let mut out = String::from(
        "Table 3 — Compliance Test Results with BeSEPPI\n\
         (per engine: Incomp.&Correct / Complete&Incor. / Incomp.&Incor. / Error)\n\n",
    );
    let _ = writeln!(
        out,
        "{:<14} {:^28} {:^28} {:^28} {:>8}",
        "Expressions", "Virtuoso", "Jena Fuseki", "SparqLog", "#Queries"
    );
    out.push_str(&"-".repeat(112));
    out.push('\n');
    let mut totals = vec![Row::default(); engines.len()];
    for (ci, cat) in Category::ALL.iter().enumerate() {
        let _ = write!(out, "{:<14}", cat.name());
        for (ei, _) in engines.iter().enumerate() {
            let r = counts[ei][ci];
            let _ = write!(
                out,
                " {:>6} {:>6} {:>6} {:>6} ",
                r.incomplete_correct, r.complete_incorrect, r.incomplete_incorrect, r.error
            );
            totals[ei].incomplete_correct += r.incomplete_correct;
            totals[ei].complete_incorrect += r.complete_incorrect;
            totals[ei].incomplete_incorrect += r.incomplete_incorrect;
            totals[ei].error += r.error;
        }
        let n = queries.iter().filter(|q| q.category == *cat).count();
        let _ = writeln!(out, "{n:>8}");
    }
    let _ = write!(out, "{:<14}", "Total");
    for t in &totals {
        let _ = write!(
            out,
            " {:>6} {:>6} {:>6} {:>6} ",
            t.incomplete_correct, t.complete_incorrect, t.incomplete_incorrect, t.error
        );
    }
    let _ = writeln!(out, "{:>8}", queries.len());
    out
}

fn result_rows(result: &sparqlog::QueryResults) -> Vec<Vec<Term>> {
    match result {
        sparqlog::QueryResults::Boolean(_) => Vec::new(),
        sparqlog::QueryResults::Solutions(s) => s
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|c| c.clone().unwrap_or(Term::bnode("unbound")))
                    .collect()
            })
            .collect(),
        // Graph results render each triple as one row (the compliance
        // tables only compare SELECT/ASK, but stay total here).
        sparqlog::QueryResults::Graph(g) => g
            .iter()
            .map(|(s, p, o)| vec![s.clone(), p.clone(), o.clone()])
            .collect(),
    }
}

/// §6.2: FEASIBLE(S) compliance — SparqLog/Fuseki agreement plus
/// Virtuoso's error and wrong-result counts.
pub fn compliance_feasible(timeout: Duration) -> String {
    let dataset = feasible::dataset(Default::default());
    let queries = feasible::queries();
    let mut agree = 0usize;
    let mut disagree = Vec::new();
    let mut virtuoso_errors = 0usize;
    let mut virtuoso_wrong = 0usize;
    let mut sparqlog_unsupported = 0usize;

    for (id, q) in &queries {
        eprintln!("[feasible] {id}");
        let sl = run(Engine::SparqLog, &dataset, None, q, timeout);
        let fu = run(Engine::Fuseki, &dataset, None, q, timeout);
        let vi = run(Engine::Virtuoso, &dataset, None, q, timeout);
        match (&sl.status, &fu.status) {
            (Status::Ok(a), Status::Ok(b)) => {
                if results_equal(a, b) {
                    agree += 1;
                } else {
                    disagree.push(id.clone());
                }
            }
            (Status::NotSupported(_), _) => sparqlog_unsupported += 1,
            _ => disagree.push(id.clone()),
        }
        match (&vi.status, fu.status.result()) {
            (Status::Ok(v), Some(f)) => {
                if !results_equal(v, f) {
                    virtuoso_wrong += 1;
                }
            }
            (Status::Ok(_), None) => {}
            _ => virtuoso_errors += 1,
        }
    }

    let mut out = String::from("FEASIBLE(S) compliance (§6.2)\n\n");
    let _ = writeln!(out, "queries:                        {}", queries.len());
    let _ = writeln!(out, "SparqLog = Fuseki (agree):      {agree}");
    let _ = writeln!(
        out,
        "SparqLog unsupported:           {sparqlog_unsupported}"
    );
    let _ = writeln!(out, "SparqLog/Fuseki disagreements:  {}", disagree.len());
    if !disagree.is_empty() {
        let _ = writeln!(out, "  ids: {}", disagree.join(", "));
    }
    let _ = writeln!(out, "Virtuoso errors:                {virtuoso_errors}");
    let _ = writeln!(out, "Virtuoso wrong result multiset: {virtuoso_wrong}");
    out
}

/// §6.2: SP²Bench compliance — all three engines must agree on all 17.
pub fn compliance_sp2bench(timeout: Duration) -> String {
    let dataset = Dataset::from_default_graph(sp2bench::generate(Default::default()));
    let queries = sp2bench::queries();
    let mut all_agree = 0usize;
    let mut notes = Vec::new();
    for (id, q) in &queries {
        eprintln!("[sp2bench] {id}");
        let sl = run(Engine::SparqLog, &dataset, None, q, timeout);
        let fu = run(Engine::Fuseki, &dataset, None, q, timeout);
        let vi = run(Engine::Virtuoso, &dataset, None, q, timeout);
        match (sl.status.result(), fu.status.result(), vi.status.result()) {
            (Some(a), Some(b), Some(c)) => {
                if results_equal(a, b) && results_equal(b, c) {
                    all_agree += 1;
                } else {
                    notes.push(format!("{id}: results differ"));
                }
            }
            _ => notes.push(format!(
                "{id}: sl={} fu={} vi={}",
                sl.status.label(),
                fu.status.label(),
                vi.status.label()
            )),
        }
    }
    let mut out = String::from("SP2Bench compliance (§6.2)\n\n");
    let _ = writeln!(out, "queries:              {}", queries.len());
    let _ = writeln!(out, "all 3 engines agree:  {all_agree}");
    for n in notes {
        let _ = writeln!(out, "  {n}");
    }
    out
}

/// One gMark scenario: the summary of Table 7/8 plus the per-query rows
/// of Table 9/10 (which are also the data behind Figures 8/9).
pub fn gmark_report(scenario: Scenario, timeout: Duration, scale: f64) -> String {
    let mut config = gmark::GmarkConfig::default_for(scenario);
    config.nodes = ((config.nodes as f64) * scale) as usize;
    let dataset = Dataset::from_default_graph(gmark::generate(config));
    let queries = gmark::queries(scenario);

    #[derive(Default)]
    struct Summary {
        not_supported: usize,
        timeouts: usize,
        incomplete: usize,
    }
    let engines = [Engine::SparqLog, Engine::Fuseki, Engine::Virtuoso];
    let mut summaries = [Summary::default(), Summary::default(), Summary::default()];

    let mut out = format!(
        "gMark {:?} — per-query results (Tables 9/10, Figures 8/9)\n\
         graph: {} triples, timeout {:?}\n\n",
        scenario,
        dataset.default_graph().len(),
        timeout
    );
    let _ = writeln!(
        out,
        "{:>3}  {:>10} {:>10} {:>9}   {:>10} {:>10} {:>9} {:>6}   {:>10} {:>10} {:>9} {:>6}",
        "q",
        "SL load",
        "SL exec",
        "SL status",
        "FU load",
        "FU exec",
        "FU status",
        "=SL?",
        "VI load",
        "VI exec",
        "VI status",
        "=SL?"
    );

    for (id, q) in &queries {
        eprintln!("[gmark {scenario:?}] q{id}");
        let mut measurements: Vec<Measurement> = Vec::new();
        for e in engines {
            measurements.push(run(e, &dataset, None, q, timeout));
        }
        let sl_result = measurements[0].status.result().cloned();
        let _ = write!(
            out,
            "{:>3}  {:>10} {:>10} {:>9}",
            id,
            secs(measurements[0].load),
            secs(measurements[0].exec),
            measurements[0].status.label()
        );
        for (ei, m) in measurements.iter().enumerate().skip(1) {
            let eq = match (&m.status, &sl_result) {
                (Status::Ok(r), Some(sl)) => {
                    if results_equal(r, sl) {
                        "yes"
                    } else {
                        summaries[ei].incomplete += 1;
                        "NO"
                    }
                }
                _ => "-",
            };
            let _ = write!(
                out,
                "   {:>10} {:>10} {:>9} {:>6}",
                secs(m.load),
                secs(m.exec),
                m.status.label(),
                eq
            );
        }
        out.push('\n');
        for (ei, m) in measurements.iter().enumerate() {
            match &m.status {
                Status::Timeout => summaries[ei].timeouts += 1,
                Status::NotSupported(_) => summaries[ei].not_supported += 1,
                _ => {}
            }
        }
    }

    let _ = writeln!(
        out,
        "\nSummary (Table {}):",
        if scenario == Scenario::Social { 7 } else { 8 }
    );
    let _ = writeln!(
        out,
        "{:<22} {:>9} {:>8} {:>9}",
        "", "SparqLog", "Fuseki", "Virtuoso"
    );
    type SummaryCol = fn(&Summary) -> usize;
    let rows: [(&str, SummaryCol); 3] = [
        ("#Not Supported", |s| s.not_supported),
        ("#Time/Mem-Outs", |s| s.timeouts),
        ("#Incomplete Results", |s| s.incomplete),
    ];
    for (label, f) in rows {
        let _ = writeln!(
            out,
            "{:<22} {:>9} {:>8} {:>9}",
            label,
            f(&summaries[0]),
            f(&summaries[1]),
            f(&summaries[2])
        );
    }
    let _ = writeln!(
        out,
        "{:<22} {:>9} {:>8} {:>9}",
        "Total not answered",
        summaries[0].not_supported + summaries[0].timeouts + summaries[0].incomplete,
        summaries[1].not_supported + summaries[1].timeouts + summaries[1].incomplete,
        summaries[2].not_supported + summaries[2].timeouts + summaries[2].incomplete,
    );
    out
}

/// Figure 7 / Table 11: SP²Bench execution times for the three engines.
pub fn fig7(timeout: Duration, scale: f64) -> String {
    let triples = (25_000.0 * scale) as usize;
    let dataset = Dataset::from_default_graph(sp2bench::generate(sp2bench::Sp2bConfig {
        target_triples: triples,
        seed: 0x5eed_5b2b,
    }));
    let queries = sp2bench::queries();
    let mut out = format!(
        "SP2Bench performance (Figure 7 / Table 11) — {} triples, timeout {:?}\n\n",
        dataset.default_graph().len(),
        timeout
    );
    let _ = writeln!(
        out,
        "{:>4} {:>10} {:>10} {:>10}   {:>10} {:>10} {:>6}   {:>10} {:>10} {:>6}",
        "q",
        "SL load",
        "SL exec",
        "SL total",
        "FU total",
        "FU status",
        "=SL?",
        "VI total",
        "VI status",
        "=SL?"
    );
    for (id, q) in &queries {
        eprintln!("[fig7] {id}");
        let sl = run(Engine::SparqLog, &dataset, None, q, timeout);
        let fu = run(Engine::Fuseki, &dataset, None, q, timeout);
        let vi = run(Engine::Virtuoso, &dataset, None, q, timeout);
        let eq = |m: &Measurement| match (m.status.result(), sl.status.result()) {
            (Some(a), Some(b)) => {
                if results_equal(a, b) {
                    "yes"
                } else {
                    "NO"
                }
            }
            _ => "-",
        };
        let _ = writeln!(
            out,
            "{:>4} {:>10} {:>10} {:>10}   {:>10} {:>10} {:>6}   {:>10} {:>10} {:>6}",
            id,
            secs(sl.load),
            secs(sl.exec),
            secs(sl.total()),
            secs(fu.total()),
            fu.status.label(),
            eq(&fu),
            secs(vi.total()),
            vi.status.label(),
            eq(&vi),
        );
    }
    out
}

/// Figure 10: the ontology benchmark, SparqLog vs. StardogSim.
pub fn fig10(timeout: Duration, scale: f64) -> String {
    let triples = (25_000.0 * scale) as usize;
    let (graph, onto) = ontology::build(sp2bench::Sp2bConfig {
        target_triples: triples,
        seed: 0x0170,
    });
    let dataset = Dataset::from_default_graph(graph);
    let queries = ontology::queries();
    let mut out = format!(
        "Ontology benchmark (Figure 10) — {} triples + {} axioms, timeout {:?}\n\n",
        dataset.default_graph().len(),
        onto.len(),
        timeout
    );
    let _ = writeln!(
        out,
        "{:>4} {:>10} {:>10} {:>10}   {:>10} {:>10} {:>10} {:>8} {:>6}",
        "q", "SL load", "SL exec", "SL total", "SD load", "SD exec", "SD total", "SD stat", "=SL?"
    );
    for (id, q) in &queries {
        eprintln!("[fig10] {id}");
        let sl = run(Engine::SparqLog, &dataset, Some(&onto), q, timeout);
        let sd = run(Engine::Stardog, &dataset, Some(&onto), q, timeout);
        let eq = match (sd.status.result(), sl.status.result()) {
            (Some(a), Some(b)) => {
                if results_equal(a, b) {
                    "yes"
                } else {
                    "NO"
                }
            }
            _ => "-",
        };
        let _ = writeln!(
            out,
            "{:>4} {:>10} {:>10} {:>10}   {:>10} {:>10} {:>10} {:>8} {:>6}",
            id,
            secs(sl.load),
            secs(sl.exec),
            secs(sl.total()),
            secs(sd.load),
            secs(sd.exec),
            secs(sd.total()),
            sd.status.label(),
            eq,
        );
    }
    out
}
