//! A minimal in-tree microbenchmark harness (criterion-free, so the
//! workspace builds offline with zero external dependencies).
//!
//! Each `[[bench]]` target is a plain `harness = false` binary that builds
//! a [`Bench`] group, registers closures with [`Bench::bench`], and calls
//! [`Bench::finish`]. Results print as a table; set
//! `SPARQLOG_BENCH_JSON=<path>` to also append one JSON line per group
//! (used by the committed `BENCH_*.json` records).
//!
//! Methodology: one untimed warm-up iteration, then whole-closure timing
//! until the measurement budget (`SPARQLOG_BENCH_TIME_MS`, default
//! 2000 ms) or the iteration cap is reached. We report the *minimum* as
//! the headline number (least scheduler noise) alongside the mean.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// One benchmark's measurements.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    pub iters: u32,
    pub min_ns: u128,
    pub mean_ns: u128,
}

/// A named group of microbenchmarks.
pub struct Bench {
    group: String,
    budget: Duration,
    max_iters: u32,
    results: Vec<BenchResult>,
}

impl Bench {
    /// Creates a group. The per-benchmark budget comes from
    /// `SPARQLOG_BENCH_TIME_MS` (default 2000).
    pub fn new(group: &str) -> Self {
        let ms = std::env::var("SPARQLOG_BENCH_TIME_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2_000u64);
        Bench {
            group: group.to_string(),
            budget: Duration::from_millis(ms),
            max_iters: 200,
            results: Vec::new(),
        }
    }

    /// Runs `f` repeatedly and records its timing under `name`.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        std::hint::black_box(f()); // warm-up, untimed
        let mut times: Vec<u128> = Vec::new();
        let start = Instant::now();
        while (start.elapsed() < self.budget && times.len() < self.max_iters as usize)
            || times.len() < 3
        {
            let t0 = Instant::now();
            std::hint::black_box(f());
            times.push(t0.elapsed().as_nanos());
        }
        let iters = times.len() as u32;
        let min_ns = *times.iter().min().expect("at least one iteration");
        let mean_ns = times.iter().sum::<u128>() / times.len() as u128;
        eprintln!(
            "{}/{name}: {iters} iters, min {}, mean {}",
            self.group,
            fmt_ns(min_ns),
            fmt_ns(mean_ns)
        );
        self.results.push(BenchResult {
            name: name.to_string(),
            iters,
            min_ns,
            mean_ns,
        });
    }

    /// Prints the summary table and (optionally) appends the JSON record.
    pub fn finish(self) {
        println!("\n== {} ==", self.group);
        for r in &self.results {
            println!(
                "{:<40} min {:>12}  mean {:>12}  ({} iters)",
                r.name,
                fmt_ns(r.min_ns),
                fmt_ns(r.mean_ns),
                r.iters
            );
        }
        if let Ok(path) = std::env::var("SPARQLOG_BENCH_JSON") {
            let mut line = format!("{{\"group\":{:?},\"benches\":[", self.group);
            for (i, r) in self.results.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&format!(
                    "{{\"name\":{:?},\"iters\":{},\"min_ns\":{},\"mean_ns\":{}}}",
                    r.name, r.iters, r.min_ns, r.mean_ns
                ));
            }
            line.push_str("]}\n");
            let r = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(line.as_bytes()));
            if let Err(e) = r {
                eprintln!("SPARQLOG_BENCH_JSON: cannot write {path}: {e}");
            }
        }
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_results() {
        std::env::remove_var("SPARQLOG_BENCH_JSON");
        let mut b = Bench::new("test");
        b.budget = Duration::from_millis(5);
        b.bench("noop", || 1 + 1);
        assert_eq!(b.results.len(), 1);
        assert!(b.results[0].iters >= 3);
        b.finish();
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(1_500), "1.500 us");
        assert_eq!(fmt_ns(2_500_000), "2.500 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
