//! Property test: the `Display` form of a random property-path AST
//! re-parses to the same AST (printer/parser round-trip).

use proptest::prelude::*;
use sparqlog_sparql::{parse_query, GraphPattern, PropertyPath};

fn leaf() -> impl Strategy<Value = PropertyPath> {
    prop_oneof![
        (0u8..4).prop_map(|i| PropertyPath::link(format!("http://p/{i}"))),
        // Negated sets are leaves of the recursion.
        (
            prop::collection::vec(0u8..4, 1..3),
            prop::collection::vec(0u8..4, 0..2)
        )
            .prop_map(|(f, b)| PropertyPath::NegatedSet {
                forward: f
                    .into_iter()
                    .map(|i| format!("http://p/{i}").into())
                    .collect(),
                backward: b
                    .into_iter()
                    .map(|i| format!("http://p/{i}").into())
                    .collect(),
            }),
    ]
}

fn path_strategy() -> impl Strategy<Value = PropertyPath> {
    leaf().prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|p| PropertyPath::Inverse(Box::new(p))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                PropertyPath::Alternative(Box::new(a), Box::new(b))
            }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                PropertyPath::Sequence(Box::new(a), Box::new(b))
            }),
            inner.clone().prop_map(|p| PropertyPath::ZeroOrOne(Box::new(p))),
            inner.clone().prop_map(|p| PropertyPath::OneOrMore(Box::new(p))),
            inner.clone().prop_map(|p| PropertyPath::ZeroOrMore(Box::new(p))),
            (inner.clone(), 1u32..4).prop_map(|(p, n)| {
                PropertyPath::Exactly(Box::new(p), n)
            }),
            (inner.clone(), 1u32..3).prop_map(|(p, n)| {
                PropertyPath::AtLeast(Box::new(p), n)
            }),
            (inner, 0u32..2, 2u32..4).prop_map(|(p, n, m)| {
                PropertyPath::Between(Box::new(p), n, m)
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn display_reparses_to_same_path(path in path_strategy()) {
        let query = format!("SELECT * WHERE {{ ?s {path} ?o }}");
        let parsed = parse_query(&query)
            .unwrap_or_else(|e| panic!("{query}: {e}"));
        match parsed.pattern {
            GraphPattern::Path { path: got, .. } => prop_assert_eq!(got, path),
            // A bare link prints as `<iri>` and parses to a plain triple
            // pattern — also correct.
            GraphPattern::Triple(t) => {
                prop_assert!(matches!(path, PropertyPath::Link(_)), "{:?}", t);
            }
            other => prop_assert!(false, "unexpected pattern {:?}", other),
        }
    }
}
