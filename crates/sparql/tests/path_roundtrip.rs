//! Property test: the `Display` form of a random property-path AST
//! re-parses to the same AST (printer/parser round-trip). In-tree
//! deterministic case generation — the workspace builds offline,
//! without proptest.

use sparqlog_sparql::{parse_query, GraphPattern, PropertyPath};

/// Deterministic SplitMix64 case generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

fn leaf(rng: &mut Rng) -> PropertyPath {
    if rng.range(0, 4) < 3 {
        PropertyPath::link(format!("http://p/{}", rng.range(0, 4)))
    } else {
        // Negated sets are leaves of the recursion.
        let nf = rng.range(1, 3);
        let nb = rng.range(0, 2);
        PropertyPath::NegatedSet {
            forward: (0..nf)
                .map(|_| format!("http://p/{}", rng.range(0, 4)).into())
                .collect(),
            backward: (0..nb)
                .map(|_| format!("http://p/{}", rng.range(0, 4)).into())
                .collect(),
        }
    }
}

fn random_path(rng: &mut Rng, depth: u64) -> PropertyPath {
    if depth == 0 || rng.range(0, 4) == 0 {
        return leaf(rng);
    }
    let inner = |rng: &mut Rng| Box::new(random_path(rng, depth - 1));
    match rng.range(0, 9) {
        0 => PropertyPath::Inverse(inner(rng)),
        1 => PropertyPath::Alternative(inner(rng), inner(rng)),
        2 => PropertyPath::Sequence(inner(rng), inner(rng)),
        3 => PropertyPath::ZeroOrOne(inner(rng)),
        4 => PropertyPath::OneOrMore(inner(rng)),
        5 => PropertyPath::ZeroOrMore(inner(rng)),
        6 => {
            let n = rng.range(1, 4) as u32;
            PropertyPath::Exactly(inner(rng), n)
        }
        7 => {
            let n = rng.range(1, 3) as u32;
            PropertyPath::AtLeast(inner(rng), n)
        }
        _ => {
            let n = rng.range(0, 2) as u32;
            let m = rng.range(2, 4) as u32;
            PropertyPath::Between(inner(rng), n, m)
        }
    }
}

#[test]
fn display_reparses_to_same_path() {
    let mut rng = Rng(0x9a7b);
    for case in 0..128u64 {
        let path = random_path(&mut rng, 4);
        let query = format!("SELECT * WHERE {{ ?s {path} ?o }}");
        let parsed = parse_query(&query).unwrap_or_else(|e| panic!("case {case}: {query}: {e}"));
        match parsed.pattern {
            GraphPattern::Path { path: got, .. } => {
                assert_eq!(got, path, "case {case}: {query}")
            }
            // A bare link prints as `<iri>` and parses to a plain triple
            // pattern — also correct.
            GraphPattern::Triple(t) => {
                assert!(matches!(path, PropertyPath::Link(_)), "case {case}: {t:?}");
            }
            other => panic!("case {case}: unexpected pattern {other:?}"),
        }
    }
}
