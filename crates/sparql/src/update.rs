//! The SPARQL 1.1 Update AST: update requests and their operations.
//!
//! The supported operation set covers the write half of the paper's
//! workload model (read-mostly query logs with interleaved writes):
//! `INSERT DATA`, `DELETE DATA`, the pattern-driven
//! `DELETE/INSERT ... WHERE` family (including the `DELETE WHERE`
//! shorthand) and `CLEAR`. Operations outside this set (`LOAD`, `COPY`,
//! `MOVE`, `ADD`, `CREATE`, `DROP`, `WITH`/`USING`) parse to the
//! dedicated "unsupported" error so callers can distinguish them from
//! syntax errors, mirroring how the query parser treats Table 1's ✗
//! rows.

use std::fmt;
use std::sync::Arc;

use sparqlog_rdf::Term;

use crate::ast::{GraphPattern, TermPattern, Var};

/// A ground quad of an `INSERT DATA` / `DELETE DATA` block: three
/// concrete RDF terms plus the target graph (`None` = default graph).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundQuad {
    /// The subject term (an IRI or blank node).
    pub subject: Term,
    /// The predicate term (an IRI).
    pub predicate: Term,
    /// The object term.
    pub object: Term,
    /// The named graph holding the triple; `None` = default graph.
    pub graph: Option<Arc<str>>,
}

impl fmt::Display for GroundQuad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.graph {
            None => write!(f, "{} {} {}", self.subject, self.predicate, self.object),
            Some(g) => write!(
                f,
                "GRAPH <{g}> {{ {} {} {} }}",
                self.subject, self.predicate, self.object
            ),
        }
    }
}

/// A quad *template* of a `DELETE`/`INSERT` clause: triple-pattern
/// positions that may hold variables (bound by the `WHERE` clause at
/// execution time) plus the target graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuadPattern {
    /// The subject position.
    pub subject: TermPattern,
    /// The predicate position.
    pub predicate: TermPattern,
    /// The object position.
    pub object: TermPattern,
    /// The named graph holding the triple; `None` = default graph.
    pub graph: Option<Arc<str>>,
}

impl QuadPattern {
    /// The distinct variables of the template in S, P, O order.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for tp in [&self.subject, &self.predicate, &self.object] {
            if let TermPattern::Var(v) = tp {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        }
        out
    }
}

/// The target of a `CLEAR` operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClearTarget {
    /// `CLEAR DEFAULT` — the default graph.
    Default,
    /// `CLEAR NAMED` — every named graph.
    Named,
    /// `CLEAR ALL` — the default graph and every named graph.
    All,
    /// `CLEAR GRAPH <iri>` — one named graph.
    Graph(Arc<str>),
}

/// One operation of an update request.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOperation {
    /// `INSERT DATA { quads }` — ground triples added as given.
    InsertData(Vec<GroundQuad>),
    /// `DELETE DATA { quads }` — ground triples removed as given.
    DeleteData(Vec<GroundQuad>),
    /// `DELETE { t } INSERT { t } WHERE { p }` (either template clause
    /// may be absent, but not both). Also produced by the `DELETE WHERE`
    /// shorthand, with the pattern doubling as the delete template.
    DeleteInsert {
        /// The quads removed per `WHERE` solution (applied first).
        delete: Vec<QuadPattern>,
        /// The quads added per `WHERE` solution (applied second).
        insert: Vec<QuadPattern>,
        /// The `WHERE` clause whose solutions instantiate the templates.
        pattern: GraphPattern,
    },
    /// `CLEAR [SILENT] target` — drop all triples of the target graphs.
    Clear(ClearTarget),
}

/// A parsed SPARQL 1.1 Update request: one or more operations, applied
/// in order (each operation sees the effects of the previous ones).
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// The operations, in request order.
    pub operations: Vec<UpdateOperation>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_quad_display() {
        let q = GroundQuad {
            subject: Term::iri("http://e/s"),
            predicate: Term::iri("http://e/p"),
            object: Term::integer(4),
            graph: None,
        };
        assert!(q.to_string().starts_with("<http://e/s> <http://e/p>"));
        let g = GroundQuad {
            graph: Some(Arc::from("http://g")),
            ..q
        };
        assert!(g.to_string().starts_with("GRAPH <http://g> {"));
    }

    #[test]
    fn quad_pattern_vars_dedupe() {
        let qp = QuadPattern {
            subject: TermPattern::Var(Var::new("x")),
            predicate: TermPattern::Term(Term::iri("http://e/p")),
            object: TermPattern::Var(Var::new("x")),
            graph: None,
        };
        assert_eq!(qp.vars(), vec![Var::new("x")]);
    }
}
