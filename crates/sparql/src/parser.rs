//! Recursive-descent parser for the SPARQL 1.1 subset.
//!
//! The parser mirrors the SPARQL grammar productions closely
//! (`GroupGraphPattern`, `TriplesBlock`, `PathAlternative`, ...). Features
//! outside the paper's Table 1 produce a [`ParseError`] with
//! `unsupported = true`, so that compliance harnesses can distinguish
//! unsupported features (the paper reports these separately, Appendix
//! D.2.3) from syntax errors.

use std::collections::HashMap;
use std::sync::Arc;

use sparqlog_rdf::vocab::{rdf, xsd};
use sparqlog_rdf::Term;

use crate::ast::*;
use crate::expr::{AggFunc, ArithOp, CmpOp, Expr};
use crate::lexer::{tokenize, Punct, Token};
use crate::path::PropertyPath;
use crate::update::{ClearTarget, GroundQuad, QuadPattern, Update, UpdateOperation};

/// A parse error. `unsupported` is true when the query uses a SPARQL
/// feature the engine deliberately does not implement; `feature` then
/// carries the feature's name so callers can branch on it instead of
/// string-matching the message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// True when the query uses a deliberately unimplemented feature.
    pub unsupported: bool,
    /// The unsupported feature's name, when `unsupported` is set.
    pub feature: Option<String>,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
            unsupported: false,
            feature: None,
        }
    }

    /// Constructs the "feature not supported" variant.
    pub fn unsupported(feature: &str) -> Self {
        ParseError {
            message: format!("unsupported SPARQL feature: {feature}"),
            unsupported: true,
            feature: Some(feature.to_string()),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a SPARQL query string into a [`Query`].
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let mut p = Parser::new(input)?;
    let q = p.parse_query()?;
    p.expect_eof()?;
    Ok(q)
}

/// Parses a SPARQL 1.1 Update request string into an [`Update`].
///
/// Supported operations: `INSERT DATA`, `DELETE DATA`,
/// `DELETE/INSERT ... WHERE` (including the `DELETE WHERE` shorthand)
/// and `CLEAR`. The graph-management operations (`LOAD`, `CREATE`,
/// `DROP`, `COPY`, `MOVE`, `ADD`) and `WITH`/`USING` report the
/// dedicated "unsupported" error.
pub fn parse_update(input: &str) -> Result<Update, ParseError> {
    let mut p = Parser::new(input)?;
    let u = p.parse_update()?;
    p.expect_eof()?;
    Ok(u)
}

/// If `input` starts (after its `PREFIX`/`BASE` prologue) with a SPARQL
/// *Update* keyword, returns that keyword in canonical upper case.
///
/// Read-only entry points use this to turn the confusing parse failure
/// an update string would produce into a clear "read-only" error,
/// without attempting a full update parse.
pub fn update_keyword(input: &str) -> Option<&'static str> {
    const UPDATE_KEYWORDS: &[&str] = &[
        "INSERT", "DELETE", "CLEAR", "LOAD", "DROP", "CREATE", "COPY", "MOVE", "ADD", "WITH",
    ];
    let tokens = tokenize(input).ok()?;
    let mut i = 0usize;
    loop {
        match tokens.get(i)? {
            // PREFIX pname: <iri>  /  BASE <iri>
            Token::Word(w) if w.eq_ignore_ascii_case("PREFIX") => i += 3,
            Token::Word(w) if w.eq_ignore_ascii_case("BASE") => i += 2,
            Token::Word(w) => {
                return UPDATE_KEYWORDS
                    .iter()
                    .find(|k| w.eq_ignore_ascii_case(k))
                    .copied();
            }
            _ => return None,
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: HashMap<String, String>,
    anon: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Parser, ParseError> {
        let tokens = tokenize(input).map_err(|e| {
            ParseError::new(format!("lex error at byte {}: {}", e.offset, e.message))
        })?;
        Ok(Parser {
            tokens,
            pos: 0,
            prefixes: HashMap::new(),
            anon: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError::new(format!(
            "{} (at {})",
            msg.into(),
            self.peek()
        )))
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if *self.peek() == Token::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected {p:?}"))
        }
    }

    /// Case-insensitive keyword check without consuming.
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword {kw}"))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            self.err("trailing tokens after query")
        }
    }

    // ---------------------------------------------------------- prologue

    fn parse_prologue(&mut self) -> Result<(), ParseError> {
        loop {
            if self.eat_keyword("PREFIX") {
                let (prefix, _local) = match self.bump() {
                    Token::PName { prefix, local } => (prefix, local),
                    other => return self.err(format!("expected prefix name, got {other}")),
                };
                let iri = match self.bump() {
                    Token::Iri(i) => i,
                    other => return self.err(format!("expected IRI, got {other}")),
                };
                self.prefixes.insert(prefix, iri.to_string());
            } else if self.eat_keyword("BASE") {
                match self.bump() {
                    Token::Iri(_) => {}
                    other => return self.err(format!("expected IRI, got {other}")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        self.parse_prologue()?;

        // `CONSTRUCT WHERE { triples }` shorthand: the triples block after
        // WHERE doubles as both template and pattern.
        let mut construct_shorthand = false;
        let mut form = if self.eat_keyword("SELECT") {
            let distinct = self.eat_keyword("DISTINCT");
            if self.at_keyword("REDUCED") {
                // REDUCED permits (but does not require) dropping
                // duplicates; treating it as a no-op is standard-compliant.
                self.bump();
            }
            let items = self.parse_select_items()?;
            QueryForm::Select { distinct, items }
        } else if self.eat_keyword("ASK") {
            QueryForm::Ask
        } else if self.eat_keyword("CONSTRUCT") {
            if matches!(self.peek(), Token::Punct(Punct::LBrace)) {
                let template = self.parse_triple_template()?;
                QueryForm::Construct { template }
            } else {
                construct_shorthand = true;
                QueryForm::Construct {
                    template: Vec::new(),
                }
            }
        } else if self.eat_keyword("DESCRIBE") {
            QueryForm::Describe {
                targets: self.parse_describe_targets()?,
            }
        } else {
            return self.err("expected SELECT, ASK, CONSTRUCT or DESCRIBE");
        };

        let mut dataset = Vec::new();
        while self.eat_keyword("FROM") {
            if self.eat_keyword("NAMED") {
                dataset.push(DatasetClause::Named(self.parse_iri()?));
            } else {
                dataset.push(DatasetClause::Default(self.parse_iri()?));
            }
        }

        let pattern = if construct_shorthand {
            // CONSTRUCT WHERE { TriplesTemplate }: plain triples only.
            self.expect_keyword("WHERE")?;
            let template = self.parse_triple_template()?;
            let pattern = template.iter().cloned().fold(GraphPattern::Empty, |p, t| {
                GraphPattern::join(p, GraphPattern::Triple(t))
            });
            form = QueryForm::Construct { template };
            pattern
        } else if matches!(form, QueryForm::Describe { .. })
            && !self.at_keyword("WHERE")
            && !matches!(self.peek(), Token::Punct(Punct::LBrace))
        {
            // DESCRIBE's WHERE clause is optional.
            GraphPattern::Empty
        } else {
            self.eat_keyword("WHERE");
            self.parse_group_graph_pattern()?
        };

        // Solution modifiers.
        let mut group_by = Vec::new();
        let mut order_by = Vec::new();
        let mut limit = None;
        let mut offset = None;
        loop {
            if self.eat_keyword("GROUP") {
                self.expect_keyword("BY")?;
                while let Token::Var(_) = self.peek() {
                    if let Token::Var(v) = self.bump() {
                        group_by.push(Var::new(v));
                    }
                }
                if group_by.is_empty() {
                    return self.err("GROUP BY requires at least one variable");
                }
            } else if self.eat_keyword("HAVING") {
                return Err(ParseError::unsupported("HAVING"));
            } else if self.eat_keyword("ORDER") {
                self.expect_keyword("BY")?;
                loop {
                    if self.eat_keyword("ASC") {
                        self.expect_punct(Punct::LParen)?;
                        let e = self.parse_expr()?;
                        self.expect_punct(Punct::RParen)?;
                        order_by.push(OrderCondition {
                            expr: e,
                            descending: false,
                        });
                    } else if self.eat_keyword("DESC") {
                        self.expect_punct(Punct::LParen)?;
                        let e = self.parse_expr()?;
                        self.expect_punct(Punct::RParen)?;
                        order_by.push(OrderCondition {
                            expr: e,
                            descending: true,
                        });
                    } else if matches!(self.peek(), Token::Var(_)) {
                        if let Token::Var(v) = self.bump() {
                            order_by.push(OrderCondition {
                                expr: Expr::Var(Var::new(v)),
                                descending: false,
                            });
                        }
                    } else if matches!(self.peek(), Token::Punct(Punct::LParen))
                        || self.at_builtin_keyword()
                    {
                        // Complex ORDER BY argument, e.g. ORDER BY (!BOUND(?n))
                        // or ORDER BY STR(?x) — FEASIBLE uses these (App. D.4).
                        let e = self.parse_unary()?;
                        order_by.push(OrderCondition {
                            expr: e,
                            descending: false,
                        });
                    } else {
                        break;
                    }
                }
                if order_by.is_empty() {
                    return self.err("ORDER BY requires at least one condition");
                }
            } else if self.eat_keyword("LIMIT") {
                match self.bump() {
                    Token::Integer(n) if n >= 0 => limit = Some(n as usize),
                    other => return self.err(format!("expected LIMIT count, got {other}")),
                }
            } else if self.eat_keyword("OFFSET") {
                match self.bump() {
                    Token::Integer(n) if n >= 0 => offset = Some(n as usize),
                    other => return self.err(format!("expected OFFSET count, got {other}")),
                }
            } else {
                break;
            }
        }

        Ok(Query {
            form,
            dataset,
            pattern,
            group_by,
            order_by,
            limit,
            offset,
        })
    }

    fn parse_select_items(&mut self) -> Result<Vec<SelectItem>, ParseError> {
        if self.eat_punct(Punct::Star) {
            return Ok(Vec::new());
        }
        let mut items = Vec::new();
        loop {
            match self.peek().clone() {
                Token::Var(v) => {
                    self.bump();
                    items.push(SelectItem::Var(Var::new(v)));
                }
                Token::Punct(Punct::LParen) => {
                    self.bump();
                    let item = self.parse_projection_expression()?;
                    self.expect_punct(Punct::RParen)?;
                    items.push(item);
                }
                _ => break,
            }
        }
        if items.is_empty() {
            return self.err("SELECT requires '*' or at least one variable");
        }
        Ok(items)
    }

    /// Parses `AGG([DISTINCT] arg) AS ?v` inside a projection.
    fn parse_projection_expression(&mut self) -> Result<SelectItem, ParseError> {
        let func = if self.eat_keyword("COUNT") {
            AggFunc::Count
        } else if self.eat_keyword("SUM") {
            AggFunc::Sum
        } else if self.eat_keyword("MIN") {
            AggFunc::Min
        } else if self.eat_keyword("MAX") {
            AggFunc::Max
        } else if self.eat_keyword("AVG") {
            AggFunc::Avg
        } else if self.at_keyword("SAMPLE") || self.at_keyword("GROUP_CONCAT") {
            return Err(ParseError::unsupported("SAMPLE/GROUP_CONCAT aggregate"));
        } else {
            return Err(ParseError::unsupported(
                "non-aggregate SELECT expressions (BIND-style projection)",
            ));
        };
        self.expect_punct(Punct::LParen)?;
        let distinct = self.eat_keyword("DISTINCT");
        let arg = if self.eat_punct(Punct::Star) {
            if func != AggFunc::Count {
                return self.err("'*' argument is only valid for COUNT");
            }
            None
        } else {
            Some(self.parse_expr()?)
        };
        self.expect_punct(Punct::RParen)?;
        self.expect_keyword("AS")?;
        let var = match self.bump() {
            Token::Var(v) => Var::new(v),
            other => return self.err(format!("expected variable after AS, got {other}")),
        };
        Ok(SelectItem::Aggregate {
            var,
            func,
            distinct,
            arg,
        })
    }

    /// Parses a `{ TriplesTemplate }` block: plain triples (with `;`/`,`
    /// abbreviations), variables and blank nodes allowed, but no property
    /// paths, `GRAPH` blocks or other graph-pattern operators — the shape
    /// of a `CONSTRUCT` template.
    fn parse_triple_template(&mut self) -> Result<Vec<TriplePattern>, ParseError> {
        self.expect_punct(Punct::LBrace)?;
        let mut quads: Vec<QuadPattern> = Vec::new();
        loop {
            if self.eat_punct(Punct::RBrace) {
                break;
            }
            if self.eat_punct(Punct::Dot) {
                continue;
            }
            if self.at_keyword("GRAPH") {
                return Err(ParseError::unsupported(
                    "GRAPH blocks in CONSTRUCT templates",
                ));
            }
            self.parse_quad_triples(None, &mut quads)?;
        }
        Ok(quads
            .into_iter()
            .map(|q| TriplePattern::new(q.subject, q.predicate, q.object))
            .collect())
    }

    /// Parses the target list of a `DESCRIBE` clause: `*` (returned as an
    /// empty list) or one or more variables / IRIs.
    fn parse_describe_targets(&mut self) -> Result<Vec<DescribeTarget>, ParseError> {
        if self.eat_punct(Punct::Star) {
            return Ok(Vec::new());
        }
        let mut targets = Vec::new();
        loop {
            match self.peek().clone() {
                Token::Var(v) => {
                    self.bump();
                    targets.push(DescribeTarget::Var(Var::new(v)));
                }
                Token::Iri(_) | Token::PName { .. } => {
                    targets.push(DescribeTarget::Iri(self.parse_iri()?));
                }
                _ => break,
            }
        }
        if targets.is_empty() {
            return self.err("DESCRIBE requires '*' or at least one variable or IRI");
        }
        Ok(targets)
    }

    // ------------------------------------------------------------- updates

    fn parse_update(&mut self) -> Result<Update, ParseError> {
        let mut operations = Vec::new();
        loop {
            // Each operation may carry its own PREFIX/BASE prologue.
            self.parse_prologue()?;
            if matches!(self.peek(), Token::Eof) {
                break;
            }
            operations.push(self.parse_update_operation()?);
            if !self.eat_punct(Punct::Semicolon) {
                break;
            }
        }
        if operations.is_empty() {
            return self.err("expected an update operation");
        }
        Ok(Update { operations })
    }

    fn parse_update_operation(&mut self) -> Result<UpdateOperation, ParseError> {
        for unsupported in ["LOAD", "CREATE", "DROP", "COPY", "MOVE", "ADD"] {
            if self.at_keyword(unsupported) {
                return Err(ParseError::unsupported(&format!(
                    "{unsupported} (graph management)"
                )));
            }
        }
        if self.at_keyword("WITH") || self.at_keyword("USING") {
            return Err(ParseError::unsupported("WITH/USING graph selection"));
        }
        if self.eat_keyword("CLEAR") {
            self.eat_keyword("SILENT");
            let target = if self.eat_keyword("DEFAULT") {
                ClearTarget::Default
            } else if self.eat_keyword("NAMED") {
                ClearTarget::Named
            } else if self.eat_keyword("ALL") {
                ClearTarget::All
            } else if self.eat_keyword("GRAPH") {
                ClearTarget::Graph(self.parse_iri()?)
            } else {
                return self.err("expected DEFAULT, NAMED, ALL or GRAPH after CLEAR");
            };
            return Ok(UpdateOperation::Clear(target));
        }
        if self.eat_keyword("INSERT") {
            if self.eat_keyword("DATA") {
                let quads = self.parse_quad_block()?;
                let ground = self.ground_quads(quads, false)?;
                return Ok(UpdateOperation::InsertData(ground));
            }
            let insert = self.parse_quad_block()?;
            self.expect_keyword("WHERE")?;
            let pattern = self.parse_group_graph_pattern()?;
            return Ok(UpdateOperation::DeleteInsert {
                delete: Vec::new(),
                insert,
                pattern,
            });
        }
        if self.eat_keyword("DELETE") {
            if self.eat_keyword("DATA") {
                let quads = self.parse_quad_block()?;
                let ground = self.ground_quads(quads, true)?;
                return Ok(UpdateOperation::DeleteData(ground));
            }
            if self.eat_keyword("WHERE") {
                // DELETE WHERE shorthand: the quad block is both the
                // delete template and the WHERE pattern.
                let delete = self.parse_quad_block()?;
                self.no_bnodes_in_delete(&delete)?;
                let pattern = quads_as_pattern(&delete);
                return Ok(UpdateOperation::DeleteInsert {
                    delete,
                    insert: Vec::new(),
                    pattern,
                });
            }
            let delete = self.parse_quad_block()?;
            self.no_bnodes_in_delete(&delete)?;
            let insert = if self.eat_keyword("INSERT") {
                self.parse_quad_block()?
            } else {
                Vec::new()
            };
            if self.at_keyword("USING") {
                return Err(ParseError::unsupported("WITH/USING graph selection"));
            }
            self.expect_keyword("WHERE")?;
            let pattern = self.parse_group_graph_pattern()?;
            return Ok(UpdateOperation::DeleteInsert {
                delete,
                insert,
                pattern,
            });
        }
        self.err("expected INSERT, DELETE or CLEAR")
    }

    /// Parses a `{ Quads }` block: triples (with `;`/`,` abbreviations)
    /// optionally wrapped in `GRAPH <iri> { ... }` sub-blocks.
    fn parse_quad_block(&mut self) -> Result<Vec<QuadPattern>, ParseError> {
        self.expect_punct(Punct::LBrace)?;
        let mut out = Vec::new();
        loop {
            if self.eat_punct(Punct::RBrace) {
                break;
            }
            if self.eat_punct(Punct::Dot) {
                continue;
            }
            if self.at_keyword("GRAPH") {
                self.bump();
                let graph = match self.peek() {
                    Token::Var(_) => {
                        return Err(ParseError::unsupported(
                            "variable GRAPH targets in update templates",
                        ))
                    }
                    _ => self.parse_iri()?,
                };
                self.expect_punct(Punct::LBrace)?;
                loop {
                    if self.eat_punct(Punct::RBrace) {
                        break;
                    }
                    if self.eat_punct(Punct::Dot) {
                        continue;
                    }
                    self.parse_quad_triples(Some(graph.clone()), &mut out)?;
                }
            } else {
                self.parse_quad_triples(None, &mut out)?;
            }
        }
        Ok(out)
    }

    /// One `TriplesSameSubject` worth of quad templates (plain verbs
    /// only — property paths have no place in update templates).
    fn parse_quad_triples(
        &mut self,
        graph: Option<Arc<str>>,
        out: &mut Vec<QuadPattern>,
    ) -> Result<(), ParseError> {
        let subject = self.parse_term_pattern()?;
        loop {
            let predicate = match self.peek().clone() {
                Token::Var(v) => {
                    self.bump();
                    TermPattern::Var(Var::new(v))
                }
                Token::Word(w) if w == "a" => {
                    self.bump();
                    TermPattern::Term(Term::iri(rdf::TYPE))
                }
                _ => TermPattern::Term(Term::iri(self.parse_iri()?)),
            };
            loop {
                let object = self.parse_term_pattern()?;
                out.push(QuadPattern {
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object,
                    graph: graph.clone(),
                });
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            if !self.eat_punct(Punct::Semicolon) {
                break;
            }
            if matches!(
                self.peek(),
                Token::Punct(Punct::Dot) | Token::Punct(Punct::RBrace)
            ) {
                break;
            }
        }
        Ok(())
    }

    /// Converts templates to ground quads, rejecting variables (and, for
    /// `DELETE DATA`, blank nodes — per SPARQL 1.1 Update §3.1.2).
    fn ground_quads(
        &self,
        quads: Vec<QuadPattern>,
        deleting: bool,
    ) -> Result<Vec<GroundQuad>, ParseError> {
        let mut out = Vec::with_capacity(quads.len());
        for q in quads {
            let ground = |tp: TermPattern| -> Result<Term, ParseError> {
                match tp {
                    TermPattern::Term(t) => {
                        if deleting && t.is_bnode() {
                            return Err(ParseError::new(
                                "blank nodes are not allowed in DELETE DATA",
                            ));
                        }
                        Ok(t)
                    }
                    TermPattern::Var(v) => Err(ParseError::new(format!(
                        "variable {v} is not allowed in ground data blocks"
                    ))),
                }
            };
            out.push(GroundQuad {
                subject: ground(q.subject)?,
                predicate: ground(q.predicate)?,
                object: ground(q.object)?,
                graph: q.graph,
            });
        }
        Ok(out)
    }

    /// SPARQL 1.1 Update §3.1.3.2: blank nodes are not allowed in
    /// DELETE templates.
    fn no_bnodes_in_delete(&self, quads: &[QuadPattern]) -> Result<(), ParseError> {
        let has_bnode = quads.iter().any(|q| {
            [&q.subject, &q.predicate, &q.object]
                .into_iter()
                .any(|tp| matches!(tp, TermPattern::Term(t) if t.is_bnode()))
        });
        if has_bnode {
            return Err(ParseError::new(
                "blank nodes are not allowed in DELETE templates",
            ));
        }
        Ok(())
    }

    // -------------------------------------------------------- graph pattern

    fn parse_group_graph_pattern(&mut self) -> Result<GraphPattern, ParseError> {
        self.expect_punct(Punct::LBrace)?;
        let mut current = GraphPattern::Empty;
        let mut filters: Vec<Expr> = Vec::new();
        loop {
            if self.eat_punct(Punct::RBrace) {
                break;
            }
            match self.peek() {
                Token::Word(w) if w.eq_ignore_ascii_case("FILTER") => {
                    self.bump();
                    if self.at_keyword("EXISTS") {
                        return Err(ParseError::unsupported("FILTER EXISTS"));
                    }
                    if self.at_keyword("NOT") {
                        return Err(ParseError::unsupported("FILTER NOT EXISTS"));
                    }
                    let c = self.parse_constraint()?;
                    filters.push(c);
                }
                Token::Word(w) if w.eq_ignore_ascii_case("OPTIONAL") => {
                    self.bump();
                    let right = self.parse_group_graph_pattern()?;
                    current = GraphPattern::Optional(Box::new(current), Box::new(right));
                }
                Token::Word(w) if w.eq_ignore_ascii_case("MINUS") => {
                    self.bump();
                    let right = self.parse_group_graph_pattern()?;
                    current = GraphPattern::Minus(Box::new(current), Box::new(right));
                }
                Token::Word(w) if w.eq_ignore_ascii_case("GRAPH") => {
                    self.bump();
                    let spec = match self.peek().clone() {
                        Token::Var(v) => {
                            self.bump();
                            GraphSpec::Var(Var::new(v))
                        }
                        _ => GraphSpec::Iri(self.parse_iri()?),
                    };
                    let inner = self.parse_group_graph_pattern()?;
                    current =
                        GraphPattern::join(current, GraphPattern::Graph(spec, Box::new(inner)));
                }
                Token::Word(w) if w.eq_ignore_ascii_case("BIND") => {
                    return Err(ParseError::unsupported("BIND"));
                }
                Token::Word(w) if w.eq_ignore_ascii_case("VALUES") => {
                    return Err(ParseError::unsupported("VALUES"));
                }
                Token::Word(w) if w.eq_ignore_ascii_case("SERVICE") => {
                    return Err(ParseError::unsupported("SERVICE (federation)"));
                }
                Token::Punct(Punct::LBrace) => {
                    // Group or union. A nested `{ SELECT ... }` would be a
                    // sub-query — unsupported, detect it for a clear error.
                    if matches!(self.peek2(), Token::Word(w) if w.eq_ignore_ascii_case("SELECT")) {
                        return Err(ParseError::unsupported("sub-SELECT"));
                    }
                    let mut g = self.parse_group_graph_pattern()?;
                    while self.eat_keyword("UNION") {
                        let rhs = self.parse_group_graph_pattern()?;
                        g = GraphPattern::Union(Box::new(g), Box::new(rhs));
                    }
                    current = GraphPattern::join(current, g);
                }
                Token::Punct(Punct::Dot) => {
                    self.bump();
                }
                _ => {
                    let block = self.parse_triples_same_subject()?;
                    current = GraphPattern::join(current, block);
                }
            }
        }
        for f in filters {
            current = GraphPattern::Filter(Box::new(current), f);
        }
        Ok(current)
    }

    /// Parses one `TriplesSameSubject` production (subject with a
    /// predicate-object list) into a join of triple/path patterns.
    fn parse_triples_same_subject(&mut self) -> Result<GraphPattern, ParseError> {
        let subject = self.parse_term_pattern()?;
        let mut pattern = GraphPattern::Empty;
        loop {
            // Verb: variable, 'a', or a property path.
            let verb: Verb = match self.peek().clone() {
                Token::Var(v) => {
                    self.bump();
                    Verb::Var(Var::new(v))
                }
                _ => Verb::Path(self.parse_path()?),
            };
            loop {
                let object = self.parse_term_pattern()?;
                let elem = match &verb {
                    Verb::Var(v) => GraphPattern::Triple(TriplePattern::new(
                        subject.clone(),
                        TermPattern::Var(v.clone()),
                        object,
                    )),
                    Verb::Path(PropertyPath::Link(iri)) => {
                        GraphPattern::Triple(TriplePattern::new(
                            subject.clone(),
                            TermPattern::Term(Term::iri(iri.clone())),
                            object,
                        ))
                    }
                    Verb::Path(p) => GraphPattern::Path {
                        subject: subject.clone(),
                        path: p.clone(),
                        object,
                    },
                };
                pattern = GraphPattern::join(pattern, elem);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            if !self.eat_punct(Punct::Semicolon) {
                break;
            }
            // Trailing ';' before '.' or '}' is allowed.
            if matches!(
                self.peek(),
                Token::Punct(Punct::Dot) | Token::Punct(Punct::RBrace)
            ) {
                break;
            }
        }
        Ok(pattern)
    }

    fn parse_term_pattern(&mut self) -> Result<TermPattern, ParseError> {
        match self.peek().clone() {
            Token::Var(v) => {
                self.bump();
                Ok(TermPattern::Var(Var::new(v)))
            }
            Token::BlankNode(b) => {
                self.bump();
                Ok(TermPattern::Term(Term::bnode(b)))
            }
            Token::Punct(Punct::LBracket) => {
                self.bump();
                self.expect_punct(Punct::RBracket)?;
                self.anon += 1;
                Ok(TermPattern::Term(Term::bnode(format!("anon{}", self.anon))))
            }
            Token::Iri(_) | Token::PName { .. } => {
                Ok(TermPattern::Term(Term::iri(self.parse_iri()?)))
            }
            Token::String(_) => Ok(TermPattern::Term(self.parse_literal()?)),
            Token::Integer(n) => {
                self.bump();
                Ok(TermPattern::Term(Term::integer(n)))
            }
            Token::Decimal(d) => {
                self.bump();
                Ok(TermPattern::Term(Term::typed_literal(d, xsd::DOUBLE)))
            }
            Token::Punct(Punct::Minus) => {
                self.bump();
                match self.bump() {
                    Token::Integer(n) => Ok(TermPattern::Term(Term::integer(-n))),
                    Token::Decimal(d) => Ok(TermPattern::Term(Term::typed_literal(
                        format!("-{d}"),
                        xsd::DOUBLE,
                    ))),
                    other => self.err(format!("expected number after '-', got {other}")),
                }
            }
            Token::Word(w) if w.eq_ignore_ascii_case("true") => {
                self.bump();
                Ok(TermPattern::Term(Term::boolean(true)))
            }
            Token::Word(w) if w.eq_ignore_ascii_case("false") => {
                self.bump();
                Ok(TermPattern::Term(Term::boolean(false)))
            }
            other => self.err(format!("expected term or variable, got {other}")),
        }
    }

    fn parse_literal(&mut self) -> Result<Term, ParseError> {
        let lex = match self.bump() {
            Token::String(s) => s,
            other => return self.err(format!("expected string literal, got {other}")),
        };
        match self.peek().clone() {
            Token::LangTag(tag) => {
                self.bump();
                Ok(Term::lang_literal(lex, &tag))
            }
            Token::Punct(Punct::CaretCaret) => {
                self.bump();
                let dt = self.parse_iri()?;
                Ok(Term::typed_literal(lex, dt))
            }
            _ => Ok(Term::literal(lex)),
        }
    }

    fn parse_iri(&mut self) -> Result<Arc<str>, ParseError> {
        match self.bump() {
            Token::Iri(i) => Ok(i),
            Token::PName { prefix, local } => match self.prefixes.get(&prefix) {
                Some(ns) => Ok(Arc::from(format!("{ns}{local}"))),
                None => self.err(format!("undeclared prefix {prefix:?}")),
            },
            other => self.err(format!("expected IRI, got {other}")),
        }
    }

    // -------------------------------------------------------------- paths

    fn parse_path(&mut self) -> Result<PropertyPath, ParseError> {
        let mut p = self.parse_path_sequence()?;
        while self.eat_punct(Punct::Pipe) {
            let rhs = self.parse_path_sequence()?;
            p = PropertyPath::Alternative(Box::new(p), Box::new(rhs));
        }
        Ok(p)
    }

    fn parse_path_sequence(&mut self) -> Result<PropertyPath, ParseError> {
        let mut p = self.parse_path_elt_or_inverse()?;
        while self.eat_punct(Punct::Slash) {
            let rhs = self.parse_path_elt_or_inverse()?;
            p = PropertyPath::Sequence(Box::new(p), Box::new(rhs));
        }
        Ok(p)
    }

    fn parse_path_elt_or_inverse(&mut self) -> Result<PropertyPath, ParseError> {
        if self.eat_punct(Punct::Caret) {
            let inner = self.parse_path_elt()?;
            Ok(PropertyPath::Inverse(Box::new(inner)))
        } else {
            self.parse_path_elt()
        }
    }

    fn parse_path_elt(&mut self) -> Result<PropertyPath, ParseError> {
        let primary = self.parse_path_primary()?;
        self.parse_path_mod(primary)
    }

    fn parse_path_mod(&mut self, primary: PropertyPath) -> Result<PropertyPath, ParseError> {
        if self.eat_punct(Punct::Question) {
            Ok(PropertyPath::ZeroOrOne(Box::new(primary)))
        } else if self.eat_punct(Punct::Star) {
            Ok(PropertyPath::ZeroOrMore(Box::new(primary)))
        } else if self.eat_punct(Punct::Plus) {
            Ok(PropertyPath::OneOrMore(Box::new(primary)))
        } else if matches!(self.peek(), Token::Punct(Punct::LBrace))
            && matches!(self.peek2(), Token::Integer(_))
        {
            // Range quantifier {n}, {n,}, {n,m} — the gMark extension.
            self.bump(); // '{'
            let n = match self.bump() {
                Token::Integer(n) if n >= 0 => n as u32,
                other => return self.err(format!("expected path count, got {other}")),
            };
            let path = if self.eat_punct(Punct::Comma) {
                match self.peek().clone() {
                    Token::Integer(m) => {
                        self.bump();
                        if (m as u32) < n {
                            return self.err("path range upper bound below lower bound");
                        }
                        PropertyPath::Between(Box::new(primary), n, m as u32)
                    }
                    _ => PropertyPath::AtLeast(Box::new(primary), n),
                }
            } else {
                PropertyPath::Exactly(Box::new(primary), n)
            };
            self.expect_punct(Punct::RBrace)?;
            Ok(path)
        } else {
            Ok(primary)
        }
    }

    fn parse_path_primary(&mut self) -> Result<PropertyPath, ParseError> {
        match self.peek().clone() {
            Token::Punct(Punct::LParen) => {
                self.bump();
                let p = self.parse_path()?;
                self.expect_punct(Punct::RParen)?;
                Ok(p)
            }
            Token::Punct(Punct::Bang) => {
                self.bump();
                self.parse_negated_property_set()
            }
            Token::Word(w) if w.eq_ignore_ascii_case("a") && w == "a" => {
                self.bump();
                Ok(PropertyPath::Link(Arc::from(rdf::TYPE)))
            }
            Token::Iri(_) | Token::PName { .. } => Ok(PropertyPath::Link(self.parse_iri()?)),
            other => self.err(format!("expected property path, got {other}")),
        }
    }

    fn parse_negated_property_set(&mut self) -> Result<PropertyPath, ParseError> {
        let mut forward = Vec::new();
        let mut backward = Vec::new();
        let one = |p: &mut Parser,
                   forward: &mut Vec<Arc<str>>,
                   backward: &mut Vec<Arc<str>>|
         -> Result<(), ParseError> {
            if p.eat_punct(Punct::Caret) {
                backward.push(p.parse_iri()?);
            } else if p.at_keyword("a") {
                p.bump();
                forward.push(Arc::from(rdf::TYPE));
            } else {
                forward.push(p.parse_iri()?);
            }
            Ok(())
        };
        if self.eat_punct(Punct::LParen) {
            loop {
                one(self, &mut forward, &mut backward)?;
                if !self.eat_punct(Punct::Pipe) {
                    break;
                }
            }
            self.expect_punct(Punct::RParen)?;
        } else {
            one(self, &mut forward, &mut backward)?;
        }
        Ok(PropertyPath::NegatedSet { forward, backward })
    }

    // -------------------------------------------------------- expressions

    fn parse_constraint(&mut self) -> Result<Expr, ParseError> {
        // Constraint := BrackettedExpression | BuiltInCall
        if matches!(self.peek(), Token::Punct(Punct::LParen)) {
            self.bump();
            let e = self.parse_expr()?;
            self.expect_punct(Punct::RParen)?;
            Ok(e)
        } else if self.at_builtin_keyword() {
            self.parse_builtin_call()
        } else {
            self.err("expected '(' or built-in call after FILTER")
        }
    }

    fn at_builtin_keyword(&self) -> bool {
        const BUILTINS: &[&str] = &[
            "BOUND",
            "REGEX",
            "ISIRI",
            "ISURI",
            "ISBLANK",
            "ISLITERAL",
            "ISNUMERIC",
            "STR",
            "LANG",
            "DATATYPE",
            "UCASE",
            "LCASE",
            "STRLEN",
            "CONTAINS",
            "STRSTARTS",
            "STRENDS",
            "SAMETERM",
            "LANGMATCHES",
        ];
        matches!(self.peek(), Token::Word(w)
            if BUILTINS.iter().any(|b| w.eq_ignore_ascii_case(b)))
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        // ConditionalOrExpression
        let mut e = self.parse_and_expr()?;
        while self.eat_punct(Punct::OrOr) {
            let rhs = self.parse_and_expr()?;
            e = Expr::Or(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn parse_and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_relational()?;
        while self.eat_punct(Punct::AndAnd) {
            let rhs = self.parse_relational()?;
            e = Expr::And(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn parse_relational(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_additive()?;
        let op = match self.peek() {
            Token::Punct(Punct::Eq) => Some(CmpOp::Eq),
            Token::Punct(Punct::Neq) => Some(CmpOp::Neq),
            Token::Punct(Punct::Lt) => Some(CmpOp::Lt),
            Token::Punct(Punct::Le) => Some(CmpOp::Le),
            Token::Punct(Punct::Gt) => Some(CmpOp::Gt),
            Token::Punct(Punct::Ge) => Some(CmpOp::Ge),
            Token::Word(w) if w.eq_ignore_ascii_case("IN") => {
                return Err(ParseError::unsupported("IN"))
            }
            Token::Word(w) if w.eq_ignore_ascii_case("NOT") => {
                return Err(ParseError::unsupported("NOT IN"))
            }
            _ => None,
        };
        match op {
            None => Ok(lhs),
            Some(op) => {
                self.bump();
                let rhs = self.parse_additive()?;
                Ok(Expr::Compare(op, Box::new(lhs), Box::new(rhs)))
            }
        }
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_multiplicative()?;
        loop {
            if self.eat_punct(Punct::Plus) {
                let rhs = self.parse_multiplicative()?;
                e = Expr::Arith(ArithOp::Add, Box::new(e), Box::new(rhs));
            } else if self.eat_punct(Punct::Minus) {
                let rhs = self.parse_multiplicative()?;
                e = Expr::Arith(ArithOp::Sub, Box::new(e), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_unary()?;
        loop {
            if self.eat_punct(Punct::Star) {
                let rhs = self.parse_unary()?;
                e = Expr::Arith(ArithOp::Mul, Box::new(e), Box::new(rhs));
            } else if self.eat_punct(Punct::Slash) {
                let rhs = self.parse_unary()?;
                e = Expr::Arith(ArithOp::Div, Box::new(e), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct(Punct::Bang) {
            Ok(Expr::Not(Box::new(self.parse_unary()?)))
        } else if self.eat_punct(Punct::Minus) {
            Ok(Expr::Neg(Box::new(self.parse_unary()?)))
        } else if self.eat_punct(Punct::Plus) {
            self.parse_unary()
        } else {
            self.parse_primary()
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Punct(Punct::LParen) => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            Token::Var(v) => {
                self.bump();
                Ok(Expr::Var(Var::new(v)))
            }
            Token::Integer(n) => {
                self.bump();
                Ok(Expr::Const(Term::integer(n)))
            }
            Token::Decimal(d) => {
                self.bump();
                Ok(Expr::Const(Term::typed_literal(d, xsd::DOUBLE)))
            }
            Token::String(_) => Ok(Expr::Const(self.parse_literal()?)),
            Token::Iri(_) | Token::PName { .. } => Ok(Expr::Const(Term::iri(self.parse_iri()?))),
            Token::Word(w) if w.eq_ignore_ascii_case("true") => {
                self.bump();
                Ok(Expr::Const(Term::boolean(true)))
            }
            Token::Word(w) if w.eq_ignore_ascii_case("false") => {
                self.bump();
                Ok(Expr::Const(Term::boolean(false)))
            }
            Token::Word(_) if self.at_builtin_keyword() => self.parse_builtin_call(),
            Token::Word(w) if w.eq_ignore_ascii_case("COALESCE") => {
                Err(ParseError::unsupported("COALESCE"))
            }
            Token::Word(w) if w.eq_ignore_ascii_case("EXISTS") => {
                Err(ParseError::unsupported("EXISTS"))
            }
            other => self.err(format!("expected expression, got {other}")),
        }
    }

    fn parse_builtin_call(&mut self) -> Result<Expr, ParseError> {
        let name = match self.bump() {
            Token::Word(w) => w.to_ascii_uppercase(),
            other => return self.err(format!("expected built-in name, got {other}")),
        };
        self.expect_punct(Punct::LParen)?;
        let e = match name.as_str() {
            "BOUND" => {
                let v = match self.bump() {
                    Token::Var(v) => Var::new(v),
                    other => return self.err(format!("BOUND expects a variable, got {other}")),
                };
                Expr::Bound(v)
            }
            "REGEX" => {
                let text = self.parse_expr()?;
                self.expect_punct(Punct::Comma)?;
                let pattern = self.parse_expr()?;
                let flags = if self.eat_punct(Punct::Comma) {
                    Some(Box::new(self.parse_expr()?))
                } else {
                    None
                };
                Expr::Regex(Box::new(text), Box::new(pattern), flags)
            }
            "ISIRI" | "ISURI" => Expr::IsIri(Box::new(self.parse_expr()?)),
            "ISBLANK" => Expr::IsBlank(Box::new(self.parse_expr()?)),
            "ISLITERAL" => Expr::IsLiteral(Box::new(self.parse_expr()?)),
            "ISNUMERIC" => Expr::IsNumeric(Box::new(self.parse_expr()?)),
            "STR" => Expr::Str(Box::new(self.parse_expr()?)),
            "LANG" => Expr::Lang(Box::new(self.parse_expr()?)),
            "DATATYPE" => Expr::Datatype(Box::new(self.parse_expr()?)),
            "UCASE" => Expr::Ucase(Box::new(self.parse_expr()?)),
            "LCASE" => Expr::Lcase(Box::new(self.parse_expr()?)),
            "STRLEN" => Expr::Strlen(Box::new(self.parse_expr()?)),
            "CONTAINS" => {
                let a = self.parse_expr()?;
                self.expect_punct(Punct::Comma)?;
                let b = self.parse_expr()?;
                Expr::Contains(Box::new(a), Box::new(b))
            }
            "STRSTARTS" => {
                let a = self.parse_expr()?;
                self.expect_punct(Punct::Comma)?;
                let b = self.parse_expr()?;
                Expr::StrStarts(Box::new(a), Box::new(b))
            }
            "STRENDS" => {
                let a = self.parse_expr()?;
                self.expect_punct(Punct::Comma)?;
                let b = self.parse_expr()?;
                Expr::StrEnds(Box::new(a), Box::new(b))
            }
            "SAMETERM" => {
                let a = self.parse_expr()?;
                self.expect_punct(Punct::Comma)?;
                let b = self.parse_expr()?;
                Expr::SameTerm(Box::new(a), Box::new(b))
            }
            "LANGMATCHES" => {
                let a = self.parse_expr()?;
                self.expect_punct(Punct::Comma)?;
                let b = self.parse_expr()?;
                Expr::LangMatches(Box::new(a), Box::new(b))
            }
            other => return self.err(format!("unknown built-in {other}")),
        };
        self.expect_punct(Punct::RParen)?;
        Ok(e)
    }
}

enum Verb {
    Var(Var),
    Path(PropertyPath),
}

/// Reads a quad-template list back as a graph pattern (the `DELETE
/// WHERE` shorthand, where the template doubles as the `WHERE` clause).
fn quads_as_pattern(quads: &[QuadPattern]) -> GraphPattern {
    let mut pattern = GraphPattern::Empty;
    for q in quads {
        let triple = GraphPattern::Triple(TriplePattern::new(
            q.subject.clone(),
            q.predicate.clone(),
            q.object.clone(),
        ));
        let wrapped = match &q.graph {
            None => triple,
            Some(g) => GraphPattern::Graph(GraphSpec::Iri(g.clone()), Box::new(triple)),
        };
        pattern = GraphPattern::join(pattern, wrapped);
    }
    pattern
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_figure1_query() {
        let q = parse_query(
            r#"
            SELECT ?N ?L
            FROM <http://example.org/graph.rdf>
            WHERE { ?X <http://ex.org/name> ?N
            . OPTIONAL { ?X <http://ex.org/lastname> ?L }}
            ORDER BY ?N
            "#,
        )
        .unwrap();
        assert!(q.is_select());
        assert_eq!(q.projection(), vec![Var::new("N"), Var::new("L")]);
        assert_eq!(q.dataset.len(), 1);
        assert_eq!(q.order_by.len(), 1);
        assert!(matches!(q.pattern, GraphPattern::Optional(_, _)));
    }

    #[test]
    fn parse_paper_figure3_property_path_query() {
        let q = parse_query(
            r#"
            PREFIX ex: <http://ex.org/>
            SELECT ?B
            FROM <http://example.org/countries.rdf>
            WHERE { ?A ex:borders+ ?B . FILTER (?A = ex:spain) }
            "#,
        )
        .unwrap();
        match &q.pattern {
            GraphPattern::Filter(inner, cond) => {
                match inner.as_ref() {
                    GraphPattern::Path { path, .. } => {
                        assert!(matches!(path, PropertyPath::OneOrMore(_)));
                    }
                    other => panic!("expected path pattern, got {other:?}"),
                }
                assert!(matches!(cond, Expr::Compare(CmpOp::Eq, _, _)));
            }
            other => panic!("expected filter, got {other:?}"),
        }
    }

    #[test]
    fn plain_link_paths_become_triple_patterns() {
        let q = parse_query("PREFIX ex: <http://e/> SELECT * WHERE { ?x ex:p ?y . ?y a ex:C }")
            .unwrap();
        match &q.pattern {
            GraphPattern::Join(a, b) => {
                assert!(matches!(a.as_ref(), GraphPattern::Triple(_)));
                match b.as_ref() {
                    GraphPattern::Triple(t) => {
                        assert_eq!(t.predicate, TermPattern::Term(Term::iri(rdf::TYPE)));
                    }
                    other => panic!("expected triple, got {other:?}"),
                }
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn semicolon_and_comma_abbreviations() {
        let q = parse_query("PREFIX e: <http://e/> SELECT * WHERE { ?x e:p ?a , ?b ; e:q ?c . }")
            .unwrap();
        // Three triple patterns joined.
        let mut count = 0;
        fn count_triples(p: &GraphPattern, n: &mut usize) {
            match p {
                GraphPattern::Triple(_) => *n += 1,
                GraphPattern::Join(a, b) => {
                    count_triples(a, n);
                    count_triples(b, n);
                }
                _ => {}
            }
        }
        count_triples(&q.pattern, &mut count);
        assert_eq!(count, 3);
    }

    #[test]
    fn union_and_minus() {
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT ?x WHERE {
               { ?x e:p e:a } UNION { ?x e:q e:b } MINUS { ?x e:r e:c } }",
        )
        .unwrap();
        assert!(matches!(q.pattern, GraphPattern::Minus(_, _)));
        if let GraphPattern::Minus(l, _) = &q.pattern {
            assert!(matches!(l.as_ref(), GraphPattern::Union(_, _)));
        }
    }

    #[test]
    fn graph_patterns() {
        let q =
            parse_query("SELECT * WHERE { GRAPH ?g { ?s ?p ?o } GRAPH <http://g> { ?a ?b ?c } }")
                .unwrap();
        if let GraphPattern::Join(a, b) = &q.pattern {
            assert!(matches!(
                a.as_ref(),
                GraphPattern::Graph(GraphSpec::Var(_), _)
            ));
            assert!(matches!(
                b.as_ref(),
                GraphPattern::Graph(GraphSpec::Iri(_), _)
            ));
        } else {
            panic!("expected join of two GRAPH patterns");
        }
    }

    #[test]
    fn complex_paths() {
        let q =
            parse_query("PREFIX e: <http://e/> SELECT * WHERE { ?x (e:a/e:b)|^e:c ?y }").unwrap();
        match &q.pattern {
            GraphPattern::Path { path, .. } => {
                assert!(matches!(path, PropertyPath::Alternative(_, _)));
            }
            other => panic!("expected path, got {other:?}"),
        }
    }

    #[test]
    fn negated_property_sets() {
        let q = parse_query("PREFIX e: <http://e/> SELECT * WHERE { ?x !(e:a|^e:b) ?y }").unwrap();
        match &q.pattern {
            GraphPattern::Path { path, .. } => match path {
                PropertyPath::NegatedSet { forward, backward } => {
                    assert_eq!(forward.len(), 1);
                    assert_eq!(backward.len(), 1);
                }
                other => panic!("expected negated set, got {other:?}"),
            },
            other => panic!("expected path, got {other:?}"),
        }
    }

    #[test]
    fn path_range_quantifiers() {
        for (text, expect_recursive) in [
            ("?x e:p{2} ?y", false),
            ("?x e:p{2,} ?y", true),
            ("?x e:p{0,3} ?y", false),
        ] {
            let q = parse_query(&format!(
                "PREFIX e: <http://e/> SELECT * WHERE {{ {text} }}"
            ))
            .unwrap();
            match &q.pattern {
                GraphPattern::Path { path, .. } => {
                    assert_eq!(path.is_recursive(), expect_recursive, "{text}");
                }
                other => panic!("expected path, got {other:?}"),
            }
        }
    }

    #[test]
    fn filter_builtins() {
        let q = parse_query(
            r#"SELECT ?x WHERE { ?x ?p ?o .
                FILTER (BOUND(?x) && REGEX(STR(?o), "^a", "i") && ISIRI(?x)
                        || !ISBLANK(?o) && STRLEN(UCASE(STR(?o))) > 3) }"#,
        )
        .unwrap();
        assert!(matches!(q.pattern, GraphPattern::Filter(_, _)));
    }

    #[test]
    fn aggregates_and_group_by() {
        let q = parse_query("SELECT ?x (COUNT(?y) AS ?c) WHERE { ?x ?p ?y } GROUP BY ?x").unwrap();
        assert!(q.has_aggregates());
        assert_eq!(q.group_by, vec![Var::new("x")]);
        assert_eq!(q.projection(), vec![Var::new("x"), Var::new("c")]);
        let q2 = parse_query("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }").unwrap();
        assert!(q2.has_aggregates());
    }

    #[test]
    fn solution_modifiers() {
        let q = parse_query(
            "SELECT DISTINCT ?x WHERE { ?x ?p ?o } ORDER BY DESC(?x) LIMIT 10 OFFSET 5",
        )
        .unwrap();
        assert!(q.is_distinct());
        assert!(q.order_by[0].descending);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, Some(5));
    }

    #[test]
    fn order_by_complex_argument() {
        // FEASIBLE-style ORDER BY (!BOUND(?n)) — Appendix D.4.
        let q = parse_query("SELECT ?x WHERE { ?x ?p ?n } ORDER BY (!BOUND(?n)) ?x").unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert!(matches!(q.order_by[0].expr, Expr::Not(_)));
    }

    #[test]
    fn ask_query() {
        let q = parse_query("ASK { ?x ?p ?o }").unwrap();
        assert!(q.is_ask());
    }

    #[test]
    fn parse_construct_queries() {
        let q = parse_query(
            r#"PREFIX ex: <http://e/>
               CONSTRUCT { ?x ex:knows ?y . _:b ex:seen ?x }
               WHERE { ?x ex:p ?y } LIMIT 3"#,
        )
        .unwrap();
        assert!(q.is_construct());
        assert_eq!(q.limit, Some(3));
        match &q.form {
            QueryForm::Construct { template } => {
                assert_eq!(template.len(), 2);
                assert!(matches!(
                    template[1].subject,
                    TermPattern::Term(Term::BlankNode(_))
                ));
            }
            other => panic!("expected CONSTRUCT, got {other:?}"),
        }
        assert_eq!(q.projection(), vec![Var::new("x"), Var::new("y")]);

        // Shorthand: the triples block is both template and pattern.
        let q = parse_query("CONSTRUCT WHERE { ?s <http://p> ?o . ?o <http://q> ?z }").unwrap();
        match &q.form {
            QueryForm::Construct { template } => assert_eq!(template.len(), 2),
            other => panic!("expected CONSTRUCT, got {other:?}"),
        }
        assert!(matches!(q.pattern, GraphPattern::Join(_, _)));

        // GRAPH blocks have no place in a template.
        let err = parse_query("CONSTRUCT { GRAPH <http://g> { ?s ?p ?o } } WHERE { ?s ?p ?o }")
            .unwrap_err();
        assert!(err.unsupported);
    }

    #[test]
    fn parse_describe_queries() {
        let q =
            parse_query("PREFIX ex: <http://e/> DESCRIBE ex:a ?x WHERE { ?x ex:p ?y }").unwrap();
        assert!(q.is_describe());
        match &q.form {
            QueryForm::Describe { targets } => {
                assert_eq!(
                    targets,
                    &[
                        DescribeTarget::Iri(Arc::from("http://e/a")),
                        DescribeTarget::Var(Var::new("x")),
                    ]
                );
            }
            other => panic!("expected DESCRIBE, got {other:?}"),
        }
        assert_eq!(q.projection(), vec![Var::new("x")]);

        // The WHERE clause is optional.
        let q = parse_query("DESCRIBE <http://e/a>").unwrap();
        assert_eq!(q.pattern, GraphPattern::Empty);

        // DESCRIBE * projects every in-scope pattern variable.
        let q = parse_query("DESCRIBE * WHERE { ?s ?p ?o }").unwrap();
        match &q.form {
            QueryForm::Describe { targets } => assert!(targets.is_empty()),
            other => panic!("expected DESCRIBE, got {other:?}"),
        }
        assert_eq!(
            q.projection(),
            vec![Var::new("s"), Var::new("p"), Var::new("o")]
        );

        assert!(parse_query("DESCRIBE").is_err());
    }

    #[test]
    fn unsupported_features_are_flagged() {
        for (text, feature) in [
            (
                "SELECT * WHERE { ?s ?p ?o FILTER NOT EXISTS { ?s ?p ?o } }",
                "NOT EXISTS",
            ),
            (
                "SELECT * WHERE { ?s ?p ?o FILTER EXISTS { ?s ?p ?o } }",
                "EXISTS",
            ),
            ("SELECT * WHERE { BIND(1 AS ?x) }", "BIND"),
            ("SELECT * WHERE { VALUES ?x { 1 } }", "VALUES"),
            (
                "SELECT * WHERE { { SELECT ?x WHERE { ?x ?p ?o } } }",
                "sub-SELECT",
            ),
            ("SELECT * WHERE { ?s ?p ?o } HAVING (?o > 1)", "HAVING"),
        ] {
            let err = parse_query(text).unwrap_err();
            assert!(err.unsupported, "{feature}: {err:?}");
            // The feature name is carried structurally, not only in the
            // message.
            assert!(
                err.feature.as_deref().is_some_and(|f| f.contains(feature)),
                "{feature}: {err:?}"
            );
        }
    }

    #[test]
    fn syntax_errors_are_not_unsupported() {
        let err = parse_query("SELECT ?x WHERE { ?x ?p }").unwrap_err();
        assert!(!err.unsupported);
        assert_eq!(err.feature, None);
        assert!(parse_query("SELECT").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x nope:p ?y }").is_err());
    }

    #[test]
    fn parse_insert_and_delete_data() {
        let u = parse_update(
            r#"PREFIX ex: <http://e/>
               INSERT DATA { ex:a ex:p ex:b ; ex:q "v"@en , 4 .
                             GRAPH <http://g> { ex:a ex:p ex:c } } ;
               DELETE DATA { ex:a ex:p ex:b }"#,
        )
        .unwrap();
        assert_eq!(u.operations.len(), 2);
        match &u.operations[0] {
            UpdateOperation::InsertData(quads) => {
                assert_eq!(quads.len(), 4);
                assert_eq!(quads[0].subject, Term::iri("http://e/a"));
                assert_eq!(quads[2].object, Term::integer(4));
                assert!(quads[0..3].iter().all(|q| q.graph.is_none()));
                assert_eq!(quads[3].graph.as_deref(), Some("http://g"));
            }
            other => panic!("expected INSERT DATA, got {other:?}"),
        }
        assert!(matches!(&u.operations[1], UpdateOperation::DeleteData(q) if q.len() == 1));
    }

    #[test]
    fn parse_delete_insert_where() {
        let u = parse_update(
            r#"PREFIX ex: <http://e/>
               DELETE { ?x ex:old ?y } INSERT { ?x ex:new ?y }
               WHERE { ?x ex:old ?y . FILTER (?y > 1) }"#,
        )
        .unwrap();
        match &u.operations[0] {
            UpdateOperation::DeleteInsert {
                delete,
                insert,
                pattern,
            } => {
                assert_eq!(delete.len(), 1);
                assert_eq!(insert.len(), 1);
                assert!(matches!(pattern, GraphPattern::Filter(_, _)));
                assert_eq!(delete[0].vars(), vec![Var::new("x"), Var::new("y")]);
            }
            other => panic!("expected DELETE/INSERT, got {other:?}"),
        }
    }

    #[test]
    fn parse_insert_where_and_delete_where_shorthand() {
        let u = parse_update("PREFIX ex: <http://e/> INSERT { ?x a ex:C } WHERE { ?x ex:p ?y }")
            .unwrap();
        match &u.operations[0] {
            UpdateOperation::DeleteInsert { delete, insert, .. } => {
                assert!(delete.is_empty());
                assert_eq!(insert.len(), 1);
            }
            other => panic!("expected INSERT..WHERE, got {other:?}"),
        }
        let u = parse_update(
            "PREFIX ex: <http://e/> DELETE WHERE { ?x ex:p ?y . GRAPH <http://g> { ?x ex:q ?z } }",
        )
        .unwrap();
        match &u.operations[0] {
            UpdateOperation::DeleteInsert {
                delete,
                insert,
                pattern,
            } => {
                assert_eq!(delete.len(), 2);
                assert!(insert.is_empty());
                // Template doubles as the WHERE pattern, GRAPH preserved.
                assert!(matches!(pattern, GraphPattern::Join(_, _)));
            }
            other => panic!("expected DELETE WHERE, got {other:?}"),
        }
    }

    #[test]
    fn parse_clear_targets() {
        let u =
            parse_update("CLEAR DEFAULT ; CLEAR NAMED ; CLEAR ALL ; CLEAR SILENT GRAPH <http://g>")
                .unwrap();
        assert_eq!(
            u.operations,
            vec![
                UpdateOperation::Clear(ClearTarget::Default),
                UpdateOperation::Clear(ClearTarget::Named),
                UpdateOperation::Clear(ClearTarget::All),
                UpdateOperation::Clear(ClearTarget::Graph(Arc::from("http://g"))),
            ]
        );
    }

    #[test]
    fn update_errors() {
        // Variables in ground data blocks are plain errors.
        let err = parse_update("INSERT DATA { ?x <http://p> 1 }").unwrap_err();
        assert!(!err.unsupported);
        // Blank nodes are rejected where SPARQL 1.1 Update forbids them.
        assert!(parse_update("DELETE DATA { _:b <http://p> 1 }").is_err());
        assert!(parse_update("DELETE { _:b <http://p> ?y } WHERE { ?x <http://p> ?y }").is_err());
        // Graph-management operations are flagged unsupported.
        for text in [
            "LOAD <http://remote/data.ttl>",
            "DROP GRAPH <http://g>",
            "CREATE GRAPH <http://g>",
            "WITH <http://g> DELETE { ?s ?p ?o } WHERE { ?s ?p ?o }",
        ] {
            let err = parse_update(text).unwrap_err();
            assert!(err.unsupported, "{text}: {err:?}");
        }
        // Queries are not updates.
        assert!(parse_update("SELECT * WHERE { ?s ?p ?o }").is_err());
    }

    #[test]
    fn update_keyword_detection() {
        assert_eq!(
            update_keyword("PREFIX ex: <http://e/> INSERT DATA { ex:a ex:p 1 }"),
            Some("INSERT")
        );
        assert_eq!(update_keyword("BASE <http://b/> CLEAR ALL"), Some("CLEAR"));
        assert_eq!(update_keyword("delete where { ?s ?p ?o }"), Some("DELETE"));
        assert_eq!(update_keyword("SELECT * WHERE { ?s ?p ?o }"), None);
        assert_eq!(update_keyword("ASK { ?s ?p ?o }"), None);
        assert_eq!(update_keyword("{ not sparql"), None);
        assert_eq!(update_keyword(""), None);
    }

    #[test]
    fn from_named_clauses() {
        let q = parse_query("SELECT * FROM <http://d> FROM NAMED <http://n> WHERE { ?s ?p ?o }")
            .unwrap();
        assert_eq!(q.dataset.len(), 2);
        assert!(matches!(&q.dataset[0], DatasetClause::Default(_)));
        assert!(matches!(&q.dataset[1], DatasetClause::Named(_)));
    }

    #[test]
    fn filter_applies_to_whole_group() {
        // FILTER written before the triple still scopes over the group.
        let q = parse_query("SELECT * WHERE { FILTER (?y > 3) ?x <http://p> ?y }").unwrap();
        assert!(matches!(q.pattern, GraphPattern::Filter(_, _)));
    }

    #[test]
    fn optional_with_inner_filter_preserved() {
        // Def. A.9 shape: (P1 OPT (P2 FILTER C)).
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT * WHERE {
               ?x e:p ?y OPTIONAL { ?x e:q ?z FILTER (?z > 1) } }",
        )
        .unwrap();
        match &q.pattern {
            GraphPattern::Optional(_, right) => {
                assert!(matches!(right.as_ref(), GraphPattern::Filter(_, _)));
            }
            other => panic!("expected optional, got {other:?}"),
        }
    }

    #[test]
    fn literals_in_patterns() {
        let q = parse_query(
            r#"SELECT * WHERE { ?x <http://p> "v"@en . ?x <http://q> 5 . ?x <http://r> -2 . ?x <http://s> true }"#,
        )
        .unwrap();
        let mut literals = 0;
        fn walk(p: &GraphPattern, n: &mut usize) {
            match p {
                GraphPattern::Triple(t) => {
                    if matches!(t.object, TermPattern::Term(Term::Literal(_))) {
                        *n += 1;
                    }
                }
                GraphPattern::Join(a, b) => {
                    walk(a, n);
                    walk(b, n);
                }
                _ => {}
            }
        }
        walk(&q.pattern, &mut literals);
        assert_eq!(literals, 4);
    }
}
