//! SPARQL 1.1 lexer, AST and parser for the SparqLog reproduction.
//!
//! The supported feature set is exactly the paper's Table 1 plus the
//! additions of Appendix D.4:
//!
//! * all four query forms: `SELECT` (with `DISTINCT`), `ASK`,
//!   `CONSTRUCT` (including the `CONSTRUCT WHERE` shorthand) and
//!   `DESCRIBE` (with `*`, variable and IRI targets);
//! * graph patterns: triple patterns, joins (`.`), `OPTIONAL`, `UNION`,
//!   `MINUS`, `FILTER`, `GRAPH`, and property-path patterns with all eight
//!   SPARQL 1.1 path operators plus the gMark range forms `p{n}`, `p{n,}`
//!   and `p{0,n}`;
//! * filter constraints: (in)equality, arithmetic comparison, `BOUND`,
//!   `isIRI`/`isURI`, `isBlank`, `isLiteral`, `isNumeric`, `REGEX`, boolean
//!   connectives, plus the string builtins `STR`, `LANG`, `DATATYPE`,
//!   `UCASE`, `LCASE`, `STRLEN`, `CONTAINS`, `STRSTARTS`, `STRENDS`,
//!   `SAMETERM`, `LANGMATCHES`;
//! * solution modifiers: `ORDER BY` (with complex arguments), `DISTINCT`,
//!   `LIMIT`, `OFFSET`, `GROUP BY` with the aggregates `COUNT`, `SUM`,
//!   `MIN`, `MAX`, `AVG`;
//! * `FROM` / `FROM NAMED` dataset clauses (parsed and recorded);
//! * SPARQL 1.1 *Update* requests ([`parse_update`]): `INSERT DATA`,
//!   `DELETE DATA`, `DELETE/INSERT ... WHERE` (with the `DELETE WHERE`
//!   shorthand) and `CLEAR`, with `GRAPH` blocks in data and templates.
//!
//! Unsupported (mirroring the remaining ✗ rows of Table 1):
//! `FILTER (NOT) EXISTS`, `BIND`, `VALUES`, `HAVING`, sub-`SELECT`,
//! federation. The parser reports these with a dedicated
//! "unsupported" marker (and the feature's name in
//! [`ParseError::feature`](parser::ParseError)) so compliance harnesses
//! can distinguish "not supported" from "malformed".
//!
//! # Example
//!
//! ```
//! use sparqlog_sparql::parse_query;
//!
//! let q = parse_query(
//!     "PREFIX ex: <http://ex.org/>
//!      SELECT ?B WHERE { ?A ex:borders+ ?B . FILTER (?A = ex:spain) }",
//! )
//! .unwrap();
//! assert!(q.is_select());
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod display;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod path;
pub mod update;

pub use ast::{
    DatasetClause, DescribeTarget, GraphPattern, GraphSpec, OrderCondition, Query, QueryForm,
    SelectItem, TermPattern, TriplePattern, Var,
};
pub use expr::{AggFunc, Expr};
pub use parser::{parse_query, parse_update, update_keyword, ParseError};
pub use path::PropertyPath;
pub use update::{ClearTarget, GroundQuad, QuadPattern, Update, UpdateOperation};
