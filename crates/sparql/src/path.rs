//! Property-path expressions (SPARQL 1.1 §9).
//!
//! The grammar implemented here covers the eight operators of the paper's
//! Appendix A.3 plus the range quantifiers used by the gMark workload
//! (`p{n}`, `p{n,}`, `p{n,m}`), which the paper's Section 4.3 lists as
//! additionally supported ("exactly n", "n or more", "between 0 and n").

use std::fmt;
use std::sync::Arc;

/// A property-path expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PropertyPath {
    /// A link path: a bare IRI (Def. A.12).
    Link(Arc<str>),
    /// `^p` (Def. A.13).
    Inverse(Box<PropertyPath>),
    /// `p1 | p2` (Def. A.14).
    Alternative(Box<PropertyPath>, Box<PropertyPath>),
    /// `p1 / p2` (Def. A.15).
    Sequence(Box<PropertyPath>, Box<PropertyPath>),
    /// `p+` (Def. A.16).
    OneOrMore(Box<PropertyPath>),
    /// `p?` (Def. A.18).
    ZeroOrOne(Box<PropertyPath>),
    /// `p*` (Def. A.19).
    ZeroOrMore(Box<PropertyPath>),
    /// `!(p1 | ... | ^q1 | ...)` (Def. A.20): `forward` are the negated
    /// forward links, `backward` the negated inverse links.
    NegatedSet {
        /// The negated forward links (`!(p)`).
        forward: Vec<Arc<str>>,
        /// The negated inverse links (`!(^p)`).
        backward: Vec<Arc<str>>,
    },
    /// `p{n}` — exactly `n` repetitions (gMark).
    Exactly(Box<PropertyPath>, u32),
    /// `p{n,}` — at least `n` repetitions (gMark).
    AtLeast(Box<PropertyPath>, u32),
    /// `p{n,m}` — between `n` and `m` repetitions (gMark uses `{0,n}`).
    Between(Box<PropertyPath>, u32, u32),
}

impl PropertyPath {
    /// Creates a link path.
    pub fn link(iri: impl Into<Arc<str>>) -> Self {
        PropertyPath::Link(iri.into())
    }

    /// True if this path is a plain link (an ordinary triple pattern in
    /// disguise).
    pub fn is_link(&self) -> bool {
        matches!(self, PropertyPath::Link(_))
    }

    /// True if the path (recursively) contains one of the "recursive"
    /// operators `+`, `*`, `{n,}`. Used by the benchmark analysis and by
    /// the VirtuosoSim quirk model.
    pub fn is_recursive(&self) -> bool {
        match self {
            PropertyPath::Link(_) | PropertyPath::NegatedSet { .. } => false,
            PropertyPath::OneOrMore(_) | PropertyPath::ZeroOrMore(_) => true,
            PropertyPath::AtLeast(_, _) => true,
            PropertyPath::Inverse(p)
            | PropertyPath::ZeroOrOne(p)
            | PropertyPath::Exactly(p, _)
            | PropertyPath::Between(p, _, _) => p.is_recursive(),
            PropertyPath::Alternative(a, b) | PropertyPath::Sequence(a, b) => {
                a.is_recursive() || b.is_recursive()
            }
        }
    }

    /// True if the path can match a zero-length path (so `(t, t)` pairs are
    /// in its semantics).
    pub fn matches_zero(&self) -> bool {
        match self {
            PropertyPath::ZeroOrOne(_) | PropertyPath::ZeroOrMore(_) => true,
            PropertyPath::Exactly(_, n) => *n == 0,
            PropertyPath::AtLeast(_, n) => *n == 0,
            PropertyPath::Between(_, n, _) => *n == 0,
            PropertyPath::Sequence(a, b) => a.matches_zero() && b.matches_zero(),
            PropertyPath::Alternative(a, b) => a.matches_zero() || b.matches_zero(),
            PropertyPath::Inverse(p) => p.matches_zero(),
            _ => false,
        }
    }
}

impl fmt::Display for PropertyPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyPath::Link(iri) => write!(f, "<{iri}>"),
            PropertyPath::Inverse(p) => write!(f, "^({p})"),
            PropertyPath::Alternative(a, b) => write!(f, "({a} | {b})"),
            PropertyPath::Sequence(a, b) => write!(f, "({a} / {b})"),
            PropertyPath::OneOrMore(p) => write!(f, "({p})+"),
            PropertyPath::ZeroOrOne(p) => write!(f, "({p})?"),
            PropertyPath::ZeroOrMore(p) => write!(f, "({p})*"),
            PropertyPath::NegatedSet { forward, backward } => {
                write!(f, "!(")?;
                let mut first = true;
                for p in forward {
                    if !first {
                        write!(f, " | ")?;
                    }
                    write!(f, "<{p}>")?;
                    first = false;
                }
                for p in backward {
                    if !first {
                        write!(f, " | ")?;
                    }
                    write!(f, "^<{p}>")?;
                    first = false;
                }
                write!(f, ")")
            }
            PropertyPath::Exactly(p, n) => write!(f, "({p}){{{n}}}"),
            PropertyPath::AtLeast(p, n) => write!(f, "({p}){{{n},}}"),
            PropertyPath::Between(p, n, m) => write!(f, "({p}){{{n},{m}}}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(s: &str) -> PropertyPath {
        PropertyPath::link(s)
    }

    #[test]
    fn recursive_detection() {
        assert!(!link("p").is_recursive());
        assert!(PropertyPath::OneOrMore(Box::new(link("p"))).is_recursive());
        assert!(PropertyPath::Sequence(
            Box::new(link("a")),
            Box::new(PropertyPath::ZeroOrMore(Box::new(link("b"))))
        )
        .is_recursive());
        assert!(!PropertyPath::ZeroOrOne(Box::new(link("p"))).is_recursive());
        assert!(PropertyPath::AtLeast(Box::new(link("p")), 2).is_recursive());
        assert!(!PropertyPath::Between(Box::new(link("p")), 0, 3).is_recursive());
    }

    #[test]
    fn zero_matching() {
        assert!(PropertyPath::ZeroOrOne(Box::new(link("p"))).matches_zero());
        assert!(PropertyPath::ZeroOrMore(Box::new(link("p"))).matches_zero());
        assert!(PropertyPath::Between(Box::new(link("p")), 0, 2).matches_zero());
        assert!(!PropertyPath::OneOrMore(Box::new(link("p"))).matches_zero());
        assert!(!link("p").matches_zero());
        // seq of two zero-matching paths matches zero
        assert!(PropertyPath::Sequence(
            Box::new(PropertyPath::ZeroOrOne(Box::new(link("a")))),
            Box::new(PropertyPath::ZeroOrMore(Box::new(link("b"))))
        )
        .matches_zero());
    }

    #[test]
    fn display() {
        let p = PropertyPath::Alternative(
            Box::new(link("a")),
            Box::new(PropertyPath::Inverse(Box::new(link("b")))),
        );
        assert_eq!(p.to_string(), "(<a> | ^(<b>))");
        let n = PropertyPath::NegatedSet {
            forward: vec!["a".into()],
            backward: vec!["b".into()],
        };
        assert_eq!(n.to_string(), "!(<a> | ^<b>)");
    }
}
