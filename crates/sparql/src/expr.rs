//! SPARQL filter expressions and aggregates.

use std::fmt;

use sparqlog_rdf::Term;

use crate::ast::Var;

/// A SPARQL expression (used in `FILTER`, `ORDER BY` and aggregate
/// arguments).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A variable reference.
    Var(Var),
    /// A constant RDF term.
    Const(Term),
    /// `e1 || e2`
    Or(Box<Expr>, Box<Expr>),
    /// `e1 && e2`
    And(Box<Expr>, Box<Expr>),
    /// `!e`
    Not(Box<Expr>),
    /// Comparison `e1 <op> e2`.
    Compare(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic `e1 <op> e2`.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// `BOUND(?v)`
    Bound(Var),
    /// `isIRI(e)` / `isURI(e)`
    IsIri(Box<Expr>),
    /// `isBlank(e)`
    IsBlank(Box<Expr>),
    /// `isLiteral(e)`
    IsLiteral(Box<Expr>),
    /// `isNumeric(e)`
    IsNumeric(Box<Expr>),
    /// `STR(e)`
    Str(Box<Expr>),
    /// `LANG(e)`
    Lang(Box<Expr>),
    /// `DATATYPE(e)`
    Datatype(Box<Expr>),
    /// `REGEX(text, pattern [, flags])`
    Regex(Box<Expr>, Box<Expr>, Option<Box<Expr>>),
    /// `UCASE(e)`
    Ucase(Box<Expr>),
    /// `LCASE(e)`
    Lcase(Box<Expr>),
    /// `STRLEN(e)`
    Strlen(Box<Expr>),
    /// `CONTAINS(haystack, needle)`
    Contains(Box<Expr>, Box<Expr>),
    /// `STRSTARTS(s, prefix)`
    StrStarts(Box<Expr>, Box<Expr>),
    /// `STRENDS(s, suffix)`
    StrEnds(Box<Expr>, Box<Expr>),
    /// `sameTerm(a, b)`
    SameTerm(Box<Expr>, Box<Expr>),
    /// `LANGMATCHES(lang, range)`
    LangMatches(Box<Expr>, Box<Expr>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// Aggregate functions supported in `SELECT` projections (paper Table 1:
/// GROUP BY ✓ with COUNT and friends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `AVG`
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        };
        f.write_str(s)
    }
}

impl Expr {
    /// Collects all variables mentioned by the expression into `out`
    /// (deduplicated, insertion order).
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        let push = |v: &Var, out: &mut Vec<Var>| {
            if !out.contains(v) {
                out.push(v.clone());
            }
        };
        match self {
            Expr::Var(v) => push(v, out),
            Expr::Bound(v) => push(v, out),
            Expr::Const(_) => {}
            Expr::Or(a, b)
            | Expr::And(a, b)
            | Expr::Compare(_, a, b)
            | Expr::Arith(_, a, b)
            | Expr::Contains(a, b)
            | Expr::StrStarts(a, b)
            | Expr::StrEnds(a, b)
            | Expr::SameTerm(a, b)
            | Expr::LangMatches(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Not(e)
            | Expr::Neg(e)
            | Expr::IsIri(e)
            | Expr::IsBlank(e)
            | Expr::IsLiteral(e)
            | Expr::IsNumeric(e)
            | Expr::Str(e)
            | Expr::Lang(e)
            | Expr::Datatype(e)
            | Expr::Ucase(e)
            | Expr::Lcase(e)
            | Expr::Strlen(e) => e.collect_vars(out),
            Expr::Regex(a, b, c) => {
                a.collect_vars(out);
                b.collect_vars(out);
                if let Some(c) = c {
                    c.collect_vars(out);
                }
            }
        }
    }

    /// All variables of the expression.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_vars_dedupes() {
        let e = Expr::And(
            Box::new(Expr::Compare(
                CmpOp::Eq,
                Box::new(Expr::Var(Var::new("x"))),
                Box::new(Expr::Var(Var::new("y"))),
            )),
            Box::new(Expr::Bound(Var::new("x"))),
        );
        let vars = e.vars();
        assert_eq!(vars.len(), 2);
        assert_eq!(vars[0].name(), "x");
        assert_eq!(vars[1].name(), "y");
    }

    #[test]
    fn regex_vars() {
        let e = Expr::Regex(
            Box::new(Expr::Var(Var::new("t"))),
            Box::new(Expr::Const(Term::literal("^a"))),
            Some(Box::new(Expr::Const(Term::literal("i")))),
        );
        assert_eq!(e.vars().len(), 1);
    }
}
