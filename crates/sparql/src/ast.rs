//! The SPARQL query AST: query forms, graph patterns, solution modifiers.

use std::fmt;
use std::sync::Arc;

use sparqlog_rdf::Term;

use crate::expr::{AggFunc, Expr};
use crate::path::PropertyPath;

/// A SPARQL variable (without the `?`/`$` sigil).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(Arc<str>);

impl Var {
    /// Creates a variable from its name.
    pub fn new(name: impl Into<Arc<str>>) -> Self {
        Var(name.into())
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A term-or-variable position in a triple pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermPattern {
    /// A variable position.
    Var(Var),
    /// A concrete RDF term.
    Term(Term),
}

impl TermPattern {
    /// The variable, if this position holds one.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            TermPattern::Var(v) => Some(v),
            TermPattern::Term(_) => None,
        }
    }

    /// True if this position holds a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, TermPattern::Var(_))
    }
}

impl fmt::Display for TermPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermPattern::Var(v) => write!(f, "{v}"),
            TermPattern::Term(t) => write!(f, "{t}"),
        }
    }
}

/// A triple pattern: a triple whose components may be variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    /// The subject position.
    pub subject: TermPattern,
    /// The predicate position.
    pub predicate: TermPattern,
    /// The object position.
    pub object: TermPattern,
}

impl TriplePattern {
    /// Creates a triple pattern.
    pub fn new(subject: TermPattern, predicate: TermPattern, object: TermPattern) -> Self {
        TriplePattern {
            subject,
            predicate,
            object,
        }
    }

    /// The distinct variables of the pattern in S, P, O order.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for tp in [&self.subject, &self.predicate, &self.object] {
            if let TermPattern::Var(v) = tp {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        }
        out
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.subject, self.predicate, self.object)
    }
}

/// The graph selector of a `GRAPH` pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GraphSpec {
    /// A concrete graph IRI.
    Iri(Arc<str>),
    /// A graph variable, ranging over the named graphs.
    Var(Var),
}

/// A SPARQL graph pattern (the `WHERE` clause body).
///
/// The shape follows §3.1/A.2 of the paper: nested binary operators over
/// triple patterns and property-path patterns. `Optional` keeps its right
/// operand un-normalised so the translator can recognise the
/// `(P1 OPT (P2 FILTER C))` special case of Def. A.9.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphPattern {
    /// The empty group `{}` — the unit of join.
    Empty,
    /// A triple pattern.
    Triple(TriplePattern),
    /// A property-path pattern `S path O`.
    Path {
        /// The subject position.
        subject: TermPattern,
        /// The path expression.
        path: PropertyPath,
        /// The object position.
        object: TermPattern,
    },
    /// `P1 . P2`
    Join(Box<GraphPattern>, Box<GraphPattern>),
    /// `P1 UNION P2`
    Union(Box<GraphPattern>, Box<GraphPattern>),
    /// `P1 OPTIONAL { P2 }`
    Optional(Box<GraphPattern>, Box<GraphPattern>),
    /// `P1 MINUS { P2 }`
    Minus(Box<GraphPattern>, Box<GraphPattern>),
    /// `P FILTER C`
    Filter(Box<GraphPattern>, Expr),
    /// `GRAPH g { P }`
    Graph(GraphSpec, Box<GraphPattern>),
}

impl GraphPattern {
    /// Joins two patterns, treating [`GraphPattern::Empty`] as the unit.
    pub fn join(a: GraphPattern, b: GraphPattern) -> GraphPattern {
        match (a, b) {
            (GraphPattern::Empty, b) => b,
            (a, GraphPattern::Empty) => a,
            (a, b) => GraphPattern::Join(Box::new(a), Box::new(b)),
        }
    }

    /// The distinct in-scope variables of the pattern, in first-mention
    /// order. (For `MINUS` and the filter-condition of `FILTER`, the right
    /// side's variables are *not* in scope, per SPARQL §18.2.1.)
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<Var>) {
        let push = |v: Var, out: &mut Vec<Var>| {
            if !out.contains(&v) {
                out.push(v);
            }
        };
        match self {
            GraphPattern::Empty => {}
            GraphPattern::Triple(t) => {
                for v in t.vars() {
                    push(v, out);
                }
            }
            GraphPattern::Path {
                subject, object, ..
            } => {
                if let TermPattern::Var(v) = subject {
                    push(v.clone(), out);
                }
                if let TermPattern::Var(v) = object {
                    push(v.clone(), out);
                }
            }
            GraphPattern::Join(a, b) | GraphPattern::Union(a, b) | GraphPattern::Optional(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            GraphPattern::Minus(a, _) => a.collect_vars(out),
            GraphPattern::Filter(p, _) => p.collect_vars(out),
            GraphPattern::Graph(spec, p) => {
                if let GraphSpec::Var(v) = spec {
                    push(v.clone(), out);
                }
                p.collect_vars(out);
            }
        }
    }

    /// Recursively checks whether the pattern contains a property-path
    /// pattern satisfying `f`.
    pub fn any_path(&self, f: &dyn Fn(&PropertyPath) -> bool) -> bool {
        match self {
            GraphPattern::Empty | GraphPattern::Triple(_) => false,
            GraphPattern::Path { path, .. } => f(path),
            GraphPattern::Join(a, b)
            | GraphPattern::Union(a, b)
            | GraphPattern::Optional(a, b)
            | GraphPattern::Minus(a, b) => a.any_path(f) || b.any_path(f),
            GraphPattern::Filter(p, _) | GraphPattern::Graph(_, p) => p.any_path(f),
        }
    }
}

/// One `(expr [AS var])` item of a `SELECT` projection.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A plain variable.
    Var(Var),
    /// An aggregate, e.g. `(COUNT(?x) AS ?c)`. `arg = None` means
    /// `COUNT(*)`.
    Aggregate {
        /// The projected variable (`AS ?c`).
        var: Var,
        /// The aggregate function.
        func: AggFunc,
        /// `DISTINCT` inside the aggregate call.
        distinct: bool,
        /// The aggregated expression; `None` = `COUNT(*)`.
        arg: Option<Expr>,
    },
}

/// One resource named by a `DESCRIBE` clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DescribeTarget {
    /// A variable whose bindings (across the `WHERE` solutions) are
    /// described.
    Var(Var),
    /// An explicitly named IRI, described unconditionally.
    Iri(Arc<str>),
}

/// The query form.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryForm {
    /// `SELECT [DISTINCT] items` (empty `items` = `SELECT *`).
    Select {
        /// `DISTINCT` modifier (set semantics).
        distinct: bool,
        /// The projection; empty means `SELECT *`.
        items: Vec<SelectItem>,
    },
    /// `ASK`.
    Ask,
    /// `CONSTRUCT { template } WHERE { ... }` — instantiate the triple
    /// templates once per solution of the `WHERE` pattern and return the
    /// resulting RDF graph.
    Construct {
        /// The triple templates of the `CONSTRUCT` clause.
        template: Vec<TriplePattern>,
    },
    /// `DESCRIBE targets [WHERE { ... }]` — return the concise bounded
    /// description of each named/bound resource. An empty target list is
    /// `DESCRIBE *` (describe every variable in scope of the pattern).
    Describe {
        /// The described resources; empty means `DESCRIBE *`.
        targets: Vec<DescribeTarget>,
    },
}

/// A `FROM` or `FROM NAMED` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetClause {
    /// `FROM <iri>` — contributes to the default graph.
    Default(Arc<str>),
    /// `FROM NAMED <iri>`.
    Named(Arc<str>),
}

/// One `ORDER BY` condition.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderCondition {
    /// The ordering expression (a bare variable in the common case).
    pub expr: Expr,
    /// `DESC(...)` was used.
    pub descending: bool,
}

/// A parsed SPARQL query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `SELECT`/`ASK` plus projection.
    pub form: QueryForm,
    /// `FROM` / `FROM NAMED` clauses (recorded; resolution is up to the
    /// caller's dataset).
    pub dataset: Vec<DatasetClause>,
    /// The `WHERE` clause pattern.
    pub pattern: GraphPattern,
    /// `GROUP BY` variables.
    pub group_by: Vec<Var>,
    /// `ORDER BY` conditions, outermost first.
    pub order_by: Vec<OrderCondition>,
    /// `LIMIT`, if present.
    pub limit: Option<usize>,
    /// `OFFSET`, if present.
    pub offset: Option<usize>,
}

impl Query {
    /// True for `SELECT` queries.
    pub fn is_select(&self) -> bool {
        matches!(self.form, QueryForm::Select { .. })
    }

    /// True for `ASK` queries.
    pub fn is_ask(&self) -> bool {
        matches!(self.form, QueryForm::Ask)
    }

    /// True for `CONSTRUCT` queries.
    pub fn is_construct(&self) -> bool {
        matches!(self.form, QueryForm::Construct { .. })
    }

    /// True for `DESCRIBE` queries.
    pub fn is_describe(&self) -> bool {
        matches!(self.form, QueryForm::Describe { .. })
    }

    /// True if the query's `SELECT` clause has the `DISTINCT` keyword.
    pub fn is_distinct(&self) -> bool {
        matches!(self.form, QueryForm::Select { distinct: true, .. })
    }

    /// The projected variables of the query. For `SELECT *` this is the
    /// in-scope variable list of the pattern; for `ASK` it is empty. A
    /// `CONSTRUCT` projects the variables its template mentions, a
    /// `DESCRIBE` the variables among its targets (all in-scope pattern
    /// variables for `DESCRIBE *`) — in both cases the variables whose
    /// bindings the result graph is built from.
    pub fn projection(&self) -> Vec<Var> {
        match &self.form {
            QueryForm::Ask => Vec::new(),
            QueryForm::Select { items, .. } => {
                if items.is_empty() {
                    self.pattern.vars()
                } else {
                    items
                        .iter()
                        .map(|it| match it {
                            SelectItem::Var(v) => v.clone(),
                            SelectItem::Aggregate { var, .. } => var.clone(),
                        })
                        .collect()
                }
            }
            QueryForm::Construct { template } => {
                let mut out = Vec::new();
                for t in template {
                    for v in t.vars() {
                        if !out.contains(&v) {
                            out.push(v);
                        }
                    }
                }
                out
            }
            QueryForm::Describe { targets } => {
                if targets.is_empty() {
                    self.pattern.vars()
                } else {
                    let mut out = Vec::new();
                    for t in targets {
                        if let DescribeTarget::Var(v) = t {
                            if !out.contains(v) {
                                out.push(v.clone());
                            }
                        }
                    }
                    out
                }
            }
        }
    }

    /// True if the projection contains at least one aggregate.
    pub fn has_aggregates(&self) -> bool {
        match &self.form {
            QueryForm::Select { items, .. } => items
                .iter()
                .any(|it| matches!(it, SelectItem::Aggregate { .. })),
            QueryForm::Ask | QueryForm::Construct { .. } | QueryForm::Describe { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    #[test]
    fn join_with_empty_is_identity() {
        let t = GraphPattern::Triple(TriplePattern::new(
            TermPattern::Var(v("x")),
            TermPattern::Term(Term::iri("p")),
            TermPattern::Var(v("y")),
        ));
        assert_eq!(GraphPattern::join(GraphPattern::Empty, t.clone()), t);
        assert_eq!(GraphPattern::join(t.clone(), GraphPattern::Empty), t);
        assert!(matches!(
            GraphPattern::join(t.clone(), t),
            GraphPattern::Join(_, _)
        ));
    }

    #[test]
    fn vars_of_nested_pattern() {
        // { ?x p ?y . OPTIONAL { ?x q ?z } } MINUS { ?w r ?x }
        let t1 = GraphPattern::Triple(TriplePattern::new(
            TermPattern::Var(v("x")),
            TermPattern::Term(Term::iri("p")),
            TermPattern::Var(v("y")),
        ));
        let t2 = GraphPattern::Triple(TriplePattern::new(
            TermPattern::Var(v("x")),
            TermPattern::Term(Term::iri("q")),
            TermPattern::Var(v("z")),
        ));
        let t3 = GraphPattern::Triple(TriplePattern::new(
            TermPattern::Var(v("w")),
            TermPattern::Term(Term::iri("r")),
            TermPattern::Var(v("x")),
        ));
        let p = GraphPattern::Minus(
            Box::new(GraphPattern::Optional(Box::new(t1), Box::new(t2))),
            Box::new(t3),
        );
        // MINUS right side vars are not in scope.
        assert_eq!(p.vars(), vec![v("x"), v("y"), v("z")]);
    }

    #[test]
    fn triple_pattern_vars_dedupe() {
        let t = TriplePattern::new(
            TermPattern::Var(v("x")),
            TermPattern::Var(v("p")),
            TermPattern::Var(v("x")),
        );
        assert_eq!(t.vars(), vec![v("x"), v("p")]);
    }

    #[test]
    fn graph_var_in_scope() {
        let p = GraphPattern::Graph(
            GraphSpec::Var(v("g")),
            Box::new(GraphPattern::Triple(TriplePattern::new(
                TermPattern::Var(v("s")),
                TermPattern::Term(Term::iri("p")),
                TermPattern::Var(v("o")),
            ))),
        );
        assert_eq!(p.vars(), vec![v("g"), v("s"), v("o")]);
    }

    #[test]
    fn projection_wildcard_and_explicit() {
        let pattern = GraphPattern::Triple(TriplePattern::new(
            TermPattern::Var(v("s")),
            TermPattern::Term(Term::iri("p")),
            TermPattern::Var(v("o")),
        ));
        let q = Query {
            form: QueryForm::Select {
                distinct: false,
                items: vec![],
            },
            dataset: vec![],
            pattern: pattern.clone(),
            group_by: vec![],
            order_by: vec![],
            limit: None,
            offset: None,
        };
        assert_eq!(q.projection(), vec![v("s"), v("o")]);

        let q2 = Query {
            form: QueryForm::Select {
                distinct: true,
                items: vec![SelectItem::Var(v("o"))],
            },
            ..q
        };
        assert_eq!(q2.projection(), vec![v("o")]);
        assert!(q2.is_distinct());
        assert!(!q2.has_aggregates());
    }
}
