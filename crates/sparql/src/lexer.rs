//! Tokenizer for the SPARQL 1.1 subset.

use std::fmt;
use std::sync::Arc;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// An IRI in angle brackets, without the brackets.
    Iri(Arc<str>),
    /// A prefixed name `prefix:local` (either part may be empty).
    PName {
        /// The namespace prefix (before the `:`).
        prefix: String,
        /// The local part (after the `:`).
        local: String,
    },
    /// A variable `?name` or `$name`, without the sigil.
    Var(Arc<str>),
    /// A blank node `_:label`.
    BlankNode(Arc<str>),
    /// A string literal (unescaped), with optional language tag or datatype
    /// left to the parser (`@`/`^^` are separate tokens).
    String(String),
    /// An integer literal.
    Integer(i64),
    /// A decimal/double literal kept in its lexical form.
    Decimal(String),
    /// A bare word: keyword (`SELECT`, `FILTER`, ...) or `a` or `true`.
    Word(String),
    /// A language tag following `@`, e.g. `en`.
    LangTag(String),
    /// Punctuation / operators.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Punct {
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `^^` (datatype marker)
    CaretCaret,
    /// `!`
    Bang,
    /// `?` (the path operator; variables consume their own sigil)
    Question,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Iri(i) => write!(f, "<{i}>"),
            Token::PName { prefix, local } => write!(f, "{prefix}:{local}"),
            Token::Var(v) => write!(f, "?{v}"),
            Token::BlankNode(b) => write!(f, "_:{b}"),
            Token::String(s) => write!(f, "{s:?}"),
            Token::Integer(n) => write!(f, "{n}"),
            Token::Decimal(d) => write!(f, "{d}"),
            Token::Word(w) => write!(f, "{w}"),
            Token::LangTag(t) => write!(f, "@{t}"),
            Token::Punct(p) => write!(f, "{p:?}"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A lexing error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the error in the query string.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

/// Tokenizes a SPARQL query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut pos = 0usize;

    macro_rules! err {
        ($msg:expr) => {
            return Err(LexError {
                offset: pos,
                message: $msg.to_string(),
            })
        };
    }

    while pos < bytes.len() {
        let c = input[pos..].chars().next().unwrap();
        match c {
            c if c.is_whitespace() => {
                pos += c.len_utf8();
            }
            '#' => {
                // Comment to end of line.
                match input[pos..].find('\n') {
                    Some(nl) => pos += nl + 1,
                    None => pos = bytes.len(),
                }
            }
            '<' => {
                // IRI or comparison. An IRI ref never contains whitespace
                // and is closed by '>'; `<=` and `< ` are comparisons.
                let rest = &input[pos + 1..];
                if rest.starts_with('=') {
                    tokens.push(Token::Punct(Punct::Le));
                    pos += 2;
                } else if let Some(end) = rest.find(['>', ' ', '\t', '\n', '<']) {
                    if rest.as_bytes()[end] == b'>' {
                        tokens.push(Token::Iri(Arc::from(&rest[..end])));
                        pos += end + 2;
                    } else {
                        tokens.push(Token::Punct(Punct::Lt));
                        pos += 1;
                    }
                } else {
                    tokens.push(Token::Punct(Punct::Lt));
                    pos += 1;
                }
            }
            '?' | '$' => {
                let rest = &input[pos + 1..];
                let len = rest
                    .char_indices()
                    .find(|(_, c)| !(c.is_alphanumeric() || *c == '_'))
                    .map(|(i, _)| i)
                    .unwrap_or(rest.len());
                if len == 0 {
                    // A bare '?' is the zero-or-one path operator.
                    tokens.push(Token::Punct(Punct::Question));
                    pos += 1;
                } else {
                    tokens.push(Token::Var(Arc::from(&rest[..len])));
                    pos += 1 + len;
                }
            }
            '_' if input[pos..].starts_with("_:") => {
                let rest = &input[pos + 2..];
                let len = rest
                    .char_indices()
                    .find(|(_, c)| !(c.is_alphanumeric() || *c == '_' || *c == '-'))
                    .map(|(i, _)| i)
                    .unwrap_or(rest.len());
                if len == 0 {
                    err!("empty blank node label");
                }
                tokens.push(Token::BlankNode(Arc::from(&rest[..len])));
                pos += 2 + len;
            }
            '"' | '\'' => {
                let quote = c;
                let mut out = String::new();
                let mut it = input[pos + 1..].char_indices();
                let mut consumed = None;
                while let Some((i, c)) = it.next() {
                    if c == quote {
                        consumed = Some(i + 1);
                        break;
                    }
                    if c == '\\' {
                        match it.next() {
                            Some((_, 'n')) => out.push('\n'),
                            Some((_, 't')) => out.push('\t'),
                            Some((_, 'r')) => out.push('\r'),
                            Some((_, '"')) => out.push('"'),
                            Some((_, '\'')) => out.push('\''),
                            Some((_, '\\')) => out.push('\\'),
                            Some((_, 'u')) => {
                                let mut code = String::new();
                                for _ in 0..4 {
                                    match it.next() {
                                        Some((_, h)) => code.push(h),
                                        None => err!("truncated \\u escape"),
                                    }
                                }
                                match u32::from_str_radix(&code, 16).ok().and_then(char::from_u32) {
                                    Some(ch) => out.push(ch),
                                    None => err!("invalid \\u escape"),
                                }
                            }
                            _ => err!("unknown escape in string"),
                        }
                    } else {
                        out.push(c);
                    }
                }
                match consumed {
                    Some(n) => {
                        tokens.push(Token::String(out));
                        pos += 1 + n;
                    }
                    None => err!("unterminated string literal"),
                }
            }
            '@' => {
                let rest = &input[pos + 1..];
                let len = rest
                    .char_indices()
                    .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '-'))
                    .map(|(i, _)| i)
                    .unwrap_or(rest.len());
                if len == 0 {
                    err!("empty language tag");
                }
                tokens.push(Token::LangTag(rest[..len].to_string()));
                pos += 1 + len;
            }
            '0'..='9' => {
                let rest = &input[pos..];
                let mut len = 0;
                let mut is_decimal = false;
                let mut chars = rest.char_indices().peekable();
                while let Some(&(i, c)) = chars.peek() {
                    if c.is_ascii_digit() {
                        len = i + 1;
                        chars.next();
                    } else if c == '.' {
                        // Decimal point only if followed by a digit.
                        let mut look = rest[i + 1..].chars();
                        if look.next().is_some_and(|d| d.is_ascii_digit()) {
                            is_decimal = true;
                            len = i + 1;
                            chars.next();
                        } else {
                            break;
                        }
                    } else if c == 'e' || c == 'E' {
                        is_decimal = true;
                        len = i + 1;
                        chars.next();
                        if let Some(&(j, s)) = chars.peek() {
                            if s == '+' || s == '-' {
                                len = j + 1;
                                chars.next();
                            }
                        }
                    } else {
                        break;
                    }
                }
                let text = &rest[..len];
                if is_decimal {
                    tokens.push(Token::Decimal(text.to_string()));
                } else {
                    match text.parse() {
                        Ok(n) => tokens.push(Token::Integer(n)),
                        Err(_) => err!("integer literal out of range"),
                    }
                }
                pos += len;
            }
            '^' => {
                if input[pos..].starts_with("^^") {
                    tokens.push(Token::Punct(Punct::CaretCaret));
                    pos += 2;
                } else {
                    tokens.push(Token::Punct(Punct::Caret));
                    pos += 1;
                }
            }
            '&' => {
                if input[pos..].starts_with("&&") {
                    tokens.push(Token::Punct(Punct::AndAnd));
                    pos += 2;
                } else {
                    err!("expected '&&'");
                }
            }
            '|' => {
                if input[pos..].starts_with("||") {
                    tokens.push(Token::Punct(Punct::OrOr));
                    pos += 2;
                } else {
                    tokens.push(Token::Punct(Punct::Pipe));
                    pos += 1;
                }
            }
            '!' => {
                if input[pos..].starts_with("!=") {
                    tokens.push(Token::Punct(Punct::Neq));
                    pos += 2;
                } else {
                    tokens.push(Token::Punct(Punct::Bang));
                    pos += 1;
                }
            }
            '>' => {
                if input[pos..].starts_with(">=") {
                    tokens.push(Token::Punct(Punct::Ge));
                    pos += 2;
                } else {
                    tokens.push(Token::Punct(Punct::Gt));
                    pos += 1;
                }
            }
            '=' => {
                tokens.push(Token::Punct(Punct::Eq));
                pos += 1;
            }
            '{' => {
                tokens.push(Token::Punct(Punct::LBrace));
                pos += 1;
            }
            '}' => {
                tokens.push(Token::Punct(Punct::RBrace));
                pos += 1;
            }
            '(' => {
                tokens.push(Token::Punct(Punct::LParen));
                pos += 1;
            }
            ')' => {
                tokens.push(Token::Punct(Punct::RParen));
                pos += 1;
            }
            '[' => {
                tokens.push(Token::Punct(Punct::LBracket));
                pos += 1;
            }
            ']' => {
                tokens.push(Token::Punct(Punct::RBracket));
                pos += 1;
            }
            '.' => {
                tokens.push(Token::Punct(Punct::Dot));
                pos += 1;
            }
            ';' => {
                tokens.push(Token::Punct(Punct::Semicolon));
                pos += 1;
            }
            ',' => {
                tokens.push(Token::Punct(Punct::Comma));
                pos += 1;
            }
            '*' => {
                tokens.push(Token::Punct(Punct::Star));
                pos += 1;
            }
            '/' => {
                tokens.push(Token::Punct(Punct::Slash));
                pos += 1;
            }
            '+' => {
                tokens.push(Token::Punct(Punct::Plus));
                pos += 1;
            }
            '-' => {
                tokens.push(Token::Punct(Punct::Minus));
                pos += 1;
            }
            c if c.is_alphabetic() => {
                // A bare word, possibly a prefixed name.
                let rest = &input[pos..];
                let len = rest
                    .char_indices()
                    .find(|(_, c)| !(c.is_alphanumeric() || *c == '_' || *c == '-'))
                    .map(|(i, _)| i)
                    .unwrap_or(rest.len());
                let word = &rest[..len];
                // Prefixed name: word followed directly by ':'.
                if rest[len..].starts_with(':') {
                    let local_rest = &rest[len + 1..];
                    let local_len = local_rest
                        .char_indices()
                        .find(|(_, c)| !(c.is_alphanumeric() || matches!(c, '_' | '-' | '%')))
                        .map(|(i, _)| i)
                        .unwrap_or(local_rest.len());
                    tokens.push(Token::PName {
                        prefix: word.to_string(),
                        local: local_rest[..local_len].to_string(),
                    });
                    pos += len + 1 + local_len;
                } else {
                    tokens.push(Token::Word(word.to_string()));
                    pos += len;
                }
            }
            ':' => {
                // Prefixed name with the empty prefix.
                let local_rest = &input[pos + 1..];
                let local_len = local_rest
                    .char_indices()
                    .find(|(_, c)| !(c.is_alphanumeric() || matches!(c, '_' | '-' | '%')))
                    .map(|(i, _)| i)
                    .unwrap_or(local_rest.len());
                tokens.push(Token::PName {
                    prefix: String::new(),
                    local: local_rest[..local_len].to_string(),
                });
                pos += 1 + local_len;
            }
            other => err!(format!("unexpected character {other:?}")),
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(s: &str) -> Vec<Token> {
        tokenize(s).unwrap()
    }

    #[test]
    fn basic_select_tokens() {
        let toks = lex("SELECT ?x WHERE { ?x <http://p> \"v\" . }");
        assert_eq!(toks[0], Token::Word("SELECT".into()));
        assert_eq!(toks[1], Token::Var("x".into()));
        assert_eq!(toks[2], Token::Word("WHERE".into()));
        assert_eq!(toks[3], Token::Punct(Punct::LBrace));
        assert_eq!(toks[5], Token::Iri("http://p".into()));
        assert_eq!(toks[6], Token::String("v".into()));
    }

    #[test]
    fn prefixed_names() {
        let toks = lex("ex:spain foaf:name :x");
        assert_eq!(
            toks[0],
            Token::PName {
                prefix: "ex".into(),
                local: "spain".into()
            }
        );
        assert_eq!(
            toks[1],
            Token::PName {
                prefix: "foaf".into(),
                local: "name".into()
            }
        );
        assert_eq!(
            toks[2],
            Token::PName {
                prefix: "".into(),
                local: "x".into()
            }
        );
    }

    #[test]
    fn comparison_vs_iri() {
        let toks = lex("?x < 5 && ?y <= ?z");
        assert_eq!(toks[1], Token::Punct(Punct::Lt));
        assert_eq!(toks[3], Token::Punct(Punct::AndAnd));
        assert_eq!(toks[5], Token::Punct(Punct::Le));
    }

    #[test]
    fn path_operators() {
        let toks = lex("ex:a+ / ^ex:b | ex:c* ?");
        assert!(toks.contains(&Token::Punct(Punct::Plus)));
        assert!(toks.contains(&Token::Punct(Punct::Slash)));
        assert!(toks.contains(&Token::Punct(Punct::Caret)));
        assert!(toks.contains(&Token::Punct(Punct::Pipe)));
        assert!(toks.contains(&Token::Punct(Punct::Star)));
        assert!(toks.contains(&Token::Punct(Punct::Question)));
    }

    #[test]
    fn numbers() {
        assert_eq!(lex("42")[0], Token::Integer(42));
        assert_eq!(lex("3.25")[0], Token::Decimal("3.25".into()));
        assert_eq!(lex("1e3")[0], Token::Decimal("1e3".into()));
        // "1." is integer then dot (statement terminator).
        let toks = lex("1.");
        assert_eq!(toks[0], Token::Integer(1));
        assert_eq!(toks[1], Token::Punct(Punct::Dot));
    }

    #[test]
    fn strings_with_escapes_and_tags() {
        let toks = lex(r#""a\"b" "x"@en "5"^^xsd:integer"#);
        assert_eq!(toks[0], Token::String("a\"b".into()));
        assert_eq!(toks[1], Token::String("x".into()));
        assert_eq!(toks[2], Token::LangTag("en".into()));
        assert_eq!(toks[4], Token::Punct(Punct::CaretCaret));
    }

    #[test]
    fn comments_and_blank_nodes() {
        let toks = lex("# hi\n_:b1 ?x # tail\n");
        assert_eq!(toks[0], Token::BlankNode("b1".into()));
        assert_eq!(toks[1], Token::Var("x".into()));
        assert_eq!(toks[2], Token::Eof);
    }

    #[test]
    fn errors() {
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("@").is_err());
        assert!(tokenize("& x").is_err());
    }
}
