//! Pretty-printing of queries back to SPARQL concrete syntax.
//!
//! The printer emits canonical, fully-parenthesised SPARQL that re-parses
//! to the same AST — used by the test suite as a round-trip oracle and
//! handy when debugging translated workloads.

use std::fmt;

use crate::ast::{
    DatasetClause, DescribeTarget, GraphPattern, GraphSpec, Query, QueryForm, SelectItem,
};
use crate::expr::{ArithOp, CmpOp, Expr};

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.form {
            QueryForm::Ask => write!(f, "ASK ")?,
            QueryForm::Construct { template } => {
                write!(f, "CONSTRUCT {{ ")?;
                for t in template {
                    write!(f, "{t} . ")?;
                }
                write!(f, "}} ")?;
            }
            QueryForm::Describe { targets } => {
                write!(f, "DESCRIBE ")?;
                if targets.is_empty() {
                    write!(f, "* ")?;
                }
                for t in targets {
                    match t {
                        DescribeTarget::Var(v) => write!(f, "{v} ")?,
                        DescribeTarget::Iri(iri) => write!(f, "<{iri}> ")?,
                    }
                }
            }
            QueryForm::Select { distinct, items } => {
                write!(f, "SELECT ")?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                if items.is_empty() {
                    write!(f, "* ")?;
                } else {
                    for item in items {
                        match item {
                            SelectItem::Var(v) => write!(f, "{v} ")?,
                            SelectItem::Aggregate {
                                var,
                                func,
                                distinct,
                                arg,
                            } => {
                                write!(f, "({func}(")?;
                                if *distinct {
                                    write!(f, "DISTINCT ")?;
                                }
                                match arg {
                                    None => write!(f, "*")?,
                                    Some(e) => write!(f, "{e}")?,
                                }
                                write!(f, ") AS {var}) ")?;
                            }
                        }
                    }
                }
            }
        }
        for dc in &self.dataset {
            match dc {
                DatasetClause::Default(iri) => write!(f, "FROM <{iri}> ")?,
                DatasetClause::Named(iri) => write!(f, "FROM NAMED <{iri}> ")?,
            }
        }
        write!(f, "WHERE {{ {} }}", self.pattern)?;
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY")?;
            for v in &self.group_by {
                write!(f, " {v}")?;
            }
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY")?;
            for c in &self.order_by {
                if c.descending {
                    write!(f, " DESC({})", c.expr)?;
                } else {
                    write!(f, " ASC({})", c.expr)?;
                }
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(o) = self.offset {
            write!(f, " OFFSET {o}")?;
        }
        Ok(())
    }
}

impl fmt::Display for GraphPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphPattern::Empty => Ok(()),
            GraphPattern::Triple(t) => write!(f, "{t} ."),
            GraphPattern::Path {
                subject,
                path,
                object,
            } => {
                write!(f, "{subject} {path} {object} .")
            }
            GraphPattern::Join(a, b) => write!(f, "{{ {a} }} {{ {b} }}"),
            GraphPattern::Union(a, b) => write!(f, "{{ {a} }} UNION {{ {b} }}"),
            GraphPattern::Optional(a, b) => write!(f, "{a} OPTIONAL {{ {b} }}"),
            GraphPattern::Minus(a, b) => write!(f, "{a} MINUS {{ {b} }}"),
            GraphPattern::Filter(a, c) => write!(f, "{a} FILTER ({c})"),
            GraphPattern::Graph(spec, a) => match spec {
                GraphSpec::Iri(iri) => write!(f, "GRAPH <{iri}> {{ {a} }}"),
                GraphSpec::Var(v) => write!(f, "GRAPH {v} {{ {a} }}"),
            },
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Const(t) => write!(f, "{t}"),
            Expr::Or(a, b) => write!(f, "({a} || {b})"),
            Expr::And(a, b) => write!(f, "({a} && {b})"),
            Expr::Not(a) => write!(f, "(!{a})"),
            Expr::Compare(op, a, b) => {
                let s = match op {
                    CmpOp::Eq => "=",
                    CmpOp::Neq => "!=",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                write!(f, "({a} {s} {b})")
            }
            Expr::Arith(op, a, b) => {
                let s = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "/",
                };
                write!(f, "({a} {s} {b})")
            }
            Expr::Neg(a) => write!(f, "(-{a})"),
            Expr::Bound(v) => write!(f, "BOUND({v})"),
            Expr::IsIri(a) => write!(f, "ISIRI({a})"),
            Expr::IsBlank(a) => write!(f, "ISBLANK({a})"),
            Expr::IsLiteral(a) => write!(f, "ISLITERAL({a})"),
            Expr::IsNumeric(a) => write!(f, "ISNUMERIC({a})"),
            Expr::Str(a) => write!(f, "STR({a})"),
            Expr::Lang(a) => write!(f, "LANG({a})"),
            Expr::Datatype(a) => write!(f, "DATATYPE({a})"),
            Expr::Ucase(a) => write!(f, "UCASE({a})"),
            Expr::Lcase(a) => write!(f, "LCASE({a})"),
            Expr::Strlen(a) => write!(f, "STRLEN({a})"),
            Expr::Contains(a, b) => write!(f, "CONTAINS({a}, {b})"),
            Expr::StrStarts(a, b) => write!(f, "STRSTARTS({a}, {b})"),
            Expr::StrEnds(a, b) => write!(f, "STRENDS({a}, {b})"),
            Expr::SameTerm(a, b) => write!(f, "SAMETERM({a}, {b})"),
            Expr::LangMatches(a, b) => write!(f, "LANGMATCHES({a}, {b})"),
            Expr::Regex(t, p, fl) => match fl {
                None => write!(f, "REGEX({t}, {p})"),
                Some(fl) => write!(f, "REGEX({t}, {p}, {fl})"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_query;

    /// Round-trip a battery of queries through Display + reparse.
    #[test]
    fn display_reparses() {
        for q in [
            "SELECT ?x WHERE { ?x <http://p> ?y . }",
            "SELECT DISTINCT ?x ?y WHERE { ?x <http://p> ?y . ?y <http://q> ?z . }",
            "SELECT * WHERE { { ?x <http://p> ?y . } UNION { ?y <http://p> ?x . } }",
            "SELECT ?x WHERE { ?x <http://p> ?y . OPTIONAL { ?y <http://q> ?z . } }",
            "SELECT ?x WHERE { ?x <http://p> ?y . MINUS { ?x <http://q> ?y . } }",
            "SELECT ?x WHERE { ?x <http://p> ?y . FILTER ((?y > 3)) }",
            "SELECT ?x WHERE { ?x (<http://p>/<http://q>)+ ?y . }",
            "SELECT ?g WHERE { GRAPH ?g { ?s ?p ?o . } }",
            "ASK { ?s ?p ?o . }",
            "SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x ?p ?y . } GROUP BY ?x",
            r#"SELECT ?x WHERE { ?x <http://p> ?n . FILTER (REGEX(STR(?n), "^a", "i")) }"#,
            "SELECT ?x WHERE { ?x <http://p> ?n . } ORDER BY ASC(?n) DESC(?x) LIMIT 5 OFFSET 2",
            "CONSTRUCT { ?x <http://p> ?y . ?y <http://q> _:b . } WHERE { ?x <http://r> ?y . }",
            "DESCRIBE <http://a> ?x WHERE { ?x <http://p> ?y . }",
            "DESCRIBE * WHERE { ?s <http://p> ?o . }",
        ] {
            let first = parse_query(q).unwrap_or_else(|e| panic!("{q}: {e}"));
            let printed = first.to_string();
            let second = parse_query(&printed)
                .unwrap_or_else(|e| panic!("reparse failed for {printed}: {e}"));
            assert_eq!(first, second, "round-trip changed the AST:\n{printed}");
        }
    }
}
