//! Zero-dependency observability primitives for the SparqLog workspace.
//!
//! The workspace rule is *no external crates*, so this is a from-scratch,
//! std-only metrics kit in the spirit of the `prometheus`/`metrics`
//! crates, cut down to exactly what the engine needs:
//!
//! * [`Counter`] — monotonically increasing `AtomicU64`; a relaxed
//!   `fetch_add`, cheap enough for per-query (and even per-round) hot
//!   paths.
//! * [`Gauge`] — an `AtomicI64` that can go up and down (cache sizes,
//!   live subscription counts).
//! * [`Histogram`] — log₂-bucketed distribution (bucket *i* counts
//!   observations `v ≤ 2^i`): one `leading_zeros` plus two relaxed adds
//!   per observation, no floats, no locks.
//! * [`CounterVec`] — a labelled counter family (`{method="GET",
//!   status="200"}`); label lookup takes a read lock, so callers on hot
//!   paths should cache the returned [`Counter`] handle.
//! * [`MetricsRegistry`] — names and renders the above in the Prometheus
//!   text exposition format (version 0.0.4), the format scraped by
//!   `GET /metrics`.
//!
//! Handles are `Arc`s: components register once (typically behind a
//! `OnceLock` or at construction) and keep the `Arc<Counter>` around, so
//! steady-state cost is an atomic add with no name lookup.
//!
//! The registry also carries an **armed** flag. Instrumented components
//! check [`MetricsRegistry::armed`] before recording, which gives the
//! benchmark suite a same-process A/B switch (armed vs. disarmed) to
//! measure instrumentation overhead without rebuilding.
//!
//! ```
//! use sparqlog_obs::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! let requests = reg.counter("http_requests_total", "Requests served.");
//! let latency = reg.histogram("request_us", "Request latency (µs).", 22);
//! requests.inc();
//! latency.observe(1500);
//! let text = reg.render_to_string();
//! assert!(text.contains("# TYPE http_requests_total counter"));
//! assert!(text.contains("http_requests_total 1"));
//! assert!(text.contains("request_us_bucket{le=\"2048\"} 1"));
//! ```

#![warn(missing_docs)]

use std::collections::HashMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A monotonically increasing counter.
///
/// All operations are relaxed atomics; counters are safe to share across
/// the worker pool and the HTTP worker threads.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero (detached from any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one and returns the **new** value (handy for sequence
    /// numbering as well as counting).
    pub fn inc(&self) -> u64 {
        self.value.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can move in both directions (sizes, live object counts).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero (detached from any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram.
///
/// Bucket *i* has upper bound `2^i` (so bounds run 1, 2, 4, 8, …); the
/// final bucket is `+Inf`. Units are whatever the caller observes —
/// metric names in this workspace carry a `_us` / `_rows` / `_bytes`
/// suffix to say which. An observation costs one `leading_zeros` and two
/// relaxed `fetch_add`s: no locks, no floats, hot-path safe.
#[derive(Debug)]
pub struct Histogram {
    /// `buckets[i]` counts observations with `value <= 2^i`; the last
    /// slot is the overflow (`+Inf`) bucket.
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A detached histogram with `buckets` log₂ buckets plus `+Inf`.
    ///
    /// 22 buckets cover 1 µs … ~2 s at µs resolution; 32 cover ~35 min.
    pub fn new(buckets: usize) -> Self {
        let n = buckets.clamp(1, 64);
        Self {
            buckets: (0..=n).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        // Index of the first bound 2^i with value <= 2^i:
        // 0 for 0 and 1, then 64 - lz(v - 1).
        let idx =
            (64 - value.saturating_sub(1).leading_zeros() as usize).min(self.buckets.len() - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// `(upper_bound, cumulative_count)` per bucket, ending with the
    /// `+Inf` bucket (`upper_bound == None`).
    pub fn cumulative(&self) -> Vec<(Option<u64>, u64)> {
        let mut acc = 0u64;
        let last = self.buckets.len() - 1;
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                acc += b.load(Ordering::Relaxed);
                let bound = (i < last).then(|| 1u64 << i);
                (bound, acc)
            })
            .collect()
    }
}

/// A family of [`Counter`]s distinguished by label values, rendered as
/// `name{k1="v1",k2="v2"} n`.
///
/// Looking a child up takes a read lock (a write lock the first time a
/// label combination is seen); hot paths should call
/// [`CounterVec::with`] once and cache the `Arc<Counter>`.
#[derive(Debug)]
pub struct CounterVec {
    label_names: Vec<&'static str>,
    children: RwLock<Vec<(Vec<String>, Arc<Counter>)>>,
}

impl CounterVec {
    fn new(label_names: &[&'static str]) -> Self {
        Self {
            label_names: label_names.to_vec(),
            children: RwLock::new(Vec::new()),
        }
    }

    /// The label names this family was registered with.
    pub fn label_names(&self) -> &[&'static str] {
        &self.label_names
    }

    /// The counter for one combination of label values (created at zero
    /// on first use).
    ///
    /// # Panics
    /// If `values.len()` differs from the registered label-name count.
    pub fn with(&self, values: &[&str]) -> Arc<Counter> {
        assert_eq!(
            values.len(),
            self.label_names.len(),
            "label value count mismatch for counter vec"
        );
        {
            let children = self.children.read().unwrap();
            if let Some((_, c)) = children.iter().find(|(vs, _)| vs == values) {
                return Arc::clone(c);
            }
        }
        let mut children = self.children.write().unwrap();
        if let Some((_, c)) = children.iter().find(|(vs, _)| vs == values) {
            return Arc::clone(c);
        }
        let counter = Arc::new(Counter::new());
        children.push((
            values.iter().map(|v| v.to_string()).collect(),
            Arc::clone(&counter),
        ));
        counter
    }

    /// Sum over every child — "how many in total, ignoring labels".
    pub fn sum(&self) -> u64 {
        self.children
            .read()
            .unwrap()
            .iter()
            .map(|(_, c)| c.get())
            .sum()
    }

    /// The current value for one label combination (0 when never seen).
    pub fn value(&self, values: &[&str]) -> u64 {
        self.children
            .read()
            .unwrap()
            .iter()
            .find(|(vs, _)| vs == values)
            .map(|(_, c)| c.get())
            .unwrap_or(0)
    }

    /// `(label_values, count)` snapshot sorted by label values.
    pub fn snapshot(&self) -> Vec<(Vec<String>, u64)> {
        let mut out: Vec<_> = self
            .children
            .read()
            .unwrap()
            .iter()
            .map(|(vs, c)| (vs.clone(), c.get()))
            .collect();
        out.sort();
        out
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    CounterVec(Arc<CounterVec>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) | Metric::CounterVec(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    metric: Metric,
}

/// A named collection of metrics with a Prometheus text renderer.
///
/// Registration (`counter`/`gauge`/`histogram`/`counter_vec`) is
/// get-or-create by name: registering the same name twice returns the
/// **same** underlying metric, so independent components can share a
/// family without coordination. Kind mismatches panic — that is a
/// programming error, not a runtime condition.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: RwLock<Vec<Family>>,
    /// When `false`, instrumented components skip recording. Used by the
    /// overhead benchmark as a same-process A/B switch.
    armed: AtomicBool,
}

impl MetricsRegistry {
    /// An empty, armed registry.
    pub fn new() -> Self {
        Self {
            families: RwLock::new(Vec::new()),
            armed: AtomicBool::new(true),
        }
    }

    /// The process-global registry, created on first use.
    ///
    /// Components that are not reachable from a [`Store`]-style owner can
    /// register here; everything in-tree threads per-store registries
    /// instead, so tests stay isolated.
    ///
    /// [`Store`]: https://docs.rs/sparqlog
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Whether instrumentation should record (`true` unless
    /// [`MetricsRegistry::disarm`]ed).
    #[inline]
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Turns recording off; handles keep working but instrumented
    /// components stop updating them. For overhead A/B tests.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Relaxed);
    }

    /// Turns recording back on.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::Relaxed);
    }

    fn register<T>(
        &self,
        name: &str,
        help: &str,
        make: impl FnOnce() -> (T, Metric),
        reuse: impl Fn(&Metric) -> Option<T>,
    ) -> T {
        assert!(valid_name(name), "invalid metric name {name:?}");
        {
            let families = self.families.read().unwrap();
            if let Some(f) = families.iter().find(|f| f.name == name) {
                return reuse(&f.metric).unwrap_or_else(|| {
                    panic!("metric {name:?} re-registered as a different kind")
                });
            }
        }
        let mut families = self.families.write().unwrap();
        if let Some(f) = families.iter().find(|f| f.name == name) {
            return reuse(&f.metric)
                .unwrap_or_else(|| panic!("metric {name:?} re-registered as a different kind"));
        }
        let (handle, metric) = make();
        families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            metric,
        });
        handle
    }

    /// Get-or-create a [`Counter`] named `name`.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.register(
            name,
            help,
            || {
                let c = Arc::new(Counter::new());
                (Arc::clone(&c), Metric::Counter(c))
            },
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Get-or-create a [`Gauge`] named `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.register(
            name,
            help,
            || {
                let g = Arc::new(Gauge::new());
                (Arc::clone(&g), Metric::Gauge(g))
            },
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Get-or-create a [`Histogram`] named `name` with `buckets` log₂
    /// buckets (plus `+Inf`). The bucket count of the first registration
    /// wins.
    pub fn histogram(&self, name: &str, help: &str, buckets: usize) -> Arc<Histogram> {
        self.register(
            name,
            help,
            || {
                let h = Arc::new(Histogram::new(buckets));
                (Arc::clone(&h), Metric::Histogram(h))
            },
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Get-or-create a labelled counter family named `name`. The label
    /// names of the first registration win.
    pub fn counter_vec(&self, name: &str, help: &str, labels: &[&'static str]) -> Arc<CounterVec> {
        self.register(
            name,
            help,
            || {
                let v = Arc::new(CounterVec::new(labels));
                (Arc::clone(&v), Metric::CounterVec(v))
            },
            |m| match m {
                Metric::CounterVec(v) => Some(Arc::clone(v)),
                _ => None,
            },
        )
    }

    /// The value of the plain counter `name`, if registered. Test helper.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let families = self.families.read().unwrap();
        families
            .iter()
            .find(|f| f.name == name)
            .and_then(|f| match &f.metric {
                Metric::Counter(c) => Some(c.get()),
                _ => None,
            })
    }

    /// The label-ignoring sum of the counter-vec `name`, if registered.
    /// Test helper.
    pub fn counter_vec_sum(&self, name: &str) -> Option<u64> {
        let families = self.families.read().unwrap();
        families
            .iter()
            .find(|f| f.name == name)
            .and_then(|f| match &f.metric {
                Metric::CounterVec(v) => Some(v.sum()),
                _ => None,
            })
    }

    /// Renders every family in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` preambles, cumulative
    /// `_bucket{le=…}` + `_sum` + `_count` for histograms, one sample
    /// line per labelled child for counter vecs.
    pub fn render_prometheus(&self, out: &mut dyn Write) -> io::Result<()> {
        let families = self.families.read().unwrap();
        for f in families.iter() {
            writeln!(out, "# HELP {} {}", f.name, escape_help(&f.help))?;
            writeln!(out, "# TYPE {} {}", f.name, f.metric.kind())?;
            match &f.metric {
                Metric::Counter(c) => writeln!(out, "{} {}", f.name, c.get())?,
                Metric::Gauge(g) => writeln!(out, "{} {}", f.name, g.get())?,
                Metric::Histogram(h) => {
                    for (bound, cum) in h.cumulative() {
                        match bound {
                            Some(b) => writeln!(out, "{}_bucket{{le=\"{}\"}} {}", f.name, b, cum)?,
                            None => writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", f.name, cum)?,
                        }
                    }
                    writeln!(out, "{}_sum {}", f.name, h.sum())?;
                    writeln!(out, "{}_count {}", f.name, h.count())?;
                }
                Metric::CounterVec(v) => {
                    for (values, count) in v.snapshot() {
                        let labels: Vec<String> = v
                            .label_names
                            .iter()
                            .zip(values.iter())
                            .map(|(k, val)| format!("{}=\"{}\"", k, escape_label(val)))
                            .collect();
                        writeln!(out, "{}{{{}}} {}", f.name, labels.join(","), count)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// [`MetricsRegistry::render_prometheus`] into a `String`.
    pub fn render_to_string(&self) -> String {
        let mut buf = Vec::new();
        self.render_prometheus(&mut buf)
            .expect("writing to Vec cannot fail");
        String::from_utf8(buf).expect("exposition output is UTF-8")
    }

    /// Parses a text-exposition document (as produced by
    /// [`MetricsRegistry::render_prometheus`]) into `(sample_name, label
    /// set, value)` triples. Shared by the CI smoke and the protocol
    /// tests so "is this valid exposition format?" has one answer.
    pub fn parse_exposition(text: &str) -> Result<Vec<(String, String, f64)>, String> {
        let mut samples = Vec::new();
        let mut typed: HashMap<String, String> = HashMap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.splitn(2, ' ');
                let name = it.next().unwrap_or("").to_string();
                let kind = it.next().unwrap_or("").to_string();
                if !matches!(
                    kind.as_str(),
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {}: unknown TYPE {kind:?}", lineno + 1));
                }
                typed.insert(name, kind);
                continue;
            }
            if line.starts_with('#') {
                continue; // HELP or comment
            }
            let (name_part, value_part) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("line {}: no sample value in {line:?}", lineno + 1))?;
            let value: f64 = value_part
                .parse()
                .map_err(|_| format!("line {}: bad sample value {value_part:?}", lineno + 1))?;
            let (name, labels) = match name_part.split_once('{') {
                Some((n, rest)) => {
                    let labels = rest
                        .strip_suffix('}')
                        .ok_or_else(|| format!("line {}: unterminated labels", lineno + 1))?;
                    (n.to_string(), labels.to_string())
                }
                None => (name_part.to_string(), String::new()),
            };
            if !valid_name(&name) {
                return Err(format!("line {}: invalid sample name {name:?}", lineno + 1));
            }
            let base = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .unwrap_or(&name);
            if !typed.contains_key(&name) && !typed.contains_key(base) {
                return Err(format!(
                    "line {}: sample {name:?} has no # TYPE",
                    lineno + 1
                ));
            }
            samples.push((name, labels, value));
        }
        if samples.is_empty() {
            return Err("no samples in exposition".to_string());
        }
        Ok(samples)
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c_total", "a counter");
        assert_eq!(c.inc(), 1);
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same handle.
        assert_eq!(reg.counter("c_total", "a counter").get(), 5);
        let g = reg.gauge("g", "a gauge");
        g.set(7);
        g.sub(10);
        assert_eq!(g.get(), -3);
        assert_eq!(reg.counter_value("c_total"), Some(5));
    }

    #[test]
    fn histogram_buckets_are_log2_cumulative() {
        let h = Histogram::new(4); // bounds 1, 2, 4, 8, +Inf
        for v in [0, 1, 2, 3, 8, 9, 1000] {
            h.observe(v);
        }
        let cum = h.cumulative();
        assert_eq!(cum[0], (Some(1), 2)); // 0, 1
        assert_eq!(cum[1], (Some(2), 3)); // + 2
        assert_eq!(cum[2], (Some(4), 4)); // + 3
        assert_eq!(cum[3], (Some(8), 5)); // + 8
        assert_eq!(cum[4], (None, 7)); // + 9, 1000
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1023);
    }

    #[test]
    fn counter_vec_children_and_sum() {
        let reg = MetricsRegistry::new();
        let v = reg.counter_vec("req_total", "requests", &["method", "status"]);
        v.with(&["GET", "200"]).add(3);
        v.with(&["POST", "400"]).inc();
        v.with(&["GET", "200"]).inc();
        assert_eq!(v.value(&["GET", "200"]), 4);
        assert_eq!(v.sum(), 5);
        assert_eq!(reg.counter_vec_sum("req_total"), Some(5));
    }

    #[test]
    fn render_is_valid_exposition() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", "with \\ and \n in help").add(2);
        reg.gauge("b", "gauge").set(-4);
        reg.histogram("h_us", "hist", 4).observe(5);
        let v = reg.counter_vec("r_total", "vec", &["fmt"]);
        v.with(&["csv\"x"]).inc();
        let text = reg.render_to_string();
        assert!(text.contains("# HELP a_total with \\\\ and \\n in help"));
        assert!(text.contains("b -4"));
        assert!(text.contains("h_us_bucket{le=\"8\"} 1"));
        assert!(text.contains("h_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("h_us_sum 5"));
        assert!(text.contains("r_total{fmt=\"csv\\\"x\"} 1"));
        let samples = MetricsRegistry::parse_exposition(&text).unwrap();
        assert!(samples.iter().any(|(n, _, v)| n == "a_total" && *v == 2.0));
    }

    #[test]
    fn disarm_flag_flips() {
        let reg = MetricsRegistry::new();
        assert!(reg.armed());
        reg.disarm();
        assert!(!reg.armed());
        reg.arm();
        assert!(reg.armed());
    }

    #[test]
    fn parse_rejects_untyped_and_garbage() {
        assert!(MetricsRegistry::parse_exposition("orphan 3").is_err());
        assert!(MetricsRegistry::parse_exposition("# TYPE x counter\nx notanumber").is_err());
        assert!(MetricsRegistry::parse_exposition("").is_err());
        let ok = "# TYPE x counter\nx 3\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1";
        assert!(MetricsRegistry::parse_exposition(ok).is_ok());
    }
}
