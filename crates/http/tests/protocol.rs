//! SPARQL 1.1 Protocol conformance over a real loopback socket: the
//! conneg matrix (each wire format + default + 406), method and
//! Content-Type routing, the 400/406/408/500 status mapping (bodies
//! carrying the parser's / governor's message), percent-decoding through
//! the full stack, update-then-query visibility, keep-alive, and the
//! bounded-memory streaming of a ≥100k-triple CONSTRUCT.

mod common;

use std::time::{Duration, Instant};

use common::{boot, get_query, request, Client, TestServer};
use sparqlog::{Store, Term};
use sparqlog_http::{percent_encode, ServerConfig};

const PREFIX: &str = "PREFIX ex: <http://ex.org/> ";

/// People + a ring: star joins for cheap queries, `ex:next+` closure as
/// the expensive recursive shape a 1 ms budget always interrupts.
fn fixture_store() -> Store {
    let mut src = String::from(
        r#"@prefix ex: <http://ex.org/> .
ex:alice ex:name "Alice" ; ex:knows ex:bob .
ex:bob ex:name "Bob" ; ex:knows ex:carol .
ex:carol ex:name "Carol" .
"#,
    );
    for i in 0..150 {
        src.push_str(&format!("ex:n{i} ex:next ex:n{} .\n", (i + 1) % 150));
        if i % 7 == 0 {
            src.push_str(&format!("ex:n{i} ex:next ex:n{} .\n", (i * 3 + 1) % 150));
        }
    }
    let store = Store::new();
    store.load_turtle(&src).unwrap();
    store
}

fn fixture_server() -> TestServer {
    boot(
        fixture_store(),
        ServerConfig {
            workers: 2,
            keep_alive_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    )
}

const SELECT_NAMES: &str = "PREFIX ex: <http://ex.org/> SELECT ?p ?n WHERE { ?p ex:name ?n }";
const CONSTRUCT_KNOWS: &str =
    "PREFIX ex: <http://ex.org/> CONSTRUCT { ?a ex:met ?b } WHERE { ?a ex:knows ?b }";

// ------------------------------------------------------------- conneg

#[test]
fn conneg_matrix_solutions() {
    let server = fixture_server();
    let reference = fixture_store().execute(SELECT_NAMES).unwrap();

    for (accept, expect_ct, expect_body) in [
        (
            None,
            "application/sparql-results+json",
            reference.to_json().unwrap(),
        ),
        (
            Some("application/sparql-results+json"),
            "application/sparql-results+json",
            reference.to_json().unwrap(),
        ),
        (
            Some("application/json"),
            "application/sparql-results+json",
            reference.to_json().unwrap(),
        ),
        (
            Some("text/csv"),
            "text/csv; charset=utf-8",
            reference.to_csv().unwrap(),
        ),
        (
            Some("text/tab-separated-values"),
            "text/tab-separated-values; charset=utf-8",
            reference.to_tsv().unwrap(),
        ),
        (
            Some("*/*"),
            "application/sparql-results+json",
            reference.to_json().unwrap(),
        ),
        (
            Some("text/csv;q=0.3, text/tab-separated-values;q=0.9"),
            "text/tab-separated-values; charset=utf-8",
            reference.to_tsv().unwrap(),
        ),
    ] {
        let r = get_query(server.addr, SELECT_NAMES, accept);
        assert_eq!(r.status, 200, "accept {accept:?}: {}", r.text());
        assert_eq!(
            r.header("content-type"),
            Some(expect_ct),
            "accept {accept:?}"
        );
        assert_eq!(r.text(), expect_body, "accept {accept:?}");
    }
}

#[test]
fn conneg_matrix_graphs() {
    let server = fixture_server();
    let reference = fixture_store().execute(CONSTRUCT_KNOWS).unwrap();

    for (accept, expect_ct, expect_body) in [
        (
            None,
            "application/n-triples",
            reference.to_ntriples().unwrap(),
        ),
        (
            Some("application/n-triples"),
            "application/n-triples",
            reference.to_ntriples().unwrap(),
        ),
        (
            Some("text/turtle"),
            "text/turtle",
            reference.to_turtle().unwrap(),
        ),
        (
            Some("*/*"),
            "application/n-triples",
            reference.to_ntriples().unwrap(),
        ),
    ] {
        let r = get_query(server.addr, CONSTRUCT_KNOWS, accept);
        assert_eq!(r.status, 200, "accept {accept:?}: {}", r.text());
        assert_eq!(
            r.header("content-type"),
            Some(expect_ct),
            "accept {accept:?}"
        );
        assert_eq!(r.text(), expect_body, "accept {accept:?}");
    }
}

#[test]
fn conneg_406_when_nothing_acceptable() {
    let server = fixture_server();
    // A graph format for a SELECT, a solutions format for a CONSTRUCT,
    // and a type we never speak.
    for (query, accept) in [
        (SELECT_NAMES, "text/turtle"),
        (SELECT_NAMES, "text/html"),
        (CONSTRUCT_KNOWS, "application/sparql-results+json"),
        (CONSTRUCT_KNOWS, "text/csv"),
    ] {
        let r = get_query(server.addr, query, Some(accept));
        assert_eq!(r.status, 406, "accept {accept:?}: {}", r.text());
        assert!(r.text().contains("supported:"), "{}", r.text());
    }
}

// ------------------------------------------------- routing and methods

#[test]
fn method_and_content_type_routing() {
    let server = fixture_server();
    let ask = "ASK { ?s ?p ?o }";
    let expected = "{\"head\":{},\"boolean\":true}";

    // GET /query with query string.
    let r = get_query(server.addr, ask, None);
    assert_eq!((r.status, r.text()), (200, expected));

    // POST /query, direct sparql-query body.
    let r = request(
        server.addr,
        "POST",
        "/query",
        &[("Content-Type", "application/sparql-query")],
        Some(ask.as_bytes()),
    );
    assert_eq!((r.status, r.text()), (200, expected));

    // POST /query, form-encoded body.
    let form = format!("query={}", percent_encode(ask));
    let r = request(
        server.addr,
        "POST",
        "/query",
        &[("Content-Type", "application/x-www-form-urlencoded")],
        Some(form.as_bytes()),
    );
    assert_eq!((r.status, r.text()), (200, expected));

    // POST /query with a Content-Type we don't speak.
    let r = request(
        server.addr,
        "POST",
        "/query",
        &[("Content-Type", "application/sparql-update")],
        Some("CLEAR ALL".as_bytes()),
    );
    assert_eq!(r.status, 415, "{}", r.text());

    // Wrong methods.
    let r = request(server.addr, "PUT", "/query", &[], Some(ask.as_bytes()));
    assert_eq!(r.status, 405);
    assert_eq!(r.header("allow"), Some("GET, POST"));
    let r = request(server.addr, "GET", "/update?update=CLEAR%20ALL", &[], None);
    assert_eq!(r.status, 405);
    assert_eq!(r.header("allow"), Some("POST"));

    // Unknown path.
    let r = request(server.addr, "GET", "/nope", &[], None);
    assert_eq!(r.status, 404);

    // Missing parameter.
    let r = request(server.addr, "GET", "/query", &[], None);
    assert_eq!(r.status, 400);
    assert!(r.text().contains("query"), "{}", r.text());

    // Unsupported protocol dataset parameters are refused, not ignored.
    let r = request(
        server.addr,
        "GET",
        &format!(
            "/query?query={}&default-graph-uri=http%3A%2F%2Fe%2Fg",
            percent_encode(ask)
        ),
        &[],
        None,
    );
    assert_eq!(r.status, 400);
    assert!(r.text().contains("default-graph-uri"), "{}", r.text());
}

#[test]
fn malformed_query_is_400_with_parser_message() {
    let server = fixture_server();
    let bad = "SELECT ?x WHERE { ?x <http://e/p ?y }";
    let parser_message = sparqlog_sparql::parse_query(bad).unwrap_err().to_string();
    let r = get_query(server.addr, bad, None);
    assert_eq!(r.status, 400);
    assert!(
        r.text().contains(&parser_message),
        "body {:?} must contain parser message {parser_message:?}",
        r.text()
    );

    // An update fed to /query is also a 400, not a silent write.
    let r = get_query(
        server.addr,
        "INSERT DATA { <http://e/a> <http://e/p> 1 }",
        None,
    );
    assert_eq!(r.status, 400, "{}", r.text());
}

// ------------------------------------------------------ status mapping

#[test]
fn budget_exceeded_is_408_within_50ms_of_deadline() {
    let server = fixture_server();
    // Full transitive closure over the shortcut ring: expensive enough
    // that a 1 ms budget always interrupts it mid-fixpoint.
    let closure = format!("{PREFIX}SELECT ?a ?b WHERE {{ ?a ex:next+ ?b }}");
    let target = format!("/query?query={}&timeout=1", percent_encode(&closure));

    let mut client = Client::connect(server.addr);
    let start = Instant::now();
    let r = client.request("GET", &target, &[], None);
    let elapsed = start.elapsed();

    assert_eq!(r.status, 408, "{}", r.text());
    assert!(r.text().contains("aborted"), "{}", r.text());
    // The acceptance bar: the 408 lands within ~50 ms of the 1 ms
    // budget (governor checks are batch-granular; HTTP adds parse +
    // conneg + loopback).
    assert!(
        elapsed < Duration::from_millis(1 + 50),
        "408 took {elapsed:?}"
    );

    // The connection survives an aborted request; the next query works.
    let r = client.request(
        "GET",
        &format!("/query?query={}", percent_encode("ASK { ?s ?p ?o }")),
        &[],
        None,
    );
    assert_eq!(
        (r.status, r.text()),
        (200, "{\"head\":{},\"boolean\":true}")
    );
}

#[test]
fn evaluation_defect_is_500_not_408() {
    let server = fixture_server();
    // Debug-build fault injection (same hook as the PR 7 containment
    // tests): a query carrying the marker panics inside evaluation. The
    // server must answer 500 and survive.
    std::env::set_var("SPARQLOG_PANIC_MARKER", "XHTTP500X");
    let poisoned = "# XHTTP500X\nASK { ?s ?p ?o }";
    let r = get_query(server.addr, poisoned, None);
    std::env::remove_var("SPARQLOG_PANIC_MARKER");
    assert_eq!(r.status, 500, "{}", r.text());
    assert!(r.text().contains("internal error"), "{}", r.text());

    // And the server still serves.
    let r = get_query(server.addr, "ASK { ?s ?p ?o }", None);
    assert_eq!(r.status, 200, "{}", r.text());
}

// --------------------------------------------------------- update flow

#[test]
fn update_then_query_visibility() {
    let server = fixture_server();

    // Form-encoded update.
    let insert = r#"PREFIX ex: <http://ex.org/> INSERT DATA { ex:dave ex:name "Dave" }"#;
    let form = format!("update={}", percent_encode(insert));
    let r = request(
        server.addr,
        "POST",
        "/update",
        &[("Content-Type", "application/x-www-form-urlencoded")],
        Some(form.as_bytes()),
    );
    assert_eq!(r.status, 204, "{}", r.text());
    assert!(r.body.is_empty());

    // Direct application/sparql-update body.
    let insert2 = r#"PREFIX ex: <http://ex.org/> INSERT DATA { ex:erin ex:name "Erin" }"#;
    let r = request(
        server.addr,
        "POST",
        "/update",
        &[("Content-Type", "application/sparql-update")],
        Some(insert2.as_bytes()),
    );
    assert_eq!(r.status, 204, "{}", r.text());

    // Both commits are visible to a subsequent query.
    let q = format!("{PREFIX}SELECT ?n WHERE {{ ?p ex:name ?n }}");
    let r = get_query(server.addr, &q, Some("text/csv"));
    assert_eq!(r.status, 200);
    for name in ["Dave", "Erin", "Alice"] {
        assert!(r.text().contains(name), "{}", r.text());
    }

    // A malformed update is 400 with the parser's message.
    let r = request(
        server.addr,
        "POST",
        "/update",
        &[("Content-Type", "application/sparql-update")],
        Some("INSERT DATA { broken".as_bytes()),
    );
    assert_eq!(r.status, 400, "{}", r.text());
}

// ------------------------------------------------------ percent-decode

#[test]
fn percent_decoding_survives_tricky_queries_end_to_end() {
    let server = fixture_server();
    // Install a literal containing &, =, +, % and multi-byte UTF-8 via
    // a form-encoded update, then read it back via GET with the same
    // characters percent-encoded in the query string.
    let tricky = "a&b=c+d%e café";
    let insert = format!(r#"PREFIX ex: <http://ex.org/> INSERT DATA {{ ex:t ex:v "{tricky}" }}"#);
    let r = request(
        server.addr,
        "POST",
        "/update",
        &[("Content-Type", "application/x-www-form-urlencoded")],
        Some(format!("update={}", percent_encode(&insert)).as_bytes()),
    );
    assert_eq!(r.status, 204, "{}", r.text());

    let q = format!(r#"{PREFIX}ASK {{ ex:t ex:v "{tricky}" }}"#);
    let r = get_query(server.addr, &q, None);
    assert_eq!(
        (r.status, r.text()),
        (200, "{\"head\":{},\"boolean\":true}")
    );

    // And `+` in a form body means space, not plus.
    let q2 = format!("{PREFIX}ASK {{ ex:alice ex:name \"Alice\" }}").replace(' ', "+");
    let r = request(
        server.addr,
        "POST",
        "/query",
        &[("Content-Type", "application/x-www-form-urlencoded")],
        Some(format!("query={q2}").as_bytes()),
    );
    assert_eq!(
        (r.status, r.text()),
        (200, "{\"head\":{},\"boolean\":true}")
    );
}

// ----------------------------------------------- connection management

#[test]
fn keep_alive_serves_multiple_requests_per_connection() {
    let server = fixture_server();
    let mut client = Client::connect(server.addr);
    for _ in 0..3 {
        let r = client.request(
            "GET",
            &format!("/query?query={}", percent_encode("ASK { ?s ?p ?o }")),
            &[],
            None,
        );
        assert_eq!(r.status, 200);
        assert_eq!(r.header("connection"), Some("keep-alive"));
    }
    // Connection: close is honored — the server answers and hangs up.
    let r = client.request(
        "GET",
        &format!("/query?query={}", percent_encode("ASK { ?s ?p ?o }")),
        &[("Connection", "close")],
        None,
    );
    assert_eq!(r.status, 200);
    assert_eq!(r.header("connection"), Some("close"));
}

#[test]
fn malformed_request_line_is_400() {
    let server = fixture_server();
    let mut client = Client::connect(server.addr);
    client.send_raw(b"NOT A REQUEST\r\n\r\n");
    let r = client.read_response();
    assert_eq!(r.status, 400);
}

// ------------------------------------------------- observability (PR 10)

/// Satellite (b): every response path echoes a client-supplied
/// `X-Request-Id` and generates one when the client sent none.
#[test]
fn request_id_echoed_and_generated() {
    let server = fixture_server();
    let ask_target = format!("/query?query={}", percent_encode("ASK { ?s ?p ?o }"));

    // Echo, verbatim.
    let r = request(
        server.addr,
        "GET",
        &ask_target,
        &[("X-Request-Id", "trace-42/alpha")],
        None,
    );
    assert_eq!(r.status, 200);
    assert_eq!(r.header("x-request-id"), Some("trace-42/alpha"));

    // Generated on success, error, 404 and 204 paths; distinct per
    // request.
    let a = request(server.addr, "GET", &ask_target, &[], None);
    let b = request(server.addr, "GET", "/nope", &[], None);
    assert_eq!(b.status, 404);
    let a_id = a.header("x-request-id").expect("generated id").to_string();
    let b_id = b.header("x-request-id").expect("id on 404").to_string();
    assert!(!a_id.is_empty() && a_id != b_id);
    let r = request(
        server.addr,
        "POST",
        "/update",
        &[("Content-Type", "application/sparql-update")],
        Some(b"PREFIX ex: <http://ex.org/> INSERT DATA { ex:x ex:y ex:z }"),
    );
    assert_eq!(r.status, 204);
    assert!(r.header("x-request-id").is_some());
}

/// Satellite (a): a governor abort is a 408 whose JSON body carries the
/// structured detail (reason, elapsed, rows derived), not just prose.
#[test]
fn abort_is_408_with_structured_json_body() {
    let server = fixture_server();
    let closure = format!("{PREFIX}SELECT ?a ?b WHERE {{ ?a ex:next+ ?b }}");
    let target = format!("/query?query={}&timeout=1", percent_encode(&closure));
    let r = request(server.addr, "GET", &target, &[], None);
    assert_eq!(r.status, 408, "{}", r.text());
    assert_eq!(r.header("content-type"), Some("application/json"));
    let body = r.text();
    assert!(
        body.contains("\"reason\":\"deadline\""),
        "structured reason missing: {body}"
    );
    assert!(body.contains("\"elapsed_ms\":"), "{body}");
    assert!(body.contains("\"rows_derived\":"), "{body}");
}

/// Tentpole: `GET /metrics` serves valid Prometheus text exposition
/// covering both the engine's and the HTTP layer's families — and the
/// scrape does not count itself in the exposition it returns.
#[test]
fn metrics_endpoint_serves_valid_exposition() {
    let server = fixture_server();
    let r = get_query(server.addr, SELECT_NAMES, None);
    assert_eq!(r.status, 200);

    let r = request(server.addr, "GET", "/metrics", &[], None);
    assert_eq!(r.status, 200);
    assert!(
        r.header("content-type").unwrap().starts_with("text/plain"),
        "{:?}",
        r.header("content-type")
    );
    let samples =
        sparqlog::MetricsRegistry::parse_exposition(r.text()).expect("well-formed exposition");
    let sample = |name: &str, labels: &str| {
        samples
            .iter()
            .find(|(n, l, _)| n == name && l == labels)
            .map(|(_, _, v)| *v)
    };
    // Engine-side: the query above was counted.
    assert_eq!(sample("sparqlog_queries_total", ""), Some(1.0));
    // HTTP-side: exactly that one 200 — this scrape is absent from its
    // own exposition.
    assert_eq!(
        sample(
            "sparqlog_http_requests_total",
            "method=\"GET\",status=\"200\""
        ),
        Some(1.0)
    );
    assert!(samples
        .iter()
        .any(|(n, _, _)| n == "sparqlog_http_request_duration_us_bucket"));

    // /metrics speaks GET only.
    let r = request(server.addr, "POST", "/metrics", &[], None);
    assert_eq!(r.status, 405);
    assert_eq!(r.header("allow"), Some("GET"));
}

/// Tentpole: `profile=true` ships the per-query profile as an
/// `X-Query-Profile` chunked trailer without disturbing the body.
#[test]
fn profile_param_ships_trailer_sidecar() {
    let server = fixture_server();
    let plain = get_query(server.addr, SELECT_NAMES, None);
    assert_eq!(plain.status, 200);
    assert!(plain.header("x-query-profile").is_none());

    let target = format!("/query?query={}&profile=true", percent_encode(SELECT_NAMES));
    let r = request(server.addr, "GET", &target, &[], None);
    assert_eq!(r.status, 200, "{}", r.text());
    assert_eq!(r.header("trailer"), Some("X-Query-Profile"));
    let profile = r.header("x-query-profile").expect("profile trailer");
    for key in [
        "\"elapsed_us\"",
        "\"strata\"",
        "\"rules\"",
        "\"delta_rows\"",
    ] {
        assert!(profile.contains(key), "profile missing {key}: {profile}");
    }
    // The body is byte-identical to the unprofiled response.
    assert_eq!(r.text(), plain.text());
}

// ----------------------------------------------------------- streaming

/// The acceptance test: a CONSTRUCT returning ≥100k triples streams as
/// bounded chunks — read incrementally, every frame is at most the
/// configured chunk size (server-side buffering is O(chunk), proven
/// allocation-wise by `benches/http_stream.rs` / BENCH_pr8.json).
#[test]
fn large_construct_streams_in_bounded_chunks() {
    const N: usize = 100_000;
    const CHUNK: usize = 16 * 1024;
    let store = Store::new();
    {
        let mut w = store.writer();
        for i in 0..N {
            w.insert(
                Term::iri(format!("http://ex.org/s{}", i / 8)),
                Term::iri(format!("http://ex.org/p{}", i % 8)),
                Term::iri(format!("http://ex.org/o{i}")),
            );
        }
        w.commit().unwrap();
    }
    let server = boot(
        store,
        ServerConfig {
            workers: 1,
            chunk_size: CHUNK,
            ..ServerConfig::default()
        },
    );

    let q = "CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o }";
    let r = get_query(server.addr, q, Some("application/n-triples"));
    assert_eq!(r.status, 200);
    assert_eq!(r.header("transfer-encoding"), Some("chunked"));

    // Bounded streaming: many frames, none above the configured size.
    assert!(
        r.chunk_sizes.len() > 50,
        "expected many chunks, got {}",
        r.chunk_sizes.len()
    );
    assert!(
        r.chunk_sizes.iter().all(|&s| s <= CHUNK),
        "a frame exceeded the chunk size: {:?}",
        r.chunk_sizes.iter().max()
    );
    // All full-size except the tail: the writer really coalesces to
    // chunk_size frames rather than flushing per-triple.
    assert!(r.chunk_sizes[..r.chunk_sizes.len() - 1]
        .iter()
        .all(|&s| s == CHUNK));

    // And the payload is the complete, parseable graph.
    let graph = sparqlog_rdf::ntriples::parse(r.text()).unwrap();
    assert_eq!(graph.len(), N);
}
