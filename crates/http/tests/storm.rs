//! Concurrent load against a live server: a Bonifati-shaped traffic mix
//! (many small star joins, a tail of expensive recursive paths under
//! tight budgets) from several keep-alive client threads while a writer
//! thread commits — asserting that no connection hangs, every response
//! is snapshot-consistent, and requests sharing the server with aborted
//! ones are unaffected. The CI matrix reruns this whole file under
//! `SPARQLOG_THREADS=1` and the default width.

mod common;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use common::{boot, boot_shared, request, Client};
use sparqlog::{MetricsRegistry, Store};
use sparqlog_http::{percent_encode, ServerConfig};

const PREFIX: &str = "PREFIX ex: <http://ex.org/> ";

/// Clients × requests-per-client; writer commits run concurrently.
const CLIENTS: usize = 6;
const REQUESTS_PER_CLIENT: usize = 12;
const WRITER_COMMITS: usize = 15;

fn storm_store() -> Store {
    let mut src = String::from("@prefix ex: <http://ex.org/> .\n");
    // Star-shaped entities: the "many small joins" bulk of real logs.
    for i in 0..40 {
        src.push_str(&format!(
            "ex:e{i} ex:name \"entity {i}\" ; ex:kind ex:Widget ; ex:rank ex:r{} .\n",
            i % 5
        ));
    }
    // Shortcut ring: the expensive recursive tail.
    for i in 0..150 {
        src.push_str(&format!("ex:n{i} ex:next ex:n{} .\n", (i + 1) % 150));
        if i % 7 == 0 {
            src.push_str(&format!("ex:n{i} ex:next ex:n{} .\n", (i * 3 + 1) % 150));
        }
    }
    let store = Store::new();
    store.load_turtle(&src).unwrap();
    store
}

/// Every data row of a TSV consistency response must have both columns
/// bound: the writer commits `ex:m ex:left ?k` and `?k ex:tag ?w`
/// atomically, so a half-visible pair means a request crossed two store
/// versions.
fn assert_pairs_consistent(tsv: &str) {
    let mut lines = tsv.lines();
    let header = lines.next().expect("TSV header");
    assert_eq!(header, "?k\t?w");
    for line in lines {
        let (k, w) = line.split_once('\t').expect("two columns");
        assert!(
            !k.is_empty() && !w.is_empty(),
            "torn snapshot: pair row {line:?} has an unbound half"
        );
    }
}

#[test]
fn storm_mixed_load_with_concurrent_writer() {
    let server = boot(
        storm_store(),
        ServerConfig {
            // Every keep-alive client (plus the writer and the final
            // checks) gets a worker of its own.
            workers: CLIENTS + 2,
            keep_alive_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        },
    );
    let addr = server.addr;

    let star = format!(
        "{PREFIX}SELECT ?e ?n WHERE {{ ?e ex:kind ex:Widget . ?e ex:name ?n . ?e ex:rank ex:r1 }}"
    );
    let ask = format!("{PREFIX}ASK {{ ex:e3 ex:kind ex:Widget }}");
    let consistency =
        format!("{PREFIX}SELECT ?k ?w WHERE {{ ex:m ex:left ?k OPTIONAL {{ ?k ex:tag ?w }} }}");
    let closure = format!("{PREFIX}SELECT ?a ?b WHERE {{ ?a ex:next+ ?b }}");

    let aborted = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        // Writer: commits pair k atomically through POST /update while
        // the read storm runs.
        scope.spawn(|| {
            for k in 0..WRITER_COMMITS {
                let update = format!(
                    "{PREFIX}INSERT DATA {{ ex:m ex:left ex:k{k} . ex:k{k} ex:tag ex:w{k} }}"
                );
                let r = request(
                    addr,
                    "POST",
                    "/update",
                    &[("Content-Type", "application/x-www-form-urlencoded")],
                    Some(format!("update={}", percent_encode(&update)).as_bytes()),
                );
                assert_eq!(r.status, 204, "writer commit {k}: {}", r.text());
                std::thread::sleep(Duration::from_millis(3));
            }
        });

        // Readers: keep-alive connections firing the mixed workload.
        for client_id in 0..CLIENTS {
            let (star, ask, consistency, closure) = (&star, &ask, &consistency, &closure);
            let (aborted, completed) = (&aborted, &completed);
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                for i in 0..REQUESTS_PER_CLIENT {
                    match (client_id + i) % 5 {
                        // The expensive tail, under a 1 ms budget: must
                        // come back 408 (NOT hang, NOT kill siblings).
                        4 => {
                            let target =
                                format!("/query?query={}&timeout=1", percent_encode(closure));
                            let r = client.request("GET", &target, &[], None);
                            assert_eq!(r.status, 408, "client {client_id} req {i}: {}", r.text());
                            aborted.fetch_add(1, Ordering::Relaxed);
                        }
                        // Snapshot-consistency probe.
                        3 => {
                            let target = format!("/query?query={}", percent_encode(consistency));
                            let r = client.request(
                                "GET",
                                &target,
                                &[("Accept", "text/tab-separated-values")],
                                None,
                            );
                            assert_eq!(r.status, 200, "client {client_id} req {i}: {}", r.text());
                            assert_pairs_consistent(r.text());
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        // The small-query bulk.
                        n => {
                            let (q, expect_contains) = if n == 0 {
                                (ask, "\"boolean\":true")
                            } else {
                                (star, "entity 1")
                            };
                            let target = format!("/query?query={}", percent_encode(q));
                            let r = client.request("GET", &target, &[], None);
                            assert_eq!(r.status, 200, "client {client_id} req {i}: {}", r.text());
                            assert!(
                                r.text().contains(expect_contains),
                                "client {client_id} req {i}: {}",
                                r.text()
                            );
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    // Every request came back (scope join = no hung connections; the
    // 60 s client read timeout turns a hang into a loud failure).
    let total = CLIENTS * REQUESTS_PER_CLIENT;
    let aborts = aborted.load(Ordering::Relaxed);
    let successes = completed.load(Ordering::Relaxed);
    assert_eq!(aborts + successes, total);
    assert!(aborts > 0, "the storm must include aborted requests");
    // Sibling isolation: every non-budgeted request succeeded (asserted
    // per-request above); and the writer's commits all landed.
    let final_check = format!("{PREFIX}SELECT ?k ?w WHERE {{ ex:m ex:left ?k . ?k ex:tag ?w }}");
    let r = request(
        addr,
        "GET",
        &format!("/query?query={}", percent_encode(&final_check)),
        &[("Accept", "text/csv")],
        None,
    );
    assert_eq!(r.status, 200);
    let rows = r.text().lines().count() - 1;
    assert_eq!(rows, WRITER_COMMITS, "all commits visible: {}", r.text());
}

/// PR 10 satellite: under a concurrent storm, the registry is an exact
/// ledger — request, abort and commit counters sum to precisely the
/// work the clients performed, nothing dropped, nothing double-counted.
/// The CI matrix reruns this under `SPARQLOG_THREADS=1` and the default
/// pool width.
#[test]
fn metrics_ledger_matches_work_exactly() {
    const LEDGER_CLIENTS: usize = 4;
    const OK_PER_CLIENT: usize = 3;
    const ABORTS_PER_CLIENT: usize = 1;
    const UPDATES: usize = 3;

    let store = Arc::new(storm_store());
    let reg = store.metrics();
    let server = boot_shared(
        Arc::clone(&store),
        ServerConfig {
            workers: LEDGER_CLIENTS + 2,
            keep_alive_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        },
    );
    let addr = server.addr;

    // Baselines: loading the fixture already committed once, and no
    // query/abort/HTTP traffic has happened yet.
    let base_commits = reg.counter_value("sparqlog_store_commits_total").unwrap();
    let base_queries = reg.counter_value("sparqlog_queries_total").unwrap();
    let base_rows_added = reg
        .counter_value("sparqlog_store_rows_added_total")
        .unwrap();
    assert_eq!(reg.counter_vec_sum("sparqlog_query_aborts_total"), Some(0));

    let ask = format!("{PREFIX}ASK {{ ex:e3 ex:kind ex:Widget }}");
    let closure = format!("{PREFIX}SELECT ?a ?b WHERE {{ ?a ex:next+ ?b }}");

    std::thread::scope(|scope| {
        for _ in 0..LEDGER_CLIENTS {
            let (ask, closure) = (&ask, &closure);
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                for _ in 0..OK_PER_CLIENT {
                    let target = format!("/query?query={}", percent_encode(ask));
                    let r = client.request("GET", &target, &[], None);
                    assert_eq!(r.status, 200, "{}", r.text());
                }
                for _ in 0..ABORTS_PER_CLIENT {
                    let target = format!("/query?query={}&timeout=1", percent_encode(closure));
                    let r = client.request("GET", &target, &[], None);
                    assert_eq!(r.status, 408, "{}", r.text());
                }
            });
        }
        scope.spawn(|| {
            for k in 0..UPDATES {
                let update = format!("{PREFIX}INSERT DATA {{ ex:ledger ex:entry ex:l{k} }}");
                let r = request(
                    addr,
                    "POST",
                    "/update",
                    &[("Content-Type", "application/sparql-update")],
                    Some(update.as_bytes()),
                );
                assert_eq!(r.status, 204, "{}", r.text());
            }
            // One guaranteed 400 in the mix.
            let r = request(addr, "GET", "/query?query=not+sparql", &[], None);
            assert_eq!(r.status, 400);
        });
    });

    // Exact ledger, read straight off the store's registry (registering
    // again returns the same families the server records into).
    let requests = reg.counter_vec("sparqlog_http_requests_total", "", &["method", "status"]);
    let ok_queries = (LEDGER_CLIENTS * OK_PER_CLIENT) as u64;
    let aborts = (LEDGER_CLIENTS * ABORTS_PER_CLIENT) as u64;
    assert_eq!(requests.value(&["GET", "200"]), ok_queries);
    assert_eq!(requests.value(&["GET", "408"]), aborts);
    assert_eq!(requests.value(&["GET", "400"]), 1);
    assert_eq!(requests.value(&["POST", "204"]), UPDATES as u64);
    assert_eq!(requests.sum(), ok_queries + aborts + 1 + UPDATES as u64);

    assert_eq!(
        reg.counter_value("sparqlog_queries_total"),
        Some(base_queries + ok_queries)
    );
    assert_eq!(
        reg.counter_vec_sum("sparqlog_query_aborts_total"),
        Some(aborts)
    );
    assert_eq!(
        reg.counter_value("sparqlog_store_commits_total"),
        Some(base_commits + UPDATES as u64)
    );
    // Each update inserted exactly one fresh triple.
    assert_eq!(
        reg.counter_value("sparqlog_store_rows_added_total"),
        Some(base_rows_added + UPDATES as u64)
    );

    // And the ledger scrapes cleanly over HTTP: the exposition parses,
    // carries the exact GET/200 count, and the scrape itself is not in
    // the exposition it returned.
    let r = request(addr, "GET", "/metrics", &[], None);
    assert_eq!(r.status, 200);
    let samples = MetricsRegistry::parse_exposition(r.text()).expect("valid exposition");
    let got = samples
        .iter()
        .find(|(n, l, _)| {
            n == "sparqlog_http_requests_total" && l == "method=\"GET\",status=\"200\""
        })
        .map(|(_, _, v)| *v);
    assert_eq!(got, Some(ok_queries as f64));
    assert_eq!(requests.value(&["GET", "200"]), ok_queries + 1);
}
