//! Shared raw-TCP test client: boots a server over a fixture store and
//! speaks literal HTTP/1.1 on a loopback socket, decoding chunked
//! bodies chunk by chunk (recording frame sizes, so tests can assert
//! bounded streaming).

// Each test binary uses its own subset of these helpers.
#![allow(dead_code)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use sparqlog::Store;
use sparqlog_http::{ServerConfig, ServerHandle, SparqlServer};

/// A running server plus the handle to stop it. Dropping shuts it down.
pub struct TestServer {
    pub addr: SocketAddr,
    handle: ServerHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Boots `store` on an ephemeral loopback port with `config`.
pub fn boot(store: Store, config: ServerConfig) -> TestServer {
    boot_shared(Arc::new(store), config)
}

/// [`boot`] for tests that keep their own `Arc<Store>` handle (e.g. to
/// read the store's metrics registry next to the HTTP traffic).
pub fn boot_shared(store: Arc<Store>, config: ServerConfig) -> TestServer {
    let bound = SparqlServer::with_config(store, config)
        .bind("127.0.0.1:0")
        .expect("bind loopback");
    let addr = bound.local_addr().expect("local addr");
    let handle = bound.handle().expect("handle");
    let thread = std::thread::spawn(move || bound.serve());
    TestServer {
        addr,
        handle,
        thread: Some(thread),
    }
}

/// Fully-read response: status, headers (lowercased names), body, and —
/// when the body arrived chunked — every chunk frame's size in order.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    pub chunk_sizes: Vec<usize>,
}

impl Response {
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    pub fn text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("response body is UTF-8")
    }
}

/// One client connection; issue several requests to exercise keep-alive.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    /// Sends raw bytes (a hand-built request).
    pub fn send_raw(&mut self, raw: &[u8]) {
        self.stream.write_all(raw).expect("send");
    }

    /// Builds and sends a request; `body` implies a `Content-Length`.
    pub fn send(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: Option<&[u8]>,
    ) {
        let mut req = format!("{method} {target} HTTP/1.1\r\nHost: test\r\n");
        for (k, v) in headers {
            req.push_str(&format!("{k}: {v}\r\n"));
        }
        if let Some(b) = body {
            req.push_str(&format!("Content-Length: {}\r\n", b.len()));
        }
        req.push_str("\r\n");
        let mut bytes = req.into_bytes();
        if let Some(b) = body {
            bytes.extend_from_slice(b);
        }
        self.send_raw(&bytes);
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read line");
        line.trim_end_matches(['\r', '\n']).to_string()
    }

    /// Reads one full response, decoding chunked framing incrementally.
    pub fn read_response(&mut self) -> Response {
        let status_line = self.read_line();
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
            .parse()
            .expect("numeric status");
        let mut headers = Vec::new();
        loop {
            let line = self.read_line();
            if line.is_empty() {
                break;
            }
            let (k, v) = line.split_once(':').expect("header line");
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
        let header = |headers: &[(String, String)], name: &str| {
            headers
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.to_string())
        };
        let chunked =
            header(&headers, "transfer-encoding").map(|v| v.contains("chunked")) == Some(true);
        let content_length = header(&headers, "content-length");
        let mut body = Vec::new();
        let mut chunk_sizes = Vec::new();
        if chunked {
            // Chunk-at-a-time: this read loop IS the "incremental
            // consumer" the streaming acceptance test relies on.
            loop {
                let size_line = self.read_line();
                let size = usize::from_str_radix(size_line.trim(), 16)
                    .unwrap_or_else(|_| panic!("bad chunk size {size_line:?}"));
                if size == 0 {
                    // Trailer fields may sit between the terminal frame
                    // and the final CRLF; fold them into the header list.
                    loop {
                        let line = self.read_line();
                        if line.is_empty() {
                            break;
                        }
                        let (k, v) = line.split_once(':').expect("trailer line");
                        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
                    }
                    break;
                }
                let mut chunk = vec![0u8; size];
                self.reader.read_exact(&mut chunk).expect("chunk body");
                let mut crlf = [0u8; 2];
                self.reader.read_exact(&mut crlf).expect("chunk CRLF");
                assert_eq!(&crlf, b"\r\n");
                chunk_sizes.push(size);
                body.extend_from_slice(&chunk);
            }
        } else if let Some(len) = content_length {
            let len: usize = len.parse().expect("content length");
            body = vec![0u8; len];
            self.reader.read_exact(&mut body).expect("body");
        } else {
            self.reader.read_to_end(&mut body).expect("body to EOF");
        }
        Response {
            status,
            headers,
            body,
            chunk_sizes,
        }
    }

    /// Send + read in one go.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: Option<&[u8]>,
    ) -> Response {
        self.send(method, target, headers, body);
        self.read_response()
    }
}

/// One-shot request on a fresh connection.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: Option<&[u8]>,
) -> Response {
    let mut c = Client::connect(addr);
    c.request(method, target, headers, body)
}

/// `GET /query?query=…` with an Accept header, on a fresh connection.
pub fn get_query(addr: SocketAddr, query: &str, accept: Option<&str>) -> Response {
    let target = format!("/query?query={}", sparqlog_http::percent_encode(query));
    let mut headers: Vec<(&str, &str)> = Vec::new();
    if let Some(a) = accept {
        headers.push(("Accept", a));
    }
    request(addr, "GET", &target, &headers, None)
}
