//! The SPARQL 1.1 Protocol server: routing, status mapping, budgets,
//! and streaming responses.
//!
//! One [`SparqlServer`] wraps an `Arc<Store>`. [`SparqlServer::bind`]
//! yields a [`BoundServer`] whose [`serve`](BoundServer::serve) runs
//! `workers` accept loops over the PR 2 worker pool
//! ([`sparqlog_datalog::run_scoped`]) — worker-per-connection with
//! keep-alive. Per request:
//!
//! * one [`Snapshot`](sparqlog::Snapshot) is pinned, so the whole
//!   response is a consistent store version even while writers commit;
//! * a [`Budget`] carries the request deadline (server default, capped
//!   `timeout=` ms override) and a connection-drop [`CancelToken`]
//!   (see [`crate::watch`]) into the PR 7 governor;
//! * the result streams out through a
//!   [`ChunkedWriter`] — a huge CONSTRUCT
//!   never materializes server-side.
//!
//! Updates (`POST /update`) run through [`Store::update`], which
//! serializes write requests behind the commit lock while read traffic
//! continues on its snapshots.
//!
//! Observability (PR 10): `GET /metrics` renders the store's shared
//! [`MetricsRegistry`]; every response carries an `X-Request-Id`; each
//! written response is recorded (method/status counter, latency
//! histogram, streamed bytes by format) *after* its bytes go out, so a
//! metrics scrape never counts itself.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sparqlog::results_io::{
    write_csv, write_json, write_ntriples, write_tsv, write_turtle, WriteError,
};
use sparqlog::{
    AbortReason, Budget, CancelToken, MetricsRegistry, QueryProfile, QueryResults, SparqLogError,
    Store,
};
use sparqlog_obs::{CounterVec, Histogram};
use sparqlog_sparql::{parse_query, QueryForm};

use crate::conneg::{candidates, negotiate, Format};
use crate::http::{
    read_request, write_chunked_head, write_response, ChunkedWriter, Request, RequestError,
};
use crate::urlenc::{find_param, parse_form};
use crate::watch;

/// Tunables for a [`SparqlServer`]. `Default` is sensible for tests and
/// local serving; production deployments mostly raise `workers` and set
/// `default_timeout`.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Accept-loop/connection workers (each holds one connection at a
    /// time; keep-alive included). Defaults to
    /// `max(4, available_parallelism)`.
    pub workers: usize,
    /// Default per-request evaluation budget. A request may *lower* it
    /// with a `timeout=` parameter (milliseconds) but never raise it.
    /// `None` = unlimited unless the request asks for less.
    pub default_timeout: Option<Duration>,
    /// Idle read timeout on kept-alive connections; also bounds how
    /// long a half-sent request can stall a worker.
    pub keep_alive_timeout: Duration,
    /// Chunk size for streamed response bodies (bytes buffered
    /// server-side per connection — the O(chunk) in "bounded memory").
    pub chunk_size: usize,
    /// Maximum accepted request body size.
    pub max_body: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(4),
            default_timeout: None,
            keep_alive_timeout: Duration::from_secs(10),
            chunk_size: 16 * 1024,
            max_body: crate::http::DEFAULT_MAX_BODY,
        }
    }
}

/// A SPARQL 1.1 Protocol endpoint over a shared [`Store`]. See the
/// [module docs](self) for the request lifecycle.
pub struct SparqlServer {
    store: Arc<Store>,
    config: ServerConfig,
}

impl SparqlServer {
    /// Serves `store` with the default [`ServerConfig`].
    pub fn new(store: Arc<Store>) -> Self {
        SparqlServer {
            store,
            config: ServerConfig::default(),
        }
    }

    /// Serves `store` with an explicit configuration.
    pub fn with_config(store: Arc<Store>, config: ServerConfig) -> Self {
        SparqlServer { store, config }
    }

    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port)
    /// without accepting yet.
    pub fn bind(self, addr: &str) -> io::Result<BoundServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(BoundServer {
            listener,
            store: self.store,
            config: self.config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }
}

/// A bound, not-yet-serving endpoint: grab
/// [`local_addr`](BoundServer::local_addr) and a
/// [`handle`](BoundServer::handle), then call
/// [`serve`](BoundServer::serve) (typically on its own thread).
pub struct BoundServer {
    listener: TcpListener,
    store: Arc<Store>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

/// Shuts a serving [`BoundServer`] down from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    workers: usize,
}

impl ServerHandle {
    /// Requests shutdown and unblocks the accept loops. Idempotent.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Each accept loop needs one wake-up connection to notice the
        // flag; connect a few extra in case some races a real client.
        for _ in 0..self.workers + 2 {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

impl BoundServer {
    /// The bound socket address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A cloneable shutdown handle.
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.listener.local_addr()?,
            shutdown: Arc::clone(&self.shutdown),
            workers: self.config.workers.max(1),
        })
    }

    /// Runs the accept loops until [`ServerHandle::shutdown`]; blocks
    /// the calling thread (spawn it for background serving).
    pub fn serve(self) {
        let workers = self.config.workers.max(1);
        let metrics = ServerMetrics::new(self.store.metrics());
        let ctx = Ctx {
            store: &self.store,
            config: &self.config,
            shutdown: &self.shutdown,
            metrics: &metrics,
        };
        let listener = &self.listener;
        sparqlog_datalog::run_scoped(workers, workers, &|_| {
            accept_loop(listener, &ctx);
        });
    }
}

/// Shared per-server state threaded through the handlers.
#[derive(Clone, Copy)]
struct Ctx<'a> {
    store: &'a Store,
    config: &'a ServerConfig,
    shutdown: &'a AtomicBool,
    metrics: &'a ServerMetrics,
}

/// The HTTP layer's families in the store's [`MetricsRegistry`] —
/// registered once per [`BoundServer::serve`] and shared with the
/// engine's own counters, so one `GET /metrics` scrape covers the
/// whole stack.
struct ServerMetrics {
    registry: Arc<MetricsRegistry>,
    requests: Arc<CounterVec>,
    bytes_streamed: Arc<CounterVec>,
    duration_us: Arc<Histogram>,
}

impl ServerMetrics {
    fn new(registry: Arc<MetricsRegistry>) -> Self {
        let requests = registry.counter_vec(
            "sparqlog_http_requests_total",
            "HTTP responses written, by request method and response status.",
            &["method", "status"],
        );
        let bytes_streamed = registry.counter_vec(
            "sparqlog_http_bytes_streamed_total",
            "Chunked response-body bytes put on the wire, by result format.",
            &["format"],
        );
        let duration_us = registry.histogram(
            "sparqlog_http_request_duration_us",
            "Wall time from parsed request to written response (microseconds).",
            22,
        );
        ServerMetrics {
            registry,
            requests,
            bytes_streamed,
            duration_us,
        }
    }
}

/// Per-request bookkeeping: the request id echoed on every response and
/// the method/start-time pair the response recorder needs. A request is
/// recorded when its response is committed (status settled, head about
/// to be written): by the time a client has read a response, it is
/// counted — and `serve_metrics` renders the exposition *before*
/// recording, so a scrape never counts itself.
struct ReqScope<'a> {
    rid: String,
    method_label: String,
    started: Instant,
    metrics: &'a ServerMetrics,
}

impl<'a> ReqScope<'a> {
    fn for_request(req: &Request, metrics: &'a ServerMetrics) -> Self {
        let rid = req
            .header("x-request-id")
            .map(sanitize_request_id)
            .filter(|s| !s.is_empty())
            .unwrap_or_else(fresh_request_id);
        ReqScope {
            rid,
            method_label: req.method.clone(),
            started: Instant::now(),
            metrics,
        }
    }

    /// For responses to requests that never parsed (no method to label).
    fn anonymous(metrics: &'a ServerMetrics) -> Self {
        ReqScope {
            rid: fresh_request_id(),
            method_label: "-".to_string(),
            started: Instant::now(),
            metrics,
        }
    }

    /// The `X-Request-Id` header line for this request.
    fn rid_header(&self) -> String {
        format!("X-Request-Id: {}", self.rid)
    }

    fn record(&self, status: u16) {
        if !self.metrics.registry.armed() {
            return;
        }
        self.metrics
            .requests
            .with(&[&self.method_label, &status.to_string()])
            .inc();
        self.metrics
            .duration_us
            .observe(self.started.elapsed().as_micros() as u64);
    }

    /// Bytes counters trail the body: they are added once the terminal
    /// chunk is on the wire and the total is known.
    fn record_bytes(&self, format_label: &str, bytes: u64) {
        if self.metrics.registry.armed() {
            self.metrics.bytes_streamed.with(&[format_label]).add(bytes);
        }
    }
}

/// Clients may supply their own correlation id; cap it and strip
/// anything that is not printable ASCII so it echoes back as one clean
/// header value.
fn sanitize_request_id(raw: &str) -> String {
    raw.chars()
        .filter(|c| c.is_ascii_graphic())
        .take(128)
        .collect()
}

/// A fresh request id: wall-clock nanoseconds plus a process-wide
/// sequence number — unique without needing an RNG.
fn fresh_request_id() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    format!(
        "{nanos:x}-{:04x}",
        SEQ.fetch_add(1, Ordering::Relaxed) & 0xffff
    )
}

/// Counts the bytes a [`ChunkedWriter`] puts on the wire (frames
/// included), feeding `sparqlog_http_bytes_streamed_total`.
struct CountingWriter<W: Write> {
    inner: W,
    written: u64,
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

fn accept_loop(listener: &TcpListener, ctx: &Ctx<'_>) {
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    return; // wake-up connection from ServerHandle
                }
                // A panicking handler must not take its accept loop
                // down with it (mirrors the batch pool's containment).
                let _ = catch_unwind(AssertUnwindSafe(|| handle_connection(stream, ctx)));
            }
            Err(_) => {
                // Transient accept errors (EMFILE, aborted handshake):
                // back off briefly instead of spinning.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

fn handle_connection(stream: TcpStream, ctx: &Ctx<'_>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(ctx.config.keep_alive_timeout));
    // A dead peer must not pin a worker forever mid-write.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match read_request(&mut reader, ctx.config.max_body, Some(&mut stream)) {
            Err(RequestError::Closed) | Err(RequestError::Io(_)) => return,
            Err(RequestError::Malformed(msg)) => {
                let scope = ReqScope::anonymous(ctx.metrics);
                let _ = respond_text(&mut stream, &scope, 400, &msg, false);
                return;
            }
            Err(RequestError::TooLarge("body")) => {
                let scope = ReqScope::anonymous(ctx.metrics);
                let _ = respond_text(&mut stream, &scope, 413, "request body too large", false);
                return;
            }
            Err(RequestError::TooLarge(what)) => {
                let scope = ReqScope::anonymous(ctx.metrics);
                let _ = respond_text(
                    &mut stream,
                    &scope,
                    431,
                    &format!("{what} too large"),
                    false,
                );
                return;
            }
            Err(RequestError::LengthRequired) => {
                let scope = ReqScope::anonymous(ctx.metrics);
                let _ = respond_text(
                    &mut stream,
                    &scope,
                    411,
                    "chunked request bodies are not supported; send Content-Length",
                    false,
                );
                return;
            }
            Ok(req) => {
                let keep = req.keep_alive && !ctx.shutdown.load(Ordering::SeqCst);
                match handle_request(&req, &mut stream, keep, ctx) {
                    Ok(true) => continue,
                    _ => return,
                }
            }
        }
    }
}

/// Writes a plain-text response; `Ok(keep)` mirrors the keep-alive flag.
fn respond_text(
    stream: &mut TcpStream,
    scope: &ReqScope<'_>,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<bool> {
    respond_text_extra(stream, scope, status, body, keep_alive, &[])
}

fn respond_text_extra(
    stream: &mut TcpStream,
    scope: &ReqScope<'_>,
    status: u16,
    body: &str,
    keep_alive: bool,
    extra: &[&str],
) -> io::Result<bool> {
    let mut text = body.to_string();
    if !text.is_empty() && !text.ends_with('\n') {
        text.push('\n');
    }
    respond_with_type(
        stream,
        scope,
        status,
        "text/plain; charset=utf-8",
        text.as_bytes(),
        keep_alive,
        extra,
    )
}

/// Writes an `application/json` response (the rich 408 abort bodies).
fn respond_json(
    stream: &mut TcpStream,
    scope: &ReqScope<'_>,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<bool> {
    respond_with_type(
        stream,
        scope,
        status,
        "application/json",
        body.as_bytes(),
        keep_alive,
        &[],
    )
}

/// The one non-streaming response chokepoint: stamps `X-Request-Id`,
/// writes the response, then records it in the registry.
fn respond_with_type(
    stream: &mut TcpStream,
    scope: &ReqScope<'_>,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra: &[&str],
) -> io::Result<bool> {
    let rid = scope.rid_header();
    let mut headers: Vec<&str> = Vec::with_capacity(extra.len() + 1);
    headers.push(&rid);
    headers.extend_from_slice(extra);
    scope.record(status);
    write_response(stream, status, content_type, body, keep_alive, &headers)?;
    Ok(keep_alive)
}

/// Dispatches one parsed request. `Ok(true)` keeps the connection.
fn handle_request(
    req: &Request,
    stream: &mut TcpStream,
    keep_alive: bool,
    ctx: &Ctx<'_>,
) -> io::Result<bool> {
    let scope = ReqScope::for_request(req, ctx.metrics);
    let scope = &scope;
    match (req.path.as_str(), req.method.as_str()) {
        ("/query", "GET") => {
            let params = match parse_form(req.query_string.as_deref().unwrap_or("")) {
                Ok(p) => p,
                Err(e) => return respond_text(stream, scope, 400, &e.to_string(), keep_alive),
            };
            let Some(query) = find_param(&params, "query").map(str::to_string) else {
                return respond_text(stream, scope, 400, "missing `query` parameter", keep_alive);
            };
            run_query(req, stream, scope, keep_alive, ctx, &query, &params)
        }
        ("/query", "POST") => {
            match req.content_type().as_deref() {
                Some("application/sparql-query") => {
                    let query = match std::str::from_utf8(&req.body) {
                        Ok(q) => q.to_string(),
                        Err(_) => {
                            return respond_text(
                                stream,
                                scope,
                                400,
                                "query body is not UTF-8",
                                keep_alive,
                            )
                        }
                    };
                    // Protocol params may still ride the query string.
                    let params = parse_form(req.query_string.as_deref().unwrap_or(""))
                        .unwrap_or_default();
                    run_query(req, stream, scope, keep_alive, ctx, &query, &params)
                }
                Some("application/x-www-form-urlencoded") | None => {
                    let body = match std::str::from_utf8(&req.body) {
                        Ok(b) => b,
                        Err(_) => {
                            return respond_text(
                                stream,
                                scope,
                                400,
                                "form body is not UTF-8",
                                keep_alive,
                            )
                        }
                    };
                    let params = match parse_form(body) {
                        Ok(p) => p,
                        Err(e) => {
                            return respond_text(stream, scope, 400, &e.to_string(), keep_alive)
                        }
                    };
                    let Some(query) = find_param(&params, "query").map(str::to_string) else {
                        return respond_text(
                            stream,
                            scope,
                            400,
                            "missing `query` parameter",
                            keep_alive,
                        );
                    };
                    run_query(req, stream, scope, keep_alive, ctx, &query, &params)
                }
                Some(other) => respond_text(
                    stream,
                    scope,
                    415,
                    &format!(
                        "unsupported Content-Type {other:?}; use application/sparql-query or application/x-www-form-urlencoded"
                    ),
                    keep_alive,
                ),
            }
        }
        ("/query", _) => respond_text_extra(
            stream,
            scope,
            405,
            "method not allowed on /query",
            keep_alive,
            &["Allow: GET, POST"],
        ),
        ("/update", "POST") => {
            match req.content_type().as_deref() {
                Some("application/sparql-update") => {
                    let update = match std::str::from_utf8(&req.body) {
                        Ok(u) => u.to_string(),
                        Err(_) => {
                            return respond_text(
                                stream,
                                scope,
                                400,
                                "update body is not UTF-8",
                                keep_alive,
                            )
                        }
                    };
                    run_update(stream, scope, keep_alive, ctx, &update)
                }
                Some("application/x-www-form-urlencoded") | None => {
                    let body = match std::str::from_utf8(&req.body) {
                        Ok(b) => b,
                        Err(_) => {
                            return respond_text(
                                stream,
                                scope,
                                400,
                                "form body is not UTF-8",
                                keep_alive,
                            )
                        }
                    };
                    let params = match parse_form(body) {
                        Ok(p) => p,
                        Err(e) => {
                            return respond_text(stream, scope, 400, &e.to_string(), keep_alive)
                        }
                    };
                    let Some(update) = find_param(&params, "update").map(str::to_string) else {
                        return respond_text(
                            stream,
                            scope,
                            400,
                            "missing `update` parameter",
                            keep_alive,
                        );
                    };
                    run_update(stream, scope, keep_alive, ctx, &update)
                }
                Some(other) => respond_text(
                    stream,
                    scope,
                    415,
                    &format!(
                        "unsupported Content-Type {other:?}; use application/sparql-update or application/x-www-form-urlencoded"
                    ),
                    keep_alive,
                ),
            }
        }
        ("/update", _) => respond_text_extra(
            stream,
            scope,
            405,
            "method not allowed on /update; updates go via POST",
            keep_alive,
            &["Allow: POST"],
        ),
        ("/metrics", "GET") => serve_metrics(stream, scope, keep_alive, ctx),
        ("/metrics", _) => respond_text_extra(
            stream,
            scope,
            405,
            "method not allowed on /metrics",
            keep_alive,
            &["Allow: GET"],
        ),
        _ => respond_text(
            stream,
            scope,
            404,
            "not found; this endpoint serves /query, /update and /metrics",
            keep_alive,
        ),
    }
}

/// `GET /metrics`: the store registry (engine + HTTP families) in the
/// Prometheus text exposition format, streamed chunked like every other
/// response body. The exposition is rendered *before* this request is
/// recorded, so a scrape never counts itself.
fn serve_metrics(
    stream: &mut TcpStream,
    scope: &ReqScope<'_>,
    keep_alive: bool,
    ctx: &Ctx<'_>,
) -> io::Result<bool> {
    let text = scope.metrics.registry.render_to_string();
    let rid = scope.rid_header();
    scope.record(200);
    write_chunked_head(
        stream,
        200,
        "text/plain; version=0.0.4; charset=utf-8",
        keep_alive,
        &[&rid],
    )?;
    let mut chunked = ChunkedWriter::new(&mut *stream, ctx.config.chunk_size);
    let done = chunked
        .write_all(text.as_bytes())
        .and_then(|()| chunked.finish().map(|_| ()));
    match done {
        Ok(()) => Ok(keep_alive),
        Err(_) => Ok(false),
    }
}

/// Builds the request budget: server default, optionally *lowered* by a
/// `timeout=` (milliseconds) parameter, plus the connection-drop token.
fn request_budget(
    ctx: &Ctx<'_>,
    params: &[(String, String)],
    token: CancelToken,
) -> Result<Budget, String> {
    let mut timeout = ctx.config.default_timeout;
    if let Some(raw) = find_param(params, "timeout") {
        let ms: u64 = raw
            .parse()
            .map_err(|_| format!("invalid timeout parameter {raw:?} (want milliseconds)"))?;
        let requested = Duration::from_millis(ms);
        timeout = Some(match timeout {
            Some(cap) => cap.min(requested),
            None => requested,
        });
    }
    let mut budget = Budget::new().with_cancel(token);
    if let Some(t) = timeout {
        budget = budget.with_timeout(t);
    }
    Ok(budget)
}

/// The stable machine-readable label for an abort reason (matches the
/// `reason` label of `sparqlog_query_aborts_total`).
fn abort_label(reason: AbortReason) -> &'static str {
    match reason {
        AbortReason::Deadline => "deadline",
        AbortReason::Cancelled => "cancelled",
        AbortReason::RowLimit => "row_limit",
        AbortReason::DictGrowth => "dict_growth",
    }
}

/// Renders a governor abort as the structured 408 JSON body.
fn abort_body(e: &SparqLogError) -> Option<String> {
    let SparqLogError::Aborted {
        reason,
        elapsed,
        rows_derived,
    } = e
    else {
        return None;
    };
    Some(format!(
        "{{\"error\":\"query aborted\",\"reason\":\"{}\",\"detail\":\"{}\",\"elapsed_ms\":{},\"rows_derived\":{}}}",
        abort_label(*reason),
        reason,
        elapsed.as_millis(),
        rows_derived
    ))
}

/// Writes the error response for a failed query/update: governor aborts
/// become a structured `application/json` 408, everything else stays
/// plain text with the engine's message.
fn respond_error(
    stream: &mut TcpStream,
    scope: &ReqScope<'_>,
    e: &SparqLogError,
    keep_alive: bool,
) -> io::Result<bool> {
    let status = match e {
        SparqLogError::Aborted { .. } => 408,
        SparqLogError::Parse(_) | SparqLogError::Translation(_) | SparqLogError::ReadOnly(_) => 400,
        _ => 500,
    };
    match abort_body(e) {
        Some(json) => respond_json(stream, scope, status, &json, keep_alive),
        None => respond_text(stream, scope, status, &e.to_string(), keep_alive),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_query(
    req: &Request,
    stream: &mut TcpStream,
    scope: &ReqScope<'_>,
    keep_alive: bool,
    ctx: &Ctx<'_>,
    query: &str,
    params: &[(String, String)],
) -> io::Result<bool> {
    if find_param(params, "default-graph-uri").is_some()
        || find_param(params, "named-graph-uri").is_some()
    {
        return respond_text(
            stream,
            scope,
            400,
            "RDF Dataset parameters (default-graph-uri / named-graph-uri) are not supported",
            keep_alive,
        );
    }

    // Parse first: the query form decides which formats are negotiable,
    // so 400 and 406 are both settled before any evaluation.
    let parsed = match parse_query(query) {
        Ok(q) => q,
        Err(e) => return respond_text(stream, scope, 400, &e.to_string(), keep_alive),
    };
    let graph_form = matches!(
        parsed.form,
        QueryForm::Construct { .. } | QueryForm::Describe { .. }
    );
    let Some(format) = negotiate(req.header("accept"), graph_form) else {
        let acceptable: Vec<&str> = candidates(graph_form)
            .iter()
            .map(|f| f.content_type())
            .collect();
        return respond_text(
            stream,
            scope,
            406,
            &format!(
                "no acceptable representation for this {} result; supported: {}",
                if graph_form { "graph" } else { "solutions" },
                acceptable.join(", ")
            ),
            keep_alive,
        );
    };

    let token = CancelToken::new();
    let budget = match request_budget(ctx, params, token.clone()) {
        Ok(b) => b,
        Err(msg) => return respond_text(stream, scope, 400, &msg, keep_alive),
    };
    let profiled = find_param(params, "profile")
        .map(|v| v == "true" || v == "1")
        .unwrap_or(false);

    // Pin ONE snapshot for the request: evaluation and serialization
    // both see a single store version regardless of concurrent commits.
    let snapshot = ctx.store.snapshot();

    // While the query runs, the connection watcher cancels the token if
    // the client hangs up. The guard is dropped before any response
    // bytes are written (see crate::watch on why that ordering is hard).
    let guard = watch::watch(stream.try_clone()?, token);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if profiled {
            snapshot
                .execute_profiled_with_budget(query, &budget)
                .map(|(results, profile)| (results, Some(profile)))
        } else {
            snapshot
                .execute_with_budget(query, &budget)
                .map(|results| (results, None))
        }
    }));
    drop(guard);

    let (results, profile) = match outcome {
        Err(_) => {
            return respond_text(
                stream,
                scope,
                500,
                "internal error: query evaluation panicked",
                keep_alive,
            )
        }
        Ok(Err(e)) => return respond_error(stream, scope, &e, keep_alive),
        Ok(Ok(pair)) => pair,
    };

    stream_results(
        stream,
        scope,
        keep_alive,
        ctx,
        &results,
        format,
        profile.as_ref(),
    )
}

/// Streams a successful result as a chunked 200, with the query profile
/// (when requested) riding behind the body as an `X-Query-Profile`
/// trailer field. Returns `Ok(false)` (drop the connection) if the
/// client vanished mid-stream — the missing terminal chunk tells it the
/// body is truncated.
#[allow(clippy::too_many_arguments)]
fn stream_results(
    stream: &mut TcpStream,
    scope: &ReqScope<'_>,
    keep_alive: bool,
    ctx: &Ctx<'_>,
    results: &QueryResults,
    format: Format,
    profile: Option<&QueryProfile>,
) -> io::Result<bool> {
    let rid = scope.rid_header();
    let mut head: Vec<&str> = vec![&rid];
    if profile.is_some() {
        head.push("Trailer: X-Query-Profile");
    }
    scope.record(200);
    write_chunked_head(stream, 200, format.content_type(), keep_alive, &head)?;
    let counting = CountingWriter {
        inner: &mut *stream,
        written: 0,
    };
    let mut chunked = ChunkedWriter::new(counting, ctx.config.chunk_size);
    let written = match format {
        Format::Json => write_json(results, &mut chunked),
        Format::Csv => write_csv(results, &mut chunked),
        Format::Tsv => write_tsv(results, &mut chunked),
        Format::NTriples => write_ntriples(results, &mut chunked),
        Format::Turtle => write_turtle(results, &mut chunked),
    };
    match written {
        Ok(()) => {
            let finished = match profile {
                Some(p) => chunked.finish_with_trailers(&[("X-Query-Profile", &p.to_json())]),
                None => chunked.finish(),
            };
            match finished {
                Ok(counting) => {
                    scope.record_bytes(format_label(format), counting.written);
                    Ok(keep_alive)
                }
                Err(e) => Err(e),
            }
        }
        // Form mismatch cannot happen (format was negotiated from the
        // parsed form) and I/O failure means the peer is gone; either
        // way the only safe move after a 200 head is truncation.
        Err(WriteError::Serialize(_)) | Err(WriteError::Io(_)) => Ok(false),
    }
}

/// The `format` label for `sparqlog_http_bytes_streamed_total`.
fn format_label(format: Format) -> &'static str {
    match format {
        Format::Json => "json",
        Format::Csv => "csv",
        Format::Tsv => "tsv",
        Format::NTriples => "ntriples",
        Format::Turtle => "turtle",
    }
}

fn run_update(
    stream: &mut TcpStream,
    scope: &ReqScope<'_>,
    keep_alive: bool,
    ctx: &Ctx<'_>,
    update: &str,
) -> io::Result<bool> {
    // Store::update parses, then applies the whole request under the
    // commit lock — concurrent POST /update requests serialize there
    // while queries keep reading their pinned snapshots.
    let outcome = catch_unwind(AssertUnwindSafe(|| ctx.store.update(update)));
    match outcome {
        Err(_) => respond_text(
            stream,
            scope,
            500,
            "internal error: update panicked",
            keep_alive,
        ),
        Ok(Err(e)) => respond_error(stream, scope, &e, keep_alive),
        Ok(Ok(_stats)) => {
            let rid = scope.rid_header();
            scope.record(204);
            write_response(stream, 204, "", &[], keep_alive, &[&rid])?;
            Ok(keep_alive)
        }
    }
}
