//! Minimal HTTP/1.1 plumbing over `std::io`: request parsing, response
//! writing, and a chunked-transfer-encoding writer.
//!
//! This is deliberately a small, strict subset of RFC 9112 — enough for
//! the SPARQL Protocol: request line + headers + `Content-Length` body,
//! keep-alive, and chunked *responses*. Chunked request bodies are
//! rejected with `411 Length Required` (every SPARQL client sends a
//! `Content-Length`). Hard caps on line length, header count and body
//! size keep a hostile peer from ballooning memory.

use std::io::{self, BufRead, Write};

/// Maximum length of the request line or any single header line.
pub const MAX_LINE: usize = 16 * 1024;
/// Maximum number of headers per request.
pub const MAX_HEADERS: usize = 128;
/// Default maximum request body size (server-configurable).
pub const DEFAULT_MAX_BODY: usize = 16 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the request target (before `?`), undecoded.
    pub path: String,
    /// Raw query string (after `?`), if any — still percent-encoded.
    pub query_string: Option<String>,
    /// Headers in arrival order; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// First value of header `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `Content-Type` without parameters (`; charset=...` stripped),
    /// lowercased.
    pub fn content_type(&self) -> Option<String> {
        self.header("content-type").map(|ct| {
            ct.split(';')
                .next()
                .unwrap_or("")
                .trim()
                .to_ascii_lowercase()
        })
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// Clean EOF before the first byte of a request — keep-alive close.
    Closed,
    /// Syntactically invalid request ⇒ `400`.
    Malformed(String),
    /// Request line / header / body over the cap ⇒ `431` / `413`.
    TooLarge(&'static str),
    /// Chunked or otherwise unsupported request framing ⇒ `411`.
    LengthRequired,
    /// Socket error or timeout mid-request.
    Io(io::Error),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// Reads one CRLF- (or LF-) terminated line, rejecting lines over
/// [`MAX_LINE`].
fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, RequestError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(RequestError::Malformed("unexpected EOF in header".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(Some(String::from_utf8(line).map_err(|_| {
                        RequestError::Malformed("non-UTF-8 header line".into())
                    })?));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(RequestError::TooLarge("header line"));
                }
            }
            Err(e) => return Err(RequestError::Io(e)),
        }
    }
}

/// Reads and parses one request from `reader`. `Err(Closed)` means the
/// peer closed the connection cleanly between requests.
///
/// `continue_sink`, when given, receives an interim
/// `100 Continue` response before the body is read if the client sent
/// `Expect: 100-continue` (curl does for large POSTs — without the
/// interim response it stalls for a second before sending the body).
pub fn read_request(
    reader: &mut impl BufRead,
    max_body: usize,
    continue_sink: Option<&mut dyn Write>,
) -> Result<Request, RequestError> {
    let request_line = match read_line(reader)? {
        None => return Err(RequestError::Closed),
        Some(l) if l.is_empty() => {
            // Tolerate a stray CRLF between pipelined requests.
            match read_line(reader)? {
                None => return Err(RequestError::Closed),
                Some(l) => l,
            }
        }
        Some(l) => l,
    };

    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(RequestError::Malformed(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(RequestError::Malformed(format!(
            "unsupported HTTP version {version:?}"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?
            .ok_or_else(|| RequestError::Malformed("unexpected EOF in headers".into()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(RequestError::TooLarge("header count"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Malformed(format!(
                "malformed header line {line:?}"
            )));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let header = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };

    if let Some(te) = header("transfer-encoding") {
        if !te.trim().is_empty() {
            return Err(RequestError::LengthRequired);
        }
    }

    let body = match header("content-length") {
        Some(len) => {
            let len: usize = len
                .trim()
                .parse()
                .map_err(|_| RequestError::Malformed("invalid Content-Length".into()))?;
            if len > max_body {
                return Err(RequestError::TooLarge("body"));
            }
            if len > 0 {
                let expects_continue = header("expect")
                    .map(|e| e.eq_ignore_ascii_case("100-continue"))
                    .unwrap_or(false);
                if expects_continue {
                    if let Some(sink) = continue_sink {
                        sink.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
                        sink.flush()?;
                    }
                }
            }
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            body
        }
        None => Vec::new(),
    };

    let keep_alive = match header("connection").map(|c| c.to_ascii_lowercase()) {
        Some(c) if c.contains("close") => false,
        Some(c) if c.contains("keep-alive") => true,
        _ => version == "HTTP/1.1", // 1.1 defaults to persistent
    };

    let (path, query_string) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    Ok(Request {
        method: method.to_ascii_uppercase(),
        path,
        query_string,
        headers,
        body,
        keep_alive,
    })
}

/// Standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        406 => "Not Acceptable",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Content Too Large",
        415 => "Unsupported Media Type",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "",
    }
}

/// Writes a complete non-streaming response with a `Content-Length`.
/// `extra_headers` are raw `Name: value` lines (no CRLF).
pub fn write_response(
    out: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[&str],
) -> io::Result<()> {
    write!(out, "HTTP/1.1 {status} {}\r\n", reason(status))?;
    if !body.is_empty() || status != 204 {
        write!(out, "Content-Type: {content_type}\r\n")?;
    }
    write!(out, "Content-Length: {}\r\n", body.len())?;
    for h in extra_headers {
        write!(out, "{h}\r\n")?;
    }
    write!(
        out,
        "Connection: {}\r\n\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    )?;
    out.write_all(body)?;
    out.flush()
}

/// Writes the header block of a chunked streaming response; the body
/// then goes through a [`ChunkedWriter`] over the same stream.
/// `extra_headers` are raw `Name: value` lines (no CRLF).
pub fn write_chunked_head(
    out: &mut impl Write,
    status: u16,
    content_type: &str,
    keep_alive: bool,
    extra_headers: &[&str],
) -> io::Result<()> {
    write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\n",
        reason(status),
    )?;
    for h in extra_headers {
        write!(out, "{h}\r\n")?;
    }
    write!(
        out,
        "Connection: {}\r\n\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    )
}

/// An [`io::Write`] adapter that frames its input as HTTP/1.1 chunked
/// transfer encoding: bytes buffer up to the configured chunk size, then
/// leave as one `{len:x}\r\n…\r\n` frame. [`ChunkedWriter::finish`]
/// flushes the tail and writes the terminal `0\r\n\r\n` frame — dropping
/// the writer without calling it leaves the stream visibly truncated,
/// which is exactly what an aborted response should look like.
pub struct ChunkedWriter<W: Write> {
    inner: W,
    buf: Vec<u8>,
    chunk_size: usize,
}

impl<W: Write> ChunkedWriter<W> {
    /// Wraps `inner`, emitting frames of at most `chunk_size` bytes.
    pub fn new(inner: W, chunk_size: usize) -> Self {
        let chunk_size = chunk_size.max(1);
        ChunkedWriter {
            inner,
            buf: Vec::with_capacity(chunk_size),
            chunk_size,
        }
    }

    fn emit_buf(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        write!(self.inner, "{:x}\r\n", self.buf.len())?;
        self.inner.write_all(&self.buf)?;
        self.inner.write_all(b"\r\n")?;
        self.buf.clear();
        Ok(())
    }

    /// Flushes any buffered bytes and writes the terminal `0\r\n\r\n`
    /// frame, returning the underlying stream.
    pub fn finish(self) -> io::Result<W> {
        self.finish_with_trailers(&[])
    }

    /// Like [`ChunkedWriter::finish`], but places `trailers` as HTTP
    /// trailer fields between the terminal `0` frame and the final
    /// CRLF (RFC 9112 §7.1.2). Callers should announce the field names
    /// in a `Trailer:` response header so clients know to read them.
    pub fn finish_with_trailers(mut self, trailers: &[(&str, &str)]) -> io::Result<W> {
        self.emit_buf()?;
        self.inner.write_all(b"0\r\n")?;
        for (name, value) in trailers {
            write!(self.inner, "{name}: {value}\r\n")?;
        }
        self.inner.write_all(b"\r\n")?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

impl<W: Write> Write for ChunkedWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        // Large writes stream through in chunk_size frames; small writes
        // coalesce in the buffer. Memory held is O(chunk_size).
        let mut rest = data;
        while !rest.is_empty() {
            let room = self.chunk_size - self.buf.len();
            let take = room.min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() == self.chunk_size {
                self.emit_buf()?;
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.emit_buf()?;
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, RequestError> {
        read_request(&mut BufReader::new(raw.as_bytes()), DEFAULT_MAX_BODY, None)
    }

    #[test]
    fn parses_get_with_query_string() {
        let r = parse(
            "GET /query?query=ASK%7B%7D&timeout=5 HTTP/1.1\r\nHost: x\r\nAccept: text/csv\r\n\r\n",
        )
        .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/query");
        assert_eq!(r.query_string.as_deref(), Some("query=ASK%7B%7D&timeout=5"));
        assert_eq!(r.header("accept"), Some("text/csv"));
        assert!(r.keep_alive);
    }

    #[test]
    fn parses_post_body_and_content_type_params() {
        let r = parse(
            "POST /update HTTP/1.1\r\nContent-Type: application/sparql-update; charset=UTF-8\r\nContent-Length: 12\r\nConnection: close\r\n\r\nCLEAR SILENT",
        )
        .unwrap();
        assert_eq!(r.body, b"CLEAR SILENT");
        assert_eq!(
            r.content_type().as_deref(),
            Some("application/sparql-update")
        );
        assert!(!r.keep_alive);
    }

    #[test]
    fn http10_defaults_to_close() {
        let r = parse("GET /query HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse("GET /query HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r.keep_alive);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            parse("FLURB\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /q HTTP/3.0\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /q HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(parse(""), Err(RequestError::Closed)));
        assert!(matches!(
            parse("POST /q HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(RequestError::LengthRequired)
        ));
    }

    #[test]
    fn caps_body_size() {
        let raw = "POST /q HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
        let r = read_request(&mut BufReader::new(raw.as_bytes()), 10, None);
        assert!(matches!(r, Err(RequestError::TooLarge("body"))));
    }

    #[test]
    fn chunked_writer_frames_and_terminates() {
        let mut out = Vec::new();
        let mut w = ChunkedWriter::new(&mut out, 4);
        w.write_all(b"abcdefghij").unwrap(); // 2.5 chunks
        w.write_all(b"k").unwrap();
        let _ = w.finish().unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "4\r\nabcd\r\n4\r\nefgh\r\n3\r\nijk\r\n0\r\n\r\n"
        );
    }

    #[test]
    fn chunked_writer_emits_trailers() {
        let mut out = Vec::new();
        let mut w = ChunkedWriter::new(&mut out, 8);
        w.write_all(b"body").unwrap();
        let _ = w
            .finish_with_trailers(&[("X-Query-Profile", "{\"elapsed_us\":3}")])
            .unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "4\r\nbody\r\n0\r\nX-Query-Profile: {\"elapsed_us\":3}\r\n\r\n"
        );
    }

    #[test]
    fn chunked_head_carries_extra_headers() {
        let mut out = Vec::new();
        write_chunked_head(&mut out, 200, "text/plain", true, &["X-Request-Id: abc"]).unwrap();
        let head = String::from_utf8(out).unwrap();
        assert!(head.contains("\r\nX-Request-Id: abc\r\n"));
        assert!(head.ends_with("Connection: keep-alive\r\n\r\n"));
    }

    #[test]
    fn chunked_writer_drop_truncates() {
        let mut out = Vec::new();
        {
            let mut w = ChunkedWriter::new(&mut out, 4);
            w.write_all(b"abcd").unwrap();
            w.write_all(b"e").unwrap();
            // dropped without finish(): buffered tail and terminal
            // frame never appear
        }
        assert_eq!(String::from_utf8(out).unwrap(), "4\r\nabcd\r\n");
    }
}
