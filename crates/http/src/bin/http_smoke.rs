//! CI boot-smoke client: issues one query per wire format plus one
//! update against a SPARQL protocol endpoint and exits nonzero on any
//! mismatch.
//!
//! ```sh
//! # against a running server (the CI boot smoke):
//! cargo run -p sparqlog-http --bin http_smoke -- 127.0.0.1:3030
//! # self-contained (boots an in-process server):
//! cargo run -p sparqlog-http --bin http_smoke
//! ```
//!
//! The smoke is data-independent: it first POSTs an `INSERT DATA` with
//! its own marker triples, then checks every format's response carries
//! them — so it works against any store, fresh or populated.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;

use sparqlog::MetricsRegistry;
use sparqlog_http::{client, ServerConfig, SparqlServer};

struct Check {
    label: &'static str,
    accept: &'static str,
    query: &'static str,
    expect_type: &'static str,
    expect_contains: &'static str,
}

const PREFIX: &str = "PREFIX ex: <http://ex.org/smoke/> ";

const CHECKS: &[Check] = &[
    Check {
        label: "SELECT / Results-JSON",
        accept: "application/sparql-results+json",
        query: "SELECT ?o WHERE { ex:s ex:p ?o } ORDER BY ?o",
        expect_type: "application/sparql-results+json",
        expect_contains: "\"value\":\"smoke marker\"",
    },
    Check {
        label: "SELECT / CSV",
        accept: "text/csv",
        query: "SELECT ?o WHERE { ex:s ex:p ?o } ORDER BY ?o",
        expect_type: "text/csv",
        expect_contains: "smoke marker",
    },
    Check {
        label: "ASK / TSV",
        accept: "text/tab-separated-values",
        query: "ASK { ex:s ex:p \"smoke marker\" }",
        expect_type: "text/tab-separated-values",
        expect_contains: "true",
    },
    Check {
        label: "CONSTRUCT / N-Triples",
        accept: "application/n-triples",
        query: "CONSTRUCT { ex:s ex:p ?o } WHERE { ex:s ex:p ?o }",
        expect_type: "application/n-triples",
        expect_contains: "<http://ex.org/smoke/s> <http://ex.org/smoke/p>",
    },
    Check {
        label: "CONSTRUCT / Turtle",
        accept: "text/turtle",
        query: "CONSTRUCT { ex:s ex:p ?o } WHERE { ex:s ex:p ?o }",
        expect_type: "text/turtle",
        expect_contains: "smoke marker",
    },
];

fn run(addr: SocketAddr) -> Result<(), String> {
    // One update: marker triples every later check queries back.
    let insert = format!("{PREFIX}INSERT DATA {{ ex:s ex:p \"smoke marker\" . ex:s ex:p ex:o }}");
    let r = client::update(addr, &insert).map_err(|e| format!("update: {e}"))?;
    if r.status != 204 {
        return Err(format!(
            "update: expected 204, got {} ({})",
            r.status,
            r.text().unwrap_or("<non-utf8>")
        ));
    }
    eprintln!("ok: POST /update -> 204");

    for c in CHECKS {
        let q = format!("{PREFIX}{}", c.query);
        let r = client::query(addr, &q, Some(c.accept)).map_err(|e| format!("{}: {e}", c.label))?;
        let body = r.text().unwrap_or("<non-utf8>");
        if r.status != 200 {
            return Err(format!(
                "{}: expected 200, got {} ({body})",
                c.label, r.status
            ));
        }
        let ctype = r.header("content-type").unwrap_or("");
        if !ctype.starts_with(c.expect_type) {
            return Err(format!(
                "{}: expected content-type {}, got {ctype}",
                c.label, c.expect_type
            ));
        }
        if !body.contains(c.expect_contains) {
            return Err(format!(
                "{}: body missing {:?}: {body}",
                c.label, c.expect_contains
            ));
        }
        eprintln!("ok: {} -> 200 {}", c.label, c.expect_type);
    }

    // The observability scrape (PR 10): /metrics must be a valid
    // Prometheus text exposition covering at least the request counts
    // this smoke itself just generated.
    let r = client::fetch(addr, "GET", "/metrics", &[], None)
        .map_err(|e| format!("GET /metrics: {e}"))?;
    if r.status != 200 {
        return Err(format!(
            "GET /metrics: expected 200, got {} ({})",
            r.status,
            r.text().unwrap_or("<non-utf8>")
        ));
    }
    let body = r.text().map_err(|_| "GET /metrics: non-UTF-8 body")?;
    let samples = MetricsRegistry::parse_exposition(body)
        .map_err(|e| format!("GET /metrics: invalid exposition: {e}"))?;
    for family in [
        "sparqlog_queries_total",
        "sparqlog_store_commits_total",
        "sparqlog_http_requests_total",
    ] {
        if !samples.iter().any(|(n, _, v)| n == family && *v > 0.0) {
            return Err(format!(
                "GET /metrics: no positive {family} sample in exposition"
            ));
        }
    }
    eprintln!(
        "ok: GET /metrics -> 200, {} samples, exposition parses",
        samples.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let arg = std::env::args().nth(1);
    let result = match arg {
        // Against an already-running server (the CI boot smoke).
        Some(addr) => match addr.parse::<SocketAddr>() {
            Ok(addr) => run(addr),
            Err(e) => Err(format!("bad address {addr:?}: {e}")),
        },
        // Self-contained: boot an in-process server on a loopback port.
        None => {
            let bound = match SparqlServer::with_config(
                Arc::new(sparqlog::Store::new()),
                ServerConfig::default(),
            )
            .bind("127.0.0.1:0")
            {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("FAIL: bind: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let addr = bound.local_addr().expect("local addr");
            let handle = bound.handle().expect("handle");
            let server = std::thread::spawn(move || bound.serve());
            let result = run(addr);
            handle.shutdown();
            let _ = server.join();
            result
        }
    };
    match result {
        Ok(()) => {
            eprintln!("smoke: all checks passed");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}
