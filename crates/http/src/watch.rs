//! Connection-drop detection: turn "the client hung up" into a
//! [`CancelToken`] cancellation so the governor aborts the evaluation
//! instead of computing a result nobody will read.
//!
//! A single lazy daemon thread polls every registered connection with a
//! non-blocking `peek()` (~every 10 ms). EOF or a hard error cancels the
//! token. Registration is scoped by a guard that **must** be dropped
//! before the worker writes the response: the watcher toggles
//! `O_NONBLOCK`, and that flag lives on the open file description shared
//! with the worker's handle — toggling happens under the registry lock,
//! and guard drop takes the same lock, so once `WatchGuard` is gone no
//! poll can race the response write.

use std::net::TcpStream;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use sparqlog::CancelToken;

struct Entry {
    id: u64,
    stream: TcpStream,
    token: CancelToken,
}

struct Registry {
    entries: Mutex<Vec<Entry>>,
}

static REGISTRY: OnceLock<&'static Registry> = OnceLock::new();
static NEXT_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| {
        let reg: &'static Registry = Box::leak(Box::new(Registry {
            entries: Mutex::new(Vec::new()),
        }));
        std::thread::Builder::new()
            .name("sparqlog-http-watch".into())
            .spawn(move || watch_loop(reg))
            .expect("spawning connection watcher");
        reg
    })
}

fn watch_loop(reg: &'static Registry) {
    let mut scratch = [0u8; 1];
    loop {
        {
            let mut entries = reg.entries.lock().unwrap();
            entries.retain_mut(|entry| {
                // Peek without blocking; restore blocking mode before
                // releasing the lock so the worker never observes
                // O_NONBLOCK on the shared file description.
                if entry.stream.set_nonblocking(true).is_err() {
                    entry.token.cancel();
                    return false;
                }
                let gone = match entry.stream.peek(&mut scratch) {
                    // 0 bytes readable = orderly shutdown from the peer.
                    Ok(0) => true,
                    // Pending request bytes (pipelining) = still alive.
                    Ok(_) => false,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
                    Err(_) => true,
                };
                let _ = entry.stream.set_nonblocking(false);
                if gone {
                    entry.token.cancel();
                }
                !gone
            });
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Registration of one in-flight request's connection with the watcher.
/// Dropping it deregisters the connection (synchronizing with any poll
/// in progress).
pub struct WatchGuard {
    id: u64,
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        let mut entries = registry().entries.lock().unwrap();
        entries.retain(|e| e.id != self.id);
    }
}

/// Registers `stream` (a `try_clone` of the connection) for drop
/// detection; `token` is cancelled if the peer disappears while the
/// guard lives. Drop the guard before writing the response.
pub fn watch(stream: TcpStream, token: CancelToken) -> WatchGuard {
    let id = NEXT_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    registry()
        .entries
        .lock()
        .unwrap()
        .push(Entry { id, stream, token });
    WatchGuard { id }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    #[test]
    fn cancels_on_peer_close_not_on_idle_or_pipelined_bytes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let token = CancelToken::new();
        let guard = watch(server_side.try_clone().unwrap(), token.clone());

        // Idle connection: not cancelled.
        std::thread::sleep(Duration::from_millis(60));
        assert!(!token.is_cancelled());

        // Unread pipelined bytes: still not cancelled.
        client.write_all(b"GET /next HTTP/1.1\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(60));
        assert!(!token.is_cancelled());

        drop(guard);

        // Deregistered: a close no longer cancels.
        let token2 = CancelToken::new();
        let guard2 = watch(server_side.try_clone().unwrap(), token2.clone());
        drop(client);
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while !token2.is_cancelled() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Note: with unread bytes still buffered the peer close may
        // surface as readable-EOF only after the buffer drains; peek
        // returns Ok(n) for the buffered bytes. Accept either outcome
        // here — the deadline budget is the backstop in production.
        drop(guard2);
        assert!(!token.is_cancelled(), "old token must stay untouched");
    }

    #[test]
    fn cancels_on_clean_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let token = CancelToken::new();
        let _guard = watch(server_side.try_clone().unwrap(), token.clone());
        drop(client); // orderly FIN with no buffered bytes
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while !token.is_cancelled() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(token.is_cancelled(), "close must cancel the token");
    }
}
