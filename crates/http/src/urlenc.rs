//! `application/x-www-form-urlencoded` decoding for the SPARQL Protocol.
//!
//! Both the query string of `GET /query` and the body of a form-encoded
//! `POST` carry `key=value` pairs where `+` encodes a space and `%XX`
//! encodes a byte. Decoding happens **per component** (after splitting
//! on `&` and `=`), so an encoded `%26` or `%3D` inside a SPARQL query
//! survives as a literal `&`/`=` instead of splitting the parameter —
//! the class of bug this module's tests pin down. Multi-byte UTF-8
//! sequences arrive as one `%XX` escape per byte and are validated
//! after decoding.

/// A malformed percent-escape or invalid UTF-8 in a form-encoded
/// component. The message is served verbatim in `400` response bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid form encoding: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Percent-decodes one component. When `plus_as_space` is set (form
/// fields, query-string parameters) a bare `+` decodes to a space, per
/// `application/x-www-form-urlencoded`.
pub fn percent_decode(s: &str, plus_as_space: bool) -> Result<String, DecodeError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                if i + 2 >= bytes.len() {
                    return Err(DecodeError(format!(
                        "truncated percent-escape {:?}",
                        &s[i..]
                    )));
                }
                let (hi, lo) = (hex_val(bytes[i + 1]), hex_val(bytes[i + 2]));
                match (hi, lo) {
                    (Some(h), Some(l)) => out.push((h << 4) | l),
                    _ => {
                        // i+3 may fall inside a multi-byte character, so
                        // render the offending bytes lossily instead of
                        // slicing `s` (which would panic mid-char).
                        return Err(DecodeError(format!(
                            "invalid percent-escape \"%{}\"",
                            String::from_utf8_lossy(&bytes[i + 1..i + 3])
                        )));
                    }
                }
                i += 3;
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|e| DecodeError(format!("decoded bytes are not UTF-8: {e}")))
}

/// Splits a query string or form body into decoded `(key, value)` pairs.
///
/// Splitting on `&` and the **first** `=` happens before any decoding,
/// so escapes inside keys or values cannot change the structure. A
/// component without `=` becomes a pair with an empty value. Empty
/// components (from `a=1&&b=2` or a trailing `&`) are skipped.
pub fn parse_form(s: &str) -> Result<Vec<(String, String)>, DecodeError> {
    let mut pairs = Vec::new();
    for component in s.split('&') {
        if component.is_empty() {
            continue;
        }
        let (raw_key, raw_value) = match component.split_once('=') {
            Some((k, v)) => (k, v),
            None => (component, ""),
        };
        pairs.push((
            percent_decode(raw_key, true)?,
            percent_decode(raw_value, true)?,
        ));
    }
    Ok(pairs)
}

/// Percent-encodes one component for use in a query string or form
/// body: unreserved characters (RFC 3986 §2.3) pass through, everything
/// else — including `+`, so [`percent_decode`]'s plus-as-space cannot
/// corrupt it — becomes `%XX` per UTF-8 byte.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// First value for `key` among decoded pairs, if present.
pub fn find_param<'a>(pairs: &'a [(String, String)], key: &str) -> Option<&'a str> {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_and_percent_basics() {
        assert_eq!(percent_decode("a+b", true).unwrap(), "a b");
        assert_eq!(percent_decode("a+b", false).unwrap(), "a+b");
        assert_eq!(percent_decode("a%20b", true).unwrap(), "a b");
        assert_eq!(percent_decode("100%25", true).unwrap(), "100%");
    }

    #[test]
    fn multibyte_utf8() {
        // é = U+00E9 = 0xC3 0xA9; “ = U+201C = 0xE2 0x80 0x9C.
        assert_eq!(percent_decode("caf%C3%A9", true).unwrap(), "café");
        assert_eq!(percent_decode("%E2%80%9Cq%E2%80%9D", true).unwrap(), "“q”");
    }

    #[test]
    fn invalid_escapes_are_errors() {
        assert!(percent_decode("%ZZ", true).is_err());
        assert!(percent_decode("%2", true).is_err());
        assert!(percent_decode("%", true).is_err());
        // 0xFF alone is not valid UTF-8.
        let err = percent_decode("%FF", true).unwrap_err();
        assert!(err.to_string().contains("UTF-8"), "{err}");
    }

    #[test]
    fn invalid_escape_before_multibyte_char_does_not_panic() {
        // The two bytes after `%` sit inside a 3-byte character; the
        // error message must not slice the string mid-char.
        assert!(percent_decode("%€x", true).is_err());
        assert!(percent_decode("é%2", true).is_err());
    }

    #[test]
    fn escaped_separators_do_not_split() {
        // `%26` (&) and `%3D` (=) inside the query text must survive as
        // literal characters — a real SPARQL query with a filter like
        // `?x = "a&b"` round-trips through one `query=` parameter.
        let pairs = parse_form("query=SELECT%20%3Fx%20WHERE%20%7B%20%3Fx%20%3Chttp%3A%2F%2Fe%2Fp%3E%20%22a%26b%3Dc%22%20%7D&other=1").unwrap();
        assert_eq!(
            find_param(&pairs, "query").unwrap(),
            "SELECT ?x WHERE { ?x <http://e/p> \"a&b=c\" }"
        );
        assert_eq!(find_param(&pairs, "other"), Some("1"));
    }

    #[test]
    fn plus_means_space_in_form_fields() {
        let pairs = parse_form("query=SELECT+%3Fs+WHERE+%7B+%3Fs+%3Fp+%3Fo+%7D").unwrap();
        assert_eq!(
            find_param(&pairs, "query").unwrap(),
            "SELECT ?s WHERE { ?s ?p ?o }"
        );
    }

    #[test]
    fn tricky_real_query_with_literal_plus_and_lang() {
        // A literal "+" must be %2B-encoded; a lang-tagged literal and a
        // multi-byte IRI pass through one component unharmed.
        let raw = "update=INSERT+DATA+%7B+%3Chttp%3A%2F%2Fe%2F%C3%BC%3E+%3Chttp%3A%2F%2Fe%2Fp%3E+%221%2B2%22%40fr+%7D";
        let pairs = parse_form(raw).unwrap();
        assert_eq!(
            find_param(&pairs, "update").unwrap(),
            "INSERT DATA { <http://e/ü> <http://e/p> \"1+2\"@fr }"
        );
    }

    #[test]
    fn structure_is_fixed_before_decoding() {
        // A value containing an *encoded* `&` never creates a phantom
        // parameter, and empty components are skipped.
        let pairs = parse_form("a=1%262&&b=&c").unwrap();
        assert_eq!(
            pairs,
            vec![
                ("a".into(), "1&2".into()),
                ("b".into(), String::new()),
                ("c".into(), String::new()),
            ]
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        for s in [
            "SELECT ?x WHERE { ?x <http://e/p> \"a&b=c + 100%\"@fr }",
            "café “naïve” — ü",
            "+%&=?#",
        ] {
            assert_eq!(percent_decode(&percent_encode(s), true).unwrap(), s);
        }
    }

    #[test]
    fn first_equals_splits_key_from_value() {
        let pairs = parse_form("query=ASK { ?s ?p \"x=y\" }".replace(' ', "+").as_str()).unwrap();
        assert_eq!(
            find_param(&pairs, "query").unwrap(),
            "ASK { ?s ?p \"x=y\" }"
        );
    }
}
