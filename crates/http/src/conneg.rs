//! Content negotiation over the PR 5 wire formats.
//!
//! The server speaks five formats: SPARQL Results JSON / CSV / TSV for
//! the solution-producing forms (`SELECT`, `ASK`) and N-Triples /
//! Turtle for the graph-producing forms (`CONSTRUCT`, `DESCRIBE`).
//! [`negotiate`] picks one from an `Accept` header (q-values, `type/*`
//! and `*/*` ranges, most-specific-match-wins) — or reports that
//! nothing acceptable exists, which the server turns into `406`.

/// One of the five response wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// SPARQL 1.1 Query Results JSON (`application/sparql-results+json`).
    Json,
    /// SPARQL 1.1 Query Results CSV (`text/csv`).
    Csv,
    /// SPARQL 1.1 Query Results TSV (`text/tab-separated-values`).
    Tsv,
    /// N-Triples (`application/n-triples`), for graph results.
    NTriples,
    /// Turtle (`text/turtle`), for graph results.
    Turtle,
}

impl Format {
    /// The `Content-Type` this format is served as.
    pub fn content_type(self) -> &'static str {
        match self {
            Format::Json => "application/sparql-results+json",
            Format::Csv => "text/csv; charset=utf-8",
            Format::Tsv => "text/tab-separated-values; charset=utf-8",
            Format::NTriples => "application/n-triples",
            Format::Turtle => "text/turtle",
        }
    }

    /// Media types this format answers to, most canonical first.
    fn media_types(self) -> &'static [&'static str] {
        match self {
            Format::Json => &["application/sparql-results+json", "application/json"],
            Format::Csv => &["text/csv"],
            Format::Tsv => &["text/tab-separated-values"],
            Format::NTriples => &["application/n-triples"],
            Format::Turtle => &["text/turtle"],
        }
    }
}

/// Candidate formats for a result kind, in server preference order (the
/// first is the default when no `Accept` header is sent).
pub fn candidates(graph: bool) -> &'static [Format] {
    if graph {
        &[Format::NTriples, Format::Turtle]
    } else {
        &[Format::Json, Format::Csv, Format::Tsv]
    }
}

/// One parsed media range: `type`, `subtype`, quality.
struct MediaRange {
    kind: String,
    sub: String,
    q: f32,
}

fn parse_accept(header: &str) -> Vec<MediaRange> {
    let mut ranges = Vec::new();
    for item in header.split(',') {
        let mut parts = item.split(';');
        let Some(range) = parts.next() else { continue };
        let range = range.trim().to_ascii_lowercase();
        let Some((kind, sub)) = range.split_once('/') else {
            continue; // malformed range: ignore it, not the whole header
        };
        let mut q = 1.0f32;
        for param in parts {
            let Some((k, v)) = param.split_once('=') else {
                continue;
            };
            if k.trim().eq_ignore_ascii_case("q") {
                if let Ok(parsed) = v.trim().parse::<f32>() {
                    q = parsed.clamp(0.0, 1.0);
                }
            }
        }
        ranges.push(MediaRange {
            kind: kind.to_string(),
            sub: sub.to_string(),
            q,
        });
    }
    ranges
}

/// Specificity of a match: exact beats `type/*` beats `*/*`.
fn specificity(range: &MediaRange) -> u8 {
    match (range.kind.as_str(), range.sub.as_str()) {
        ("*", _) => 0,
        (_, "*") => 1,
        _ => 2,
    }
}

/// Picks the response format for a result kind (`graph` = CONSTRUCT /
/// DESCRIBE) from an optional `Accept` header. Returns `None` when the
/// header rules out every format this result can be served as — the
/// caller answers `406 Not Acceptable`.
///
/// Per RFC 9110 §12.5.1: each candidate takes the q-value of the *most
/// specific* matching range; candidates with no match (or `q=0`) are
/// excluded; the highest q wins, with ties broken by server preference
/// order ([`candidates`]).
pub fn negotiate(accept: Option<&str>, graph: bool) -> Option<Format> {
    let candidates = candidates(graph);
    let Some(header) = accept else {
        return Some(candidates[0]);
    };
    if header.trim().is_empty() {
        return Some(candidates[0]);
    }
    let ranges = parse_accept(header);
    if ranges.is_empty() {
        // Nothing parseable: treat like no header rather than failing
        // every request from a sloppy client.
        return Some(candidates[0]);
    }
    let mut best: Option<(f32, Format)> = None;
    for &format in candidates {
        // The most specific matching range decides this format's q.
        let mut format_q: Option<(u8, f32)> = None;
        for range in &ranges {
            let matches = format.media_types().iter().any(|mt| {
                let (k, s) = mt.split_once('/').unwrap();
                (range.kind == "*" || range.kind == k) && (range.sub == "*" || range.sub == s)
            });
            if !matches {
                continue;
            }
            let spec = specificity(range);
            if format_q.map(|(s, _)| spec > s).unwrap_or(true) {
                format_q = Some((spec, range.q));
            }
        }
        if let Some((_, q)) = format_q {
            if q > 0.0 && best.map(|(bq, _)| q > bq).unwrap_or(true) {
                best = Some((q, format));
            }
        }
    }
    best.map(|(_, f)| f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_without_header() {
        assert_eq!(negotiate(None, false), Some(Format::Json));
        assert_eq!(negotiate(None, true), Some(Format::NTriples));
        assert_eq!(negotiate(Some(""), false), Some(Format::Json));
    }

    #[test]
    fn exact_and_alias_matches() {
        assert_eq!(negotiate(Some("text/csv"), false), Some(Format::Csv));
        assert_eq!(
            negotiate(Some("application/json"), false),
            Some(Format::Json)
        );
        assert_eq!(
            negotiate(Some("text/tab-separated-values"), false),
            Some(Format::Tsv)
        );
        assert_eq!(negotiate(Some("text/turtle"), true), Some(Format::Turtle));
    }

    #[test]
    fn wildcards_and_qvalues() {
        assert_eq!(negotiate(Some("*/*"), false), Some(Format::Json));
        assert_eq!(negotiate(Some("*/*"), true), Some(Format::NTriples));
        // text/* prefers the first text format in server order.
        assert_eq!(negotiate(Some("text/*"), false), Some(Format::Csv));
        // Explicit q ordering beats server order.
        assert_eq!(
            negotiate(
                Some("text/csv;q=0.5, text/tab-separated-values;q=0.9"),
                false
            ),
            Some(Format::Tsv)
        );
        // Specific match overrides a wildcard's q.
        assert_eq!(
            negotiate(Some("*/*;q=1.0, text/csv;q=0.1"), false),
            Some(Format::Json)
        );
    }

    #[test]
    fn unacceptable_is_none() {
        assert_eq!(negotiate(Some("text/html"), false), None);
        assert_eq!(
            negotiate(Some("application/sparql-results+json"), true),
            None
        );
        assert_eq!(negotiate(Some("text/csv;q=0"), false), None);
        assert_eq!(negotiate(Some("text/turtle"), false), None);
    }
}
