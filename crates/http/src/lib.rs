//! # sparqlog-http — SPARQL 1.1 Protocol endpoint
//!
//! A zero-dependency HTTP/1.1 server (over `std::net::TcpListener`)
//! exposing a [`sparqlog::Store`] per the
//! [W3C SPARQL 1.1 Protocol](https://www.w3.org/TR/sparql11-protocol/):
//!
//! * `GET /query?query=…` and `POST /query` (both
//!   `application/sparql-query` bodies and form-encoded `query=`);
//! * `POST /update` (`application/sparql-update` or form-encoded
//!   `update=`), answered with `204 No Content`;
//! * content negotiation over the five PR 5 wire formats — SPARQL
//!   Results JSON / CSV / TSV for `SELECT`/`ASK`, N-Triples / Turtle
//!   for `CONSTRUCT`/`DESCRIBE` (`406` when the `Accept` header rules
//!   them all out);
//! * every response body streams with chunked transfer encoding
//!   through the incremental serializers, so result size never
//!   dictates server memory;
//! * per-request [`Budget`](sparqlog::Budget)s: a server-wide default
//!   deadline, an optional per-request `timeout=` ms override (only
//!   ever *lowering* the default), and a connection-drop
//!   [`CancelToken`](sparqlog::CancelToken) — an exceeded budget is a
//!   `408` whose `application/json` body carries the structured abort
//!   detail (`reason`, `elapsed_ms`, `rows_derived`);
//! * `GET /metrics` (PR 10): the store's
//!   [`MetricsRegistry`](sparqlog::MetricsRegistry) — engine counters
//!   and the HTTP layer's own request/latency/bytes families — in the
//!   Prometheus text exposition format;
//! * `profile=true` on `/query`: the evaluation runs profiled and the
//!   [`QueryProfile`](sparqlog::QueryProfile) JSON rides behind the
//!   streamed body as an `X-Query-Profile` chunked trailer field;
//! * every response echoes the request's `X-Request-Id` header (or a
//!   server-generated id when the client sent none).
//!
//! Status mapping: parse/translation errors are `400` (the parser's
//! message is the body), budget aborts are `408`, evaluation defects
//! are `500`; the usual `404`/`405`/`406`/`411`/`413`/`415` cover the
//! protocol edges.
//!
//! ```no_run
//! use std::sync::Arc;
//! use sparqlog::Store;
//! use sparqlog_http::SparqlServer;
//!
//! let store = Arc::new(Store::new());
//! let server = SparqlServer::new(store).bind("127.0.0.1:8000").unwrap();
//! println!("serving on {}", server.local_addr().unwrap());
//! server.serve(); // blocks; use server.handle() to stop it
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod conneg;
pub mod http;
pub mod server;
pub mod urlenc;
pub mod watch;

pub use conneg::{negotiate, Format};
pub use http::{ChunkedWriter, Request, RequestError};
pub use server::{BoundServer, ServerConfig, ServerHandle, SparqlServer};
pub use urlenc::{parse_form, percent_decode, percent_encode, DecodeError};
