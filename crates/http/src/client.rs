//! A minimal blocking HTTP/1.1 client — just enough protocol to talk to
//! [`SparqlServer`](crate::SparqlServer) from examples, smoke checks and
//! scripts without any external dependency.
//!
//! One request per connection (`Connection: close`), chunked and
//! `Content-Length` response bodies both decoded. This is a test/demo
//! client, not a general-purpose one: no TLS, no redirects, no request
//! streaming.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A fully-read HTTP response.
#[derive(Debug)]
pub struct ClientResponse {
    /// Numeric status code (200, 400, ...).
    pub status: u16,
    /// Response headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Decoded body bytes (chunk framing already stripped).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header value under `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or an error if it is not.
    pub fn text(&self) -> io::Result<&str> {
        std::str::from_utf8(&self.body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn read_line(reader: &mut impl BufRead) -> io::Result<String> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    Ok(line.trim_end_matches(['\r', '\n']).to_string())
}

/// Issues one request on a fresh connection and reads the full response.
///
/// `body` is `(content_type, bytes)`; when present the request carries a
/// `Content-Type` and `Content-Length`. Extra headers (e.g. `Accept`) go
/// in `headers`.
pub fn fetch(
    addr: SocketAddr,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: Option<(&str, &[u8])>,
) -> io::Result<ClientResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;

    let mut req = format!("{method} {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    for (k, v) in headers {
        req.push_str(&format!("{k}: {v}\r\n"));
    }
    if let Some((ctype, bytes)) = body {
        req.push_str(&format!(
            "Content-Type: {ctype}\r\nContent-Length: {}\r\n",
            bytes.len()
        ));
    }
    req.push_str("\r\n");
    let mut writer = stream.try_clone()?;
    writer.write_all(req.as_bytes())?;
    if let Some((_, bytes)) = body {
        writer.write_all(bytes)?;
    }

    let mut reader = BufReader::new(stream);
    let status_line = read_line(&mut reader)?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("bad status line {status_line:?}")))?;
    let mut resp_headers = Vec::new();
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| bad(format!("bad header line {line:?}")))?;
        resp_headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    let find = |headers: &[(String, String)], name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.to_string())
    };
    let chunked =
        find(&resp_headers, "transfer-encoding").map(|v| v.contains("chunked")) == Some(true);

    let mut body_bytes = Vec::new();
    if chunked {
        loop {
            let size_line = read_line(&mut reader)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad(format!("bad chunk size {size_line:?}")))?;
            if size == 0 {
                // Trailer fields (if any) sit between the terminal `0`
                // frame and the final blank line; surface them alongside
                // the headers.
                loop {
                    let line = read_line(&mut reader)?;
                    if line.is_empty() {
                        break;
                    }
                    if let Some((k, v)) = line.split_once(':') {
                        resp_headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
                    }
                }
                break;
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk)?;
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
            if &crlf != b"\r\n" {
                return Err(bad("missing chunk CRLF"));
            }
            body_bytes.extend_from_slice(&chunk);
        }
    } else if let Some(len) = find(&resp_headers, "content-length") {
        let len: usize = len.parse().map_err(|_| bad("bad Content-Length"))?;
        body_bytes = vec![0u8; len];
        reader.read_exact(&mut body_bytes)?;
    } else {
        reader.read_to_end(&mut body_bytes)?;
    }

    Ok(ClientResponse {
        status,
        headers: resp_headers,
        body: body_bytes,
    })
}

/// `GET /query?query=…` with an optional `Accept` header.
pub fn query(addr: SocketAddr, query: &str, accept: Option<&str>) -> io::Result<ClientResponse> {
    let target = format!("/query?query={}", crate::percent_encode(query));
    let mut headers: Vec<(&str, &str)> = Vec::new();
    if let Some(a) = accept {
        headers.push(("Accept", a));
    }
    fetch(addr, "GET", &target, &headers, None)
}

/// `POST /update` with a direct `application/sparql-update` body.
pub fn update(addr: SocketAddr, update: &str) -> io::Result<ClientResponse> {
    fetch(
        addr,
        "POST",
        "/update",
        &[],
        Some(("application/sparql-update", update.as_bytes())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServerConfig, SparqlServer};
    use std::sync::Arc;

    #[test]
    fn client_round_trip() {
        let store = sparqlog::Store::new();
        let bound = SparqlServer::with_config(Arc::new(store), ServerConfig::default())
            .bind("127.0.0.1:0")
            .unwrap();
        let addr = bound.local_addr().unwrap();
        let handle = bound.handle().unwrap();
        let server = std::thread::spawn(move || bound.serve());

        let r = update(
            addr,
            "PREFIX ex: <http://ex.org/> INSERT DATA { ex:a ex:p \"via client\" }",
        )
        .unwrap();
        assert_eq!(r.status, 204);
        let r = query(addr, "SELECT ?o WHERE { ?s ?p ?o }", Some("text/csv")).unwrap();
        assert_eq!(r.status, 200);
        assert!(r.text().unwrap().contains("via client"));
        let r = query(addr, "this is not sparql", None).unwrap();
        assert_eq!(r.status, 400);

        handle.shutdown();
        server.join().unwrap();
    }
}
