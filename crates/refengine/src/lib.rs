//! Reference SPARQL engines — in-process substitutes for the three
//! external systems the SparqLog paper benchmarks against (§6):
//!
//! * [`FusekiSim`]: a direct, standard-compliant algebra evaluator over
//!   the RDF dataset, playing the role of Apache Jena Fuseki. Its
//!   evaluation strategy is deliberately Jena-like: index-nested-loop
//!   joins and *per-binding* property-path search without cross-binding
//!   memoisation — correct on everything, but slow on complex recursive
//!   path queries (the behaviour behind Fuseki's 37 gMark time-outs).
//! * [`VirtuosoSim`]: the same evaluator plus the deviations the paper
//!   documents for OpenLink Virtuoso 7.2.5 (§6.2, D.2.3): errors on
//!   recursive paths with two unbound variables ("transitive start not
//!   given"), one-or-more computed as zero-or-more minus the identity
//!   pairs (losing start nodes on cycles), alternative paths dropping
//!   duplicates, set-semantics UNION and ignored DISTINCT.
//! * [`StardogSim`]: a materialising reasoner baseline — applies the
//!   ontology up front, then evaluates directly, but re-derives path
//!   edge relations per source without sharing (the behaviour behind
//!   Stardog's slowdown/timeout on two-variable recursive paths,
//!   Fig. 10).
//!
//! All three share the result types of the `sparqlog` crate so the
//! compliance harness can compare outputs directly (the paper's
//! majority-voting methodology, D.2.2).

pub mod binding;
pub mod eval;
pub mod exprs;
pub mod paths;
pub mod quirks;

pub use binding::{Binding, Multiset};
pub use eval::{EngineError, Evaluator};
pub use quirks::Quirks;

use sparqlog::{Ontology, QueryResults};
use sparqlog_rdf::Dataset;
use std::time::Duration;

fn parse(query: &str) -> Result<sparqlog_sparql::Query, EngineError> {
    sparqlog_sparql::parse_query(query).map_err(|e| {
        if e.unsupported {
            EngineError::NotSupported(e.message)
        } else {
            EngineError::Malformed(e.message)
        }
    })
}

/// The standard-compliant direct evaluator (Apache Jena Fuseki stand-in).
pub struct FusekiSim {
    dataset: Dataset,
    timeout: Option<Duration>,
}

impl FusekiSim {
    /// Creates an engine over a dataset.
    pub fn new(dataset: Dataset) -> Self {
        FusekiSim {
            dataset,
            timeout: None,
        }
    }

    /// Sets the per-query wall-clock budget.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Evaluates a SPARQL query string.
    pub fn execute(&self, query: &str) -> Result<QueryResults, EngineError> {
        let q = parse(query)?;
        Evaluator::new(&self.dataset, Quirks::fuseki(), self.timeout).run(&q)
    }
}

/// The deviant evaluator (OpenLink Virtuoso stand-in).
pub struct VirtuosoSim {
    dataset: Dataset,
    timeout: Option<Duration>,
}

impl VirtuosoSim {
    /// Creates an engine over a dataset.
    pub fn new(dataset: Dataset) -> Self {
        VirtuosoSim {
            dataset,
            timeout: None,
        }
    }

    /// Sets the per-query wall-clock budget.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Evaluates a SPARQL query string — with Virtuoso's documented
    /// non-standard behaviours.
    pub fn execute(&self, query: &str) -> Result<QueryResults, EngineError> {
        let q = parse(query)?;
        Evaluator::new(&self.dataset, Quirks::virtuoso(), self.timeout).run(&q)
    }
}

/// The materialising reasoner (Stardog stand-in).
pub struct StardogSim {
    dataset: Dataset,
    timeout: Option<Duration>,
}

impl StardogSim {
    /// Creates an engine over a dataset, materialising the ontology's
    /// consequences into the default graph first (Stardog-style
    /// forward-chaining for the RDFS subset).
    pub fn new(dataset: Dataset, ontology: &Ontology) -> Self {
        let mut dataset = dataset;
        materialize_rdfs(&mut dataset, ontology);
        StardogSim {
            dataset,
            timeout: None,
        }
    }

    /// Sets the per-query wall-clock budget.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Evaluates a SPARQL query string over the materialised dataset.
    pub fn execute(&self, query: &str) -> Result<QueryResults, EngineError> {
        let q = parse(query)?;
        Evaluator::new(&self.dataset, Quirks::stardog(), self.timeout).run(&q)
    }
}

/// Forward-chains the RDFS subset of an ontology over the default graph
/// to fixpoint (subClassOf, subPropertyOf, domain, range, inverseOf).
/// Existential axioms are skipped — Stardog's OWL QL handling does not
/// invent objects during materialisation, which is exactly the capability
/// gap the paper's RQ3 discussion highlights.
pub fn materialize_rdfs(dataset: &mut Dataset, ontology: &Ontology) {
    use sparqlog::Axiom;
    use sparqlog_rdf::vocab::rdf;
    use sparqlog_rdf::{Term, Triple};

    let g = dataset.default_graph_mut();
    let type_iri = Term::iri(rdf::TYPE);
    loop {
        let mut new: Vec<Triple> = Vec::new();
        for axiom in &ontology.axioms {
            match axiom {
                Axiom::SubClassOf(c1, c2) => {
                    for (s, _, _) in
                        g.triples_matching(None, Some(&type_iri), Some(&Term::iri(c1.clone())))
                    {
                        new.push(Triple::new(
                            s.clone(),
                            type_iri.clone(),
                            Term::iri(c2.clone()),
                        ));
                    }
                }
                Axiom::SubPropertyOf(p1, p2) => {
                    for (s, _, o) in g.triples_matching(None, Some(&Term::iri(p1.clone())), None) {
                        new.push(Triple::new(s.clone(), Term::iri(p2.clone()), o.clone()));
                    }
                }
                Axiom::Domain(p, c) => {
                    for (s, _, _) in g.triples_matching(None, Some(&Term::iri(p.clone())), None) {
                        new.push(Triple::new(
                            s.clone(),
                            type_iri.clone(),
                            Term::iri(c.clone()),
                        ));
                    }
                }
                Axiom::Range(p, c) => {
                    for (_, _, o) in g.triples_matching(None, Some(&Term::iri(p.clone())), None) {
                        new.push(Triple::new(
                            o.clone(),
                            type_iri.clone(),
                            Term::iri(c.clone()),
                        ));
                    }
                }
                Axiom::InverseOf(p1, p2) => {
                    for (from, to) in [(p1, p2), (p2, p1)] {
                        for (s, _, o) in
                            g.triples_matching(None, Some(&Term::iri(from.clone())), None)
                        {
                            new.push(Triple::new(o.clone(), Term::iri(to.clone()), s.clone()));
                        }
                    }
                }
                Axiom::SomeValuesFrom { .. } => {}
            }
        }
        let mut changed = false;
        for t in new {
            if g.insert(t) {
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}
