//! The direct graph-pattern evaluator (SPARQL 1.1 §18 / Table 4 of the
//! paper), shared by all three reference engines and parameterised by a
//! [`Quirks`] profile.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use sparqlog::solution::{QueryResults, SolutionSeq};
use sparqlog_rdf::Triple;
use sparqlog_rdf::{Dataset, Graph, Term};
use sparqlog_sparql::{
    AggFunc, DescribeTarget, Expr, GraphPattern, GraphSpec, Query, QueryForm, SelectItem,
    TermPattern, TriplePattern, Var,
};

use crate::binding::{Binding, Multiset};
use crate::exprs::{eval_expr, eval_filter, order_cmp};
use crate::paths::{PathError, PathEvaluator};
use crate::quirks::Quirks;

/// A reference-engine failure, classified the way the paper's compliance
/// tables report it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Wall-clock budget exceeded (the "Time-Out" rows).
    Timeout,
    /// The engine refuses the query (the "Not Supported" rows).
    NotSupported(String),
    /// The query string is malformed.
    Malformed(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Timeout => write!(f, "time-out"),
            EngineError::NotSupported(m) => write!(f, "not supported: {m}"),
            EngineError::Malformed(m) => write!(f, "malformed query: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<PathError> for EngineError {
    fn from(e: PathError) -> Self {
        match e {
            PathError::Timeout => EngineError::Timeout,
            PathError::NotSupported(m) => EngineError::NotSupported(m),
        }
    }
}

/// The pattern evaluator.
pub struct Evaluator<'a> {
    dataset: &'a Dataset,
    quirks: Quirks,
    deadline: Option<Instant>,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator; `timeout` is measured from this call.
    pub fn new(dataset: &'a Dataset, quirks: Quirks, timeout: Option<Duration>) -> Self {
        Evaluator {
            dataset,
            quirks,
            deadline: timeout.map(|t| Instant::now() + t),
        }
    }

    fn check_time(&self) -> Result<(), EngineError> {
        if let Some(d) = self.deadline {
            if Instant::now() > d {
                return Err(EngineError::Timeout);
            }
        }
        Ok(())
    }

    /// Evaluates a full query.
    pub fn run(&self, q: &Query) -> Result<QueryResults, EngineError> {
        // Quirk-driven refusals.
        if self.quirks.error_on_order_by_expression
            && q.order_by.iter().any(|c| !matches!(c.expr, Expr::Var(_)))
        {
            return Err(EngineError::NotSupported(
                "ORDER BY with expression argument".into(),
            ));
        }
        if let Some(limit) = self.quirks.error_on_deep_optional {
            if optional_depth(&q.pattern) >= limit {
                return Err(EngineError::NotSupported("deeply nested OPTIONAL".into()));
            }
        }

        let sols = self.eval_pattern(&q.pattern, self.dataset.default_graph())?;

        match &q.form {
            QueryForm::Ask => Ok(QueryResults::Boolean(!sols.is_empty())),
            QueryForm::Select { distinct, items } => {
                let vars = q.projection();
                let mut rows: Vec<Vec<Option<Term>>> = if q.has_aggregates() {
                    self.aggregate_rows(q, items, &sols)?
                } else {
                    // ORDER BY applies before projection (it may reference
                    // non-projected variables).
                    let mut sols = sols;
                    if !q.order_by.is_empty() {
                        self.order_bindings(&mut sols, q);
                    }
                    sols.iter()
                        .map(|b| vars.iter().map(|v| b.get(v).cloned()).collect())
                        .collect()
                };
                if q.has_aggregates() && !q.order_by.is_empty() {
                    self.order_rows(&mut rows, q, &vars);
                }

                let skip_distinct =
                    self.quirks.distinct_ignored_with_optional && contains_optional(&q.pattern);
                if *distinct && !skip_distinct {
                    let mut seen = HashSet::new();
                    rows.retain(|r| {
                        let key: Vec<String> = r
                            .iter()
                            .map(|c| c.as_ref().map(|t| t.to_string()).unwrap_or_default())
                            .collect();
                        seen.insert(key)
                    });
                }
                if let Some(off) = q.offset {
                    rows = rows.split_off(off.min(rows.len()));
                }
                if let Some(lim) = q.limit {
                    rows.truncate(lim);
                }
                Ok(QueryResults::Solutions(SolutionSeq {
                    vars: vars.iter().map(|v| v.name().to_string()).collect(),
                    rows,
                }))
            }
            QueryForm::Construct { template } => {
                let mut sols = sols;
                if !q.order_by.is_empty() {
                    self.order_bindings(&mut sols, q);
                }
                let mut bindings: Vec<&Binding> = sols.iter().collect();
                if let Some(off) = q.offset {
                    bindings.drain(..off.min(bindings.len()));
                }
                if let Some(lim) = q.limit {
                    bindings.truncate(lim);
                }
                // Independent re-implementation of template instantiation
                // (SPARQL 1.1 §16.2) — the differential suite compares
                // this against sparqlog's Datalog-backed CONSTRUCT.
                let mut g = Graph::new();
                for (row, b) in bindings.iter().enumerate() {
                    for t in template {
                        let resolve = |tp: &TermPattern| -> Option<Term> {
                            match tp {
                                TermPattern::Term(Term::BlankNode(label)) => {
                                    Some(Term::bnode(format!("{label}!r{row}")))
                                }
                                TermPattern::Term(term) => Some(term.clone()),
                                TermPattern::Var(v) => b.get(v).cloned(),
                            }
                        };
                        let (Some(s), Some(p), Some(o)) = (
                            resolve(&t.subject),
                            resolve(&t.predicate),
                            resolve(&t.object),
                        ) else {
                            continue;
                        };
                        if s.is_literal() || !p.is_iri() {
                            continue;
                        }
                        g.insert(Triple::new(s, p, o));
                    }
                }
                Ok(QueryResults::Graph(Box::new(g)))
            }
            QueryForm::Describe { targets } => {
                let mut queue: Vec<Term> = Vec::new();
                let mut seen: HashSet<Term> = HashSet::new();
                for t in targets {
                    if let DescribeTarget::Iri(iri) = t {
                        let term = Term::iri(iri.clone());
                        if seen.insert(term.clone()) {
                            queue.push(term);
                        }
                    }
                }
                let vars = q.projection();
                for b in sols.iter() {
                    for v in &vars {
                        if let Some(t) = b.get(v) {
                            if !t.is_literal() && seen.insert(t.clone()) {
                                queue.push(t.clone());
                            }
                        }
                    }
                }
                // Concise bounded description over the default graph.
                let dg = self.dataset.default_graph();
                let mut g = Graph::new();
                while let Some(r) = queue.pop() {
                    self.check_time()?;
                    for (_, p, o) in dg.triples_matching(Some(&r), None, None) {
                        if o.is_bnode() && seen.insert(o.clone()) {
                            queue.push(o.clone());
                        }
                        g.insert(Triple::new(r.clone(), p.clone(), o.clone()));
                    }
                }
                Ok(QueryResults::Graph(Box::new(g)))
            }
        }
    }

    fn order_bindings(&self, sols: &mut Multiset, q: &Query) {
        sols.sort_by(|a, b| {
            for cond in &q.order_by {
                let va = eval_expr(&cond.expr, a);
                let vb = eval_expr(&cond.expr, b);
                let ord = order_cmp(&va, &vb);
                let ord = if cond.descending { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    fn order_rows(&self, rows: &mut [Vec<Option<Term>>], q: &Query, vars: &[Var]) {
        rows.sort_by(|a, b| {
            for cond in &q.order_by {
                if let Expr::Var(v) = &cond.expr {
                    if let Some(i) = vars.iter().position(|w| w == v) {
                        let ord = order_cmp(&a[i], &b[i]);
                        let ord = if cond.descending { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    fn aggregate_rows(
        &self,
        q: &Query,
        items: &[SelectItem],
        sols: &Multiset,
    ) -> Result<Vec<Vec<Option<Term>>>, EngineError> {
        use std::collections::BTreeMap;
        // Group solutions by the GROUP BY key (deterministic order).
        let mut groups: BTreeMap<Vec<Option<Term>>, Vec<&Binding>> = BTreeMap::new();
        for b in sols {
            let key: Vec<Option<Term>> = q.group_by.iter().map(|v| b.get(v).cloned()).collect();
            groups.entry(key).or_default().push(b);
        }
        let mut rows = Vec::with_capacity(groups.len());
        for (key, members) in groups {
            let mut row = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    SelectItem::Var(v) => {
                        let i = q.group_by.iter().position(|w| w == v).ok_or_else(|| {
                            EngineError::Malformed(format!(
                                "projected variable {v} not in GROUP BY"
                            ))
                        })?;
                        row.push(key[i].clone());
                    }
                    SelectItem::Aggregate {
                        func,
                        distinct,
                        arg,
                        ..
                    } => {
                        row.push(aggregate(*func, *distinct, arg.as_ref(), &members));
                    }
                }
            }
            rows.push(row);
        }
        Ok(rows)
    }

    /// Evaluates a graph pattern over the active graph (Table 4).
    pub fn eval_pattern(&self, p: &GraphPattern, graph: &Graph) -> Result<Multiset, EngineError> {
        self.check_time()?;
        match p {
            GraphPattern::Empty => Ok(vec![Binding::empty()]),
            GraphPattern::Triple(t) => self.eval_triple(t, graph),
            GraphPattern::Path {
                subject,
                path,
                object,
            } => {
                let start = match subject {
                    TermPattern::Term(t) => Some(t),
                    TermPattern::Var(_) => None,
                };
                let end = match object {
                    TermPattern::Term(t) => Some(t),
                    TermPattern::Var(_) => None,
                };
                let pe = PathEvaluator {
                    graph,
                    quirks: &self.quirks,
                    deadline: self.deadline,
                };
                let pairs = pe.eval(path, start, end)?;
                let mut out = Multiset::new();
                for (x, y) in pairs {
                    if let Some(b) = bind_pair(subject, object, x, y) {
                        out.push(b);
                    }
                }
                Ok(out)
            }
            GraphPattern::Join(a, b) => {
                let left = self.eval_pattern(a, graph)?;
                let right = self.eval_pattern(b, graph)?;
                self.join(&left, &right)
            }
            GraphPattern::Union(a, b) => {
                let mut out = self.eval_pattern(a, graph)?;
                out.extend(self.eval_pattern(b, graph)?);
                if self.quirks.union_dedupes_without_distinct {
                    let mut seen: HashSet<Binding> = HashSet::new();
                    out.retain(|b| seen.insert(b.clone()));
                }
                Ok(out)
            }
            GraphPattern::Optional(a, b) => {
                let left = self.eval_pattern(a, graph)?;
                let (inner, conds) = peel_filters(b);
                let right = self.eval_pattern(inner, graph)?;
                self.left_join(&left, &right, &conds)
            }
            GraphPattern::Minus(a, b) => {
                let left = self.eval_pattern(a, graph)?;
                let right = self.eval_pattern(b, graph)?;
                Ok(left
                    .into_iter()
                    .filter(|l| {
                        !right
                            .iter()
                            .any(|r| l.compatible(r) && l.shares_domain_with(r))
                    })
                    .collect())
            }
            GraphPattern::Filter(inner, cond) => {
                let sols = self.eval_pattern(inner, graph)?;
                Ok(sols.into_iter().filter(|b| eval_filter(cond, b)).collect())
            }
            GraphPattern::Graph(spec, inner) => match spec {
                GraphSpec::Iri(name) => match self.dataset.named_graph(name) {
                    Some(g) => self.eval_pattern(inner, g),
                    None => Ok(Vec::new()),
                },
                GraphSpec::Var(v) => {
                    let mut out = Multiset::new();
                    for (name, g) in self.dataset.named_graphs() {
                        let gterm = Term::iri(name);
                        for b in self.eval_pattern(inner, g)? {
                            match b.get(v) {
                                Some(t) if *t != gterm => continue,
                                _ => out.push(b.bind(v.clone(), gterm.clone())),
                            }
                        }
                    }
                    Ok(out)
                }
            },
        }
    }

    fn eval_triple(&self, t: &TriplePattern, graph: &Graph) -> Result<Multiset, EngineError> {
        let s = match &t.subject {
            TermPattern::Term(t) => Some(t),
            TermPattern::Var(_) => None,
        };
        let p = match &t.predicate {
            TermPattern::Term(t) => Some(t),
            TermPattern::Var(_) => None,
        };
        let o = match &t.object {
            TermPattern::Term(t) => Some(t),
            TermPattern::Var(_) => None,
        };
        let mut out = Multiset::new();
        for (ts, tp, to) in graph.triples_matching(s, p, o) {
            let mut b = Binding::empty();
            let mut ok = true;
            for (pat, val) in [(&t.subject, ts), (&t.predicate, tp), (&t.object, to)] {
                if let TermPattern::Var(v) = pat {
                    match b.get(v) {
                        Some(existing) if existing != val => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => b = b.bind(v.clone(), val.clone()),
                    }
                }
            }
            if ok {
                out.push(b);
            }
        }
        Ok(out)
    }

    /// Ω1 ⋈ Ω2 with a hash-join fast path when a shared variable is bound
    /// in every solution of both sides.
    fn join(&self, left: &Multiset, right: &Multiset) -> Result<Multiset, EngineError> {
        if left.is_empty() || right.is_empty() {
            return Ok(Vec::new());
        }
        let key_var = common_complete_var(left, right);
        let mut out = Multiset::new();
        match key_var {
            Some(v) => {
                let mut index: std::collections::HashMap<&Term, Vec<&Binding>> =
                    std::collections::HashMap::new();
                for r in right {
                    index
                        .entry(r.get(&v).expect("complete var"))
                        .or_default()
                        .push(r);
                }
                for (i, l) in left.iter().enumerate() {
                    if i % 1024 == 0 {
                        self.check_time()?;
                    }
                    let lv = l.get(&v).expect("complete var");
                    if let Some(cands) = index.get(lv) {
                        for r in cands {
                            if l.compatible(r) {
                                out.push(l.merge(r));
                            }
                        }
                    }
                }
            }
            None => {
                for (i, l) in left.iter().enumerate() {
                    if i % 64 == 0 {
                        self.check_time()?;
                    }
                    for r in right {
                        if l.compatible(r) {
                            out.push(l.merge(r));
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// LeftJoin(Ω1, Ω2, conds) per SPARQL §18.5 / Def. A.9.
    fn left_join(
        &self,
        left: &Multiset,
        right: &Multiset,
        conds: &[Expr],
    ) -> Result<Multiset, EngineError> {
        let mut out = Multiset::new();
        for (i, l) in left.iter().enumerate() {
            if i % 256 == 0 {
                self.check_time()?;
            }
            let mut extended = false;
            for r in right {
                if l.compatible(r) {
                    let merged = l.merge(r);
                    if conds.iter().all(|c| eval_filter(c, &merged)) {
                        out.push(merged);
                        extended = true;
                    }
                }
            }
            if !extended {
                out.push(l.clone());
            }
        }
        Ok(out)
    }
}

/// Computes one aggregate over a group.
fn aggregate(
    func: AggFunc,
    distinct: bool,
    arg: Option<&Expr>,
    members: &[&Binding],
) -> Option<Term> {
    let mut values: Vec<Term> = match arg {
        None => members.iter().map(|_| Term::integer(1)).collect(),
        Some(e) => members.iter().filter_map(|b| eval_expr(e, b)).collect(),
    };
    if distinct {
        let mut seen = HashSet::new();
        values.retain(|t| seen.insert(t.clone()));
    }
    match func {
        AggFunc::Count => Some(Term::integer(values.len() as i64)),
        AggFunc::Sum => {
            let nums: Vec<f64> = values
                .iter()
                .filter_map(|t| t.as_literal().and_then(|l| l.as_f64()))
                .collect();
            let all_int = values
                .iter()
                .all(|t| t.as_literal().and_then(|l| l.as_i64()).is_some());
            let sum: f64 = nums.iter().sum();
            Some(if all_int {
                Term::integer(sum as i64)
            } else {
                Term::double(sum)
            })
        }
        AggFunc::Min => {
            let mut best: Option<Term> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        if order_cmp(&Some(v.clone()), &Some(b.clone())) == std::cmp::Ordering::Less
                        {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best
        }
        AggFunc::Max => {
            let mut best: Option<Term> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        if order_cmp(&Some(v.clone()), &Some(b.clone()))
                            == std::cmp::Ordering::Greater
                        {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best
        }
        AggFunc::Avg => {
            let nums: Vec<f64> = values
                .iter()
                .filter_map(|t| t.as_literal().and_then(|l| l.as_f64()))
                .collect();
            if nums.is_empty() {
                Some(Term::integer(0))
            } else {
                Some(Term::double(nums.iter().sum::<f64>() / nums.len() as f64))
            }
        }
    }
}

/// Binds a path pair onto the subject/object term patterns.
fn bind_pair(subject: &TermPattern, object: &TermPattern, x: Term, y: Term) -> Option<Binding> {
    let mut b = Binding::empty();
    match subject {
        TermPattern::Term(t) => {
            if *t != x {
                return None;
            }
        }
        TermPattern::Var(v) => b = b.bind(v.clone(), x),
    }
    match object {
        TermPattern::Term(t) => {
            if *t != y {
                return None;
            }
        }
        TermPattern::Var(v) => match b.get(v) {
            Some(existing) if *existing != y => return None,
            Some(_) => {}
            None => b = b.bind(v.clone(), y),
        },
    }
    Some(b)
}

/// A variable bound in *every* solution on both sides (hash-join key).
fn common_complete_var(left: &Multiset, right: &Multiset) -> Option<Var> {
    let first = left.first()?;
    for v in first.dom() {
        if left.iter().all(|b| b.get(v).is_some())
            && !right.is_empty()
            && right.iter().all(|b| b.get(v).is_some())
        {
            return Some(v.clone());
        }
    }
    None
}

/// Strips top-level FILTER wrappers (for the LeftJoin condition).
fn peel_filters(p: &GraphPattern) -> (&GraphPattern, Vec<Expr>) {
    let mut conds = Vec::new();
    let mut cur = p;
    while let GraphPattern::Filter(inner, c) = cur {
        conds.push(c.clone());
        cur = inner;
    }
    conds.reverse();
    (cur, conds)
}

fn contains_optional(p: &GraphPattern) -> bool {
    match p {
        GraphPattern::Optional(_, _) => true,
        GraphPattern::Join(a, b) | GraphPattern::Union(a, b) | GraphPattern::Minus(a, b) => {
            contains_optional(a) || contains_optional(b)
        }
        GraphPattern::Filter(a, _) | GraphPattern::Graph(_, a) => contains_optional(a),
        _ => false,
    }
}

fn optional_depth(p: &GraphPattern) -> usize {
    match p {
        GraphPattern::Optional(a, b) => 1 + optional_depth(a).max(optional_depth(b)),
        GraphPattern::Join(a, b) | GraphPattern::Union(a, b) | GraphPattern::Minus(a, b) => {
            optional_depth(a).max(optional_depth(b))
        }
        GraphPattern::Filter(a, _) | GraphPattern::Graph(_, a) => optional_depth(a),
        _ => 0,
    }
}
