//! Solution mappings for the direct evaluators.
//!
//! A [`Binding`] is a partial function from variables to RDF terms (the
//! μ of the paper's §3.1), stored as a compact sorted vector. A
//! [`Multiset`] is a bag of bindings — the result of graph-pattern
//! evaluation (Table 4).

use sparqlog_rdf::Term;
use sparqlog_sparql::Var;

/// A solution mapping: variable → term, sorted by variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Binding {
    entries: Vec<(Var, Term)>,
}

/// A multiset of solution mappings.
pub type Multiset = Vec<Binding>;

impl Binding {
    /// The empty mapping μ0.
    pub fn empty() -> Self {
        Binding::default()
    }

    /// The value bound to `v`, if any.
    pub fn get(&self, v: &Var) -> Option<&Term> {
        self.entries
            .binary_search_by(|(w, _)| w.cmp(v))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Binds `v` to `t`, returning the extended mapping. Panics if `v` is
    /// already bound to a different term (callers check compatibility
    /// first).
    pub fn bind(&self, v: Var, t: Term) -> Binding {
        let mut entries = self.entries.clone();
        match entries.binary_search_by(|(w, _)| w.cmp(&v)) {
            Ok(i) => {
                assert_eq!(entries[i].1, t, "rebinding {v} to a different term");
            }
            Err(i) => entries.insert(i, (v, t)),
        }
        Binding { entries }
    }

    /// The domain of the mapping.
    pub fn dom(&self) -> impl Iterator<Item = &Var> + '_ {
        self.entries.iter().map(|(v, _)| v)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True for the empty mapping.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// μ1 ∼ μ2: agree on all shared variables (§3.1).
    pub fn compatible(&self, other: &Binding) -> bool {
        // Merge-walk the two sorted entry lists.
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if self.entries[i].1 != other.entries[j].1 {
                        return false;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        true
    }

    /// True if the domains intersect.
    pub fn shares_domain_with(&self, other: &Binding) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// μ1 ∪ μ2 for compatible mappings.
    pub fn merge(&self, other: &Binding) -> Binding {
        let mut entries = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() || j < other.entries.len() {
            if i == self.entries.len() {
                entries.push(other.entries[j].clone());
                j += 1;
            } else if j == other.entries.len() {
                entries.push(self.entries[i].clone());
                i += 1;
            } else {
                match self.entries[i].0.cmp(&other.entries[j].0) {
                    std::cmp::Ordering::Less => {
                        entries.push(self.entries[i].clone());
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        entries.push(other.entries[j].clone());
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        entries.push(self.entries[i].clone());
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        Binding { entries }
    }

    /// Restricts the mapping to the given variables (projection).
    pub fn project(&self, vars: &[Var]) -> Binding {
        Binding {
            entries: self
                .entries
                .iter()
                .filter(|(v, _)| vars.contains(v))
                .cloned()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(pairs: &[(&str, &str)]) -> Binding {
        let mut out = Binding::empty();
        for (v, t) in pairs {
            out = out.bind(Var::new(*v), Term::iri(*t));
        }
        out
    }

    #[test]
    fn bind_and_get() {
        let m = b(&[("y", "b"), ("x", "a")]);
        assert_eq!(m.get(&Var::new("x")), Some(&Term::iri("a")));
        assert_eq!(m.get(&Var::new("y")), Some(&Term::iri("b")));
        assert_eq!(m.get(&Var::new("z")), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn compatibility() {
        let m1 = b(&[("x", "a"), ("y", "b")]);
        let m2 = b(&[("y", "b"), ("z", "c")]);
        let m3 = b(&[("y", "DIFFERENT")]);
        assert!(m1.compatible(&m2));
        assert!(!m1.compatible(&m3));
        // Disjoint domains are always compatible.
        let m4 = b(&[("w", "d")]);
        assert!(m1.compatible(&m4));
        assert!(!m1.shares_domain_with(&m4));
        assert!(m1.shares_domain_with(&m2));
        // Empty mapping compatible with everything.
        assert!(Binding::empty().compatible(&m1));
    }

    #[test]
    fn merge_unions_domains() {
        let m1 = b(&[("x", "a")]);
        let m2 = b(&[("y", "b")]);
        let m = m1.merge(&m2);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&Var::new("x")), Some(&Term::iri("a")));
        assert_eq!(m.get(&Var::new("y")), Some(&Term::iri("b")));
    }

    #[test]
    fn project_restricts() {
        let m = b(&[("x", "a"), ("y", "b"), ("z", "c")]);
        let p = m.project(&[Var::new("x"), Var::new("z")]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(&Var::new("y")), None);
    }
}
