//! SPARQL expression evaluation over RDF terms (SPARQL 1.1 §17) — an
//! independent implementation from the Datalog route, used by the
//! reference engines and therefore usable as a differential oracle.

use sparqlog_datalog::regex::Regex;
use sparqlog_rdf::vocab::xsd;
use sparqlog_rdf::{Literal, Term};
use sparqlog_sparql::expr::{ArithOp, CmpOp};
use sparqlog_sparql::Expr;

use crate::binding::Binding;

/// Evaluates an expression; `None` models a SPARQL type error.
pub fn eval_expr(e: &Expr, b: &Binding) -> Option<Term> {
    match e {
        Expr::Var(v) => b.get(v).cloned(),
        Expr::Const(t) => Some(t.clone()),
        Expr::Or(x, y) => {
            let xv = eval_expr(x, b).and_then(|t| ebv(&t));
            let yv = eval_expr(y, b).and_then(|t| ebv(&t));
            match (xv, yv) {
                (Some(true), _) | (_, Some(true)) => Some(Term::boolean(true)),
                (Some(false), Some(false)) => Some(Term::boolean(false)),
                _ => None,
            }
        }
        Expr::And(x, y) => {
            let xv = eval_expr(x, b).and_then(|t| ebv(&t));
            let yv = eval_expr(y, b).and_then(|t| ebv(&t));
            match (xv, yv) {
                (Some(false), _) | (_, Some(false)) => Some(Term::boolean(false)),
                (Some(true), Some(true)) => Some(Term::boolean(true)),
                _ => None,
            }
        }
        Expr::Not(x) => {
            let v = ebv(&eval_expr(x, b)?)?;
            Some(Term::boolean(!v))
        }
        Expr::Compare(op, x, y) => {
            let xv = eval_expr(x, b)?;
            let yv = eval_expr(y, b)?;
            let r = match op {
                CmpOp::Eq => term_eq(&xv, &yv),
                CmpOp::Neq => !term_eq(&xv, &yv),
                CmpOp::Lt => term_cmp(&xv, &yv)? == std::cmp::Ordering::Less,
                CmpOp::Le => term_cmp(&xv, &yv)? != std::cmp::Ordering::Greater,
                CmpOp::Gt => term_cmp(&xv, &yv)? == std::cmp::Ordering::Greater,
                CmpOp::Ge => term_cmp(&xv, &yv)? != std::cmp::Ordering::Less,
            };
            Some(Term::boolean(r))
        }
        Expr::Arith(op, x, y) => {
            let xv = eval_expr(x, b)?;
            let yv = eval_expr(y, b)?;
            arith(*op, &xv, &yv)
        }
        Expr::Neg(x) => arith(ArithOp::Sub, &Term::integer(0), &eval_expr(x, b)?),
        Expr::Bound(v) => Some(Term::boolean(b.get(v).is_some())),
        Expr::IsIri(x) => Some(Term::boolean(eval_expr(x, b)?.is_iri())),
        Expr::IsBlank(x) => Some(Term::boolean(eval_expr(x, b)?.is_bnode())),
        Expr::IsLiteral(x) => Some(Term::boolean(eval_expr(x, b)?.is_literal())),
        Expr::IsNumeric(x) => Some(Term::boolean(
            eval_expr(x, b)?
                .as_literal()
                .is_some_and(Literal::is_numeric),
        )),
        Expr::Str(x) => Some(Term::literal(eval_expr(x, b)?.str_value())),
        Expr::Lang(x) => {
            let t = eval_expr(x, b)?;
            let l = t.as_literal()?;
            Some(Term::literal(l.language().unwrap_or("")))
        }
        Expr::Datatype(x) => {
            let t = eval_expr(x, b)?;
            let l = t.as_literal()?;
            Some(Term::iri(l.datatype()))
        }
        Expr::Ucase(x) => map_string(&eval_expr(x, b)?, str::to_uppercase),
        Expr::Lcase(x) => map_string(&eval_expr(x, b)?, str::to_lowercase),
        Expr::Strlen(x) => {
            let t = eval_expr(x, b)?;
            let l = t.as_literal()?;
            Some(Term::integer(l.lexical().chars().count() as i64))
        }
        Expr::Contains(x, y) => binary_string(x, y, b, |a, c| a.contains(c)),
        Expr::StrStarts(x, y) => binary_string(x, y, b, |a, c| a.starts_with(c)),
        Expr::StrEnds(x, y) => binary_string(x, y, b, |a, c| a.ends_with(c)),
        Expr::SameTerm(x, y) => Some(Term::boolean(eval_expr(x, b)? == eval_expr(y, b)?)),
        Expr::LangMatches(x, y) => {
            let l = eval_expr(x, b)?;
            let r = eval_expr(y, b)?;
            let l = l.as_literal()?.lexical().to_ascii_lowercase();
            let r = r.as_literal()?.lexical().to_ascii_lowercase();
            let ok = if r == "*" {
                !l.is_empty()
            } else {
                l == r || l.starts_with(&format!("{r}-"))
            };
            Some(Term::boolean(ok))
        }
        Expr::Regex(text, pattern, flags) => {
            let t = eval_expr(text, b)?;
            let p = eval_expr(pattern, b)?;
            let f = match flags {
                None => String::new(),
                Some(fe) => eval_expr(fe, b)?.as_literal()?.lexical().to_string(),
            };
            let re = Regex::new(p.as_literal()?.lexical(), &f).ok()?;
            Some(Term::boolean(re.is_match(t.as_literal()?.lexical())))
        }
    }
}

/// Evaluates an expression as a filter condition: errors count as false.
pub fn eval_filter(e: &Expr, b: &Binding) -> bool {
    eval_expr(e, b).and_then(|t| ebv(&t)).unwrap_or(false)
}

/// Effective boolean value (SPARQL §17.2.2).
pub fn ebv(t: &Term) -> Option<bool> {
    let l = t.as_literal()?;
    if let Some(b) = l.as_bool() {
        return Some(b);
    }
    if let Some(n) = l.as_f64() {
        return Some(n != 0.0 && !n.is_nan());
    }
    match l.kind() {
        sparqlog_rdf::LiteralKind::Plain | sparqlog_rdf::LiteralKind::Lang(_) => {
            Some(!l.lexical().is_empty())
        }
        sparqlog_rdf::LiteralKind::Typed(dt) if dt.as_ref() == xsd::STRING => {
            Some(!l.lexical().is_empty())
        }
        _ => None,
    }
}

/// Value equality with numeric coercion (matching the Datalog route's
/// `value_eq`, so the two engines agree).
pub fn term_eq(a: &Term, b: &Term) -> bool {
    if a == b {
        return true;
    }
    match (
        a.as_literal().and_then(Literal::as_f64),
        b.as_literal().and_then(Literal::as_f64),
    ) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

/// Value ordering: numeric, then string, then boolean, then IRI; `None`
/// for incomparable terms (type error).
pub fn term_cmp(a: &Term, b: &Term) -> Option<std::cmp::Ordering> {
    if let (Some(x), Some(y)) = (
        a.as_literal().and_then(Literal::as_f64),
        b.as_literal().and_then(Literal::as_f64),
    ) {
        return x.partial_cmp(&y);
    }
    match (a, b) {
        (Term::Iri(x), Term::Iri(y)) => Some(x.cmp(y)),
        (Term::Literal(x), Term::Literal(y)) => match (x.as_bool(), y.as_bool()) {
            (Some(p), Some(q)) => Some(p.cmp(&q)),
            _ => Some(x.lexical().cmp(y.lexical())),
        },
        _ => None,
    }
}

/// Numeric arithmetic on literals; integer-preserving like the Datalog
/// route's `arith`, so the two engines agree.
fn arith(op: ArithOp, a: &Term, b: &Term) -> Option<Term> {
    let (ia, ib) = (
        a.as_literal().and_then(Literal::as_i64),
        b.as_literal().and_then(Literal::as_i64),
    );
    if let (Some(x), Some(y)) = (ia, ib) {
        return match op {
            ArithOp::Add => Some(Term::integer(x.checked_add(y)?)),
            ArithOp::Sub => Some(Term::integer(x.checked_sub(y)?)),
            ArithOp::Mul => Some(Term::integer(x.checked_mul(y)?)),
            ArithOp::Div => {
                if y == 0 {
                    None
                } else if x % y == 0 {
                    Some(Term::integer(x / y))
                } else {
                    Some(Term::double(x as f64 / y as f64))
                }
            }
        };
    }
    let x = a.as_literal().and_then(Literal::as_f64)?;
    let y = b.as_literal().and_then(Literal::as_f64)?;
    let r = match op {
        ArithOp::Add => x + y,
        ArithOp::Sub => x - y,
        ArithOp::Mul => x * y,
        ArithOp::Div => {
            if y == 0.0 {
                return None;
            }
            x / y
        }
    };
    Some(Term::double(r))
}

fn map_string(t: &Term, f: impl Fn(&str) -> String) -> Option<Term> {
    let l = t.as_literal()?;
    let mapped = f(l.lexical());
    Some(match l.language() {
        Some(tag) => Term::lang_literal(mapped, tag),
        None => Term::literal(mapped),
    })
}

fn binary_string(x: &Expr, y: &Expr, b: &Binding, f: impl Fn(&str, &str) -> bool) -> Option<Term> {
    let xv = eval_expr(x, b)?;
    let yv = eval_expr(y, b)?;
    Some(Term::boolean(f(
        xv.as_literal()?.lexical(),
        yv.as_literal()?.lexical(),
    )))
}

/// Total order used for ORDER BY: unbound < blank < IRI < literal, ties by
/// value (numeric literals by value). Mirrors `sparqlog_datalog::order_cmp`.
pub fn order_cmp(a: &Option<Term>, b: &Option<Term>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(t: &Term) -> u8 {
        match t {
            Term::BlankNode(_) => 1,
            Term::Iri(_) => 2,
            Term::Literal(_) => 3,
        }
    }
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => {
            let (rx, ry) = (rank(x), rank(y));
            if rx != ry {
                return rx.cmp(&ry);
            }
            term_cmp(x, y).unwrap_or_else(|| x.cmp(y))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_sparql::Var;

    fn bind(v: &str, t: Term) -> Binding {
        Binding::empty().bind(Var::new(v), t)
    }

    #[test]
    fn numeric_equality_coerces() {
        assert!(term_eq(
            &Term::integer(5),
            &Term::typed_literal("5.0", xsd::DOUBLE)
        ));
        assert!(!term_eq(&Term::literal("5"), &Term::integer(5)));
    }

    #[test]
    fn filter_comparison() {
        let e = Expr::Compare(
            CmpOp::Lt,
            Box::new(Expr::Var(Var::new("x"))),
            Box::new(Expr::Const(Term::integer(10))),
        );
        assert!(eval_filter(&e, &bind("x", Term::integer(5))));
        assert!(!eval_filter(&e, &bind("x", Term::integer(15))));
        // Unbound → error → false.
        assert!(!eval_filter(&e, &Binding::empty()));
    }

    #[test]
    fn bound_builtin() {
        let e = Expr::Bound(Var::new("x"));
        assert!(eval_filter(&e, &bind("x", Term::integer(1))));
        assert!(!eval_filter(&e, &Binding::empty()));
    }

    #[test]
    fn regex_and_string_functions() {
        let b = bind("t", Term::literal("Journal of Rust"));
        let e = Expr::Regex(
            Box::new(Expr::Var(Var::new("t"))),
            Box::new(Expr::Const(Term::literal("^journal"))),
            Some(Box::new(Expr::Const(Term::literal("i")))),
        );
        assert!(eval_filter(&e, &b));
        let e = Expr::Strlen(Box::new(Expr::Const(Term::literal("abc"))));
        assert_eq!(eval_expr(&e, &b), Some(Term::integer(3)));
    }

    #[test]
    fn type_errors_propagate() {
        // LANG of an IRI is a type error.
        let e = Expr::Lang(Box::new(Expr::Const(Term::iri("http://a"))));
        assert_eq!(eval_expr(&e, &Binding::empty()), None);
        // EBV of an IRI is an error.
        assert_eq!(ebv(&Term::iri("http://a")), None);
    }

    #[test]
    fn datatype_builtin() {
        use sparqlog_rdf::vocab::rdf;
        let e = Expr::Datatype(Box::new(Expr::Const(Term::integer(5))));
        assert_eq!(
            eval_expr(&e, &Binding::empty()),
            Some(Term::iri(xsd::INTEGER))
        );
        let e = Expr::Datatype(Box::new(Expr::Const(Term::lang_literal("x", "en"))));
        assert_eq!(
            eval_expr(&e, &Binding::empty()),
            Some(Term::iri(rdf::LANG_STRING))
        );
    }

    #[test]
    fn order_cmp_unbound_first() {
        assert_eq!(
            order_cmp(&None, &Some(Term::iri("a"))),
            std::cmp::Ordering::Less
        );
        assert_eq!(
            order_cmp(&Some(Term::integer(2)), &Some(Term::integer(10))),
            std::cmp::Ordering::Less
        );
    }
}
