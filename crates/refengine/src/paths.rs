//! Property-path evaluation over a single graph (SPARQL 1.1 §9.3 /
//! Table 5 of the paper).
//!
//! Non-recursive operators (link, inverse, sequence, alternative, negated
//! sets) are evaluated under **bag semantics**; `?`, `*`, `+` and the
//! range forms under **set semantics** — matching both the W3C standard
//! and the SparqLog translation, so the engines can be compared
//! result-for-result.
//!
//! The closure algorithms follow the spec's ALP procedure: breadth-first
//! search with a visited set per start node. With
//! [`Quirks::no_closure_memo`] the successor relation is recomputed from
//! the graph on every probe (Jena-style per-binding search); otherwise an
//! edge list is materialised once per closure (Virtuoso-style).

use std::collections::HashSet;
use std::time::Instant;

use sparqlog_datalog::fxhash::{FxHashMap, FxHashSet};
use sparqlog_rdf::{Graph, Term};
use sparqlog_sparql::PropertyPath;

use crate::quirks::Quirks;

/// A path evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    Timeout,
    NotSupported(String),
}

/// Evaluates property paths over one graph.
pub struct PathEvaluator<'a> {
    pub graph: &'a Graph,
    pub quirks: &'a Quirks,
    pub deadline: Option<Instant>,
}

type Pairs = Vec<(Term, Term)>;

impl<'a> PathEvaluator<'a> {
    fn check_time(&self) -> Result<(), PathError> {
        if let Some(d) = self.deadline {
            if Instant::now() > d {
                return Err(PathError::Timeout);
            }
        }
        Ok(())
    }

    /// Evaluates `path` between the (possibly bound) endpoints, returning
    /// the multiset of `(x, y)` pairs.
    pub fn eval(
        &self,
        path: &PropertyPath,
        start: Option<&Term>,
        end: Option<&Term>,
    ) -> Result<Pairs, PathError> {
        self.check_time()?;
        match path {
            PropertyPath::Link(p) => {
                let pred = Term::iri(p.clone());
                Ok(self
                    .graph
                    .triples_matching(start, Some(&pred), end)
                    .map(|(s, _, o)| (s.clone(), o.clone()))
                    .collect())
            }
            PropertyPath::Inverse(inner) => {
                let pairs = self.eval(inner, end, start)?;
                Ok(pairs.into_iter().map(|(x, y)| (y, x)).collect())
            }
            PropertyPath::Alternative(l, r) => {
                let mut pairs = self.eval(l, start, end)?;
                pairs.extend(self.eval(r, start, end)?);
                if self.quirks.alternative_drops_duplicates {
                    pairs = dedupe(pairs);
                }
                Ok(pairs)
            }
            PropertyPath::Sequence(l, r) => self.eval_sequence(l, r, start, end),
            PropertyPath::ZeroOrOne(inner) => {
                self.guard_two_var(start, end, "zero-or-one")?;
                let mut out = self.zero_pairs(start, end);
                out.extend(self.eval(inner, start, end)?);
                Ok(constrain(dedupe(out), start, end))
            }
            PropertyPath::OneOrMore(inner) => {
                self.guard_two_var(start, end, "one-or-more")?;
                if self.quirks.one_or_more_via_zero_or_more {
                    // The documented Virtuoso bug: p+ = p* minus identity.
                    let zom = self.eval_zero_or_more(inner, start, end)?;
                    return Ok(zom.into_iter().filter(|(x, y)| x != y).collect());
                }
                self.closure(inner, start, end, false)
            }
            PropertyPath::ZeroOrMore(inner) => {
                self.guard_two_var(start, end, "zero-or-more")?;
                self.eval_zero_or_more(inner, start, end)
            }
            PropertyPath::NegatedSet { forward, backward } => {
                let mut out: Pairs = Vec::new();
                if !forward.is_empty() || backward.is_empty() {
                    for (s, p, o) in self.graph.triples_matching(start, None, end) {
                        let pi = p.as_iri().unwrap_or("");
                        if !forward.iter().any(|f| f.as_ref() == pi) {
                            out.push((s.clone(), o.clone()));
                        }
                    }
                }
                if !backward.is_empty() {
                    for (s, p, o) in self.graph.triples_matching(end, None, start) {
                        let pi = p.as_iri().unwrap_or("");
                        if !backward.iter().any(|f| f.as_ref() == pi) {
                            out.push((o.clone(), s.clone()));
                        }
                    }
                }
                Ok(constrain(out, start, end))
            }
            // gMark range forms — desugared with set semantics, exactly as
            // in the SparqLog translation.
            PropertyPath::Exactly(inner, n) => {
                if *n == 0 {
                    return Ok(constrain(dedupe(self.zero_pairs(start, end)), start, end));
                }
                let mut path = (**inner).clone();
                for _ in 1..*n {
                    path = PropertyPath::Sequence(Box::new((**inner).clone()), Box::new(path));
                }
                Ok(dedupe(self.eval(&path, start, end)?))
            }
            PropertyPath::AtLeast(inner, n) => {
                let path = match n {
                    0 => PropertyPath::ZeroOrMore(inner.clone()),
                    1 => PropertyPath::OneOrMore(inner.clone()),
                    n => PropertyPath::Sequence(
                        Box::new(PropertyPath::Exactly(inner.clone(), n - 1)),
                        Box::new(PropertyPath::OneOrMore(inner.clone())),
                    ),
                };
                Ok(dedupe(self.eval(&path, start, end)?))
            }
            PropertyPath::Between(inner, n, m) => {
                let mut out = Pairs::new();
                if *n == 0 {
                    out.extend(self.zero_pairs(start, end));
                }
                for k in (*n).max(1)..=*m {
                    out.extend(self.eval(&PropertyPath::Exactly(inner.clone(), k), start, end)?);
                }
                Ok(constrain(dedupe(out), start, end))
            }
        }
    }

    fn guard_two_var(
        &self,
        start: Option<&Term>,
        end: Option<&Term>,
        what: &str,
    ) -> Result<(), PathError> {
        if self.quirks.error_on_two_var_recursive_path && start.is_none() && end.is_none() {
            return Err(PathError::NotSupported(format!(
                "{what} property path with two variables: transitive start not given"
            )));
        }
        Ok(())
    }

    fn eval_zero_or_more(
        &self,
        inner: &PropertyPath,
        start: Option<&Term>,
        end: Option<&Term>,
    ) -> Result<Pairs, PathError> {
        let mut out = self.zero_pairs(start, end);
        out.extend(self.closure(inner, start, end, false)?);
        Ok(constrain(dedupe(out), start, end))
    }

    /// Zero-length pairs per Table 5: every subject/object term of the
    /// graph, plus the constant endpoints of the pattern.
    fn zero_pairs(&self, start: Option<&Term>, end: Option<&Term>) -> Pairs {
        let mut out: Pairs = self
            .graph
            .subjects_or_objects()
            .into_iter()
            .map(|t| (t.clone(), t.clone()))
            .collect();
        match (start, end) {
            (Some(s), None) => out.push((s.clone(), s.clone())),
            (None, Some(o)) => out.push((o.clone(), o.clone())),
            (Some(s), Some(o)) if s == o => out.push((s.clone(), s.clone())),
            _ => {}
        }
        constrain(out, start, end)
    }

    /// Transitive closure (the `+` semantics) via per-source BFS.
    fn closure(
        &self,
        inner: &PropertyPath,
        start: Option<&Term>,
        end: Option<&Term>,
        _zero: bool,
    ) -> Result<Pairs, PathError> {
        // Reverse direction when only the end is bound.
        if start.is_none() {
            if let Some(e) = end {
                let inv = PropertyPath::Inverse(Box::new(inner.clone()));
                let pairs = self.closure(&inv, Some(e), None, _zero)?;
                return Ok(pairs.into_iter().map(|(x, y)| (y, x)).collect());
            }
        }

        // Successor function. With memoisation the inner relation is
        // materialised once into an adjacency map; without it every probe
        // re-evaluates the inner path from the node (Jena-style).
        let memo: Option<FxHashMap<Term, Vec<Term>>> = if self.quirks.no_closure_memo {
            None
        } else {
            let mut adj: FxHashMap<Term, Vec<Term>> = FxHashMap::default();
            for (x, y) in dedupe(self.eval(inner, None, None)?) {
                adj.entry(x).or_default().push(y);
            }
            Some(adj)
        };
        let succ = |node: &Term| -> Result<Vec<Term>, PathError> {
            match &memo {
                Some(adj) => Ok(adj.get(node).cloned().unwrap_or_default()),
                None => {
                    let pairs = self.eval(inner, Some(node), None)?;
                    let mut targets: Vec<Term> = pairs.into_iter().map(|(_, y)| y).collect();
                    let mut seen = HashSet::new();
                    targets.retain(|t| seen.insert(t.clone()));
                    Ok(targets)
                }
            }
        };

        // Start nodes.
        let starts: Vec<Term> = match start {
            Some(s) => vec![s.clone()],
            None => match &memo {
                Some(adj) => adj.keys().cloned().collect(),
                None => {
                    let pairs = self.eval(inner, None, None)?;
                    let mut srcs: Vec<Term> = pairs.into_iter().map(|(x, _)| x).collect();
                    let mut seen = HashSet::new();
                    srcs.retain(|t| seen.insert(t.clone()));
                    srcs
                }
            },
        };

        let mut out = Pairs::new();
        for s in starts {
            self.check_time()?;
            let mut visited: FxHashSet<Term> = FxHashSet::default();
            let mut stack: Vec<Term> = succ(&s)?;
            while let Some(n) = stack.pop() {
                if visited.insert(n.clone()) {
                    self.check_time()?;
                    stack.extend(succ(&n)?);
                }
            }
            for v in visited {
                out.push((s.clone(), v));
            }
        }
        Ok(constrain(out, start, end))
    }

    fn eval_sequence(
        &self,
        l: &PropertyPath,
        r: &PropertyPath,
        start: Option<&Term>,
        end: Option<&Term>,
    ) -> Result<Pairs, PathError> {
        let left = self.eval(l, start, None)?;
        let mut out = Pairs::new();
        if self.quirks.no_closure_memo {
            // Per-binding evaluation, no sharing across equal midpoints.
            for (x, mid) in left {
                self.check_time()?;
                for (_, z) in self.eval(r, Some(&mid), end)? {
                    out.push((x.clone(), z));
                }
            }
        } else {
            let mut cache: FxHashMap<Term, Pairs> = FxHashMap::default();
            for (x, mid) in left {
                self.check_time()?;
                if !cache.contains_key(&mid) {
                    let pairs = self.eval(r, Some(&mid), end)?;
                    cache.insert(mid.clone(), pairs);
                }
                for (_, z) in &cache[&mid] {
                    out.push((x.clone(), z.clone()));
                }
            }
        }
        Ok(out)
    }
}

fn dedupe(pairs: Pairs) -> Pairs {
    let mut seen: HashSet<(Term, Term)> = HashSet::new();
    pairs
        .into_iter()
        .filter(|p| seen.insert(p.clone()))
        .collect()
}

fn constrain(pairs: Pairs, start: Option<&Term>, end: Option<&Term>) -> Pairs {
    pairs
        .into_iter()
        .filter(|(x, y)| start.is_none_or(|s| s == x) && end.is_none_or(|o| o == y))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparqlog_rdf::Triple;

    fn countries() -> Graph {
        let mut g = Graph::new();
        for (s, o) in [
            ("spain", "france"),
            ("france", "belgium"),
            ("france", "germany"),
            ("belgium", "germany"),
            ("germany", "austria"),
        ] {
            g.insert(Triple::new(
                Term::iri(format!("http://e/{s}")),
                Term::iri("http://e/borders"),
                Term::iri(format!("http://e/{o}")),
            ));
        }
        g
    }

    fn t(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn ev<'a>(g: &'a Graph, q: &'a Quirks) -> PathEvaluator<'a> {
        PathEvaluator {
            graph: g,
            quirks: q,
            deadline: None,
        }
    }

    fn link() -> PropertyPath {
        PropertyPath::link("http://e/borders")
    }

    #[test]
    fn one_or_more_from_spain() {
        let g = countries();
        let q = Quirks::fuseki();
        let pairs = ev(&g, &q)
            .eval(
                &PropertyPath::OneOrMore(Box::new(link())),
                Some(&t("spain")),
                None,
            )
            .unwrap();
        assert_eq!(pairs.len(), 4);
    }

    #[test]
    fn memoized_and_unmemoized_agree() {
        let g = countries();
        let path = PropertyPath::ZeroOrMore(Box::new(link()));
        let fuseki = Quirks::fuseki();
        let star = Quirks {
            no_closure_memo: false,
            ..Default::default()
        };
        let mut a = ev(&g, &fuseki)
            .eval(&path, Some(&t("spain")), None)
            .unwrap();
        let mut b = ev(&g, &star).eval(&path, Some(&t("spain")), None).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn virtuoso_two_var_recursive_errors() {
        let g = countries();
        let q = Quirks::virtuoso();
        let err = ev(&g, &q)
            .eval(&PropertyPath::OneOrMore(Box::new(link())), None, None)
            .unwrap_err();
        assert!(matches!(err, PathError::NotSupported(_)));
    }

    #[test]
    fn virtuoso_one_or_more_misses_cycles() {
        // a → b → a: (a, a) is a genuine + result; the quirk loses it.
        let mut g = Graph::new();
        g.insert(Triple::new(t("a"), Term::iri("http://e/borders"), t("b")));
        g.insert(Triple::new(t("b"), Term::iri("http://e/borders"), t("a")));
        let path = PropertyPath::OneOrMore(Box::new(link()));

        let fq = Quirks::fuseki();
        let mut correct = ev(&g, &fq).eval(&path, Some(&t("a")), None).unwrap();
        correct.sort();
        assert!(correct.contains(&(t("a"), t("a"))), "cycle reaches itself");

        let vq = Quirks::virtuoso();
        let wrong = ev(&g, &vq).eval(&path, Some(&t("a")), None).unwrap();
        assert!(
            !wrong.iter().any(|(x, y)| x == y),
            "quirk drops identity pairs"
        );
        assert!(wrong.len() < correct.len(), "incomplete result");
    }

    #[test]
    fn zero_or_one_includes_constant_endpoints() {
        let g = countries();
        let q = Quirks::fuseki();
        // atlantis is not in the graph: zero-length pair still exists.
        let pairs = ev(&g, &q)
            .eval(
                &PropertyPath::ZeroOrOne(Box::new(link())),
                Some(&t("atlantis")),
                None,
            )
            .unwrap();
        assert_eq!(pairs, vec![(t("atlantis"), t("atlantis"))]);
    }

    #[test]
    fn alternative_duplicates() {
        let mut g = Graph::new();
        g.insert(Triple::new(t("a"), Term::iri("http://e/p"), t("b")));
        g.insert(Triple::new(t("a"), Term::iri("http://e/q"), t("b")));
        let path = PropertyPath::Alternative(
            Box::new(PropertyPath::link("http://e/p")),
            Box::new(PropertyPath::link("http://e/q")),
        );
        let fq = Quirks::fuseki();
        assert_eq!(
            ev(&g, &fq).eval(&path, Some(&t("a")), None).unwrap().len(),
            2
        );
        let vq = Quirks::virtuoso();
        assert_eq!(
            ev(&g, &vq).eval(&path, Some(&t("a")), None).unwrap().len(),
            1,
            "Virtuoso drops alternative duplicates"
        );
    }

    #[test]
    fn sequence_bag_semantics() {
        // two length-2 routes spain→france→{belgium,germany}
        let g = countries();
        let q = Quirks::fuseki();
        let path = PropertyPath::Sequence(Box::new(link()), Box::new(link()));
        let pairs = ev(&g, &q).eval(&path, Some(&t("spain")), None).unwrap();
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn range_paths() {
        let g = countries();
        let q = Quirks::fuseki();
        let e = ev(&g, &q);
        let p2 = e
            .eval(
                &PropertyPath::Exactly(Box::new(link()), 2),
                Some(&t("spain")),
                None,
            )
            .unwrap();
        assert_eq!(p2.len(), 2); // belgium, germany (deduped)
        let p0 = e
            .eval(
                &PropertyPath::Exactly(Box::new(link()), 0),
                Some(&t("spain")),
                None,
            )
            .unwrap();
        assert_eq!(p0, vec![(t("spain"), t("spain"))]);
        let between = e
            .eval(
                &PropertyPath::Between(Box::new(link()), 0, 2),
                Some(&t("spain")),
                None,
            )
            .unwrap();
        // spain (0), france (1), belgium+germany (2) = 4 targets.
        assert_eq!(between.len(), 4);
    }

    #[test]
    fn closure_with_end_bound_only() {
        let g = countries();
        let q = Quirks::fuseki();
        let pairs = ev(&g, &q)
            .eval(
                &PropertyPath::OneOrMore(Box::new(link())),
                None,
                Some(&t("germany")),
            )
            .unwrap();
        // sources that reach germany: spain, france, belgium.
        let mut srcs: Vec<_> = pairs.iter().map(|(x, _)| x.clone()).collect();
        srcs.sort();
        srcs.dedup();
        assert_eq!(srcs.len(), 3);
    }
}
