//! Behaviour profiles for the reference engines.
//!
//! Each deviation is modelled after a concrete observation in the paper:
//!
//! * §6.2/D.2.3 on Virtuoso: "produces errors for zero-or-one,
//!   zero-or-more and one-or-more property paths that contain two
//!   variables ... the transitive start is not given";
//! * D.2.3: "the one-or-more property path might be implemented by
//!   evaluating the zero-or-more property path first and simply removing
//!   the start node from the computed result" (misses start nodes on
//!   cycles);
//! * D.2.3: "Virtuoso generates for three alternative property path
//!   queries incomplete results, which differ ... by missing all
//!   duplicates";
//! * §6.2 on FEASIBLE: "wrongly outputting duplicates (e.g., ignoring
//!   DISTINCTs) or omitting duplicates (e.g., by handling UNIONs
//!   incorrectly)", and 18 queries "unable to evaluate ... produced an
//!   error";
//! * §6.3 on Stardog: two-variable recursive paths evaluated without
//!   sharing work across sources (5× slower on Q4, timeout on Q5).

/// Engine behaviour profile.
#[derive(Debug, Clone, Default)]
pub struct Quirks {
    /// Error on `?`/`*`/`+` paths whose subject *and* object are unbound
    /// variables ("transitive start not given").
    pub error_on_two_var_recursive_path: bool,
    /// Compute `p+` as `p*` minus the identity pairs — loses `(x, x)`
    /// results on cycles.
    pub one_or_more_via_zero_or_more: bool,
    /// Alternative paths drop duplicate pairs.
    pub alternative_drops_duplicates: bool,
    /// `UNION` without `DISTINCT` deduplicates (omitting duplicates).
    pub union_dedupes_without_distinct: bool,
    /// `DISTINCT` is ignored when the pattern contains an `OPTIONAL`
    /// (wrongly outputting duplicates).
    pub distinct_ignored_with_optional: bool,
    /// Error on `ORDER BY` with a non-variable condition.
    pub error_on_order_by_expression: bool,
    /// Error on OPTIONAL nesting at or beyond this depth.
    pub error_on_deep_optional: Option<usize>,
    /// Re-derive path edge relations per BFS instead of sharing them
    /// across sources (slow two-variable recursive paths).
    pub no_closure_memo: bool,
}

impl Quirks {
    /// Apache Jena Fuseki: fully standard-compliant; per-binding path
    /// search without memoisation (slow on hard path queries, never
    /// wrong).
    pub fn fuseki() -> Self {
        Quirks {
            no_closure_memo: true,
            ..Default::default()
        }
    }

    /// OpenLink Virtuoso 7.2.5: fast but deviant.
    pub fn virtuoso() -> Self {
        Quirks {
            error_on_two_var_recursive_path: true,
            one_or_more_via_zero_or_more: true,
            alternative_drops_duplicates: true,
            union_dedupes_without_distinct: true,
            distinct_ignored_with_optional: true,
            error_on_order_by_expression: true,
            error_on_deep_optional: Some(3),
            no_closure_memo: false,
        }
    }

    /// Stardog 7.7.1: standard-compliant, materialising reasoner, but no
    /// work sharing on two-variable recursive paths.
    pub fn stardog() -> Self {
        Quirks {
            no_closure_memo: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles() {
        assert!(!Quirks::fuseki().error_on_two_var_recursive_path);
        assert!(Quirks::fuseki().no_closure_memo);
        let v = Quirks::virtuoso();
        assert!(v.error_on_two_var_recursive_path);
        assert!(v.one_or_more_via_zero_or_more);
        assert!(!v.no_closure_memo);
        assert!(Quirks::stardog().no_closure_memo);
    }
}
