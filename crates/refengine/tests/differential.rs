//! Differential testing: the SparqLog Datalog route vs. the direct
//! FusekiSim evaluator must produce identical result multisets — the
//! executable analogue of the paper's two-way correctness strategy (§5.3:
//! empirical evaluation + formal analysis; §6.2: "each time when both
//! Fuseki and SparqLog returned a result, the results were equal").

use sparqlog::{QueryResults, SparqLog};
use sparqlog_rdf::{Dataset, Graph, Term, Triple};
use sparqlog_refengine::FusekiSim;

const DATA: &str = r#"
@prefix ex: <http://e/> .
ex:a ex:p ex:b . ex:b ex:p ex:c . ex:c ex:p ex:a .
ex:a ex:q ex:c . ex:c ex:q ex:d .
ex:a ex:name "Anna" . ex:b ex:name "Ben" ; ex:age 30 .
ex:c ex:name "Cem"@tr ; ex:age 25 .
ex:d ex:name "Dee" ; ex:age 30 .
ex:a a ex:Person . ex:b a ex:Person . ex:d a ex:Robot .
"#;

fn dataset() -> Dataset {
    Dataset::from_default_graph(sparqlog_rdf::turtle::parse(DATA).unwrap())
}

fn compare(query: &str) {
    let mut sl = SparqLog::new();
    sl.load_dataset(&dataset()).unwrap();
    let fu = FusekiSim::new(dataset());

    let a = sl
        .execute(query)
        .unwrap_or_else(|e| panic!("SparqLog {query}: {e}"));
    let b = fu
        .execute(query)
        .unwrap_or_else(|e| panic!("FusekiSim {query}: {e}"));
    match (&a, &b) {
        (QueryResults::Boolean(x), QueryResults::Boolean(y)) => {
            assert_eq!(x, y, "{query}")
        }
        (QueryResults::Solutions(x), QueryResults::Solutions(y)) => {
            assert!(
                x.multiset_eq(y),
                "{query}\nSparqLog: {:?}\nFusekiSim: {:?}",
                x.canonical(true),
                y.canonical(true)
            );
        }
        _ => panic!("{query}: result kinds differ"),
    }
}

#[test]
fn fixed_query_battery() {
    for q in [
        // Basic patterns & joins.
        "SELECT ?s ?o WHERE { ?s <http://e/p> ?o }",
        "SELECT ?s WHERE { ?s <http://e/p> ?m . ?m <http://e/p> ?o }",
        "SELECT * WHERE { ?s ?p ?o }",
        // OPTIONAL / UNION / MINUS / FILTER.
        "PREFIX ex: <http://e/> SELECT ?s ?a WHERE { ?s ex:name ?n OPTIONAL { ?s ex:age ?a } }",
        "PREFIX ex: <http://e/> SELECT ?s WHERE { { ?s ex:p ex:b } UNION { ?s ex:q ex:c } }",
        "PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:name ?n MINUS { ?s ex:age 30 } }",
        "PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:age ?a FILTER (?a > 26) }",
        "PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:name ?n FILTER REGEX(STR(?n), \"^[ab]\", \"i\") }",
        "PREFIX ex: <http://e/> SELECT ?s ?a WHERE { ?s a ex:Person OPTIONAL { ?s ex:age ?a FILTER (?a > 28) } }",
        // DISTINCT & duplicates.
        "PREFIX ex: <http://e/> SELECT ?t WHERE { ?x a ?t }",
        "PREFIX ex: <http://e/> SELECT DISTINCT ?t WHERE { ?x a ?t }",
        // Property paths, incl. cyclic closure.
        "PREFIX ex: <http://e/> SELECT ?y WHERE { ex:a ex:p+ ?y }",
        "PREFIX ex: <http://e/> SELECT ?y WHERE { ex:a ex:p* ?y }",
        "PREFIX ex: <http://e/> SELECT ?y WHERE { ex:a ex:p? ?y }",
        "PREFIX ex: <http://e/> SELECT ?y WHERE { ex:a (ex:p|ex:q) ?y }",
        "PREFIX ex: <http://e/> SELECT ?y WHERE { ex:a ex:p/ex:q ?y }",
        "PREFIX ex: <http://e/> SELECT ?y WHERE { ex:a ^ex:p ?y }",
        "PREFIX ex: <http://e/> SELECT ?y WHERE { ex:a !(ex:p|ex:name) ?y }",
        "PREFIX ex: <http://e/> SELECT ?x ?y WHERE { ?x ex:p+ ?y }",
        "PREFIX ex: <http://e/> SELECT ?x ?y WHERE { ?x (ex:p/ex:p)+ ?y }",
        "PREFIX ex: <http://e/> SELECT ?y WHERE { ex:a ex:p{2} ?y }",
        "PREFIX ex: <http://e/> SELECT ?y WHERE { ex:a ex:p{2,} ?y }",
        "PREFIX ex: <http://e/> SELECT ?y WHERE { ex:a ex:p{0,2} ?y }",
        "PREFIX ex: <http://e/> SELECT ?y WHERE { ex:zzz ex:p? ?y }",
        // ASK.
        "PREFIX ex: <http://e/> ASK { ex:a ex:p ex:b }",
        "PREFIX ex: <http://e/> ASK { ex:a ex:p ex:zzz }",
        // Aggregates.
        "PREFIX ex: <http://e/> SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?s",
        "PREFIX ex: <http://e/> SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }",
        // Modifiers (compare as multisets — LIMIT needs ORDER to be fair,
        // so use total orders without ties).
        "PREFIX ex: <http://e/> SELECT ?n WHERE { ?s ex:name ?n } ORDER BY ?n",
        "PREFIX ex: <http://e/> SELECT ?n WHERE { ?s ex:name ?n } ORDER BY DESC(?n) LIMIT 2",
        // Filters with unbound vars and BOUND.
        "PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:name ?n OPTIONAL { ?s ex:age ?a } FILTER (!BOUND(?a)) }",
    ] {
        compare(q);
    }
}

#[test]
fn ordered_results_agree_in_order() {
    // With a total order (distinct names), the *sequences* must match.
    let mut sl = SparqLog::new();
    sl.load_dataset(&dataset()).unwrap();
    let fu = FusekiSim::new(dataset());
    let q = "PREFIX ex: <http://e/> SELECT ?n WHERE { ?s ex:name ?n } ORDER BY ?n";
    let a = sl.execute(q).unwrap();
    let b = fu.execute(q).unwrap();
    let (QueryResults::Solutions(x), QueryResults::Solutions(y)) = (&a, &b) else {
        panic!("expected solutions");
    };
    assert_eq!(x.rows, y.rows, "ordered sequences must be identical");
}

// ------------------------------------------------- randomised differential

/// Deterministic SplitMix64 case generator (in-tree — the workspace
/// builds offline, without proptest).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// A small pool of IRIs for random graphs.
fn node(i: u8) -> Term {
    Term::iri(format!("http://n/{}", i % 8))
}

fn pred(i: u8) -> Term {
    Term::iri(format!("http://p/{}", i % 3))
}

fn random_graph(rng: &mut Rng) -> Graph {
    let mut g = Graph::new();
    for _ in 0..rng.range(1, 40) {
        let (s, p, o) = (
            rng.range(0, 8) as u8,
            rng.range(0, 3) as u8,
            rng.range(0, 8) as u8,
        );
        g.insert(Triple::new(node(s), pred(p), node(o)));
    }
    g
}

/// Random queries drawn from templates covering joins, optional, union,
/// filters and paths over the random graph's vocabulary.
fn query_template(i: usize) -> String {
    let templates = [
        "SELECT ?s ?o WHERE { ?s <http://p/0> ?o }",
        "SELECT ?s ?o WHERE { ?s <http://p/0> ?m . ?m <http://p/1> ?o }",
        "SELECT ?s ?o WHERE { ?s <http://p/0> ?o OPTIONAL { ?o <http://p/1> ?z } }",
        "SELECT ?s WHERE { { ?s <http://p/0> ?o } UNION { ?s <http://p/1> ?o } }",
        "SELECT ?s WHERE { ?s <http://p/0> ?o MINUS { ?s <http://p/1> ?z } }",
        "SELECT ?s ?o WHERE { ?s <http://p/0>+ ?o }",
        "SELECT ?o WHERE { <http://n/0> <http://p/0>* ?o }",
        "SELECT ?o WHERE { <http://n/1> (<http://p/0>|<http://p/1>) ?o }",
        "SELECT ?o WHERE { <http://n/2> (<http://p/0>/<http://p/1>?) ?o }",
        "SELECT ?s WHERE { ?s !(<http://p/2>) ?o }",
        "SELECT DISTINCT ?s ?o WHERE { ?s (<http://p/1>/<http://p/0>)+ ?o }",
        "SELECT ?s (COUNT(?o) AS ?c) WHERE { ?s <http://p/0> ?o } GROUP BY ?s",
        "ASK { ?s <http://p/2> ?o }",
        "SELECT ?s WHERE { ?s ?p ?o FILTER (ISIRI(?o) && ?p != <http://p/2>) }",
        "SELECT ?o WHERE { <http://n/3> <http://p/0>{0,2} ?o }",
        "SELECT ?s ?o WHERE { ?s ^<http://p/1> ?o . ?s <http://p/0> ?z }",
    ];
    templates[i % templates.len()].to_string()
}

/// The Datalog route and the direct route agree on random graphs and
/// queries (the paper's majority-vote correctness check, mechanised).
#[test]
fn datalog_and_direct_routes_agree() {
    let mut rng = Rng(0xd1ff);
    for case in 0..48u64 {
        let g = random_graph(&mut rng);
        let qi = rng.range(0, 16) as usize;
        let query = query_template(qi);
        let ds = Dataset::from_default_graph(g);
        let mut sl = SparqLog::new();
        sl.load_dataset(&ds).unwrap();
        let fu = FusekiSim::new(ds);
        let a = sl.execute(&query).unwrap();
        let b = fu.execute(&query).unwrap();
        match (&a, &b) {
            (QueryResults::Boolean(x), QueryResults::Boolean(y)) => {
                assert_eq!(x, y, "case {case}: {query}")
            }
            (QueryResults::Solutions(x), QueryResults::Solutions(y)) => {
                assert!(
                    x.multiset_eq(y),
                    "case {case}: query {}\nSparqLog: {:?}\nFusekiSim: {:?}",
                    query,
                    x.canonical(true),
                    y.canonical(true)
                );
            }
            _ => panic!("case {case}: result kinds differ"),
        }
    }
}

/// Parallel evaluation must be observably identical to sequential
/// evaluation: for every random graph/query pair, a SparqLog engine
/// pinned to `SPARQLOG_THREADS`-style worker counts of 2, 4 and 8 must
/// produce multiset-identical solutions to the single-threaded engine
/// (thread counts are pinned via `EvalOptions::threads`, not the env
/// var, so this test is immune to the ambient configuration).
#[test]
fn parallel_evaluation_matches_sequential_on_random_battery() {
    use sparqlog_datalog::EvalOptions;

    let engine_with_threads = |ds: &Dataset, threads: usize| {
        let opts = EvalOptions {
            threads: Some(threads),
            ..Default::default()
        };
        let mut sl = SparqLog::with_options(opts);
        sl.load_dataset(ds).unwrap();
        sl
    };

    let mut rng = Rng(0x9a11e1);
    for case in 0..24u64 {
        let g = random_graph(&mut rng);
        let qi = rng.range(0, 16) as usize;
        let query = query_template(qi);
        let ds = Dataset::from_default_graph(g);
        let mut sequential = engine_with_threads(&ds, 1);
        let reference = sequential.execute(&query).unwrap();
        for threads in [2usize, 4, 8] {
            let mut parallel = engine_with_threads(&ds, threads);
            let got = parallel.execute(&query).unwrap();
            match (&reference, &got) {
                (QueryResults::Boolean(x), QueryResults::Boolean(y)) => {
                    assert_eq!(x, y, "case {case} threads {threads}: {query}")
                }
                (QueryResults::Solutions(x), QueryResults::Solutions(y)) => {
                    assert!(
                        x.multiset_eq(y),
                        "case {case} threads {threads}: query {}\nseq: {:?}\npar: {:?}",
                        query,
                        x.canonical(true),
                        y.canonical(true)
                    );
                }
                _ => panic!("case {case} threads {threads}: result kinds differ"),
            }
        }
    }
}

#[test]
fn virtuoso_quirks_visible() {
    use sparqlog_refengine::VirtuosoSim;
    let vi = VirtuosoSim::new(dataset());
    // Two-variable recursive path → error.
    let err = vi
        .execute("PREFIX ex: <http://e/> SELECT ?x ?y WHERE { ?x ex:p+ ?y }")
        .unwrap_err();
    assert!(matches!(
        err,
        sparqlog_refengine::EngineError::NotSupported(_)
    ));
    // Cycle a→b→c→a: Virtuoso misses (a, a).
    let fu = FusekiSim::new(dataset());
    let q = "PREFIX ex: <http://e/> SELECT ?y WHERE { ex:a ex:p+ ?y }";
    let correct = fu.execute(q).unwrap();
    let wrong = vi.execute(q).unwrap();
    assert_eq!(correct.len(), 3, "a reaches b, c and itself");
    assert_eq!(wrong.len(), 2, "Virtuoso loses the cycle");
}

#[test]
fn stardog_sim_reasons() {
    use sparqlog::{Axiom, Ontology};
    use sparqlog_refengine::StardogSim;
    let onto = Ontology::new().with(Axiom::SubClassOf(
        "http://e/Person".into(),
        "http://e/Agent".into(),
    ));
    let st = StardogSim::new(dataset(), &onto);
    let r = st
        .execute("PREFIX ex: <http://e/> SELECT ?x WHERE { ?x a ex:Agent }")
        .unwrap();
    assert_eq!(r.len(), 2, "a and b are inferred Agents");

    // SparqLog with the same ontology agrees.
    let mut sl = SparqLog::new();
    sl.load_dataset(&dataset()).unwrap();
    sl.add_ontology(&onto).unwrap();
    let r2 = sl
        .execute("PREFIX ex: <http://e/> SELECT ?x WHERE { ?x a ex:Agent }")
        .unwrap();
    assert!(r.solutions().unwrap().multiset_eq(r2.solutions().unwrap()));
}
