//! Differential testing of the PR 6 physical planner: every query runs
//! under all four optimiser configurations — cost-based planning on/off
//! × magic-sets rewrite on/off — at evaluator thread counts 1 and 4,
//! and each result is checked against both the unoptimised SparqLog
//! evaluation *and* FusekiSim's independent direct implementation.
//!
//! The planner's contract is that plans are advice: a reordered body or
//! a demand-restricted fixpoint may change the work performed but never
//! the answer. This suite is that contract, executed.

use sparqlog::{QueryResults, SparqLog};
use sparqlog_datalog::EvalOptions;
use sparqlog_rdf::Dataset;
use sparqlog_refengine::FusekiSim;

const DATA: &str = r#"
@prefix ex: <http://e/> .
ex:a ex:p ex:b . ex:b ex:p ex:c . ex:c ex:p ex:a .
ex:a ex:q ex:c . ex:c ex:q ex:d .
ex:a ex:name "Anna" . ex:b ex:name "Ben" ; ex:age 30 .
ex:c ex:name "Cem"@tr ; ex:age 25 .
ex:d ex:name "Dee" ; ex:age 30 .
ex:a a ex:Person . ex:b a ex:Person . ex:d a ex:Robot .
"#;

/// Joins with selective atoms in unhelpful text positions, property
/// paths with bound and unbound endpoints (the magic-sets target and
/// its complement), and the non-monotone forms (OPTIONAL, MINUS,
/// aggregates) whose stratification the planner must preserve.
const QUERIES: &[&str] = &[
    // Multi-atom joins: the planner reorders these.
    "PREFIX ex: <http://e/> SELECT ?s ?o WHERE { ?s ex:p ?m . ?m ex:p ?o }",
    "PREFIX ex: <http://e/> SELECT ?s ?n WHERE { ?s ex:p ?m . ?m ex:q ?o . ?s ex:name ?n }",
    "PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:age 30 . ?s ex:name ?n . ?s a ex:Person }",
    // Bound-endpoint recursive paths: the magic-sets target.
    "PREFIX ex: <http://e/> SELECT ?y WHERE { ex:a ex:p+ ?y }",
    "PREFIX ex: <http://e/> SELECT ?y WHERE { ex:a ex:p* ?y }",
    "PREFIX ex: <http://e/> SELECT ?x WHERE { ?x ex:p+ ex:c }",
    "PREFIX ex: <http://e/> SELECT ?y WHERE { ex:a (ex:p/ex:q)+ ?y }",
    "PREFIX ex: <http://e/> ASK { ex:b ex:p+ ex:a }",
    // Unbound-endpoint paths: the rewrite must leave these whole.
    "PREFIX ex: <http://e/> SELECT ?x ?y WHERE { ?x ex:p+ ?y }",
    "PREFIX ex: <http://e/> SELECT ?x ?y WHERE { ?x (ex:p|ex:q)+ ?y }",
    // Path feeding a join (the path predicate gains a consumer).
    "PREFIX ex: <http://e/> SELECT ?n WHERE { ex:a ex:p+ ?y . ?y ex:name ?n }",
    // Non-monotone forms around the reordered joins.
    "PREFIX ex: <http://e/> SELECT ?s ?a WHERE { ?s ex:name ?n OPTIONAL { ?s ex:age ?a } }",
    "PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:name ?n MINUS { ?s ex:age 30 } }",
    "PREFIX ex: <http://e/> SELECT ?s WHERE { { ?s ex:p ex:b } UNION { ?s ex:q ex:c } }",
    "PREFIX ex: <http://e/> SELECT ?s (COUNT(?o) AS ?c) WHERE { ?s ?p ?o } GROUP BY ?s",
    "PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:age ?a FILTER (?a > 26) }",
];

fn dataset() -> Dataset {
    Dataset::from_default_graph(sparqlog_rdf::turtle::parse(DATA).unwrap())
}

fn engine(plan: bool, magic_sets: bool, threads: usize) -> SparqLog {
    let mut sl = SparqLog::with_options(EvalOptions {
        plan,
        magic_sets,
        threads: Some(threads),
        ..Default::default()
    });
    sl.load_dataset(&dataset()).unwrap();
    sl
}

fn assert_same(a: &QueryResults, b: &QueryResults, ctx: &str) {
    match (a, b) {
        (QueryResults::Solutions(x), QueryResults::Solutions(y)) => {
            assert!(
                x.multiset_eq(y),
                "{ctx}\nreference: {:?}\noptimised: {:?}",
                x.canonical(true),
                y.canonical(true)
            );
        }
        _ => assert_eq!(a, b, "{ctx}"),
    }
}

#[test]
fn every_optimiser_configuration_agrees_with_baseline_and_refengine() {
    let fuseki = FusekiSim::new(dataset());
    for threads in [1, 4] {
        let mut baseline = engine(false, false, threads);
        let mut configs = [
            ("plan", engine(true, false, threads)),
            ("magic", engine(false, true, threads)),
            ("plan+magic", engine(true, true, threads)),
        ];
        for q in QUERIES {
            let expected = baseline.execute(q).unwrap_or_else(|e| panic!("{q}: {e}"));
            let reference = fuseki.execute(q).unwrap_or_else(|e| panic!("{q}: {e}"));
            assert_same(
                &expected,
                &reference,
                &format!("baseline vs FusekiSim: {q} (threads {threads})"),
            );
            for (name, sl) in &mut configs {
                let got = sl.execute(q).unwrap_or_else(|e| panic!("{name} {q}: {e}"));
                assert_same(&expected, &got, &format!("{name}: {q} (threads {threads})"));
            }
        }
    }
}

#[test]
fn store_level_toggle_is_differential_too() {
    // The same contract through the Store/Snapshot serving path, where
    // plans are cached on the translation: flipping the options on a
    // live store must not change any answer.
    use sparqlog::Store;
    let planned = Store::with_options(EvalOptions {
        threads: Some(1),
        ..Default::default()
    });
    let unplanned = Store::with_options(EvalOptions {
        plan: false,
        magic_sets: false,
        threads: Some(1),
        ..Default::default()
    });
    for store in [&planned, &unplanned] {
        store
            .load_dataset(&dataset())
            .expect("fixture loads into the store");
    }
    for q in QUERIES {
        assert_same(
            &unplanned.execute(q).unwrap(),
            &planned.execute(q).unwrap(),
            &format!("store serving path: {q}"),
        );
    }
    // Flipping options replans without changing answers.
    planned.set_options(EvalOptions {
        plan: false,
        magic_sets: false,
        threads: Some(1),
        ..Default::default()
    });
    for q in QUERIES {
        assert_same(
            &unplanned.execute(q).unwrap(),
            &planned.execute(q).unwrap(),
            &format!("after set_options: {q}"),
        );
    }
}
