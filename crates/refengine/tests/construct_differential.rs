//! Differential testing of the graph-producing query forms: SparqLog's
//! Datalog-backed CONSTRUCT/DESCRIBE against FusekiSim's independent
//! direct implementation, at evaluator thread counts 1 and 4 — plus
//! CONSTRUCT-vs-SELECT consistency (the graph a CONSTRUCT builds must
//! be exactly the template instantiated over the corresponding SELECT's
//! solutions).

use sparqlog::{canonical_triples as canonical, QueryResults, SparqLog};
use sparqlog_rdf::{Dataset, Graph, Term, Triple};
use sparqlog_refengine::FusekiSim;

const DATA: &str = r#"
@prefix ex: <http://e/> .
ex:a ex:p ex:b . ex:b ex:p ex:c . ex:c ex:p ex:a .
ex:a ex:q ex:c . ex:c ex:q ex:d .
ex:a ex:name "Anna" . ex:b ex:name "Ben" ; ex:age 30 .
ex:c ex:name "Cem"@tr ; ex:age 25 .
ex:d ex:name "Dee" ; ex:age 30 .
ex:d ex:addr _:adr . _:adr ex:city "Utrecht" .
ex:a a ex:Person . ex:b a ex:Person . ex:d a ex:Robot .
"#;

fn dataset() -> Dataset {
    Dataset::from_default_graph(sparqlog_rdf::turtle::parse(DATA).unwrap())
}

fn compare_graph(query: &str, threads: usize) {
    let mut sl = SparqLog::new();
    sl.set_threads(Some(threads));
    sl.load_dataset(&dataset()).unwrap();
    let fu = FusekiSim::new(dataset());

    let a = sl
        .execute(query)
        .unwrap_or_else(|e| panic!("SparqLog {query}: {e}"));
    let b = fu
        .execute(query)
        .unwrap_or_else(|e| panic!("FusekiSim {query}: {e}"));
    let (QueryResults::Graph(ga), QueryResults::Graph(gb)) = (&a, &b) else {
        panic!("{query}: expected graph results");
    };
    assert_eq!(canonical(ga), canonical(gb), "{query} (threads {threads})");
}

const GRAPH_QUERIES: &[&str] = &[
    // Plain template over a join.
    "PREFIX ex: <http://e/> CONSTRUCT { ?s ex:reached ?o } WHERE { ?s ex:p ?m . ?m ex:p ?o }",
    // Shorthand.
    "PREFIX ex: <http://e/> CONSTRUCT WHERE { ?s ex:name ?n }",
    // OPTIONAL leaves template variables unbound → dropped triples.
    "PREFIX ex: <http://e/> CONSTRUCT { ?s ex:aged ?a } WHERE { ?s ex:name ?n OPTIONAL { ?s ex:age ?a } }",
    // Blank nodes in the template, fresh per solution.
    "PREFIX ex: <http://e/> CONSTRUCT { ?s ex:card _:c . _:c ex:label ?n } WHERE { ?s ex:name ?n }",
    // UNION + FILTER under a graph-producing form.
    "PREFIX ex: <http://e/> CONSTRUCT { ?x ex:hit ex:marker } WHERE { { ?x ex:p ex:b } UNION { ?x ex:age ?a FILTER (?a > 27) } }",
    // Property path in the WHERE clause.
    "PREFIX ex: <http://e/> CONSTRUCT { ex:a ex:closure ?z } WHERE { ex:a ex:p+ ?z }",
    // Literal-subject instantiations must be dropped by both engines.
    "PREFIX ex: <http://e/> CONSTRUCT { ?n ex:nameOf ?s } WHERE { ?s ex:name ?n }",
    // ORDER BY on a variable outside the template + LIMIT: the smallest
    // ?n (ex:c, age 25) must be the surviving solution in both engines.
    "PREFIX ex: <http://e/> CONSTRUCT { ?s ex:tag ex:t } WHERE { ?s ex:age ?n } ORDER BY ?n LIMIT 1",
    // DESCRIBE: explicit IRI (with bnode closure), variable, star.
    "DESCRIBE <http://e/d>",
    "PREFIX ex: <http://e/> DESCRIBE ?s WHERE { ?s ex:age 30 }",
    "PREFIX ex: <http://e/> DESCRIBE * WHERE { ex:a ex:p ?x }",
];

#[test]
fn construct_describe_differential_threads_1() {
    for q in GRAPH_QUERIES {
        compare_graph(q, 1);
    }
}

#[test]
fn construct_describe_differential_threads_4() {
    for q in GRAPH_QUERIES {
        compare_graph(q, 4);
    }
}

/// CONSTRUCT-vs-SELECT: instantiating the template by hand over the
/// SELECT solutions (evaluated by the *reference* engine) must equal
/// SparqLog's CONSTRUCT output.
#[test]
fn construct_agrees_with_template_over_select() {
    let cases: &[(&str, &str, [&str; 3])] = &[
        (
            "PREFIX ex: <http://e/> CONSTRUCT { ?s ex:knows ?o } WHERE { ?s ex:p ?o }",
            "PREFIX ex: <http://e/> SELECT ?s ?o WHERE { ?s ex:p ?o }",
            ["?s", "http://e/knows", "?o"],
        ),
        (
            "PREFIX ex: <http://e/> CONSTRUCT { ?s ex:named ?n } WHERE { ?s ex:name ?n . ?s ex:age ?a }",
            "PREFIX ex: <http://e/> SELECT ?s ?n WHERE { ?s ex:name ?n . ?s ex:age ?a }",
            ["?s", "http://e/named", "?n"],
        ),
    ];
    for threads in [1usize, 4] {
        for (construct, select, template) in cases {
            let mut sl = SparqLog::new();
            sl.set_threads(Some(threads));
            sl.load_dataset(&dataset()).unwrap();
            let constructed = match sl.execute(construct).unwrap() {
                QueryResults::Graph(g) => g,
                other => panic!("{construct}: expected graph, got {other:?}"),
            };

            // Reference solutions → hand instantiation.
            let fu = FusekiSim::new(dataset());
            let sols = match fu.execute(select).unwrap() {
                QueryResults::Solutions(s) => s,
                other => panic!("{select}: expected solutions, got {other:?}"),
            };
            let mut expected = Graph::new();
            for sol in sols.iter() {
                let resolve = |slot: &str| -> Option<Term> {
                    match slot.strip_prefix('?') {
                        Some(var) => sol.get(var).cloned(),
                        None => Some(Term::iri(slot.to_string())),
                    }
                };
                let (Some(s), Some(p), Some(o)) = (
                    resolve(template[0]),
                    resolve(template[1]),
                    resolve(template[2]),
                ) else {
                    continue;
                };
                if s.is_literal() || !p.is_iri() {
                    continue;
                }
                expected.insert(Triple::new(s, p, o));
            }
            assert_eq!(
                canonical(&constructed),
                canonical(&expected),
                "{construct} (threads {threads})"
            );
        }
    }
}
