//! A BeSEPPI-like compliance suite (Skubella–Janke–Staab, ESWC'19): 236
//! property-path queries over a small fixed graph, each with its expected
//! result multiset, organised in the seven categories of the paper's
//! Table 3.
//!
//! Expected results are computed by an *independent brute-force path
//! evaluator* over the (tiny) benchmark graph — deliberately sharing no
//! code with either the Datalog translation or the reference engines, so
//! it can serve as ground truth for both.

use sparqlog_rdf::{Graph, Term, Triple};
use sparqlog_sparql::PropertyPath;

/// The query categories of Table 3 (in the paper's row order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    Inverse,
    Sequence,
    Alternative,
    ZeroOrOne,
    OneOrMore,
    ZeroOrMore,
    Negated,
}

impl Category {
    /// All categories in Table 3 order.
    pub const ALL: [Category; 7] = [
        Category::Inverse,
        Category::Sequence,
        Category::Alternative,
        Category::ZeroOrOne,
        Category::OneOrMore,
        Category::ZeroOrMore,
        Category::Negated,
    ];

    /// The paper's per-category query counts (Table 3, last column).
    pub fn target_count(self) -> usize {
        match self {
            Category::Inverse => 20,
            Category::Sequence => 24,
            Category::Alternative => 23,
            Category::ZeroOrOne => 24,
            Category::OneOrMore => 34,
            Category::ZeroOrMore => 38,
            Category::Negated => 73,
        }
    }

    /// Display name used in the regenerated table.
    pub fn name(self) -> &'static str {
        match self {
            Category::Inverse => "Inverse",
            Category::Sequence => "Sequence",
            Category::Alternative => "Alternative",
            Category::ZeroOrOne => "Zero or One",
            Category::OneOrMore => "One or More",
            Category::ZeroOrMore => "Zero or More",
            Category::Negated => "Negated",
        }
    }
}

/// One compliance query with its ground-truth answer.
#[derive(Debug, Clone)]
pub struct PathQuery {
    pub id: String,
    pub category: Category,
    /// The SPARQL query text (a single path pattern under `SELECT *`).
    pub query: String,
    /// Projected variable names, in projection order.
    pub vars: Vec<String>,
    /// Expected rows (multiset), aligned with `vars`.
    pub expected: Vec<Vec<Term>>,
}

/// Result classification per the paper's correctness/completeness
/// metrics (D.2.3). `Error` is applied by the harness when the engine
/// refuses or times out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Correct,
    IncompleteButCorrect,
    CompleteButIncorrect,
    IncompleteAndIncorrect,
}

/// Classifies an actual result multiset against the expected one.
/// `actual` rows must be aligned with the query's `vars`.
pub fn classify(expected: &[Vec<Term>], actual: &[Vec<Term>]) -> Verdict {
    let canon = |rows: &[Vec<Term>]| -> Vec<Vec<String>> {
        let mut out: Vec<Vec<String>> = rows
            .iter()
            .map(|r| r.iter().map(|t| t.to_string()).collect())
            .collect();
        out.sort();
        out
    };
    let exp = canon(expected);
    let act = canon(actual);
    let subset = |a: &[Vec<String>], b: &[Vec<String>]| {
        let mut rest = b.to_vec();
        a.iter().all(|row| {
            rest.iter()
                .position(|r| r == row)
                .map(|i| {
                    rest.swap_remove(i);
                })
                .is_some()
        })
    };
    let correct = subset(&act, &exp); // no spurious answers
    let complete = subset(&exp, &act); // no missing answers
    match (correct, complete) {
        (true, true) => Verdict::Correct,
        (true, false) => Verdict::IncompleteButCorrect,
        (false, true) => Verdict::CompleteButIncorrect,
        (false, false) => Verdict::IncompleteAndIncorrect,
    }
}

const NS: &str = "http://beseppi.example.org/";

fn person(name: &str) -> Term {
    Term::iri(format!("{NS}{name}"))
}

fn prop(name: &str) -> String {
    format!("{NS}{name}")
}

/// The fixed benchmark graph: a handful of people with `knows` cycles, a
/// self-loop, sinks (only incoming edges) and a literal — the shapes the
/// BeSEPPI paper identified as error-prone.
pub fn graph() -> Graph {
    let mut g = Graph::new();
    let knows = Term::iri(prop("knows"));
    let likes = Term::iri(prop("likes"));
    let dislikes = Term::iri(prop("dislikes"));
    let mentor = Term::iri(prop("mentor"));
    for (s, p, o) in [
        ("alice", &knows, "bob"),
        ("bob", &knows, "carl"),
        ("carl", &knows, "alice"), // knows-cycle
        ("carl", &knows, "dave"),
        ("eve", &knows, "alice"),
        ("alice", &likes, "dave"),
        ("dave", &likes, "frank"),
        ("bob", &likes, "bob"), // self-loop
        // Pairs present under *both* knows and likes — alternative paths
        // must report them twice (bag semantics); engines that
        // deduplicate alternatives return incomplete results here.
        ("alice", &likes, "bob"),
        ("carl", &likes, "dave"),
        ("eve", &dislikes, "frank"),
        ("frank", &mentor, "eve"),
    ] {
        g.insert(Triple::new(person(s), p.clone(), person(o)));
    }
    g.insert(Triple::new(
        person("alice"),
        Term::iri(prop("name")),
        Term::literal("Alice"),
    ));
    g
}

/// Endpoint shapes for generated queries.
#[derive(Debug, Clone)]
enum Shape {
    VarVar,
    ConstVar(&'static str),
    VarConst(&'static str),
    ConstConst(&'static str, &'static str),
    /// A constant that does not occur in the graph (zero-length edge case).
    GhostVar,
    VarGhost,
    GhostGhost,
}

impl Shape {
    fn subject(&self) -> Option<Term> {
        match self {
            Shape::ConstVar(s) | Shape::ConstConst(s, _) => Some(person(s)),
            Shape::GhostVar | Shape::GhostGhost => Some(person("ghost")),
            _ => None,
        }
    }

    fn object(&self) -> Option<Term> {
        match self {
            Shape::VarConst(o) | Shape::ConstConst(_, o) => Some(person(o)),
            Shape::VarGhost => Some(person("ghost")),
            Shape::GhostGhost => Some(person("ghost")),
            _ => None,
        }
    }
}

/// Generates the 236 queries with expected answers.
pub fn queries() -> Vec<PathQuery> {
    let g = graph();
    let link = |n: &str| PropertyPath::link(prop(n));
    let inv = |p: PropertyPath| PropertyPath::Inverse(Box::new(p));
    let alt =
        |a: PropertyPath, b: PropertyPath| PropertyPath::Alternative(Box::new(a), Box::new(b));
    let seq = |a: PropertyPath, b: PropertyPath| PropertyPath::Sequence(Box::new(a), Box::new(b));
    let plus = |p: PropertyPath| PropertyPath::OneOrMore(Box::new(p));
    let star = |p: PropertyPath| PropertyPath::ZeroOrMore(Box::new(p));
    let opt = |p: PropertyPath| PropertyPath::ZeroOrOne(Box::new(p));
    let neg = |fwd: &[&str], bwd: &[&str]| PropertyPath::NegatedSet {
        forward: fwd.iter().map(|n| prop(n).into()).collect(),
        backward: bwd.iter().map(|n| prop(n).into()).collect(),
    };

    let basic_shapes = vec![
        Shape::VarVar,
        Shape::ConstVar("alice"),
        Shape::VarConst("alice"),
        Shape::ConstConst("alice", "dave"),
        Shape::GhostVar,
        Shape::VarGhost,
    ];
    let zero_shapes = vec![
        Shape::VarVar,
        Shape::ConstVar("alice"),
        Shape::VarConst("frank"),
        Shape::GhostVar,
        Shape::VarGhost,
        Shape::GhostGhost,
    ];
    let cycle_shapes = [
        Shape::ConstConst("carl", "carl"),
        Shape::ConstConst("bob", "bob"),
        Shape::ConstConst("alice", "alice"),
        Shape::ConstConst("dave", "dave"),
    ];

    let mut out = Vec::new();
    let emit = |category: Category,
                paths: Vec<PropertyPath>,
                shapes: &[Shape],
                extra: &[(PropertyPath, Shape)],
                out: &mut Vec<PathQuery>| {
        let target = category.target_count();
        let mut generated = 0usize;
        'outer: for path in &paths {
            for shape in shapes {
                if generated == target {
                    break 'outer;
                }
                out.push(build_query(&g, category, path, shape, generated));
                generated += 1;
            }
        }
        for (path, shape) in extra {
            if generated == target {
                break;
            }
            out.push(build_query(&g, category, path, shape, generated));
            generated += 1;
        }
        assert_eq!(
            generated, target,
            "{category:?}: generated {generated}, want {target}"
        );
    };

    // Inverse: 4 paths × 5 shapes = 20.
    emit(
        Category::Inverse,
        vec![
            inv(link("knows")),
            inv(link("likes")),
            inv(link("dislikes")),
            inv(link("mentor")),
        ],
        &basic_shapes[..5],
        &[],
        &mut out,
    );
    // Sequence: 4 paths × 6 shapes = 24.
    emit(
        Category::Sequence,
        vec![
            seq(link("knows"), link("knows")),
            seq(link("knows"), link("likes")),
            seq(link("likes"), link("knows")),
            seq(inv(link("knows")), link("likes")),
        ],
        &basic_shapes,
        &[],
        &mut out,
    );
    // Alternative: 4 paths × 6 shapes − 1 = 23.
    emit(
        Category::Alternative,
        vec![
            alt(link("knows"), link("likes")),
            alt(link("likes"), link("dislikes")),
            alt(link("knows"), inv(link("likes"))),
            alt(alt(link("knows"), link("likes")), link("mentor")),
        ],
        &basic_shapes[..6],
        &[],
        &mut out,
    );

    // Zero or One: 4 paths × 6 zero shapes = 24.
    emit(
        Category::ZeroOrOne,
        vec![
            opt(link("knows")),
            opt(link("likes")),
            opt(inv(link("knows"))),
            opt(seq(link("knows"), link("likes"))),
        ],
        &zero_shapes,
        &[],
        &mut out,
    );
    // One or More: 5 paths × 6 shapes + 4 cycle probes = 34.
    emit(
        Category::OneOrMore,
        vec![
            plus(link("knows")),
            plus(link("likes")),
            plus(alt(link("knows"), link("likes"))),
            plus(inv(link("knows"))),
            plus(seq(link("knows"), link("likes"))),
        ],
        &basic_shapes,
        &[
            (plus(link("knows")), cycle_shapes[0].clone()),
            (plus(link("likes")), cycle_shapes[1].clone()),
            (plus(link("knows")), cycle_shapes[2].clone()),
            (plus(link("knows")), cycle_shapes[3].clone()),
        ],
        &mut out,
    );
    // Zero or More: 6 paths × 6 zero shapes + 2 cycle probes = 38.
    emit(
        Category::ZeroOrMore,
        vec![
            star(link("knows")),
            star(link("likes")),
            star(alt(link("knows"), link("likes"))),
            star(inv(link("knows"))),
            star(seq(link("knows"), link("likes"))),
            star(link("dislikes")),
        ],
        &zero_shapes,
        &[
            (star(link("knows")), cycle_shapes[0].clone()),
            (star(link("likes")), cycle_shapes[1].clone()),
        ],
        &mut out,
    );
    // Negated: 12 sets × 6 shapes = 72 + 1 = 73.
    emit(
        Category::Negated,
        vec![
            neg(&["knows"], &[]),
            neg(&["likes"], &[]),
            neg(&["dislikes"], &[]),
            neg(&["mentor"], &[]),
            neg(&["knows", "likes"], &[]),
            neg(&["knows", "likes", "dislikes", "mentor"], &[]),
            neg(&[], &["knows"]),
            neg(&[], &["likes"]),
            neg(&["knows"], &["likes"]),
            neg(&["likes"], &["knows"]),
            neg(&["knows", "likes"], &["dislikes"]),
            neg(&["name"], &[]),
        ],
        &basic_shapes,
        &[(neg(&["knows"], &["knows"]), Shape::VarVar)],
        &mut out,
    );

    assert_eq!(out.len(), 236);
    out
}

fn build_query(
    g: &Graph,
    category: Category,
    path: &PropertyPath,
    shape: &Shape,
    idx: usize,
) -> PathQuery {
    let s = shape.subject();
    let o = shape.object();
    let s_str = s
        .as_ref()
        .map(|t| t.to_string())
        .unwrap_or_else(|| "?x".into());
    let o_str = o
        .as_ref()
        .map(|t| t.to_string())
        .unwrap_or_else(|| "?y".into());
    let query = format!("SELECT * WHERE {{ {s_str} {path} {o_str} }}");

    let mut vars = Vec::new();
    if s.is_none() {
        vars.push("x".to_string());
    }
    if o.is_none() {
        vars.push("y".to_string());
    }

    let mut pairs = brute_force(g, path);
    // Zero-length paths for constant endpoints (Table 5 rows 4–6): only
    // applicable when the path can match the empty path.
    if path.matches_zero() {
        let endpoint = match (&s, &o) {
            (Some(t), None) | (None, Some(t)) => Some(t.clone()),
            (Some(a), Some(b)) if a == b => Some(a.clone()),
            _ => None,
        };
        if let Some(t) = endpoint {
            if !pairs.contains(&(t.clone(), t.clone())) {
                pairs.push((t.clone(), t.clone()));
            }
        }
    }
    let expected: Vec<Vec<Term>> = pairs
        .into_iter()
        .filter(|(x, y)| s.as_ref().is_none_or(|t| t == x) && o.as_ref().is_none_or(|t| t == y))
        .map(|(x, y)| {
            let mut row = Vec::new();
            if s.is_none() {
                row.push(x);
            }
            if o.is_none() {
                row.push(y);
            }
            row
        })
        .collect();

    PathQuery {
        id: format!("{}-{idx}", category.name().replace(' ', "")),
        category,
        query,
        vars,
        expected,
    }
}

/// The independent ground-truth evaluator: naive, quadratic, obviously
/// correct. Bag semantics for link/inverse/sequence/alternative/negated;
/// set semantics for `?`, `*`, `+` (the SPARQL standard's rule, §5.2 of
/// the paper).
pub fn brute_force(g: &Graph, path: &PropertyPath) -> Vec<(Term, Term)> {
    match path {
        PropertyPath::Link(p) => {
            let pred = Term::iri(p.clone());
            g.iter()
                .filter(|(_, tp, _)| **tp == pred)
                .map(|(s, _, o)| (s.clone(), o.clone()))
                .collect()
        }
        PropertyPath::Inverse(inner) => brute_force(g, inner)
            .into_iter()
            .map(|(x, y)| (y, x))
            .collect(),
        PropertyPath::Alternative(a, b) => {
            let mut out = brute_force(g, a);
            out.extend(brute_force(g, b));
            out
        }
        PropertyPath::Sequence(a, b) => {
            let left = brute_force(g, a);
            let right = brute_force(g, b);
            let mut out = Vec::new();
            for (x, m) in &left {
                for (m2, y) in &right {
                    if m == m2 {
                        out.push((x.clone(), y.clone()));
                    }
                }
            }
            out
        }
        PropertyPath::ZeroOrOne(inner) => {
            let mut out = zero_pairs(g);
            out.extend(brute_force(g, inner));
            dedup(out)
        }
        PropertyPath::OneOrMore(inner) => {
            let base = dedup(brute_force(g, inner));
            let mut closure = base.clone();
            loop {
                let mut added = false;
                let current = closure.clone();
                for (x, m) in &current {
                    for (m2, y) in &base {
                        if m == m2 && !closure.contains(&(x.clone(), y.clone())) {
                            closure.push((x.clone(), y.clone()));
                            added = true;
                        }
                    }
                }
                if !added {
                    return closure;
                }
            }
        }
        PropertyPath::ZeroOrMore(inner) => {
            let mut out = zero_pairs(g);
            out.extend(brute_force(g, &PropertyPath::OneOrMore(inner.clone())));
            dedup(out)
        }
        PropertyPath::NegatedSet { forward, backward } => {
            let mut out = Vec::new();
            if !forward.is_empty() || backward.is_empty() {
                for (s, p, o) in g.iter() {
                    let pi = p.as_iri().unwrap_or("");
                    if !forward.iter().any(|f| f.as_ref() == pi) {
                        out.push((s.clone(), o.clone()));
                    }
                }
            }
            for (s, p, o) in g.iter() {
                let pi = p.as_iri().unwrap_or("");
                if !backward.is_empty() && !backward.iter().any(|f| f.as_ref() == pi) {
                    out.push((o.clone(), s.clone()));
                }
            }
            out
        }
        PropertyPath::Exactly(inner, n) => {
            if *n == 0 {
                return dedup(zero_pairs(g));
            }
            let base = brute_force(g, inner);
            let mut acc = base.clone();
            for _ in 1..*n {
                let mut next = Vec::new();
                for (x, m) in &acc {
                    for (m2, y) in &base {
                        if m == m2 {
                            next.push((x.clone(), y.clone()));
                        }
                    }
                }
                acc = next;
            }
            dedup(acc)
        }
        PropertyPath::AtLeast(inner, n) => {
            let p = match n {
                0 => PropertyPath::ZeroOrMore(inner.clone()),
                1 => PropertyPath::OneOrMore(inner.clone()),
                n => PropertyPath::Sequence(
                    Box::new(PropertyPath::Exactly(inner.clone(), n - 1)),
                    Box::new(PropertyPath::OneOrMore(inner.clone())),
                ),
            };
            dedup(brute_force(g, &p))
        }
        PropertyPath::Between(inner, n, m) => {
            let mut out = Vec::new();
            if *n == 0 {
                out.extend(zero_pairs(g));
            }
            for k in (*n).max(1)..=*m {
                out.extend(brute_force(g, &PropertyPath::Exactly(inner.clone(), k)));
            }
            dedup(out)
        }
    }
}

/// Zero-length pairs: every term occurring as subject or object in the
/// graph. Pairs for constant endpoints that occur only in the query are
/// added by `build_query`.
fn zero_pairs(g: &Graph) -> Vec<(Term, Term)> {
    g.subjects_or_objects()
        .into_iter()
        .map(|t| (t.clone(), t.clone()))
        .collect()
}

fn dedup(pairs: Vec<(Term, Term)>) -> Vec<(Term, Term)> {
    let mut seen = std::collections::HashSet::new();
    pairs
        .into_iter()
        .filter(|p| seen.insert(p.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_236_queries_with_table3_counts() {
        let qs = queries();
        assert_eq!(qs.len(), 236);
        for c in Category::ALL {
            let n = qs.iter().filter(|q| q.category == c).count();
            assert_eq!(n, c.target_count(), "{c:?}");
        }
    }

    #[test]
    fn all_queries_parse() {
        for q in queries() {
            sparqlog_sparql::parse_query(&q.query)
                .unwrap_or_else(|e| panic!("{}: {e}\n{}", q.id, q.query));
        }
    }

    #[test]
    fn brute_force_sanity() {
        let g = graph();
        // knows+: the alice–bob–carl cycle reaches itself.
        let plus = PropertyPath::OneOrMore(Box::new(PropertyPath::link(prop("knows"))));
        let pairs = brute_force(&g, &plus);
        assert!(pairs.contains(&(person("alice"), person("alice"))));
        assert!(pairs.contains(&(person("carl"), person("dave"))));
        // Self-loop under likes+.
        let lplus = PropertyPath::OneOrMore(Box::new(PropertyPath::link(prop("likes"))));
        let pairs = brute_force(&g, &lplus);
        assert!(pairs.contains(&(person("bob"), person("bob"))));
    }

    #[test]
    fn classification() {
        let a = vec![vec![person("x")], vec![person("y")]];
        assert_eq!(classify(&a, &a), Verdict::Correct);
        assert_eq!(classify(&a, &a[..1]), Verdict::IncompleteButCorrect);
        let mut extra = a.clone();
        extra.push(vec![person("z")]);
        assert_eq!(classify(&a, &extra), Verdict::CompleteButIncorrect);
        assert_eq!(
            classify(&a, &[vec![person("z")]]),
            Verdict::IncompleteAndIncorrect
        );
        // Multiset-sensitivity: duplicates matter.
        let dup = vec![vec![person("x")], vec![person("x")]];
        assert_eq!(classify(&dup, &dup[..1]), Verdict::IncompleteButCorrect);
    }

    #[test]
    fn zero_or_one_ghost_expectations() {
        // <ghost> knows? ?y must expect exactly the zero-length row.
        let qs = queries();
        let ghost = qs
            .iter()
            .find(|q| {
                q.category == Category::ZeroOrOne && q.query.contains("ghost") && q.vars == ["y"]
            })
            .expect("ghost zero-or-one query exists");
        assert_eq!(ghost.expected.len(), 1, "{}", ghost.query);
        assert_eq!(ghost.expected[0][0], person("ghost"));
    }
}
