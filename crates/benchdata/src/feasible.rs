//! A FEASIBLE(S)-like compliance workload: 77 mixed-feature queries over
//! a Semantic-Web-Dog-Food-style dataset (Saleem et al., ISWC'15).
//!
//! The paper generates 100 queries from the SWDF query log, removes
//! LIMIT/OFFSET (their result comparison needs order-independence,
//! D.2.1) and deduplicates down to **77 unique queries**; we generate the
//! 77 directly with the same feature mix as the paper's Table 2 row for
//! FEASIBLE (S): DISTINCT 56 %, FILTER 27 %, REGEX 9 %, OPTIONAL 32 %,
//! UNION 34 %, GRAPH 10 %, GROUP BY 25 %.
//!
//! Eighteen queries deliberately exercise the triggers the VirtuosoSim
//! quirk model refuses (complex `ORDER BY` arguments, deep OPTIONAL
//! nesting), and a further set uses DISTINCT-over-OPTIONAL and
//! duplicate-producing UNIONs, reproducing §6.2's finding that Virtuoso
//! errs on 18 queries and returns wrong multisets on 14.

use crate::rng::StdRng;
use sparqlog_rdf::vocab::rdf;
use sparqlog_rdf::{Dataset, Term, Triple};

const SWDF: &str = "http://data.semanticweb.org/";
const FOAF: &str = "http://xmlns.com/foaf/0.1/";
const DC: &str = "http://purl.org/dc/elements/1.1/";
const SWC: &str = "http://data.semanticweb.org/ns/swc/ontology#";

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct FeasibleConfig {
    pub people: usize,
    pub papers: usize,
    pub seed: u64,
}

impl Default for FeasibleConfig {
    fn default() -> Self {
        FeasibleConfig {
            people: 300,
            papers: 400,
            seed: 0xfea51b1e,
        }
    }
}

/// Generates the SWDF-like dataset: the default graph plus one named
/// graph holding the conference metadata (so GRAPH queries have a
/// target).
pub fn dataset(config: FeasibleConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut ds = Dataset::new();
    let a = Term::iri(rdf::TYPE);
    let iri = |s: String| Term::iri(s);

    let conferences = ["iswc2008", "eswc2009", "www2010"];
    {
        let meta = ds.named_graph_mut("http://data.semanticweb.org/metadata");
        for c in conferences {
            let conf = iri(format!("{SWDF}conference/{c}"));
            meta.insert(Triple::new(
                conf.clone(),
                a.clone(),
                iri(format!("{SWC}ConferenceEvent")),
            ));
            meta.insert(Triple::new(
                conf,
                iri(format!("{DC}title")),
                Term::literal(c.to_uppercase()),
            ));
        }
    }

    let g = ds.default_graph_mut();
    let mut people = Vec::new();
    for i in 0..config.people {
        let p = iri(format!("{SWDF}person/p{i}"));
        g.insert(Triple::new(
            p.clone(),
            a.clone(),
            iri(format!("{FOAF}Person")),
        ));
        g.insert(Triple::new(
            p.clone(),
            iri(format!("{FOAF}name")),
            Term::literal(format!("Researcher {i}")),
        ));
        if rng.gen_ratio(1, 3) {
            g.insert(Triple::new(
                p.clone(),
                iri(format!("{FOAF}homepage")),
                iri(format!("http://example.org/~r{i}")),
            ));
        }
        if rng.gen_ratio(1, 4) {
            g.insert(Triple::new(
                p.clone(),
                iri(format!("{FOAF}based_near")),
                iri(format!("{SWDF}place/city{}", i % 12)),
            ));
        }
        people.push(p);
    }
    for i in 0..config.papers {
        let paper = iri(format!("{SWDF}paper/{i}"));
        g.insert(Triple::new(
            paper.clone(),
            a.clone(),
            iri(format!("{SWC}InProceedings")),
        ));
        g.insert(Triple::new(
            paper.clone(),
            iri(format!("{DC}title")),
            Term::literal(format!("A Study of Topic {}", i % 37)),
        ));
        let n_auth = rng.gen_range(1..=3);
        for _ in 0..n_auth {
            let p = people[rng.gen_range(0..people.len())].clone();
            g.insert(Triple::new(paper.clone(), iri(format!("{DC}creator")), p));
        }
        g.insert(Triple::new(
            paper.clone(),
            iri(format!("{SWC}relatedToEvent")),
            iri(format!(
                "{SWDF}conference/{}",
                conferences[rng.gen_range(0..conferences.len())]
            )),
        ));
        if rng.gen_ratio(1, 5) {
            g.insert(Triple::new(
                paper,
                iri(format!("{SWC}hasTopic")),
                iri(format!("{SWDF}topic/t{}", i % 15)),
            ));
        }
    }
    ds
}

const PROLOGUE: &str = r#"
PREFIX rdf:  <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX dc:   <http://purl.org/dc/elements/1.1/>
PREFIX swc:  <http://data.semanticweb.org/ns/swc/ontology#>
PREFIX swdf: <http://data.semanticweb.org/>
"#;

/// The 77 queries, as `(id, query)` pairs.
pub fn queries() -> Vec<(String, String)> {
    let mut rng = StdRng::seed_from_u64(0xfea5);
    let mut out: Vec<(String, String)> = Vec::with_capacity(77);
    let push = |out: &mut Vec<(String, String)>, body: String| {
        let id = format!("f{}", out.len() + 1);
        out.push((id, format!("{PROLOGUE}\n{body}")));
    };

    // 1–18: Virtuoso-error triggers (complex ORDER BY / deep OPTIONAL).
    for i in 0..12 {
        let topic = i % 37;
        push(
            &mut out,
            format!(
                r#"SELECT DISTINCT ?p ?n WHERE {{
                 ?paper dc:creator ?p . ?p foaf:name ?n .
                 ?paper dc:title "A Study of Topic {topic}"
                 OPTIONAL {{ ?p foaf:homepage ?h }}
               }} ORDER BY (!BOUND(?h)) ?n"#,
            ),
        );
    }
    for i in 0..6 {
        let city = i % 12;
        push(
            &mut out,
            format!(
                r#"SELECT DISTINCT ?n ?h ?c ?t WHERE {{
                 ?p foaf:name ?n
                 OPTIONAL {{ ?p foaf:homepage ?h
                   OPTIONAL {{ ?p foaf:based_near ?c
                     OPTIONAL {{ ?paper dc:creator ?p . ?paper dc:title ?t }} }} }}
                 FILTER (BOUND(?n) || ?c = <http://data.semanticweb.org/place/city{city}>)
               }}"#,
            ),
        );
    }

    // 19–32: wrong-multiset triggers (DISTINCT over OPTIONAL; UNION dups).
    for i in 0..4 {
        let k = i % 15;
        push(
            &mut out,
            format!(
                r#"SELECT DISTINCT ?n WHERE {{
                 ?paper dc:creator ?p . ?p foaf:name ?n
                 OPTIONAL {{ ?paper swc:hasTopic <http://data.semanticweb.org/topic/t{k}> }}
               }}"#,
            ),
        );
    }
    for i in 0..10 {
        let c = ["iswc2008", "eswc2009", "www2010"][i % 3];
        push(
            &mut out,
            format!(
                r#"SELECT ?p WHERE {{
                 {{ ?paper dc:creator ?p . ?paper swc:relatedToEvent <http://data.semanticweb.org/conference/{c}> }}
                 UNION
                 {{ ?paper dc:creator ?p . ?paper swc:relatedToEvent <http://data.semanticweb.org/conference/{c}> }}
               }}"#,
            ),
        );
    }

    // 33–52: DISTINCT + mixed features (the bulk of FEASIBLE's SELECTs).
    for i in 0..20 {
        let body = match i % 5 {
            0 => format!(
                r#"SELECT DISTINCT ?t WHERE {{
                     ?paper swc:hasTopic ?t . ?paper dc:creator ?p .
                     ?p foaf:name ?n FILTER (STRLEN(?n) > {}) }}"#,
                8 + (i % 5)
            ),
            1 => format!(
                r#"SELECT DISTINCT ?p ?n WHERE {{
                     ?p rdf:type foaf:Person . ?p foaf:name ?n
                     FILTER REGEX(?n, "Researcher {}[0-9]") }}"#,
                i % 10
            ),
            2 => r#"SELECT DISTINCT ?conf WHERE {
                     { ?paper swc:relatedToEvent ?conf }
                     UNION { GRAPH <http://data.semanticweb.org/metadata>
                             { ?conf rdf:type swc:ConferenceEvent } } }"#
                .to_string(),
            3 => format!(
                r#"SELECT DISTINCT ?n WHERE {{
                     ?paper dc:title ?t . ?paper dc:creator ?a . ?a foaf:name ?n
                     FILTER (CONTAINS(?t, "Topic {}")) }}"#,
                i % 37
            ),
            _ => r#"SELECT DISTINCT ?p WHERE {
                     { ?p rdf:type foaf:Person
                       OPTIONAL { ?p foaf:based_near ?c }
                       FILTER (!BOUND(?c)) }
                     UNION { ?p foaf:homepage ?h } }"#
                .to_string(),
        };
        push(&mut out, body);
    }

    // 53–71: GROUP BY / aggregates (the DB-community bridge, 25 %).
    for i in 0..19 {
        let body = match i % 3 {
            0 => r#"SELECT ?p (COUNT(?paper) AS ?cnt) WHERE {
                     ?paper dc:creator ?p } GROUP BY ?p"#
                .to_string(),
            1 => r#"SELECT ?conf (COUNT(?paper) AS ?cnt) WHERE {
                     { ?paper swc:relatedToEvent ?conf }
                     UNION { ?paper swc:relatedToEvent ?conf .
                             ?paper swc:hasTopic ?t } } GROUP BY ?conf"#
                .to_string(),
            _ => format!(
                r#"SELECT ?t (COUNT(DISTINCT ?p) AS ?authors) WHERE {{
                     ?paper swc:hasTopic ?t . ?paper dc:creator ?p .
                     ?paper dc:title ?title FILTER (CONTAINS(?title, "{}")) }}
                   GROUP BY ?t"#,
                i % 10
            ),
        };
        push(&mut out, body);
    }

    // 72–77: ASK + GRAPH + plain patterns.
    push(
        &mut out,
        r#"ASK { ?p foaf:name "Researcher 0" }"#.to_string(),
    );
    push(
        &mut out,
        r#"ASK { ?paper swc:hasTopic <http://data.semanticweb.org/topic/t1> }"#.to_string(),
    );
    push(
        &mut out,
        r#"SELECT ?g ?conf WHERE { GRAPH ?g { ?conf rdf:type swc:ConferenceEvent } }"#.to_string(),
    );
    push(
        &mut out,
        r#"SELECT ?title WHERE { GRAPH <http://data.semanticweb.org/metadata>
             { ?conf dc:title ?title } }"#
            .to_string(),
    );
    push(
        &mut out,
        format!(
            r#"SELECT ?n WHERE {{ ?p foaf:name ?n
                 FILTER REGEX(?n, "researcher {}\\d", "i") }} ORDER BY ?n"#,
            rng.gen_range(0..10)
        ),
    );
    push(
        &mut out,
        r#"SELECT ?s ?o WHERE { ?s foaf:based_near ?o } ORDER BY ?s ?o"#.to_string(),
    );

    assert_eq!(out.len(), 77);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventy_seven_parseable_queries() {
        let qs = queries();
        assert_eq!(qs.len(), 77);
        for (id, q) in &qs {
            sparqlog_sparql::parse_query(q).unwrap_or_else(|e| panic!("{id}: {e}"));
        }
    }

    #[test]
    fn dataset_has_named_graph() {
        let ds = dataset(FeasibleConfig::default());
        assert!(ds
            .named_graph("http://data.semanticweb.org/metadata")
            .is_some());
        assert!(ds.default_graph().len() > 1000);
    }

    #[test]
    fn feature_mix_close_to_paper() {
        // FEASIBLE (S) row of Table 2: DIST 56 %, OPT 32 %, UN 34 %,
        // GRA 10 %, GRO 25 % — we check ±15 points.
        let qs = queries();
        let pct = |f: fn(&str) -> bool| {
            100.0 * qs.iter().filter(|(_, q)| f(q)).count() as f64 / qs.len() as f64
        };
        let dist = pct(|q| q.contains("DISTINCT"));
        let opt = pct(|q| q.contains("OPTIONAL"));
        let uni = pct(|q| q.contains("UNION"));
        let gra = pct(|q| q.contains("GRAPH"));
        let gro = pct(|q| q.contains("GROUP BY"));
        assert!((40.0..=70.0).contains(&dist), "DISTINCT {dist}");
        assert!((17.0..=47.0).contains(&opt), "OPTIONAL {opt}");
        assert!((19.0..=49.0).contains(&uni), "UNION {uni}");
        assert!((3.0..=25.0).contains(&gra), "GRAPH {gra}");
        assert!((10.0..=40.0).contains(&gro), "GROUP BY {gro}");
    }
}
