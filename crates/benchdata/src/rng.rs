//! A small deterministic PRNG, drop-in for the subset of `rand` the
//! generators use (`StdRng::seed_from_u64`, `gen_range`, `gen_ratio`).
//!
//! The workspace builds fully offline with zero external dependencies, so
//! instead of `rand` this is SplitMix64 (Steele–Lea–Flood) — statistically
//! solid for workload generation and fully reproducible per seed. Note the
//! streams differ from `rand::StdRng`'s, so datasets generated before this
//! switch are not bit-identical; all in-tree expectations were re-derived.

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Creates a generator from a 64-bit seed (same API as
    /// `rand::SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform sample from `range` (empty ranges panic, as in `rand`).
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// True with probability `num / denom`.
    pub fn gen_ratio(&mut self, num: u32, denom: u32) -> bool {
        assert!(denom > 0 && num <= denom, "gen_ratio({num}, {denom})");
        (self.next_u64() % denom as u64) < num as u64
    }
}

/// Ranges [`StdRng::gen_range`] can sample from.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, i64, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1..=3u32);
            assert!((1..=3).contains(&y));
        }
    }

    #[test]
    fn ratio_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!(
            (2_000..3_000).contains(&hits),
            "1/4 ratio gave {hits}/10000"
        );
    }
}
