//! An SP²Bench-like workload: a scaled-down DBLP-style synthetic dataset
//! plus the 17 hand-crafted queries (Schmidt et al., "SP²Bench: A SPARQL
//! Performance Benchmark"), adapted to the feature subset both this
//! implementation and the paper support.
//!
//! The paper uses SP²Bench at 50k triples for its compliance runs (D.2.1)
//! and for the performance measurements of Figure 7 / Table 11. The query
//! mix reproduces the benchmark's character — computation-heavy joins
//! (q4), negation encoded via `OPTIONAL`+`!BOUND` (q6, q7), `UNION`
//! (q8, q9), `DISTINCT`, `ORDER BY`/`LIMIT`/`OFFSET` (q11) and `ASK`
//! forms (q12a/b/c as q15–q17).

use crate::rng::StdRng;
use sparqlog_rdf::vocab::rdf;
use sparqlog_rdf::{Graph, Term, Triple};

/// Namespaces of the SP²Bench vocabulary.
pub mod ns {
    pub const BENCH: &str = "http://localhost/vocabulary/bench/";
    pub const DC: &str = "http://purl.org/dc/elements/1.1/";
    pub const DCTERMS: &str = "http://purl.org/dc/terms/";
    pub const FOAF: &str = "http://xmlns.com/foaf/0.1/";
    pub const SWRC: &str = "http://swrc.ontoware.org/ontology#";
    pub const PERSON: &str = "http://localhost/persons/";
    pub const ARTICLE: &str = "http://localhost/articles/";
    pub const JOURNAL: &str = "http://localhost/journals/";
    pub const PROC: &str = "http://localhost/inproceedings/";
    pub const RDFS_SEE_ALSO: &str = "http://www.w3.org/2000/01/rdf-schema#seeAlso";
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct Sp2bConfig {
    /// Approximate number of triples to generate.
    pub target_triples: usize,
    /// RNG seed (the generator is fully deterministic per seed).
    pub seed: u64,
}

impl Default for Sp2bConfig {
    fn default() -> Self {
        // The paper's compliance runs use a 50k-triple instance (D.2.1);
        // the default here is laptop-scale for fast test suites. Benches
        // pass an explicit size.
        Sp2bConfig {
            target_triples: 5_000,
            seed: 0x5eed_5b2b,
        }
    }
}

/// Generates the DBLP-like graph.
pub fn generate(config: Sp2bConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut g = Graph::new();

    let iri = |ns: &str, local: String| Term::iri(format!("{ns}{local}"));
    let bench = |l: &str| Term::iri(format!("{}{}", ns::BENCH, l));
    let dc = |l: &str| Term::iri(format!("{}{}", ns::DC, l));
    let dcterms = |l: &str| Term::iri(format!("{}{}", ns::DCTERMS, l));
    let foaf = |l: &str| Term::iri(format!("{}{}", ns::FOAF, l));
    let swrc = |l: &str| Term::iri(format!("{}{}", ns::SWRC, l));
    let a = Term::iri(rdf::TYPE);

    // Scale: each article contributes ~10 triples.
    let n_articles = (config.target_triples / 10).max(20);
    let n_persons = (n_articles / 2).max(10);
    let n_journals = (n_articles / 15).max(3);
    let n_inproc = n_articles / 3;

    let first_names = [
        "Paul", "Ana", "Wei", "Noor", "Ivan", "Mika", "Lena", "Omar", "Rita", "Juan",
    ];
    let last_names = [
        "Erdoes", "Schmidt", "Garcia", "Chen", "Okafor", "Sato", "Novak", "Iqbal", "Haddad", "Lund",
    ];

    // Persons. Person 0 is always "Paul Erdoes" (q8/q10 target).
    let mut persons = Vec::with_capacity(n_persons);
    for i in 0..n_persons {
        let p = iri(ns::PERSON, format!("Person{i}"));
        let name = if i == 0 {
            "Paul Erdoes".to_string()
        } else {
            format!(
                "{} {}",
                first_names[rng.gen_range(0..first_names.len())],
                last_names[rng.gen_range(0..last_names.len())]
            )
        };
        g.insert(Triple::new(p.clone(), a.clone(), foaf("Person")));
        g.insert(Triple::new(p.clone(), foaf("name"), Term::literal(name)));
        persons.push(p);
    }

    // Journals: one volume per (journal series, year).
    let mut journals = Vec::with_capacity(n_journals);
    for i in 0..n_journals {
        let year = 1940 + (i as i64 % 60);
        let j = iri(ns::JOURNAL, format!("Journal{i}"));
        g.insert(Triple::new(j.clone(), a.clone(), bench("Journal")));
        g.insert(Triple::new(
            j.clone(),
            dc("title"),
            Term::literal(format!("Journal {} ({})", 1 + i / 60, year)),
        ));
        g.insert(Triple::new(
            j.clone(),
            dcterms("issued"),
            Term::integer(year),
        ));
        journals.push(j);
    }

    // Articles.
    for i in 0..n_articles {
        let art = iri(ns::ARTICLE, format!("Article{i}"));
        let year = 1940 + rng.gen_range(0..65) as i64;
        g.insert(Triple::new(art.clone(), a.clone(), bench("Article")));
        g.insert(Triple::new(
            art.clone(),
            dc("title"),
            Term::literal(format!("On the Complexity of Problem {i}")),
        ));
        g.insert(Triple::new(
            art.clone(),
            dcterms("issued"),
            Term::integer(year),
        ));
        g.insert(Triple::new(
            art.clone(),
            swrc("pages"),
            Term::integer(rng.gen_range(1..400i64)),
        ));
        let journal = &journals[rng.gen_range(0..journals.len())];
        g.insert(Triple::new(art.clone(), swrc("journal"), journal.clone()));
        // 1–3 creators; Person0 (Erdoes) co-authors ~5 % of articles.
        let n_creators = rng.gen_range(1..=3);
        for c in 0..n_creators {
            let p = if c == 0 && rng.gen_ratio(1, 20) {
                persons[0].clone()
            } else {
                persons[rng.gen_range(0..persons.len())].clone()
            };
            g.insert(Triple::new(art.clone(), dc("creator"), p));
        }
        if rng.gen_ratio(1, 2) {
            g.insert(Triple::new(
                art.clone(),
                bench("abstract"),
                Term::literal(format!("We study problem {i} in depth.")),
            ));
        }
        if rng.gen_ratio(1, 3) {
            g.insert(Triple::new(
                art.clone(),
                swrc("month"),
                Term::integer(rng.gen_range(1..=12i64)),
            ));
        }
        if rng.gen_ratio(1, 4) {
            g.insert(Triple::new(
                art.clone(),
                Term::iri(ns::RDFS_SEE_ALSO),
                Term::iri(format!("http://dblp.example.org/ref/{i}")),
            ));
        }
    }

    // Inproceedings (for the q2-style wide row and UNION queries).
    for i in 0..n_inproc {
        let ip = iri(ns::PROC, format!("Inproc{i}"));
        g.insert(Triple::new(ip.clone(), a.clone(), bench("Inproceedings")));
        g.insert(Triple::new(
            ip.clone(),
            dc("title"),
            Term::literal(format!("Workshop Notes {i}")),
        ));
        g.insert(Triple::new(
            ip.clone(),
            dcterms("issued"),
            Term::integer(1980 + rng.gen_range(0..25) as i64),
        ));
        let p = persons[rng.gen_range(0..persons.len())].clone();
        g.insert(Triple::new(ip.clone(), dc("creator"), p));
        if rng.gen_ratio(1, 3) {
            g.insert(Triple::new(
                ip.clone(),
                foaf("homepage"),
                Term::iri(format!("http://www.example.org/ws/{i}")),
            ));
        }
    }

    g
}

/// The common prologue shared by all queries.
pub const PROLOGUE: &str = r#"
PREFIX rdf:     <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX rdfs:    <http://www.w3.org/2000/01/rdf-schema#>
PREFIX bench:   <http://localhost/vocabulary/bench/>
PREFIX dc:      <http://purl.org/dc/elements/1.1/>
PREFIX dcterms: <http://purl.org/dc/terms/>
PREFIX foaf:    <http://xmlns.com/foaf/0.1/>
PREFIX swrc:    <http://swrc.ontoware.org/ontology#>
PREFIX person:  <http://localhost/persons/>
"#;

/// The 17 SP²Bench-style queries (q1–q17). Each is `(id, query string)`.
pub fn queries() -> Vec<(&'static str, String)> {
    let q = |body: &str| format!("{PROLOGUE}\n{body}");
    vec![
        // q1: the year of "Journal 1 (1940)".
        (
            "q1",
            q(r#"SELECT ?yr WHERE {
            ?journal rdf:type bench:Journal .
            ?journal dc:title "Journal 1 (1940)" .
            ?journal dcterms:issued ?yr }"#),
        ),
        // q2: wide article rows with OPTIONAL abstract, ordered.
        (
            "q2",
            q(r#"SELECT ?inproc ?author ?title ?issued WHERE {
            ?inproc rdf:type bench:Inproceedings .
            ?inproc dc:creator ?author .
            ?inproc dc:title ?title .
            ?inproc dcterms:issued ?issued .
            OPTIONAL { ?inproc foaf:homepage ?hp }
            } ORDER BY ?issued"#),
        ),
        // q3a/b/c: articles having a given property.
        (
            "q3a",
            q(r#"SELECT ?article WHERE {
            ?article rdf:type bench:Article .
            ?article ?property ?value
            FILTER (?property = swrc:pages) }"#),
        ),
        (
            "q3b",
            q(r#"SELECT ?article WHERE {
            ?article rdf:type bench:Article .
            ?article ?property ?value
            FILTER (?property = swrc:month) }"#),
        ),
        (
            "q3c",
            q(r#"SELECT ?article WHERE {
            ?article rdf:type bench:Article .
            ?article ?property ?value
            FILTER (?property = swrc:isbn) }"#),
        ),
        // q4: pairs of articles in the same journal (heavy join).
        (
            "q4",
            q(r#"SELECT DISTINCT ?name1 ?name2 WHERE {
            ?article1 rdf:type bench:Article .
            ?article2 rdf:type bench:Article .
            ?article1 dc:creator ?author1 .
            ?author1 foaf:name ?name1 .
            ?article2 dc:creator ?author2 .
            ?author2 foaf:name ?name2 .
            ?article1 swrc:journal ?journal .
            ?article2 swrc:journal ?journal
            FILTER (?name1 < ?name2) }"#),
        ),
        // q6: publications without an abstract (negation via !BOUND).
        (
            "q6",
            q(r#"SELECT ?article ?title WHERE {
            ?article rdf:type bench:Article .
            ?article dc:title ?title .
            OPTIONAL { ?article bench:abstract ?abs }
            FILTER (!BOUND(?abs)) }"#),
        ),
        // q7: recent articles never referenced (seeAlso) — double optional.
        (
            "q7",
            q(r#"SELECT DISTINCT ?title WHERE {
            ?article rdf:type bench:Article .
            ?article dc:title ?title .
            ?article dcterms:issued ?yr
            OPTIONAL { ?article rdfs:seeAlso ?ref }
            FILTER (?yr > 2000 && !BOUND(?ref)) }"#),
        ),
        // q8: Erdős co-authors via UNION.
        (
            "q8",
            q(r#"SELECT DISTINCT ?name WHERE {
            { ?article dc:creator ?erdoes .
              ?erdoes foaf:name "Paul Erdoes" .
              ?article dc:creator ?author .
              ?author foaf:name ?name }
            UNION
            { ?article dc:creator ?erdoes .
              ?erdoes foaf:name "Paul Erdoes" .
              ?article dc:creator ?author2 .
              ?article2 dc:creator ?author2 .
              ?article2 dc:creator ?author .
              ?author foaf:name ?name } }"#),
        ),
        // q9: predicates around persons, UNION DISTINCT.
        (
            "q9",
            q(r#"SELECT DISTINCT ?predicate WHERE {
            { ?person rdf:type foaf:Person .
              ?subject ?predicate ?person }
            UNION
            { ?person rdf:type foaf:Person .
              ?person ?predicate ?object } }"#),
        ),
        // q10: all edges into Paul Erdoes.
        (
            "q10",
            q(r#"SELECT ?subject ?predicate WHERE {
            ?subject ?predicate person:Person0 }"#),
        ),
        // q11: seeAlso with ORDER BY / LIMIT / OFFSET.
        (
            "q11",
            q(r#"SELECT ?ee WHERE {
            ?publication rdfs:seeAlso ?ee
            } ORDER BY ?ee LIMIT 10 OFFSET 5"#),
        ),
        // q13/q14: the two Q5 variants — author names of article
        // creators, joined implicitly (q13) and via FILTER equality (q14).
        (
            "q13",
            q(r#"SELECT DISTINCT ?person ?name WHERE {
            ?article rdf:type bench:Article .
            ?article dc:creator ?person .
            ?inproc rdf:type bench:Inproceedings .
            ?inproc dc:creator ?person2 .
            ?person foaf:name ?name .
            ?person2 foaf:name ?name2
            FILTER (?name = ?name2) }"#),
        ),
        (
            "q14",
            q(r#"SELECT DISTINCT ?person ?name WHERE {
            ?article rdf:type bench:Article .
            ?article dc:creator ?person .
            ?inproc rdf:type bench:Inproceedings .
            ?inproc dc:creator ?person .
            ?person foaf:name ?name }"#),
        ),
        // q15–q17: the ASK forms (SP²Bench q12a/b/c).
        (
            "q15",
            q(r#"ASK {
            ?article rdf:type bench:Article .
            ?article dcterms:issued 1940 }"#),
        ),
        (
            "q16",
            q(r#"ASK {
            ?erdoes foaf:name "Paul Erdoes" .
            ?article dc:creator ?erdoes }"#),
        ),
        ("q17", q(r#"ASK { person:JohnQPublic foaf:name ?name }"#)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(Sp2bConfig::default());
        let b = generate(Sp2bConfig::default());
        assert_eq!(a.len(), b.len());
        for (s, p, o) in a.iter() {
            assert!(b.contains(&Triple::new(s.clone(), p.clone(), o.clone())));
        }
    }

    #[test]
    fn scale_is_respected() {
        let g = generate(Sp2bConfig {
            target_triples: 5_000,
            seed: 1,
        });
        assert!((3_000..8_000).contains(&g.len()), "got {} triples", g.len());
        let g2 = generate(Sp2bConfig {
            target_triples: 20_000,
            seed: 1,
        });
        assert!(g2.len() > 2 * g.len());
    }

    #[test]
    fn seventeen_parseable_queries() {
        let qs = queries();
        assert_eq!(qs.len(), 17);
        for (id, q) in qs {
            sparqlog_sparql::parse_query(&q).unwrap_or_else(|e| panic!("{id}: {e}"));
        }
    }

    #[test]
    fn erdoes_exists() {
        let g = generate(Sp2bConfig::default());
        assert!(g.contains(&Triple::new(
            Term::iri(format!("{}Person0", ns::PERSON)),
            Term::iri(format!("{}name", ns::FOAF)),
            Term::literal("Paul Erdoes"),
        )));
    }
}
