//! Benchmark feature-coverage analysis — regenerates the paper's Table 2
//! ("Feature Coverage of SPARQL Benchmarks", after Saleem et al.
//! WWW'19).
//!
//! For the four workloads this workspace generates, the percentages are
//! *measured* by parsing every query and counting features with the
//! paper's methodology (D.1: each feature counted once per query;
//! DISTINCT only when applied to the whole query). The remaining rows of
//! Table 2 (benchmarks the paper analysed but did not run) are carried
//! over as published values for comparison.

use sparqlog_sparql::{parse_query, Expr, GraphPattern, PropertyPath, Query};

/// Feature percentages for one benchmark (the columns of Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureCoverage {
    pub name: String,
    pub distinct: f64,
    pub filter: f64,
    pub regex: f64,
    pub optional: f64,
    pub union: f64,
    pub graph: f64,
    pub path_seq: f64,
    pub path_alt: f64,
    pub path_recursive: f64,
    pub group_by: f64,
}

/// Counts features over a query set (measured row of Table 2).
pub fn analyze(name: &str, queries: &[String]) -> FeatureCoverage {
    let total = queries.len().max(1) as f64;
    let mut c = Counts::default();
    for q in queries {
        if let Ok(parsed) = parse_query(q) {
            c.add(&parsed);
        }
    }
    let pct = |n: usize| 100.0 * n as f64 / total;
    FeatureCoverage {
        name: name.to_string(),
        distinct: pct(c.distinct),
        filter: pct(c.filter),
        regex: pct(c.regex),
        optional: pct(c.optional),
        union: pct(c.union),
        graph: pct(c.graph),
        path_seq: pct(c.path_seq),
        path_alt: pct(c.path_alt),
        path_recursive: pct(c.path_recursive),
        group_by: pct(c.group_by),
    }
}

#[derive(Default)]
struct Counts {
    distinct: usize,
    filter: usize,
    regex: usize,
    optional: usize,
    union: usize,
    graph: usize,
    path_seq: usize,
    path_alt: usize,
    path_recursive: usize,
    group_by: usize,
}

impl Counts {
    fn add(&mut self, q: &Query) {
        if q.is_distinct() {
            self.distinct += 1;
        }
        if !q.group_by.is_empty() || q.has_aggregates() {
            self.group_by += 1;
        }
        let mut f = Flags::default();
        walk(&q.pattern, &mut f);
        self.filter += f.filter as usize;
        self.regex += f.regex as usize;
        self.optional += f.optional as usize;
        self.union += f.union as usize;
        self.graph += f.graph as usize;
        self.path_seq += f.path_seq as usize;
        self.path_alt += f.path_alt as usize;
        self.path_recursive += f.path_recursive as usize;
    }
}

#[derive(Default)]
struct Flags {
    filter: bool,
    regex: bool,
    optional: bool,
    union: bool,
    graph: bool,
    path_seq: bool,
    path_alt: bool,
    path_recursive: bool,
}

fn walk(p: &GraphPattern, f: &mut Flags) {
    match p {
        GraphPattern::Empty | GraphPattern::Triple(_) => {}
        GraphPattern::Path { path, .. } => walk_path(path, f),
        GraphPattern::Join(a, b) | GraphPattern::Minus(a, b) => {
            walk(a, f);
            walk(b, f);
        }
        GraphPattern::Union(a, b) => {
            f.union = true;
            walk(a, f);
            walk(b, f);
        }
        GraphPattern::Optional(a, b) => {
            f.optional = true;
            walk(a, f);
            walk(b, f);
        }
        GraphPattern::Filter(a, cond) => {
            f.filter = true;
            if contains_regex(cond) {
                f.regex = true;
            }
            walk(a, f);
        }
        GraphPattern::Graph(_, a) => {
            f.graph = true;
            walk(a, f);
        }
    }
}

fn walk_path(p: &PropertyPath, f: &mut Flags) {
    if p.is_recursive() {
        f.path_recursive = true;
    }
    match p {
        PropertyPath::Sequence(a, b) => {
            f.path_seq = true;
            walk_path(a, f);
            walk_path(b, f);
        }
        PropertyPath::Alternative(a, b) => {
            f.path_alt = true;
            walk_path(a, f);
            walk_path(b, f);
        }
        PropertyPath::Inverse(i)
        | PropertyPath::ZeroOrOne(i)
        | PropertyPath::OneOrMore(i)
        | PropertyPath::ZeroOrMore(i)
        | PropertyPath::Exactly(i, _)
        | PropertyPath::AtLeast(i, _)
        | PropertyPath::Between(i, _, _) => walk_path(i, f),
        PropertyPath::Link(_) | PropertyPath::NegatedSet { .. } => {}
    }
}

fn contains_regex(e: &Expr) -> bool {
    match e {
        Expr::Regex(_, _, _) => true,
        Expr::Or(a, b)
        | Expr::And(a, b)
        | Expr::Compare(_, a, b)
        | Expr::Arith(_, a, b)
        | Expr::Contains(a, b)
        | Expr::StrStarts(a, b)
        | Expr::StrEnds(a, b)
        | Expr::SameTerm(a, b)
        | Expr::LangMatches(a, b) => contains_regex(a) || contains_regex(b),
        Expr::Not(a)
        | Expr::Neg(a)
        | Expr::IsIri(a)
        | Expr::IsBlank(a)
        | Expr::IsLiteral(a)
        | Expr::IsNumeric(a)
        | Expr::Str(a)
        | Expr::Lang(a)
        | Expr::Datatype(a)
        | Expr::Ucase(a)
        | Expr::Lcase(a)
        | Expr::Strlen(a) => contains_regex(a),
        Expr::Var(_) | Expr::Const(_) | Expr::Bound(_) => false,
    }
}

/// The published rows of Table 2 for the benchmarks the paper analysed
/// but did not execute (values verbatim from the paper).
pub fn published_rows() -> Vec<FeatureCoverage> {
    let row = |name: &str, v: [f64; 9]| FeatureCoverage {
        name: name.to_string(),
        distinct: v[0],
        filter: v[1],
        regex: v[2],
        optional: v[3],
        union: v[4],
        graph: v[5],
        path_seq: v[6],
        path_alt: v[7],
        path_recursive: 0.0,
        group_by: v[8],
    };
    vec![
        row("Bowlogna", [5.9, 41.2, 11.8, 0.0, 0.0, 0.0, 0.0, 0.0, 76.5]),
        row("TrainBench", [0.0, 41.7, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
        row("BSBM", [25.0, 37.5, 0.0, 54.2, 8.3, 0.0, 0.0, 0.0, 0.0]),
        row("WatDiv", [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
        row(
            "SNB-BI",
            [0.0, 66.7, 0.0, 45.8, 20.8, 0.0, 16.7, 0.0, 100.0],
        ),
        row(
            "SNB-INT",
            [0.0, 47.4, 0.0, 31.6, 15.8, 0.0, 5.3, 10.5, 42.1],
        ),
        row("Fishmark", [0.0, 0.0, 0.0, 9.1, 0.0, 0.0, 0.0, 0.0, 0.0]),
        row("DBPSB", [100.0, 44.0, 4.0, 32.0, 36.0, 0.0, 0.0, 0.0, 0.0]),
        row(
            "BioBench",
            [39.3, 32.1, 14.3, 10.7, 17.9, 0.0, 0.0, 0.0, 10.7],
        ),
    ]
}

/// Renders a coverage table in the paper's Table 2 layout.
pub fn render(rows: &[FeatureCoverage]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>7}\n",
        "Benchmark", "DIST", "FILT", "REG", "OPT", "UN", "GRA", "PSeq", "PAlt", "PRec", "GRO"
    ));
    out.push_str(&"-".repeat(96));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>7.1}\n",
            r.name,
            r.distinct,
            r.filter,
            r.regex,
            r.optional,
            r.union,
            r.graph,
            r.path_seq,
            r.path_alt,
            r.path_recursive,
            r.group_by,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyzes_feature_mix() {
        let queries = vec![
            "SELECT DISTINCT ?x WHERE { ?x ?p ?o FILTER REGEX(STR(?o), \"a\") }".to_string(),
            "SELECT ?x WHERE { { ?x ?p ?o } UNION { ?o ?p ?x } }".to_string(),
            "SELECT ?x WHERE { ?x <http://p>+ ?o OPTIONAL { ?o ?q ?z } }".to_string(),
            "SELECT ?x (COUNT(?o) AS ?n) WHERE { GRAPH ?g { ?x ?p ?o } } GROUP BY ?x".to_string(),
        ];
        let c = analyze("probe", &queries);
        assert_eq!(c.distinct, 25.0);
        assert_eq!(c.filter, 25.0);
        assert_eq!(c.regex, 25.0);
        assert_eq!(c.union, 25.0);
        assert_eq!(c.optional, 25.0);
        assert_eq!(c.graph, 25.0);
        assert_eq!(c.path_recursive, 25.0);
        assert_eq!(c.group_by, 25.0);
    }

    #[test]
    fn published_rows_match_paper() {
        let rows = published_rows();
        assert_eq!(rows.len(), 9);
        let snb_bi = rows.iter().find(|r| r.name == "SNB-BI").unwrap();
        assert_eq!(snb_bi.group_by, 100.0);
        assert_eq!(snb_bi.path_seq, 16.7);
        let watdiv = rows.iter().find(|r| r.name == "WatDiv").unwrap();
        assert_eq!(watdiv.filter, 0.0);
    }

    #[test]
    fn our_benchmarks_measured() {
        let sp2b: Vec<String> = crate::sp2bench::queries()
            .into_iter()
            .map(|(_, q)| q)
            .collect();
        let c = analyze("SP2Bench", &sp2b);
        // The paper's SP²Bench row: DIST 35.3, FILT 58.8, OPT 17.6, UN 17.6.
        assert!((20.0..=50.0).contains(&c.distinct), "DIST {}", c.distinct);
        assert!((30.0..=75.0).contains(&c.filter), "FILT {}", c.filter);
        assert!((5.0..=30.0).contains(&c.optional), "OPT {}", c.optional);
        assert!((5.0..=30.0).contains(&c.union), "UN {}", c.union);

        let gmark: Vec<String> = crate::gmark::queries(crate::gmark::Scenario::Social)
            .into_iter()
            .map(|(_, q)| q)
            .collect();
        let c = analyze("gMark social", &gmark);
        assert!(c.path_recursive > 50.0, "gMark is a path workload");
    }
}
