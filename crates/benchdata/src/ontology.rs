//! The ontology benchmark of §6.3 / Figure 10: SP²Bench's dataset
//! extended with an RDFS ontology (`subClassOf` / `subPropertyOf`
//! hierarchies) and seven queries combining property paths with
//! ontological reasoning.
//!
//! Queries q4 and q5 are the paper's stress cases: recursive property
//! paths with **two variables** on top of inferred triples — where
//! SparqLog is ~5× faster than Stardog on q4 and Stardog times out on q5.

use sparqlog::{Axiom, Ontology};
use sparqlog_rdf::vocab::rdf;
use sparqlog_rdf::{Graph, Term, Triple};

use crate::sp2bench::{self, ns, Sp2bConfig};

/// Extra vocabulary used by the ontology.
pub mod voc {
    pub const PUBLICATION: &str = "http://localhost/vocabulary/bench/Publication";
    pub const DOCUMENT: &str = "http://localhost/vocabulary/bench/Document";
    pub const CITES: &str = "http://localhost/vocabulary/bench/cites";
    pub const REFERENCES: &str = "http://localhost/vocabulary/bench/references";
    pub const CONTRIBUTOR: &str = "http://purl.org/dc/elements/1.1/contributor";
}

/// Builds the benchmark: the SP²Bench-like graph plus a citation network
/// (for the recursive queries) and the ontology axioms.
pub fn build(config: Sp2bConfig) -> (Graph, Ontology) {
    let mut g = sp2bench::generate(config);

    // A sparse citation forest between articles so `cites+` is a genuine
    // recursive workload: article i cites a handful of earlier articles.
    let articles: Vec<Term> = g
        .triples_matching(
            None,
            Some(&Term::iri(rdf::TYPE)),
            Some(&Term::iri(format!("{}Article", ns::BENCH))),
        )
        .map(|(s, _, _)| s.clone())
        .collect();
    let cites = Term::iri(voc::CITES);
    for (i, art) in articles.iter().enumerate() {
        if i == 0 {
            continue;
        }
        // Deterministic forest with shortcuts: i cites i/2, and every
        // third article also cites i-1.
        g.insert(Triple::new(
            art.clone(),
            cites.clone(),
            articles[i / 2].clone(),
        ));
        if i % 3 == 0 {
            g.insert(Triple::new(
                art.clone(),
                cites.clone(),
                articles[i - 1].clone(),
            ));
        }
    }

    let onto = Ontology::new()
        .with(Axiom::SubClassOf(
            format!("{}Article", ns::BENCH),
            voc::PUBLICATION.into(),
        ))
        .with(Axiom::SubClassOf(
            format!("{}Inproceedings", ns::BENCH),
            voc::PUBLICATION.into(),
        ))
        .with(Axiom::SubClassOf(
            voc::PUBLICATION.into(),
            voc::DOCUMENT.into(),
        ))
        .with(Axiom::SubPropertyOf(
            voc::CITES.into(),
            voc::REFERENCES.into(),
        ))
        .with(Axiom::SubPropertyOf(
            format!("{}creator", crate::sp2bench::ns::DC),
            voc::CONTRIBUTOR.into(),
        ));
    (g, onto)
}

const PROLOGUE: &str = r#"
PREFIX rdf:     <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX bench:   <http://localhost/vocabulary/bench/>
PREFIX dc:      <http://purl.org/dc/elements/1.1/>
PREFIX dcterms: <http://purl.org/dc/terms/>
PREFIX foaf:    <http://xmlns.com/foaf/0.1/>
PREFIX swrc:    <http://swrc.ontoware.org/ontology#>
"#;

/// The seven queries of Figure 10 (`oq1`–`oq7`).
pub fn queries() -> Vec<(&'static str, String)> {
    let q = |body: &str| format!("{PROLOGUE}\n{body}");
    vec![
        // oq1: inferred class membership.
        ("oq1", q("SELECT ?d WHERE { ?d rdf:type bench:Document }")),
        // oq2: inferred property + join.
        (
            "oq2",
            q(r#"SELECT ?pub ?name WHERE {
            ?pub dc:contributor ?p . ?p foaf:name ?name
            FILTER (?name = "Paul Erdoes") }"#),
        ),
        // oq3: bounded-start recursive path over inferred `references`.
        (
            "oq3",
            q(r#"SELECT ?cited WHERE {
            <http://localhost/articles/Article5> bench:references+ ?cited }"#),
        ),
        // oq4: two-variable recursive path over inferred triples
        // (paper: SparqLog ≈ 5× faster than Stardog).
        (
            "oq4",
            q(r#"SELECT ?a ?cited WHERE {
            ?a bench:references+ ?cited .
            ?cited dcterms:issued ?yr FILTER (?yr < 1950) }"#),
        ),
        // oq5: two-variable closure joined with class inference
        // (paper: Stardog times out).
        (
            "oq5",
            q(r#"SELECT ?a ?b WHERE {
            ?a (bench:references/bench:references*) ?b .
            ?a rdf:type bench:Publication .
            ?b rdf:type bench:Publication }"#),
        ),
        // oq6: zero-or-more with inferred subclass filter.
        (
            "oq6",
            q(r#"SELECT ?doc WHERE {
            <http://localhost/articles/Article9> bench:references* ?doc .
            ?doc rdf:type bench:Document }"#),
        ),
        // oq7: aggregation over inferred property.
        (
            "oq7",
            q(r#"SELECT ?p (COUNT(?pub) AS ?works) WHERE {
            ?pub dc:contributor ?p } GROUP BY ?p"#),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_citations_and_axioms() {
        let (g, onto) = build(Sp2bConfig {
            target_triples: 2_000,
            seed: 7,
        });
        assert_eq!(onto.len(), 5);
        let cites = Term::iri(voc::CITES);
        let n = g.triples_matching(None, Some(&cites), None).count();
        assert!(n > 50, "citation network present, got {n}");
    }

    #[test]
    fn seven_parseable_queries() {
        let qs = queries();
        assert_eq!(qs.len(), 7);
        for (id, q) in qs {
            sparqlog_sparql::parse_query(&q).unwrap_or_else(|e| panic!("{id}: {e}"));
        }
    }
}
