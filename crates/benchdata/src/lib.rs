//! Deterministic benchmark workload generators for the SparqLog
//! reproduction.
//!
//! The paper evaluates on five workloads (§6.1); each module here is a
//! seeded generator producing a dataset **and** a query set with the same
//! operator mix as the original benchmark:
//!
//! | Module | Original | Role in the paper |
//! |---|---|---|
//! | [`sp2bench`] | SP²Bench (Schmidt et al.) | compliance (§6.2) + performance (Fig. 7, Table 11) |
//! | [`gmark`] | gMark (Bagan et al.) | recursive-path performance (Figs. 8/9, Tables 7–10) |
//! | [`beseppi`] | BeSEPPI (Skubella et al.) | property-path compliance (Table 3) |
//! | [`feasible`] | FEASIBLE (S) over SWDF | compliance (§6.2) |
//! | [`ontology`] | SP²Bench + RDFS axioms | reasoning performance (Fig. 10) |
//!
//! [`analysis`] recomputes the paper's Table 2 (benchmark feature
//! coverage) from the generated query sets.
//!
//! All generators take an explicit seed and scale so results are
//! reproducible; the defaults are laptop-scale versions of the paper's
//! configurations (DESIGN.md, "Substitutions").

pub mod analysis;
pub mod beseppi;
pub mod feasible;
pub mod gmark;
pub mod ontology;
pub mod rng;
pub mod sp2bench;
