//! A gMark-like workload: schema-driven random graph instances and
//! path-query workloads (Bagan et al., ICDE'17).
//!
//! gMark is the paper's vehicle for evaluating *recursive* property paths
//! (§6.1: "no existing benchmark covers recursive property paths"). Two
//! scenarios are generated, mirroring the paper's demo configurations:
//!
//! * **social** — persons in communities with cyclic `knows`/`follows`
//!   relations, posts, tags, companies and cities (the paper's instance
//!   has 226k triples / 27 predicates; the default here is laptop-scale),
//! * **test** — an abstract 4-predicate graph (the paper's: 78k triples /
//!   4 predicates).
//!
//! Each scenario comes with 50 deterministic queries that sweep the
//! difficulty spectrum the paper observes: bound-endpoint paths (fast
//! everywhere), single two-variable closures (unsupported by Virtuoso),
//! and joins/sequences of closures (where per-binding evaluators like
//! Fuseki time out while the Datalog translation finishes).

use crate::rng::StdRng;
use sparqlog_rdf::{Graph, Term, Triple};

/// The two demo scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    Test,
    Social,
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct GmarkConfig {
    pub scenario: Scenario,
    /// Number of primary nodes (persons / plain nodes).
    pub nodes: usize,
    pub seed: u64,
}

impl GmarkConfig {
    /// The laptop-scale defaults (see DESIGN.md "Substitutions").
    pub fn default_for(scenario: Scenario) -> Self {
        match scenario {
            // ~8 triples per person.
            Scenario::Social => GmarkConfig {
                scenario,
                nodes: 900,
                seed: 0x50c1a1,
            },
            // ~4 triples per node.
            Scenario::Test => GmarkConfig {
                scenario,
                nodes: 1100,
                seed: 0x7e57,
            },
        }
    }
}

const NS: &str = "http://example.org/gMark/";

fn n(kind: &str, i: usize) -> Term {
    Term::iri(format!("{NS}{kind}{i}"))
}

fn p(name: &str) -> Term {
    Term::iri(format!("{NS}{name}"))
}

/// Generates a graph instance.
pub fn generate(config: GmarkConfig) -> Graph {
    match config.scenario {
        Scenario::Social => generate_social(config),
        Scenario::Test => generate_test(config),
    }
}

/// Social scenario: communities with cyclic `knows` graphs, a sparse
/// global `follows` forest, posts/tags, companies/cities.
fn generate_social(config: GmarkConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut g = Graph::new();
    let persons = config.nodes;
    let community = 80usize;
    let posts = persons / 2;
    let companies = (persons / 50).max(2);
    let cities = (companies / 3).max(2);
    let tags = 40;

    for i in 0..persons {
        let me = n("person", i);
        // `knows`: 2 edges inside the community ring (guaranteeing cycles)
        // plus an occasional long-range shortcut.
        let base = (i / community) * community;
        let within = |rng: &mut StdRng| base + (rng.gen_range(0..community)) % persons;
        g.insert(Triple::new(
            me.clone(),
            p("knows"),
            n(
                "person",
                (base + (i - base + 1) % community).min(persons - 1),
            ),
        ));
        g.insert(Triple::new(
            me.clone(),
            p("knows"),
            n("person", within(&mut rng).min(persons - 1)),
        ));
        // `follows`: a forest *within* the community (acyclic). Keeping
        // both relations community-local bounds every closure by the
        // community size, so the workload stays tractable at any scale.
        if i > base {
            g.insert(Triple::new(
                me.clone(),
                p("follows"),
                n("person", base + (i - base) / 2),
            ));
        }
        g.insert(Triple::new(
            me.clone(),
            p("worksAt"),
            n("company", rng.gen_range(0..companies)),
        ));
        g.insert(Triple::new(
            me.clone(),
            p("livesIn"),
            n("city", rng.gen_range(0..cities)),
        ));
    }
    for i in 0..posts {
        let post = n("post", i);
        g.insert(Triple::new(
            post.clone(),
            p("hasCreator"),
            n("person", rng.gen_range(0..persons)),
        ));
        g.insert(Triple::new(
            post.clone(),
            p("hasTag"),
            n("tag", rng.gen_range(0..tags as usize)),
        ));
        if i > 0 && rng.gen_ratio(2, 3) {
            // Reply trees.
            g.insert(Triple::new(
                post.clone(),
                p("replyOf"),
                n("post", rng.gen_range(0..i)),
            ));
        }
        if rng.gen_ratio(1, 2) {
            let person = n("person", rng.gen_range(0..persons));
            g.insert(Triple::new(person, p("likes"), post.clone()));
        }
    }
    for i in 0..companies {
        g.insert(Triple::new(
            n("company", i),
            p("locatedIn"),
            n("city", i % cities),
        ));
    }
    for i in 0..cities {
        if i > 0 {
            g.insert(Triple::new(n("city", i), p("partOf"), n("city", i / 2)));
        }
    }
    g
}

/// Test scenario: four abstract predicates `a`, `b`, `c`, `d` over plain
/// nodes — `a` forms block-local rings, `b` a binary forest, `c` random
/// sparse edges, `d` rare shortcuts.
fn generate_test(config: GmarkConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut g = Graph::new();
    let nodes = config.nodes;
    let block = 60usize;
    for i in 0..nodes {
        let me = n("node", i);
        let base = (i / block) * block;
        g.insert(Triple::new(
            me.clone(),
            p("a"),
            n("node", (base + (i - base + 1) % block).min(nodes - 1)),
        ));
        if i > base {
            g.insert(Triple::new(
                me.clone(),
                p("b"),
                n("node", base + (i - base) / 2),
            ));
        }
        g.insert(Triple::new(
            me.clone(),
            p("c"),
            n("node", (base + rng.gen_range(0..block)).min(nodes - 1)),
        ));
        if rng.gen_ratio(1, 8) {
            g.insert(Triple::new(
                me.clone(),
                p("d"),
                n("node", rng.gen_range(0..nodes)),
            ));
        }
    }
    g
}

const SOCIAL_PROLOGUE: &str = "PREFIX g: <http://example.org/gMark/>\n";

/// The 50 queries of a scenario, as `(id, query)` pairs.
pub fn queries(scenario: Scenario) -> Vec<(String, String)> {
    let preds: &[&str] = match scenario {
        Scenario::Social => &["knows", "follows", "likes", "replyOf", "worksAt", "livesIn"],
        Scenario::Test => &["a", "b", "c", "d"],
    };
    // Forest-shaped relations (small reachability sets) used as the
    // starred inner path of the nested-closure templates.
    let forest: &str = match scenario {
        Scenario::Social => "follows",
        Scenario::Test => "b",
    };
    let node_kind = match scenario {
        Scenario::Social => "person",
        Scenario::Test => "node",
    };
    let seed = match scenario {
        Scenario::Social => 0x9001u64,
        Scenario::Test => 0x9002u64,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(50);
    let pick = |rng: &mut StdRng| preds[rng.gen_range(0..preds.len())].to_string();

    for i in 0..50 {
        let p1 = pick(&mut rng);
        let mut p2 = pick(&mut rng);
        if p2 == p1 {
            p2 =
                preds[(preds.iter().position(|x| *x == p1).unwrap() + 1) % preds.len()].to_string();
        }
        let p3 = pick(&mut rng);
        let c1 = rng.gen_range(0..60);
        let body = match i % 10 {
            // Easy: bound-start recursive paths.
            0 => format!("g:{node_kind}{c1} g:{p1}+ ?y"),
            1 => format!("g:{node_kind}{c1} (g:{p1}/g:{p2})+ ?y"),
            2 => format!("?x g:{p1}* g:{node_kind}{c1}"),
            // Alternation and inverse under closure, bound start.
            3 => format!("g:{node_kind}{c1} (g:{p1}|g:{p2})+ ?y"),
            4 => format!("g:{node_kind}{c1} (^g:{p1}|g:{p2})* ?y"),
            // Two-variable closures (Virtuoso: unsupported).
            5 => format!("?x g:{p1}+ ?y"),
            6 => format!("?x g:{p1}+ ?y . ?y g:{p3} ?z"),
            // Hard: *nested* closures with two variables. Bottom-up
            // evaluation materialises the inner closure once; per-binding
            // top-down search recomputes it per visited node and per
            // source — the asymmetry behind Fuseki's gMark time-outs.
            7 => format!("?x (g:{p1}/g:{forest}*)+ ?y"),
            8 => format!("?x (g:{forest}*/g:{p1})+ ?y"),
            // Range quantifiers (the gMark extension).
            _ => format!("g:{node_kind}{c1} g:{p1}{{1,3}} ?y"),
        };
        // gMark's SPARQL export emits SELECT DISTINCT throughout.
        out.push((
            format!("{}", i),
            format!("{SOCIAL_PROLOGUE}SELECT DISTINCT * WHERE {{ {body} }}"),
        ));
    }
    out
}

/// Dataset statistics for the paper's Table 6.
pub fn stats(g: &Graph) -> (usize, usize) {
    let mut preds: Vec<&Term> = Vec::new();
    for (_, p, _) in g.iter() {
        if !preds.contains(&p) {
            preds.push(p);
        }
    }
    (g.len(), preds.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = generate(GmarkConfig::default_for(Scenario::Test));
        let b = generate(GmarkConfig::default_for(Scenario::Test));
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn scenario_shapes() {
        let social = generate(GmarkConfig::default_for(Scenario::Social));
        let (triples, preds) = stats(&social);
        assert!(triples > 5_000, "social has {triples}");
        assert!(preds >= 9, "social predicates: {preds}");

        let test = generate(GmarkConfig::default_for(Scenario::Test));
        let (triples, preds) = stats(&test);
        assert!(triples > 3_000, "test has {triples}");
        assert_eq!(preds, 4, "test uses exactly 4 predicates");
    }

    #[test]
    fn fifty_parseable_queries_each() {
        for scenario in [Scenario::Social, Scenario::Test] {
            let qs = queries(scenario);
            assert_eq!(qs.len(), 50);
            for (id, q) in &qs {
                sparqlog_sparql::parse_query(q)
                    .unwrap_or_else(|e| panic!("{scenario:?} q{id}: {e}"));
            }
        }
    }

    #[test]
    fn query_mix_includes_two_var_recursion() {
        let qs = queries(Scenario::Social);
        let two_var = qs
            .iter()
            .filter(|(_, q)| q.contains("?x") && (q.contains("+ ?y") || q.contains("* ?m")))
            .count();
        assert!(
            two_var >= 15,
            "need two-variable recursive queries, got {two_var}"
        );
    }

    #[test]
    fn knows_relation_has_cycles() {
        // Community rings guarantee knows-cycles — the case Virtuoso's
        // one-or-more quirk gets wrong.
        let g = generate(GmarkConfig {
            scenario: Scenario::Social,
            nodes: 300,
            seed: 1,
        });
        // Follow the ring from person 0: must return to person 0.
        let knows = p("knows");
        let mut current = n("person", 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..400 {
            if !seen.insert(current.clone()) {
                return; // found a cycle
            }
            let next = g
                .triples_matching(Some(&current), Some(&knows), None)
                .map(|(_, _, o)| o.clone())
                .next()
                .expect("every person knows someone");
            current = next;
        }
        panic!("no cycle found in knows relation");
    }
}
